#!/usr/bin/env python
"""A mutual-exclusion arbiter as three open systems.

A second end-to-end application of the paper's method, beyond its queue
example:

* the arbiter assumes the clients follow the request protocol and
  guarantees the grant protocol (including mutual exclusion);
* each client assumes the grant protocol on its own grant wire and
  guarantees the request protocol on its own request wire;
* the Composition Theorem closes the three-way circular argument and
  yields mutual exclusion of the composition *unconditionally*;
* starvation freedom (`req_j = 1 ~> grant_j = 1`) needs the arbiter's
  grants to be **strongly** fair: with `WF` instead of `SF` the checker
  exhibits the classic starvation lasso in which one client's requests are
  always granted and the other waits forever.

Run:  python examples/arbiter.py
"""

from repro.checker import check_temporal_implication
from repro.core import compose
from repro.fmt import pretty_spec
from repro.systems import arbiter


def main() -> None:
    print("=" * 72)
    print("The components")
    print("=" * 72 + "\n")
    print(pretty_spec(arbiter.arbiter_component().spec))
    print()
    print(pretty_spec(arbiter.client_component(1).spec))

    print("\n" + "=" * 72)
    print("Mutual exclusion by the Composition Theorem (circular A/G)")
    print("=" * 72 + "\n")
    cert = compose(
        list(arbiter.ag_specs()), arbiter.mutex_goal(), name="arbiter mutex"
    )
    print(cert.render())
    cert.expect_ok()

    print("\n" + "=" * 72)
    print("Starvation freedom needs strong fairness")
    print("=" * 72 + "\n")

    strong_system = arbiter.composed_system(strong=True)
    for j in (1, 2):
        check_temporal_implication(
            strong_system, arbiter.starvation_property(j),
            name=f"SF arbiter: req{j} ~> grant{j}",
        ).expect_ok()
        print(f"  [OK] with SF: req{j} = 1 ~> grant{j} = 1")

    weak_system = arbiter.composed_system(strong=False)
    result = check_temporal_implication(
        weak_system, arbiter.starvation_property(1),
        name="WF arbiter: req1 ~> grant1",
    )
    assert not result.ok
    print("\n  with WF only, client 1 starves:")
    print()
    print(result.counterexample.render())


if __name__ == "__main__":
    main()
