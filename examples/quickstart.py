#!/usr/bin/env python
"""Quickstart: the paper's Figure 1 in five minutes.

Two processes are wired in a loop: `Pi_c` drives wire `c` reading wire `d`,
`Pi_d` drives `d` reading `c`.  Each is specified as an open system with an
assumption/guarantee specification `E ⊳ M`:

* the **safety** version (`M0`: the wire always equals 0) composes -- the
  Composition Theorem discharges the circular argument mechanically;
* the **liveness** version (`M1`: the wire eventually equals 1) does NOT
  compose -- the brute-force semantic checker exhibits the paper's
  counterexample, the behavior where both processes leave the wires
  unchanged forever.

Run:  python examples/quickstart.py
"""

from repro.core import brute_force_implication, compose
from repro.checker import check_invariant, check_temporal_implication, explore
from repro.fmt import pretty, pretty_spec
from repro.kernel import And, Eq, Var
from repro.systems import circuit


def main() -> None:
    print("=" * 72)
    print("Example 1 (safety): (M0_d ⊳ M0_c) ∧ (M0_c ⊳ M0_d)  ⇒  M0_c ∧ M0_d")
    print("=" * 72)

    ag_c, ag_d = circuit.safety_agspecs()
    goal = circuit.safety_goal()

    print("\nThe c-device's guarantee, in canonical form:\n")
    print(pretty_spec(ag_c.guarantee_spec))
    print("\nIts assumption/guarantee specification:\n")
    print(" ", pretty(ag_c.formula()))

    print("\nApplying the Composition Theorem:\n")
    cert = compose([ag_c, ag_d], goal, name="Figure 1, safety")
    print(cert.render())
    cert.expect_ok()

    print("\nCross-checking against the raw semantics (every lasso over the")
    print("full behavior universe up to stem 2 / loop 2):\n")
    result = brute_force_implication(
        [ag_c.formula(), ag_d.formula()],
        goal.formula(),
        circuit.wire_universe(),
        name="brute force",
    )
    print(" ", result.summary())
    result.expect_ok()

    print("\n" + "=" * 72)
    print("Example 2 (liveness): the same circular rule FAILS for M1 = <>(wire=1)")
    print("=" * 72 + "\n")

    p1, p2 = circuit.liveness_premises()
    result = brute_force_implication(
        [p1, p2],
        circuit.liveness_goal_formula(),
        circuit.wire_universe(),
        max_stem=1,
        max_loop=1,
        name="Figure 1, liveness",
    )
    print(result.counterexample.render())
    print("\nExactly the paper's argument: violating <>(c=1) is a sin of")
    print("omission, so both A/G premises hold on the do-nothing behavior,")
    print("but the conclusion does not.")
    assert not result.ok

    print("\n" + "=" * 72)
    print("The implementations: composing the actual processes Pi_c ∧ Pi_d")
    print("=" * 72 + "\n")

    closed = circuit.composed_processes()
    graph = explore(closed)
    inv = check_invariant(
        graph, And(Eq(Var("c"), 0), Eq(Var("d"), 0)), name="c = d = 0 always"
    )
    print(" ", inv.summary())
    inv.expect_ok()

    live = check_temporal_implication(
        closed, circuit.liveness_goal_formula(), name="<>(c=1) ∧ <>(d=1)"
    )
    print(" ", live.summary(), "(expected to fail: the wires never change)")
    assert not live.ok


if __name__ == "__main__":
    main()
