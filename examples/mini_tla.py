#!/usr/bin/env python
"""Writing specifications in mini-TLA text instead of the Python DSL.

The `repro.parser` front end accepts a small TLA+-style surface syntax.
This example specifies a token ring of three nodes textually, checks
safety and liveness, and round-trips a formula through the pretty printer.

Run:  python examples/mini_tla.py
"""

from repro.checker import check_invariant, check_temporal_implication, explore
from repro.fmt import pretty
from repro.parser import load_module, parse_formula

SOURCE = r"""
MODULE TokenRing
CONSTANT N = 3
VARIABLE tok \in 0..2, done0 \in BOOLEAN, done1 \in BOOLEAN, done2 \in BOOLEAN

Init == tok = 0 /\ done0 = FALSE /\ done1 = FALSE /\ done2 = FALSE

Work0 == tok = 0 /\ done0 = FALSE /\ done0' = TRUE
         /\ UNCHANGED <<tok, done1, done2>>
Work1 == tok = 1 /\ done1 = FALSE /\ done1' = TRUE
         /\ UNCHANGED <<tok, done0, done2>>
Work2 == tok = 2 /\ done2 = FALSE /\ done2' = TRUE
         /\ UNCHANGED <<tok, done0, done1>>

Pass == tok' = (tok + 1) % N /\ UNCHANGED <<done0, done1, done2>>

Next == Work0 \/ Work1 \/ Work2 \/ Pass

Spec == Init /\ [][Next]_<<tok, done0, done1, done2>>
        /\ WF_<<tok, done0, done1, done2>>(Next)
        /\ SF_<<tok, done0, done1, done2>>(Work0)
        /\ SF_<<tok, done0, done1, done2>>(Work1)
        /\ SF_<<tok, done0, done1, done2>>(Work2)

TokenValid == tok < 3
AllDone == done0 = TRUE /\ done1 = TRUE /\ done2 = TRUE
Completion == <>(done0 = TRUE /\ done1 = TRUE /\ done2 = TRUE)
"""


def main() -> None:
    module = load_module(SOURCE)
    print(f"loaded {module}")

    spec = module.spec("Spec")
    graph = explore(spec)
    print(f"reachable states: {graph.state_count}, edges: {graph.edge_count}")

    check_invariant(graph, module.expr("TokenValid"),
                    name="token stays in range").expect_ok()
    print("[OK] invariant: TokenValid")

    result = check_temporal_implication(
        spec, module.formula("Completion"), name="every node finishes"
    )
    print(f"[{'OK' if result.ok else 'FAILED'}] liveness: Completion")
    result.expect_ok()

    formula = parse_formula("[](x = 0) => (y = 1) ~> (x = 2)")
    print("\nparsed:       ", formula)
    print("pretty ASCII: ", pretty(formula))
    print("pretty Unicode:", pretty(formula, unicode=True))


if __name__ == "__main__":
    main()
