#!/usr/bin/env python
"""The paper's appendix, end to end: queues, channels, and Figure 9.

1. regenerate Figure 2 (the two-phase handshake trace);
2. model-check the complete single queue of Figure 6 (capacity invariant,
   handshake discipline, liveness);
3. verify section A.4: the double queue CDQ implements the (2N+1)-queue
   CQ[dbl] via the refinement mapping  q ↦ q2 ∘ buffer(z) ∘ q1;
4. run the Figure 9 proof: the Composition Theorem discharges
   G ∧ (QE[1] ⊳ QM[1]) ∧ (QE[2] ⊳ QM[2])  ⇒  (QE[dbl] ⊳ QM[dbl]);
5. show why the interleaving condition G is necessary: without it,
   hypothesis 1 fails with a concrete simultaneous-step counterexample
   (the paper's argument that formula (3) is invalid).

Run:  python examples/queue_composition.py [N]      (default N = 1)
"""

import sys

from repro.checker import (
    check_invariant,
    check_safety_refinement,
    check_temporal_implication,
    explore,
    premises_of_spec,
)
from repro.core import CompositionTheorem
from repro.kernel import Cmp, Len, Var
from repro.systems.handshake import pending, ready, render_figure2
from repro.systems.queue import DoubleQueue, complete_queue
from repro.temporal import LeadsTo, StatePred


def main(size: int = 1) -> None:
    print("=" * 72)
    print("Figure 2: the two-phase handshake protocol")
    print("=" * 72 + "\n")
    print(render_figure2("c", (37, 4, 19)))

    print("\n" + "=" * 72)
    print(f"Figure 6: the complete {size}-element queue")
    print("=" * 72 + "\n")
    icq = complete_queue(size)
    graph = explore(icq)
    print(f"  reachable states: {graph.state_count}, edges: {graph.edge_count}")

    check_invariant(graph, Cmp("<=", Len(Var("q")), size),
                    name="|q| <= N").expect_ok()
    print("  [OK] capacity invariant |q| <= N")

    progress = LeadsTo(
        StatePred(Cmp(">", Len(Var("q")), 0) & ready("o")),
        StatePred(pending("o")),
    )
    check_temporal_implication(
        graph, progress, premises=premises_of_spec(icq),
        name="q nonempty & o ready ~> a value is sent",
    ).expect_ok()
    print("  [OK] the queue eventually forwards (WF of Figure 6)")

    print("\n" + "=" * 72)
    print(f"Section A.4: CDQ ⇒ CQ[dbl]  (two {size}-queues refine one "
          f"{2 * size + 1}-queue)")
    print("=" * 72 + "\n")
    dq = DoubleQueue(size)
    cdq_graph = explore(dq.cdq_spec())
    print(f"  CDQ reachable states: {cdq_graph.state_count}")
    target = dq.icq_dbl()

    check_safety_refinement(
        cdq_graph, target, dq.mapping,
        name="safety: every CDQ step maps to a [QM[dbl]]_v step",
    ).expect_ok()
    print("  [OK] safety refinement under  q ↦ q2 ∘ buffer(z) ∘ q1")

    check_temporal_implication(
        cdq_graph, target.liveness_formula(), mapping=dq.mapping,
        target_universe=target.universe,
        premises=premises_of_spec(dq.cdq_spec()),
        name="liveness: WF_<i,o,q>(QM[dbl])",
    ).expect_ok()
    print("  [OK] liveness refinement (fairness carries through the mapping)")

    print("\n" + "=" * 72)
    print("Figure 9: the Composition Theorem proof for open queues")
    print("=" * 72 + "\n")
    cert = dq.composition_theorem().verify()
    print(cert.render())
    cert.expect_ok()

    print("\n" + "=" * 72)
    print("Why G is necessary: formula (3) without the Disjoint condition")
    print("=" * 72 + "\n")
    no_g = CompositionTheorem(
        [dq.ag_q1(), dq.ag_q2()], dq.ag_goal(),
        disjoint=None, mapping=dq.mapping, name="without G",
    ).verify()
    assert not no_g.ok
    for obligation in no_g.failed_obligations():
        print(f"  hypothesis {obligation.oid} fails: {obligation.description}")
    first = no_g.failed_obligations()[0]
    if first.result is not None and first.result.counterexample is not None:
        print()
        print(first.result.counterexample.render())
    print("\nThe failing step changes outputs of two components at once --")
    print("allowed by the conjunction of the component specifications, but")
    print("not by the (2N+1)-queue's interleaving guarantee.  Hence the")
    print("paper proves the conditional implementation (4), with G.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
