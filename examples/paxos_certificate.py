#!/usr/bin/env python
"""Single-decree Paxos, proved safe as a composition of open systems.

The walkthrough the protocol corpus is built around:

* each proposer and each acceptor is its own component with an `E ⊳ M`
  assume/guarantee spec -- the environment assumption says only that
  input message bits rise monotonically, one at a time;
* the message channel is a *separate* component that owns the `lost`
  bits: loss is a monotone drop action, duplication is the fact that
  receives never consume a message;
* the Composition Theorem discharges agreement from the per-device
  obligations, so the proof survives adding the lossy channel to the
  device list unchanged -- safety is fault-oblivious;
* liveness is not: with no fairness on the channel, a behavior where
  every prepare is eaten is a legal fair lasso and `◇ decided` fails,
  which the checker exhibits.

Run:  python examples/paxos_certificate.py
"""

from repro.checker import check_invariant, check_temporal_implication, explore
from repro.fmt import pretty_spec
from repro.systems.paxos import Paxos, v1a, v2a


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72 + "\n")


def main() -> None:
    system = Paxos(acceptors=2, ballots=2, values=2)

    banner("The components (one proposer, one acceptor)")
    print(pretty_spec(system.proposers[1].spec))
    print()
    print(pretty_spec(system.acceptor_procs[0].spec))

    banner("Closed system: agreement holds, the broken variant does not")
    graph = explore(system.complete_spec())
    check_invariant(graph, system.agreement(), name="Agreement").expect_ok()
    print(f"  [OK] Agreement on all {graph.state_count} reachable states")

    broken = Paxos(2, 2, 2, broken=True)  # 2a skips the vote-carry rule
    result = check_invariant(explore(broken.complete_spec()),
                             broken.agreement(), name="Agreement")
    assert not result.ok
    print("\n  without the phase-2a value rule, two values get chosen:")
    print()
    print(result.counterexample.render())

    banner("Agreement by the Composition Theorem")
    certificate = system.composition_theorem().verify()
    print(certificate.render())
    certificate.expect_ok()

    banner("The same certificate with a lossy channel in the device list")
    lossy = Paxos(2, 2, 2, droppable=(v1a(1), v2a(1, 0)))
    lossy_certificate = lossy.composition_theorem().verify()
    print(lossy_certificate.render())
    lossy_certificate.expect_ok()

    banner("Liveness is not fault-oblivious")
    check_temporal_implication(
        system.complete_spec(), system.eventually_decides(),
        name="◇ decided (lossless)",
    ).expect_ok()
    print("  [OK] lossless: WF on proposers and acceptors decides")

    stalled = Paxos(2, 2, 2, droppable=(v1a(0), v1a(1)))
    result = check_temporal_implication(
        stalled.complete_spec(), stalled.eventually_decides(),
        name="◇ decided (prepares droppable)",
    )
    assert not result.ok and result.counterexample.is_lasso
    print("\n  with every prepare droppable, the channel (no fairness)")
    print("  eats them forever -- a legal fair lasso:")
    print()
    print(result.counterexample.render())


if __name__ == "__main__":
    main()
