"""End-to-end service coverage over real sockets: the HTTP surface
(BackgroundServer + ServiceClient), N concurrent clients coalescing
onto one exploration, the CLI verbs (submit/watch/cancel), and the
acceptance scenario run for real -- ``python -m repro serve`` killed
with SIGTERM mid-job checkpoints, and a restarted server resumes the
job to the identical graph digest."""

import io
import json
import os
import signal
import subprocess
import sys
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.service import BackgroundServer, QueueFullError, ServiceClient
from repro.service.jobs import CheckRequest, run_check
from repro.tools.cli import main

COUNTER_TLA = """
MODULE Counter
CONSTANT N = 3
VARIABLE x \\in 0..2
Init == x = 0
Next == x' = (x + 1) % N
Spec == Init /\\ [][Next]_<<x>> /\\ WF_<<x>>(Next)
Small == x < 3
TooSmall == x < 2
"""

CHAIN_TLA = """
MODULE Chain
CONSTANT N = 40
VARIABLE x \\in 0..40
Init == x = 0
Next == x' = IF x < N THEN x + 1 ELSE x
Spec == Init /\\ [][Next]_<<x>>
Bound == x <= 40
"""


@pytest.fixture
def server(tmp_path):
    with BackgroundServer(str(tmp_path / "svc")) as background:
        yield background


@pytest.fixture
def client(server):
    return ServiceClient(server.url)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def wait_until(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.05)


class TestHttpSurface:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["queued"] == 0
        assert health["cache"]["entries"] == 0

    def test_submit_wait_fetch(self, client):
        payload = client.submit(COUNTER_TLA, invariants=["Small"])
        assert payload["disposition"] == "created"
        job = payload["job"]
        record = client.wait(job["id"])
        assert record["state"] == "done"
        assert record["result"]["verdict"] == "ok"
        assert record["cache_hit"] is False
        assert [j["id"] for j in client.list_jobs()] == [job["id"]]

    def test_resubmission_hits_the_cache_over_http(self, client):
        first = client.submit(COUNTER_TLA, invariants=["Small"])
        done = client.wait(first["job"]["id"])
        second = client.submit(COUNTER_TLA, invariants=["Small"])
        assert second["disposition"] == "cached"
        assert second["job"]["state"] == "done"
        assert second["job"]["cache_hit"] is True
        assert second["job"]["result"] == done["result"]
        health = client.health()
        assert health["cache"]["hits"] == 1

    def test_violation_trace_travels_through_the_wire(self, client):
        payload = client.submit(COUNTER_TLA, invariants=["TooSmall"])
        record = client.wait(payload["job"]["id"])
        assert record["result"]["verdict"] == "violation"
        (check,) = record["result"]["checks"]
        assert check["counterexample"]["rendered"]

    def test_events_stream_replays_and_follows(self, client):
        payload = client.submit(CHAIN_TLA, invariants=["Bound"],
                                level_delay=0.02)
        events = list(client.events(payload["job"]["id"], timeout=60))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "queued"
        assert kinds.count("level") == 41
        assert kinds[-1] == "done"
        assert [event["seq"] for event in events] \
            == list(range(len(events)))

    def test_unknown_job_is_404(self, client):
        with pytest.raises(Exception) as excinfo:
            client.job("nope")
        assert excinfo.value.status == 404

    def test_traversal_job_ids_are_404_and_touch_nothing(self, server,
                                                         tmp_path):
        # jobs/<id>.* paths are derived from the URL; a traversal id
        # must be rejected outright, for GET, GET /events, and DELETE
        # (which used to be able to drop a ".cancel" file at an
        # attacker-chosen path)
        state_dir = tmp_path / "svc"
        bait = state_dir / "bait.json"
        bait.write_text(json.dumps({"id": "x", "state": "queued"}))
        for method, path in (
                ("GET", "/jobs/../bait"),
                ("GET", "/jobs/../bait/events"),
                ("DELETE", "/jobs/../bait"),
                ("GET", "/jobs/..%2fbait"),
                ("DELETE", "/jobs/../../../../home/user/secrets")):
            conn = HTTPConnection(server.service.host, server.service.port,
                                  timeout=10)
            conn.request(method, path)
            assert conn.getresponse().status == 404, (method, path)
            conn.close()
        assert not (state_dir / "bait.cancel").exists()
        assert list(state_dir.glob("**/*.cancel")) == []

    def test_bad_module_is_400(self, client):
        with pytest.raises(Exception) as excinfo:
            client.submit("MODULE Bad\nInit == x =")
        assert excinfo.value.status == 400

    def test_unknown_field_is_400(self, server):
        conn = HTTPConnection(server.service.host, server.service.port,
                              timeout=10)
        body = json.dumps({"module_source": COUNTER_TLA, "bogus": 1})
        conn.request("POST", "/jobs", body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert "unknown request fields" in payload["error"]

    def test_wrong_method_is_405_and_wrong_path_404(self, server):
        for method, path, expected in (("PUT", "/jobs", 405),
                                       ("GET", "/nope", 404)):
            conn = HTTPConnection(server.service.host, server.service.port,
                                  timeout=10)
            conn.request(method, path)
            assert conn.getresponse().status == expected
            conn.close()

    def test_cancel_done_job_rejected(self, client):
        payload = client.submit(COUNTER_TLA, invariants=["Small"])
        client.wait(payload["job"]["id"])
        outcome = client.cancel(payload["job"]["id"])
        assert outcome["accepted"] is False

    def test_backpressure_is_429_with_retry_after(self, tmp_path):
        with BackgroundServer(str(tmp_path / "svc"), pool_size=1,
                              queue_limit=1) as background:
            # retries=0: this test asserts the raw 429, not the
            # client-side backoff (covered in test_service_client_retry)
            client = ServiceClient(background.url, retries=0)
            running = client.submit(CHAIN_TLA, invariants=["Bound"],
                                    level_delay=0.05)["job"]
            wait_until(
                lambda: client.job(running["id"])["state"] == "running",
                message="first job to start")
            queued = client.submit(CHAIN_TLA, invariants=["Bound"],
                                   max_states=1000)["job"]
            with pytest.raises(QueueFullError) as excinfo:
                client.submit(CHAIN_TLA, invariants=["Bound"],
                              max_states=1001)
            assert excinfo.value.retry_after >= 1.0
            # drain quickly so the teardown stop() has nothing slow left
            client.cancel(queued["id"])
            client.cancel(running["id"])
            wait_until(
                lambda: client.job(running["id"])["state"] == "cancelled",
                message="running job to cancel")


class TestConcurrentClients:
    def test_n_clients_one_exploration_consistent_verdicts(self, server):
        """The headline cache/coalescing property: five clients submit
        the identical check at once; exactly one exploration runs and
        every client sees the same verdict and graph digest."""
        results = [None] * 5
        barrier = threading.Barrier(len(results))

        def one_client(slot):
            client = ServiceClient(server.url)
            barrier.wait()
            payload = client.submit(CHAIN_TLA, invariants=["Bound"],
                                    level_delay=0.05)
            record = client.wait(payload["job"]["id"], timeout=120)
            results[slot] = (payload["disposition"], record)

        threads = [threading.Thread(target=one_client, args=(slot,))
                   for slot in range(len(results))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert all(result is not None for result in results)
        dispositions = sorted(d for d, _ in results)
        assert dispositions.count("created") == 1
        assert set(dispositions) <= {"created", "coalesced", "cached"}
        digests = {record["result"]["graph_digest"]
                   for _, record in results}
        verdicts = {record["result"]["verdict"] for _, record in results}
        assert digests == {run_check(
            CheckRequest(module_source=CHAIN_TLA, invariants=("Bound",))
        )["graph_digest"]}
        assert verdicts == {"ok"}
        # server-side: one real exploration (every other job, if any,
        # was born done from the cache)
        explored = [job for job in server.manager.jobs()
                    if not job.cache_hit]
        assert len(explored) == 1
        assert explored[0].coalesced == dispositions.count("coalesced")


class TestCliVerbs:
    def test_submit_wait_ok_exit_zero(self, server, tmp_path):
        path = tmp_path / "Counter.tla"
        path.write_text(COUNTER_TLA)
        code, text = run_cli("submit", str(path), "--invariant", "Small",
                             "--server", server.url, "--wait")
        assert code == 0
        assert "[OK] Small" in text
        assert "verdict=ok" in text

    def test_submit_wait_violation_exit_one_with_trace(self, server,
                                                       tmp_path):
        path = tmp_path / "Counter.tla"
        path.write_text(COUNTER_TLA)
        code, text = run_cli("submit", str(path), "--invariant", "TooSmall",
                             "--server", server.url, "--wait")
        assert code == 1
        assert "[FAIL]" in text or "TooSmall" in text
        assert "verdict=violation" in text

    def test_submit_json_reports_cached_disposition(self, server, tmp_path):
        path = tmp_path / "Counter.tla"
        path.write_text(COUNTER_TLA)
        code, _ = run_cli("submit", str(path), "--invariant", "Small",
                          "--server", server.url, "--wait")
        assert code == 0
        code, text = run_cli("submit", str(path), "--invariant", "Small",
                             "--server", server.url, "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["disposition"] == "cached"
        assert payload["job"]["cache_hit"] is True

    def test_watch_streams_ndjson_until_done(self, server, tmp_path):
        path = tmp_path / "Chain.tla"
        path.write_text(CHAIN_TLA)
        code, text = run_cli("submit", str(path), "--invariant", "Bound",
                             "--level-delay", "0.02",
                             "--server", server.url, "--json")
        assert code == 0
        job_id = json.loads(text)["job"]["id"]
        code, text = run_cli("watch", job_id, "--server", server.url)
        assert code == 0
        events = [json.loads(line) for line in text.splitlines() if line]
        kinds = [event["event"] for event in events]
        assert kinds[-1] == "done"
        assert kinds.count("level") == 41

    def test_cancel_running_job_via_cli(self, server, tmp_path):
        path = tmp_path / "Chain.tla"
        path.write_text(CHAIN_TLA)
        code, text = run_cli("submit", str(path), "--invariant", "Bound",
                             "--level-delay", "0.1",
                             "--server", server.url, "--json")
        assert code == 0
        job_id = json.loads(text)["job"]["id"]
        client = ServiceClient(server.url)
        wait_until(lambda: client.job(job_id)["state"] == "running",
                   message="job to start")
        code, text = run_cli("cancel", job_id, "--server", server.url)
        assert code == 0
        assert "cancel accepted" in text
        assert client.wait(job_id)["state"] == "cancelled"

    def test_cancel_done_job_exits_one(self, server, tmp_path):
        path = tmp_path / "Counter.tla"
        path.write_text(COUNTER_TLA)
        code, text = run_cli("submit", str(path), "--invariant", "Small",
                             "--server", server.url, "--json")
        job_id = json.loads(text)["job"]["id"]
        ServiceClient(server.url).wait(job_id)
        code, text = run_cli("cancel", job_id, "--server", server.url)
        assert code == 1
        assert "cancel rejected" in text


class TestSigtermResume:
    """The acceptance scenario against the real thing: ``python -m repro
    serve`` as a subprocess, SIGTERM mid-exploration, restart, resume."""

    @staticmethod
    def _spawn(state_dir):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--state-dir", state_dir, "--pool-size", "1"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)

    @staticmethod
    def _endpoint(state_dir):
        path = os.path.join(state_dir, "server.json")
        wait_until(lambda: os.path.exists(path),
                   message="server.json endpoint file")
        with open(path) as handle:
            return json.load(handle)["url"]

    def test_sigterm_checkpoints_and_restart_resumes(self, tmp_path):
        state_dir = str(tmp_path / "svc")
        fresh = run_check(CheckRequest(module_source=CHAIN_TLA,
                                       invariants=("Bound",)))
        first = self._spawn(state_dir)
        try:
            client = ServiceClient(self._endpoint(state_dir))
            job_id = client.submit(CHAIN_TLA, invariants=["Bound"],
                                   level_delay=0.1)["job"]["id"]
            # let it make real progress (each level checkpoints), then kill
            wait_until(lambda: client.job(job_id)["events"] >= 6,
                       message="a few levels of progress")
            first.send_signal(signal.SIGTERM)
            first.wait(timeout=30)
        finally:
            if first.poll() is None:
                first.kill()
        assert first.returncode == 0

        # the drain left the job persisted as queued with its checkpoint
        record = json.loads(
            (tmp_path / "svc" / "jobs" / (job_id + ".json")).read_text())
        assert record["state"] == "queued"
        assert record["resume"] is True
        assert os.path.exists(record["checkpoint"])

        os.unlink(os.path.join(state_dir, "server.json"))  # no stale port
        second = self._spawn(state_dir)
        try:
            client = ServiceClient(self._endpoint(state_dir))
            final = client.wait(job_id, timeout=120)
            assert final["state"] == "done"
            assert final["result"]["verdict"] == "ok"
            # bit-for-bit the graph an uninterrupted run produces
            assert final["result"]["graph_digest"] == fresh["graph_digest"]
            assert final["result"]["states"] == fresh["states"]
            events = list(client.events(job_id, timeout=30))
            kinds = [event["event"] for event in events]
            assert "requeued" in kinds and "interrupted" in kinds
            second.send_signal(signal.SIGTERM)
            second.wait(timeout=30)
        finally:
            if second.poll() is None:
                second.kill()
        assert second.returncode == 0
