"""Property-based fault-model tests for the Paxos message channel.

The channel component (see :mod:`repro.systems.paxos`) models loss as a
monotone ``lost`` bit per droppable message and duplication as
non-consuming receives.  Safety must be *fault-oblivious*: agreement is
a property of the ballot discipline, not of which messages arrive, so

* randomized loss schedules -- seeded random droppable subsets, which
  let the channel interleave drops arbitrarily with protocol steps --
  never violate agreement (hypothesis-style loop over seeds, no
  external dependency);
* making every message droppable still satisfies agreement, while
  ``◇ decided`` correctly *fails* (the channel has no fairness: a
  behavior where it eats every prepare is a legal fair lasso);
* with no loss at all, weak fairness on proposers and acceptors is
  enough for ``◇ decided`` to hold.
"""

from __future__ import annotations

import random

import pytest

from repro.checker import check_invariant, check_temporal_implication, explore
from repro.systems.paxos import Paxos

SEEDS = range(10)


def random_droppable(seed: int, acceptors: int = 2, ballots: int = 2,
                     values: int = 2, max_drops: int = 4):
    """A seeded random subset of the instance's message vocabulary."""
    rng = random.Random(seed)
    vocabulary = Paxos(acceptors, ballots, values).message_vars()
    count = rng.randint(1, max_drops)
    return tuple(rng.sample(vocabulary, count))


@pytest.mark.parametrize("seed", SEEDS)
def test_random_loss_schedule_never_violates_agreement(seed):
    droppable = random_droppable(seed)
    system = Paxos(2, 2, 2, droppable=droppable)
    graph = explore(system.complete_spec())
    result = check_invariant(graph, system.agreement(),
                             name=f"agreement-seed{seed}")
    assert result.ok, (f"seed {seed} (droppable={droppable}): "
                       f"message loss broke agreement")


def test_dropping_every_observable_message_satisfies_agreement():
    # every message some process *reads* is droppable; 2b vote bits are
    # excluded only because nothing consumes them -- chosen() counts the
    # votes cast, so losing a 2b on the wire is unobservable and would
    # only inflate the state space
    base = Paxos(2, 2, 2)
    droppable = [m for m in base.message_vars()
                 if not m.startswith("s2b_")]
    system = Paxos(2, 2, 2, droppable=droppable)
    graph = explore(system.complete_spec())
    assert check_invariant(graph, system.agreement(),
                           name="agreement-all-dropped").ok


def test_dropping_literally_every_message_satisfies_agreement():
    # the unabridged "all" on a single-ballot instance, 2b bits included
    system = Paxos(2, 1, 2, droppable="all")
    graph = explore(system.complete_spec())
    assert check_invariant(graph, system.agreement(),
                           name="agreement-all").ok


def test_liveness_holds_without_loss():
    system = Paxos(2, 2, 2)
    result = check_temporal_implication(
        system.complete_spec(), system.eventually_decides(),
        name="decides-lossless")
    assert result.ok


def test_liveness_correctly_fails_when_prepares_can_be_lost():
    # dropping both 1a messages stalls the protocol forever; with no
    # fairness on the channel that lasso is fair, so ◇decided fails
    from repro.systems.paxos import v1a

    system = Paxos(2, 2, 2, droppable=(v1a(0), v1a(1)))
    result = check_temporal_implication(
        system.complete_spec(), system.eventually_decides(),
        name="decides-lossy")
    assert not result.ok
    assert result.counterexample is not None
    assert result.counterexample.is_lasso


def test_receives_do_not_consume_messages():
    # duplication: a received message stays on the wire.  In every
    # reachable state where some acceptor has answered ballot 1's
    # prepare (mb >= 1), the 1a bit is still set -- the receive read it
    # without consuming it, so re-delivery to the other acceptor (or a
    # duplicate delivery yielding a stutter) remains possible.
    from repro.systems.paxos import v1a

    graph = explore(Paxos(2, 2, 2).complete_spec())
    witnessed = False
    for state in graph.states:
        if state["mb0"] >= 1 or state["mb1"] >= 1:
            # ballot 1 was answered, yet its prepare is still in flight
            assert state[v1a(1)] == 1
        if state["mb0"] == 1 and state["mb1"] == 1:
            witnessed = True  # both acceptors received the same prepare
    assert witnessed, "no state shows the same 1a delivered twice"
