"""Unit tests for syntactic closure (Propositions 1-2) and the proposition
checkers (Propositions 3-4)."""

import pytest

from repro.core import (
    ClosureHypothesisError,
    DisjointSpec,
    closure_formula,
    closure_of_component,
    closure_of_spec,
    is_canonical_safety,
    proposition1,
    proposition2,
    proposition3,
    proposition4,
    validate_guarantee_identity,
    validate_proposition1,
    validate_proposition4,
)
from repro.kernel import And, BIT, Eq, Universe, Var, all_lassos, interval
from repro.spec import Component, Spec, weak_fairness
from repro.temporal import ActionBox, Eventually, Hide, StatePred, TAnd, WF

from tests.conftest import counter_spec

x, y = Var("x"), Var("y")


class TestClosureOfSpec:
    def test_drops_fairness(self):
        closed = closure_of_spec(counter_spec())
        assert not closed.fairness

    def test_strict_checks_hypothesis(self):
        alien = Eq(x.prime(), 2)
        spec = Spec("s", Eq(x, 0), Eq(x.prime(), x), ("x",),
                    Universe({"x": interval(0, 2)}),
                    [weak_fairness(("x",), alien)])
        with pytest.raises(ClosureHypothesisError):
            closure_of_spec(spec)
        assert not closure_of_spec(spec, strict=False).fairness

    def test_component_closure_keeps_hiding(self):
        comp = Component("c", outputs=("x",), internals=("h",), inputs=(),
                         init=And(Eq(x, 0), Eq(Var("h"), 0)),
                         next_action=And(Eq(x.prime(), x),
                                         Eq(Var("h").prime(), Var("h"))),
                         universe=Universe({"x": BIT, "h": BIT}),
                         fairness=[weak_fairness(("x", "h"),
                                                 And(Eq(x.prime(), x),
                                                     Eq(Var("h").prime(),
                                                        Var("h"))))])
        closed = closure_of_component(comp)
        assert isinstance(closed, Hide)
        kinds = {type(p).__name__ for p in closed.body.parts}
        assert "WF" not in kinds


class TestClosureFormula:
    def test_safety_nodes_fixed(self):
        pred = StatePred(Eq(x, 0))
        assert closure_formula(pred) is pred
        box = ActionBox(Eq(x.prime(), x), ("x",))
        assert closure_formula(box) is box

    def test_conjunction_drops_fairness(self):
        spec = counter_spec()
        closed = closure_formula(spec.formula())
        kinds = [type(p).__name__ for p in closed.parts]
        assert "WF" not in kinds

    def test_bare_fairness_closes_to_true(self):
        closed = closure_formula(WF(("x",), Eq(x.prime(), x + 1)))
        assert isinstance(closed, StatePred)

    def test_hide_commutes(self):
        spec = counter_spec()
        hidden = Hide({"x": interval(0, 2)}, spec.formula())
        closed = closure_formula(hidden)
        assert isinstance(closed, Hide)

    def test_strict_rejects_unknown(self):
        with pytest.raises(ClosureHypothesisError):
            closure_formula(Eventually(StatePred(Eq(x, 0))))

    def test_nonstrict_wraps_semantically(self):
        from repro.core import Closure

        closed = closure_formula(Eventually(StatePred(Eq(x, 0))), strict=False)
        assert isinstance(closed, Closure)

    def test_is_canonical_safety(self):
        spec = counter_spec()
        assert is_canonical_safety(spec.safety_formula())
        assert not is_canonical_safety(spec.formula())
        assert is_canonical_safety(Hide({"x": interval(0, 2)},
                                        spec.safety_formula()))


class TestProposition1:
    def test_structural_pass(self):
        closed, report = proposition1(counter_spec())
        assert report.ok
        assert not closed.fairness

    def test_semantic_fallback(self):
        # fairness action is a *strengthening* of N, not a disjunct:
        # structurally unknown, semantically a subaction
        step = Eq(x.prime(), (x + 1) % 3)
        strengthened = And(Eq(x, 0), Eq(x.prime(), 1))
        universe = Universe({"x": interval(0, 2)})
        spec = Spec("s", Eq(x, 0), step, ("x",), universe,
                    [weak_fairness(("x",), strengthened)])
        _, report = proposition1(spec)
        assert not report.ok
        _, report = proposition1(spec, semantic_states=universe.states())
        assert report.ok

    def test_semantic_fallback_detects_violation(self):
        step = Eq(x.prime(), (x + 1) % 3)
        alien = Eq(x.prime(), x)  # stutter is NOT an N step here
        universe = Universe({"x": interval(0, 2)})
        spec = Spec("s", Eq(x, 0), step, ("x",), universe,
                    [weak_fairness(("x",), alien)])
        _, report = proposition1(spec, semantic_states=universe.states())
        assert not report.ok

    def test_empirical_validation(self):
        spec = counter_spec()
        states = list(spec.universe.states())
        lassos = list(all_lassos(states, max_stem=1, max_loop=2))
        assert validate_proposition1(spec, lassos) == []


class TestProposition2:
    def test_private_internals_pass(self):
        report = proposition2(
            [("A", ("h1",), {"x"}), ("B", ("h2",), {"y"})],
            ("goal", ("h",), {"x", "y"}),
        )
        assert report.ok

    def test_internal_in_target_fails(self):
        report = proposition2(
            [("A", ("h",), {"x"})],
            ("goal", (), {"x", "h"}),
        )
        assert not report.ok

    def test_internal_shared_between_components_fails(self):
        report = proposition2(
            [("A", ("h",), {"x"}), ("B", (), {"h", "y"})],
            ("goal", (), {"x", "y"}),
        )
        assert not report.ok


class TestProposition3Check:
    def test_vars_covered(self):
        formula = TAnd(StatePred(Eq(x, 0)), ActionBox(Eq(x.prime(), 0), ("x",)))
        assert proposition3(formula, ("x", "y")).ok

    def test_missing_vars_flagged(self):
        formula = StatePred(And(Eq(x, 0), Eq(y, 0)))
        report = proposition3(formula, ("x",))
        assert not report.ok
        assert "y" in report.details[0]


class TestProposition4Check:
    def test_separation_via_disjoint(self):
        disjoint = DisjointSpec([("a", "b"), ("c", "d")])
        assert proposition4(("a", "b"), ("c", "d"), disjoint).ok

    def test_unseparated_pair_flagged(self):
        disjoint = DisjointSpec([("a",), ("c",)])
        report = proposition4(("a", "b"), ("c",), disjoint)
        assert not report.ok

    def test_initial_disjunction_checked(self):
        from tests.conftest import st

        disjoint = DisjointSpec([("a",), ("c",)])
        a = Var("a")
        report = proposition4(
            ("a",), ("c",), disjoint,
            init_disjunction_states=[st(a=0, c=1)],
            env_init=Eq(a, 0),
        )
        assert report.ok
        report = proposition4(
            ("a",), ("c",), disjoint,
            init_disjunction_states=[st(a=1, c=1)],
            env_init=Eq(a, 0),
        )
        assert not report.ok

    def test_init_states_without_predicates_rejected(self):
        disjoint = DisjointSpec([("a",), ("c",)])
        with pytest.raises(ValueError):
            proposition4(("a",), ("c",), disjoint, init_disjunction_states=[])

    def test_empirical_validation(self):
        """Prop 4's conclusion over every small lasso of a 2-var universe."""
        universe = Universe({"e": BIT, "m": BIT})
        e_var, m_var = Var("e"), Var("m")
        env_closure = TAnd(StatePred(Eq(e_var, 0)),
                           ActionBox(Eq(e_var.prime(), 0), ("e",)))
        sys_closure = TAnd(StatePred(Eq(m_var, 0)),
                           ActionBox(Eq(m_var.prime(), 0), ("m",)))
        disjoint = DisjointSpec([("e",), ("m",)])
        states = list(universe.states())
        lassos = list(all_lassos(states, max_stem=1, max_loop=1))
        problems = validate_proposition4(
            env_closure, sys_closure,
            StatePred(Eq(e_var, 0)), StatePred(Eq(m_var, 0)),
            disjoint, lassos, universe)
        assert problems == []


class TestGuaranteeIdentityValidator:
    def test_identity_over_universe(self):
        universe = Universe({"e": BIT, "m": BIT})
        e_var, m_var = Var("e"), Var("m")
        env = TAnd(StatePred(Eq(e_var, 0)),
                   ActionBox(Eq(e_var.prime(), 0), ("e",)))
        sys_f = TAnd(StatePred(Eq(m_var, 0)),
                     ActionBox(Eq(m_var.prime(), 0), ("m",)))
        states = list(universe.states())
        lassos = list(all_lassos(states, max_stem=1, max_loop=1))
        assert validate_guarantee_identity(env, sys_f, lassos, universe) == []
