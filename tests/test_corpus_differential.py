"""Cross-engine differential tests over the distributed-protocol corpus.

The Lamport-mutex and single-decree-Paxos instances (see
:mod:`repro.systems.mutex` / :mod:`repro.systems.paxos`) are the
largest bundled workloads, and every engine must tell the identical
story on them.  For each corpus instance, at workers 1/2/4 (plus
``REPRO_TEST_WORKERS`` from the CI matrix):

* the parallel explorer reproduces the serial reference graph
  bit-for-bit (states under the same node numbering, adjacency, BFS
  parents, edge/stutter accounting);
* the compact (fingerprint-only) engine matches on everything
  observable, including the streaming graph digest;
* partial-order reduction flips on/off without changing invariant
  verdicts or rendered counterexample traces;
* a run killed at a mid-BFS checkpoint and resumed -- full and compact
  engines both -- lands on the same digest as the uninterrupted run.

The checked properties are each protocol's *end-to-end* safety property
(mutual exclusion / agreement), once on an instance that satisfies it
and once on the broken variant that violates it, so both verdict paths
cross all engines.
"""

from __future__ import annotations

import os

import pytest

from repro.checker import (
    ExploreStats,
    check_invariant,
    check_invariant_compact,
    check_invariant_reduced,
    digest_of_graph,
    explore,
    explore_compact,
    explore_parallel,
    resume,
    resume_compact,
)
from repro.systems.mutex import LamportMutex
from repro.systems.paxos import Paxos, v1a, v2a

from .test_compact_differential import assert_compact_matches_full

WORKER_COUNTS = [1, 2, 4]
_extra = int(os.environ.get("REPRO_TEST_WORKERS", "0"))
if _extra and _extra not in WORKER_COUNTS:
    WORKER_COUNTS.append(_extra)


class CorpusCase:
    """One protocol instance plus its end-to-end safety property."""

    def __init__(self, case_id, make_system, property_of, expect_ok):
        self.id = case_id
        self.make_system = make_system
        self.property_of = property_of
        self.expect_ok = expect_ok

    def make_spec(self):
        return self.make_system().complete_spec()


CORPUS = [
    CorpusCase("mutex-2-2",
               lambda: LamportMutex(2, 2),
               lambda s: s.mutual_exclusion(), True),
    CorpusCase("mutex-2-2-broken",
               lambda: LamportMutex(2, 2, broken=True),
               lambda s: s.mutual_exclusion(), False),
    CorpusCase("paxos-2-2-2",
               lambda: Paxos(2, 2, 2),
               lambda s: s.agreement(), True),
    CorpusCase("paxos-2-2-2-broken",
               lambda: Paxos(2, 2, 2, broken=True),
               lambda s: s.agreement(), False),
    CorpusCase("paxos-2-2-2-lossy",
               lambda: Paxos(2, 2, 2, droppable=(v1a(1), v2a(0, 0))),
               lambda s: s.agreement(), True),
]

CORPUS_PARAMS = [pytest.param(case, id=case.id) for case in CORPUS]


def graph_signature(graph):
    return (list(graph.states), [list(adj) for adj in graph.succ],
            list(graph.parent), list(graph.init_nodes),
            graph.edge_count, graph.stutter_count)


class TestSerialVsParallel:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("case", CORPUS_PARAMS)
    def test_parallel_graph_identical(self, case, workers):
        spec = case.make_spec()
        reference = explore(spec)
        parallel = explore_parallel(spec, workers=workers)
        assert graph_signature(parallel) == graph_signature(reference)
        assert digest_of_graph(parallel) == digest_of_graph(reference)


class TestCompactEngine:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("case", CORPUS_PARAMS)
    def test_compact_graph_identical(self, case, workers):
        assert_compact_matches_full(case.make_spec(), workers)

    @pytest.mark.parametrize("case", CORPUS_PARAMS)
    def test_verdict_and_trace_identical(self, case):
        system = case.make_system()
        spec = system.complete_spec()
        prop = case.property_of(system)
        full = explore(spec)
        compact = explore_compact(spec)
        res_full = check_invariant(full, prop, name=case.id)
        res_compact = check_invariant_compact(compact, prop, name=case.id)
        assert res_full.ok is res_compact.ok is case.expect_ok
        assert res_full.summary() == res_compact.summary()
        if not case.expect_ok:
            # the compact engine regenerates the trace from fingerprints
            # and parent pointers; it must render byte-identically
            assert (res_compact.counterexample.render()
                    == res_full.counterexample.render())


class TestReduction:
    @pytest.mark.parametrize("case", CORPUS_PARAMS)
    def test_por_verdict_and_trace_identical(self, case):
        system = case.make_system()
        spec = system.complete_spec()
        prop = case.property_of(system)
        res_full = check_invariant(explore(spec), prop, name=case.id)
        res_reduced, _used = check_invariant_reduced(spec, prop,
                                                     name=case.id)
        assert res_reduced.ok is res_full.ok is case.expect_ok
        if not case.expect_ok:
            assert (res_reduced.counterexample.render()
                    == res_full.counterexample.render())

    @pytest.mark.parametrize("workers", [w for w in WORKER_COUNTS if w > 1])
    def test_reduced_exploration_deterministic_across_workers(self, workers):
        # ample-set choices must not depend on the worker count
        from repro.checker import ReductionConfig

        spec = LamportMutex(2, 2).complete_spec()
        serial = explore_parallel(spec, workers=1,
                                  reduction=ReductionConfig(()))
        parallel = explore_parallel(spec, workers=workers,
                                    reduction=ReductionConfig(()))
        assert graph_signature(parallel) == graph_signature(serial)


class _StopAtLevel(Exception):
    pass


def _bomb_at(kill_after):
    def bomb(level, row):
        if level + 1 >= kill_after:
            raise _StopAtLevel()
    return bomb


class TestKillResume:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("case", CORPUS_PARAMS)
    def test_full_engine_kill_resume(self, tmp_path, case, workers):
        spec = case.make_spec()
        reference = explore(spec)
        path = tmp_path / f"{case.id}.ckpt"
        stats = ExploreStats()
        stats.add_level_listener(_bomb_at(3))
        with pytest.raises(_StopAtLevel):
            explore_parallel(spec, stats=stats, checkpoint=str(path),
                             checkpoint_every=1)
        resumed = resume(str(path), spec, workers=workers)
        assert graph_signature(resumed) == graph_signature(reference)
        assert digest_of_graph(resumed) == digest_of_graph(reference)

    @pytest.mark.parametrize("case", CORPUS_PARAMS)
    def test_compact_engine_kill_resume(self, tmp_path, case):
        spec = case.make_spec()
        reference = explore_compact(spec)
        path = tmp_path / f"{case.id}-compact.ckpt"
        stats = ExploreStats()
        stats.add_level_listener(_bomb_at(3))
        with pytest.raises(_StopAtLevel):
            explore_compact(spec, stats=stats, checkpoint=str(path),
                            checkpoint_every=1)
        resumed = resume_compact(str(path), spec)
        assert resumed.digest() == reference.digest()
        assert resumed.packed == reference.packed
        assert resumed.parent == reference.parent
        assert resumed.edge_count == reference.edge_count
