"""Unit tests for refinement checking and the fair-cycle liveness engine."""

import pytest

from repro.checker import (
    PremiseConstraint,
    RefinementMapping,
    check_deadlock_free,
    check_invariant,
    check_safety_refinement,
    check_temporal_implication,
    explore,
    fair_units,
)
from repro.kernel import (
    And,
    Arith,
    BIT,
    Const,
    Eq,
    Lasso,
    Or,
    Universe,
    Var,
    interval,
)
from repro.spec import Spec, strong_fairness, weak_fairness
from repro.temporal import (
    ActionBox,
    ActionDiamond,
    Always,
    Eventually,
    LeadsTo,
    SF,
    StatePred,
    TAnd,
    holds,
)

from tests.conftest import counter_spec, st

x, y = Var("x"), Var("y")


def counter6():
    universe = Universe({"x": interval(0, 5)})
    step = Eq(x.prime(), Arith("%", x + 1, Const(6)))
    return Spec("c6", Eq(x, 0), step, ("x",), universe,
                [weak_fairness(("x",), step)])


def parity_spec():
    universe = Universe({"y": BIT})
    step = Eq(y.prime(), 1 - y)
    return Spec("parity", Eq(y, 0), step, ("y",), universe,
                [weak_fairness(("y",), step)])


PARITY_MAP = RefinementMapping({"y": Arith("%", x, Const(2))})


class TestRefinementMapping:
    def test_identity_default(self):
        mapped = RefinementMapping().target_state(st(x=1), Universe({"x": BIT}))
        assert mapped == st(x=1)

    def test_mapping_expression(self):
        mapped = PARITY_MAP.target_state(st(x=3), Universe({"y": BIT}))
        assert mapped == st(y=1)

    def test_primes_rejected(self):
        with pytest.raises(ValueError):
            RefinementMapping({"y": Eq(x.prime(), 0)})

    def test_unproducible_target_var(self):
        from repro.kernel import EvalError

        with pytest.raises(EvalError):
            RefinementMapping().target_state(st(x=0), Universe({"z": BIT}))

    def test_map_lasso(self):
        la = Lasso([st(x=0), st(x=1)], 0)
        mapped = PARITY_MAP.map_lasso(la, Universe({"y": BIT}))
        assert [s["y"] for s in mapped.states] == [0, 1]


class TestSafetyRefinement:
    def test_valid(self):
        result = check_safety_refinement(counter6(), parity_spec(), PARITY_MAP)
        assert result.ok
        assert result.stats["states"] == 6

    def test_invalid_mapping_found(self):
        bad = RefinementMapping({"y": Arith("%", x, Const(3))})
        result = check_safety_refinement(counter6(), parity_spec(), bad,
                                         domain_check=False)
        assert not result.ok
        assert result.counterexample is not None

    def test_domain_check_catches_escape(self):
        bad = RefinementMapping({"y": x})  # x reaches 5, outside BIT
        with pytest.raises(ValueError, match="outside its target domain"):
            check_safety_refinement(counter6(), parity_spec(), bad)

    def test_bad_initial_state(self):
        target = Spec("y1", Eq(y, 1), Eq(y.prime(), y), ("y",),
                      Universe({"y": BIT}))
        result = check_safety_refinement(counter6(), target, PARITY_MAP)
        assert not result.ok
        assert "Init" in result.counterexample.reason

    def test_graph_reuse(self):
        graph = explore(counter6())
        result = check_safety_refinement(graph, parity_spec(), PARITY_MAP)
        assert result.ok


class TestInvariantsAndDeadlock:
    def test_invariant_counterexample_trace(self):
        result = check_invariant(counter6(), x < 3)
        assert not result.ok
        trace = result.counterexample.trace
        assert [s["x"] for s in trace] == [0, 1, 2, 3]

    def test_deadlock_free(self):
        assert check_deadlock_free(counter6()).ok

    def test_deadlock_detected(self):
        universe = Universe({"x": BIT})
        spec = Spec("dead", Eq(x, 0), And(Eq(x, 0), Eq(x.prime(), 1)),
                    ("x",), universe)
        result = check_deadlock_free(spec)
        assert not result.ok

    def test_expect_ok_raises_with_trace(self):
        result = check_invariant(counter6(), x < 3)
        with pytest.raises(AssertionError, match="counterexample"):
            result.expect_ok()


class TestFairUnits:
    def make_choice_graph(self):
        """0 <-> 1, and 0 -> 2 (absorbing)."""
        a = And(Eq(x, 0), Eq(x.prime(), 1))
        b = And(Eq(x, 0), Eq(x.prime(), 2))
        c = And(Eq(x, 1), Eq(x.prime(), 0))
        d = And(Eq(x, 2), Eq(x.prime(), 2))
        action = Or(a, b, c, d)
        spec = Spec("choice", Eq(x, 0), action, ("x",),
                    Universe({"x": interval(0, 2)}))
        return explore(spec), a, b, c

    def test_no_premises_every_scc_fair(self):
        graph, *_ = self.make_choice_graph()
        units = fair_units(graph, range(graph.state_count),
                           lambda s, d: True, [])
        assert units  # at least the {0,1} component and the singletons

    def test_wf_discards_always_enabled_stutter(self):
        graph, a, b, c = self.make_choice_graph()
        whole = Or(a, b, c)
        premise = PremiseConstraint("WF", ("x",), whole)
        units = fair_units(graph, range(graph.state_count),
                           lambda s, d: True, [premise])
        # singleton {x=0} stuttering forever is not WF-fair (always enabled);
        # the {0,1} cycle is; {2} is fair because the action is disabled there
        flat = [set(graph.states[n]["x"] for n in unit) for unit in units]
        assert {0, 1} in flat or any(0 in u and 1 in u for u in flat)
        assert {2} in flat
        assert {0} not in flat

    def test_sf_removal_recursion(self):
        graph, a, b, c = self.make_choice_graph()
        premise = PremiseConstraint("SF", ("x",), b)
        units = fair_units(graph, range(graph.state_count),
                           lambda s, d: True, [premise])
        # any fair unit must avoid x=0 (where b is enabled but untaken)
        for unit in units:
            assert all(graph.states[n]["x"] != 0 for n in unit)


class TestLivenessConclusions:
    def test_eventually_holds(self):
        result = check_temporal_implication(
            counter_spec(), Eventually(StatePred(Eq(x, 2))))
        assert result.ok

    def test_eventually_fails_without_fairness(self):
        result = check_temporal_implication(
            counter_spec(fair=False), Eventually(StatePred(Eq(x, 2))))
        assert not result.ok
        assert result.counterexample.is_lasso

    def test_counterexample_is_validated(self):
        """The reported lasso really satisfies premises and violates the
        conclusion under the exact semantics."""
        spec = counter_spec(fair=False)
        conclusion = Eventually(StatePred(Eq(x, 2)))
        result = check_temporal_implication(spec, conclusion)
        la = result.counterexample.trace
        assert holds(spec.safety_formula(), la, spec.universe)
        assert not holds(conclusion, la, spec.universe)

    def test_leadsto(self):
        result = check_temporal_implication(
            counter_spec(), LeadsTo(StatePred(Eq(x, 1)), StatePred(Eq(x, 0))))
        assert result.ok

    def test_always_eventually(self):
        result = check_temporal_implication(
            counter_spec(), Always(Eventually(StatePred(Eq(x, 0)))))
        assert result.ok

    def test_action_diamond(self):
        step = counter_spec().next_action
        result = check_temporal_implication(
            counter_spec(), ActionDiamond(step, ("x",)))
        assert result.ok
        result = check_temporal_implication(
            counter_spec(fair=False), ActionDiamond(step, ("x",)))
        assert not result.ok

    def test_wf_conclusion_through_mapping(self):
        impl = counter6()
        target = parity_spec()
        result = check_temporal_implication(
            impl, target.liveness_formula(), mapping=PARITY_MAP,
            target_universe=target.universe)
        assert result.ok

    def test_wf_conclusion_violated(self):
        impl = counter6().without_fairness()
        target = parity_spec()
        result = check_temporal_implication(
            impl, target.liveness_formula(), mapping=PARITY_MAP,
            target_universe=target.universe)
        assert not result.ok

    def test_sf_conclusion(self):
        # premise SF(b) gives conclusion <>(x=2); conclusion SF over the
        # same action must hold as well
        a = And(Eq(x, 0), Eq(x.prime(), 1))
        b = And(Eq(x, 0), Eq(x.prime(), 2))
        c = And(Eq(x, 1), Eq(x.prime(), 0))
        action = Or(a, b, c)
        spec = Spec("s", Eq(x, 0), action, ("x",),
                    Universe({"x": interval(0, 2)}),
                    [weak_fairness(("x",), action),
                     strong_fairness(("x",), b)])
        result = check_temporal_implication(spec, SF(("x",), b))
        assert result.ok
        weak = Spec("w", Eq(x, 0), action, ("x",),
                    Universe({"x": interval(0, 2)}),
                    [weak_fairness(("x",), action)])
        result = check_temporal_implication(weak, SF(("x",), b))
        assert not result.ok

    def test_safety_conjuncts_checked_too(self):
        spec = counter_spec()
        formula = TAnd(StatePred(Eq(x, 0)),
                       Always(StatePred(x < 3)),
                       ActionBox(spec.next_action, ("x",)))
        assert check_temporal_implication(spec, formula).ok
        assert not check_temporal_implication(
            spec, Always(StatePred(x < 2))).ok

    def test_unsupported_conclusion_rejected(self):
        from repro.temporal import TOr

        with pytest.raises(TypeError, match="unsupported"):
            check_temporal_implication(
                counter_spec(),
                TOr(Eventually(StatePred(Eq(x, 1))),
                    Eventually(StatePred(Eq(x, 2)))))
