"""Unit tests for the paper's operators: C, ⊳, −▷, +v, ⊥ (sections 2.4, 3, 4).

The scenarios are built from two canonical safety specs over one variable
each -- an "environment" spec constraining ``e`` and a "machine" spec
constraining ``m`` -- so the failure points of each can be dialled in
precisely by choosing the behavior.
"""

import pytest

from repro.core import AsLongAs, Closure, Guarantees, Orthogonal, Plus, guarantees
from repro.kernel import BIT, Eq, Universe, Var
from repro.temporal import ActionBox, Eventually, StatePred, TAnd, holds

from tests.conftest import lasso

e, m = Var("e"), Var("m")
U = Universe({"e": BIT, "m": BIT})

# E: e stays 0;  M: m stays 0  (canonical safety forms)
E = TAnd(StatePred(Eq(e, 0)), ActionBox(Eq(e.prime(), 0), ("e",)))
M = TAnd(StatePred(Eq(m, 0)), ActionBox(Eq(m.prime(), 0), ("m",)))


def both_zero_forever():
    return lasso([{"e": 0, "m": 0}], 0)


def e_breaks_first():
    # e flips at step 1, m flips later: fE = 2, fM = 3
    return lasso([{"e": 0, "m": 0}, {"e": 1, "m": 0}, {"e": 1, "m": 1}], 2)


def m_breaks_first():
    return lasso([{"e": 0, "m": 0}, {"e": 0, "m": 1}, {"e": 1, "m": 1}], 2)


def both_break_together():
    return lasso([{"e": 0, "m": 0}, {"e": 1, "m": 1}], 1)


def m_breaks_never():
    return lasso([{"e": 0, "m": 0}, {"e": 1, "m": 0}], 1)


class TestClosure:
    def test_closure_of_safety_is_itself(self):
        assert holds(Closure(E), both_zero_forever(), U)
        assert not holds(Closure(E), e_breaks_first(), U)

    def test_closure_of_liveness_is_true(self):
        live = Eventually(StatePred(Eq(e, 1)))
        assert holds(Closure(live), both_zero_forever(), U)
        assert not holds(live, both_zero_forever(), U)

    def test_closure_of_spec_with_fairness(self):
        """C(Init ∧ □[N]_v ∧ WF) = Init ∧ □[N]_v on behaviors
        (Proposition 1, semantically)."""
        from repro.spec import weak_fairness, Spec

        spec = Spec("e0", Eq(e, 0), Eq(e.prime(), 0), ("e",),
                    Universe({"e": BIT}),
                    [weak_fairness(("e",), Eq(e.prime(), 0))])
        stutter = lasso([{"e": 0, "m": 0}], 0)
        assert holds(Closure(spec.formula()), stutter, U)

    def test_finite_sat_of_closure(self):
        from repro.kernel import FiniteBehavior, State
        from repro.temporal import prefix_sat

        good = FiniteBehavior([State({"e": 0, "m": 0})])
        bad = FiniteBehavior([State({"e": 0, "m": 0}), State({"e": 1, "m": 0})])
        assert prefix_sat(Closure(E), good)
        assert not prefix_sat(Closure(E), bad)


class TestGuarantees:
    """E ⊳ M: M must hold one step longer than E."""

    def test_holds_when_both_hold(self):
        assert holds(Guarantees(E, M), both_zero_forever(), U)

    def test_holds_when_env_breaks_strictly_first(self):
        assert holds(Guarantees(E, M), e_breaks_first(), U)

    def test_fails_when_machine_breaks_first(self):
        assert not holds(Guarantees(E, M), m_breaks_first(), U)

    def test_fails_on_simultaneous_break(self):
        """The crucial difference from −▷: breaking in the same step as the
        environment violates ⊳."""
        assert not holds(Guarantees(E, M), both_break_together(), U)

    def test_holds_when_machine_never_breaks(self):
        assert holds(Guarantees(E, M), m_breaks_never(), U)

    def test_full_implication_matters(self):
        """With liveness in M, the prefix condition alone is not enough."""
        live_m = TAnd(M, Eventually(StatePred(Eq(e, 1))))
        assert not holds(Guarantees(E, live_m), both_zero_forever(), U)

    def test_guarantees_helper(self):
        assert isinstance(guarantees(E, M), Guarantees)

    def test_position_zero_only(self):
        from repro.temporal import EvalContext

        ctx = EvalContext(both_zero_forever(), U)
        with pytest.raises(NotImplementedError):
            Guarantees(E, M).eval_at(ctx, 1)

    def test_rename(self):
        renamed = Guarantees(E, M).rename({"e": "a", "m": "b"})
        la = lasso([{"a": 0, "b": 0}], 0)
        assert holds(renamed, la, Universe({"a": BIT, "b": BIT}))


class TestAsLongAs:
    """E −▷ M: M holds at least as long as E (simultaneous break allowed)."""

    def test_simultaneous_break_allowed(self):
        assert holds(AsLongAs(E, M), both_break_together(), U)

    def test_machine_first_still_fails(self):
        assert not holds(AsLongAs(E, M), m_breaks_first(), U)

    def test_env_first_fine(self):
        assert holds(AsLongAs(E, M), e_breaks_first(), U)


class TestOrthogonal:
    def test_simultaneous_break_not_orthogonal(self):
        assert not holds(Orthogonal(E, M), both_break_together(), U)

    def test_staggered_breaks_orthogonal(self):
        assert holds(Orthogonal(E, M), e_breaks_first(), U)
        assert holds(Orthogonal(E, M), m_breaks_first(), U)

    def test_no_breaks_orthogonal(self):
        assert holds(Orthogonal(E, M), both_zero_forever(), U)


class TestGuaranteeIdentity:
    """Section 4.2: (E ⊳ M) = (E −▷ M) ∧ (E ⊥ M), on assorted behaviors."""

    @pytest.mark.parametrize("behavior", [
        both_zero_forever(), e_breaks_first(), m_breaks_first(),
        both_break_together(), m_breaks_never(),
    ])
    def test_identity(self, behavior):
        lhs = holds(Guarantees(E, M), behavior, U)
        rhs = holds(AsLongAs(E, M), behavior, U) and \
            holds(Orthogonal(E, M), behavior, U)
        assert lhs == rhs


class TestPlus:
    def test_holds_when_env_holds(self):
        assert holds(Plus(E, ("e", "m")), both_zero_forever(), U)

    def test_violation_with_changes_after(self):
        # E fails at prefix 2; m keeps changing forever afterwards
        la = lasso([{"e": 0, "m": 0}, {"e": 1, "m": 0},
                    {"e": 1, "m": 1}, {"e": 1, "m": 0}], 2)
        assert not holds(Plus(E, ("e", "m")), la, U)

    def test_holds_when_frozen_before_failure(self):
        # E fails at prefix 2 (e flips at step 1); everything frozen from
        # index 1 onwards -- freeze index 1 < fE = 2
        la = lasso([{"e": 0, "m": 0}, {"e": 1, "m": 0}], 1)
        assert holds(Plus(E, ("e", "m")), la, U)

    def test_fails_when_freeze_too_late(self):
        # E fails at prefix 2, but m still changes at step 2: freeze index 2
        la = lasso([{"e": 0, "m": 0}, {"e": 1, "m": 0}, {"e": 1, "m": 1}], 2)
        assert not holds(Plus(E, ("e", "m")), la, U)

    def test_sub_restricted_to_m(self):
        # with v = (m) only, m frozen from the start: E+v holds even though
        # e keeps changing
        la = lasso([{"e": 0, "m": 0}, {"e": 1, "m": 0}, {"e": 0, "m": 0}], 1)
        assert holds(Plus(E, ("m",)), la, U)

    def test_empty_sub_rejected(self):
        with pytest.raises(ValueError):
            Plus(E, ())

    def test_plus_of_true_is_true(self):
        true_env = StatePred(True)
        la = lasso([{"e": 0, "m": 0}, {"e": 1, "m": 1}], 1)
        assert holds(Plus(true_env, ("e", "m")), la, U)


class TestProposition3Semantics:
    """Proposition 3, validated empirically on a genuine instance.

    ``R`` says: ``m`` starts at 0 and changes only when ``e`` has already
    left 0.  Then ``E ∧ R ⇒ M`` is valid (if e never leaves 0, m never
    moves) and ``R ⇒ E ⊥ M`` is valid (a step breaking both would change m
    while e is still 0, which R forbids) -- so Proposition 3 owes us
    ``E+v ∧ R ⇒ M`` on every behavior.
    """

    def rely(self):
        from repro.kernel import Not, Or
        from repro.kernel.action import unchanged

        return TAnd(
            StatePred(Eq(m, 0)),
            ActionBox(Or(unchanged(("m",)), Not(Eq(e, 0))), ("m",)),
        )

    def test_instance_is_nontrivial(self):
        # R alone does not imply M: m may move once e has broken out
        la = lasso([{"e": 0, "m": 0}, {"e": 1, "m": 0}, {"e": 1, "m": 1}], 2)
        assert holds(self.rely(), la, U)
        assert not holds(M, la, U)

    def test_validated_over_all_small_lassos(self):
        from repro.core import validate_proposition3
        from repro.kernel import all_lassos

        states = list(U.states())
        lassos = list(all_lassos(states, max_stem=2, max_loop=1))
        problems = validate_proposition3(E, M, self.rely(), ("e", "m"),
                                         lassos, U)
        assert problems == []

    def test_invalid_hypotheses_reported_not_refuted(self):
        from repro.core import validate_proposition3
        from repro.kernel import all_lassos

        states = list(U.states())
        lassos = list(all_lassos(states, max_stem=1, max_loop=1))
        problems = validate_proposition3(E, M, StatePred(True), ("e", "m"),
                                         lassos, U)
        assert problems and "hypotheses not valid" in problems[0]
