"""Unit tests for finite behaviors and lassos."""

import pytest

from repro.kernel import FiniteBehavior, Lasso, State, all_lassos, lasso_from_stem_and_loop

from tests.conftest import bits, st


class TestFiniteBehavior:
    def test_basic(self):
        fb = FiniteBehavior([st(x=0), st(x=1)])
        assert len(fb) == 2
        assert fb[1] == st(x=1)
        assert list(fb) == [st(x=0), st(x=1)]

    def test_nonempty_required(self):
        with pytest.raises(ValueError):
            FiniteBehavior([])

    def test_type_checked(self):
        with pytest.raises(TypeError):
            FiniteBehavior([{"x": 0}])

    def test_prefix(self):
        fb = FiniteBehavior([st(x=0), st(x=1), st(x=2)])
        assert fb.prefix(2) == FiniteBehavior([st(x=0), st(x=1)])
        with pytest.raises(ValueError):
            fb.prefix(0)
        with pytest.raises(ValueError):
            fb.prefix(4)

    def test_extend(self):
        fb = FiniteBehavior([st(x=0)]).extend(st(x=1))
        assert len(fb) == 2

    def test_steps(self):
        fb = FiniteBehavior([st(x=0), st(x=1), st(x=2)])
        assert list(fb.steps()) == [(st(x=0), st(x=1)), (st(x=1), st(x=2))]

    def test_stutter_forever(self):
        la = FiniteBehavior([st(x=0), st(x=1)]).stutter_forever()
        assert la.loop_start == 1
        assert la.state(100) == st(x=1)

    def test_equality_and_hash(self):
        a = FiniteBehavior([st(x=0)])
        b = FiniteBehavior([st(x=0)])
        assert a == b and hash(a) == hash(b)


class TestLassoGeometry:
    def test_position_folding(self):
        la = bits("x", [0, 1, 2], loop_start=1)  # 0 (1 2)^w
        assert [la.position(i) for i in range(7)] == [0, 1, 2, 1, 2, 1, 2]

    def test_state_at_infinite_index(self):
        # behavior: 0 (1 2)^w -> index 5 is 1, index 6 is 2
        la = bits("x", [0, 1, 2], loop_start=1)
        assert la.state(5)["x"] == 1
        assert la.state(6)["x"] == 2

    def test_successor_position_wraps(self):
        la = bits("x", [0, 1, 2], loop_start=1)
        assert la.successor_position(0) == 1
        assert la.successor_position(2) == 1

    def test_self_loop(self):
        la = bits("x", [7], loop_start=0)
        assert la.successor_position(0) == 0
        assert la.loop_length == 1

    def test_loop_start_validation(self):
        with pytest.raises(ValueError):
            Lasso([st(x=0)], loop_start=1)
        with pytest.raises(ValueError):
            Lasso([], loop_start=0)

    def test_suffix_positions_from_stem(self):
        la = bits("x", [0, 1, 2, 3], loop_start=2)
        assert sorted(la.suffix_positions(0)) == [0, 1, 2, 3]
        assert sorted(la.suffix_positions(1)) == [1, 2, 3]

    def test_suffix_positions_inside_loop(self):
        la = bits("x", [0, 1, 2, 3], loop_start=2)
        # from position 3 the whole loop still recurs
        assert sorted(la.suffix_positions(3)) == [2, 3]

    def test_steps_from_dedup(self):
        la = bits("x", [0, 1], loop_start=1)
        steps = list(la.steps_from(0))
        assert (0, 1) in steps and (1, 1) in steps
        assert len(steps) == len(set(steps))

    def test_loop_steps(self):
        la = bits("x", [0, 1, 2], loop_start=1)
        assert set(la.loop_steps()) == {(1, 2), (2, 1)}


class TestLassoDerived:
    def test_prefix_walks_loop(self):
        la = bits("x", [0, 1], loop_start=1)
        fb = la.prefix(4)
        assert [s["x"] for s in fb] == [0, 1, 1, 1]

    def test_unroll_denotes_same_behavior(self):
        la = bits("x", [0, 1, 2], loop_start=1)
        unrolled = la.unroll(3)
        assert unrolled.loop_start == 1
        for i in range(12):
            assert unrolled.state(i) == la.state(i)

    def test_unroll_validation(self):
        with pytest.raises(ValueError):
            bits("x", [0]).unroll(0)

    def test_rotate_loop_to(self):
        la = bits("x", [0, 1, 2], loop_start=1)  # 0 (1 2)^w
        rotated = la.rotate_loop_to(2)           # 0 1 (2 1)^w
        for i in range(10):
            assert rotated.state(i) == la.state(i)
        assert rotated.loop_start == 2

    def test_rotate_backward_rejected(self):
        with pytest.raises(ValueError):
            bits("x", [0, 1, 2], loop_start=2).rotate_loop_to(1)

    def test_map_states(self):
        la = bits("x", [0, 1], loop_start=0)
        doubled = la.map_states(lambda s: State({"x": s["x"] * 2}))
        assert doubled.state(1)["x"] == 2

    def test_project(self):
        la = Lasso([st(x=0, y=5), st(x=1, y=5)], 0)
        assert la.project(["y"]).state(0) == st(y=5)

    def test_equality(self):
        assert bits("x", [0, 1], 1) == bits("x", [0, 1], 1)
        assert bits("x", [0, 1], 1) != bits("x", [0, 1], 0)


class TestConstruction:
    def test_from_stem_and_loop(self):
        la = lasso_from_stem_and_loop([st(x=0)], [st(x=1), st(x=2)])
        assert la.loop_start == 1
        assert la.loop_length == 2

    def test_empty_loop_rejected(self):
        with pytest.raises(ValueError):
            lasso_from_stem_and_loop([st(x=0)], [])

    def test_all_lassos_counts(self):
        states = [st(x=0), st(x=1)]
        # stems of length 0..1, loops of length 1..2:
        # 2^1 + 2^2 + 2^2 + 2^3 = 2 + 4 + 4 + 8 = 18
        assert len(list(all_lassos(states, max_stem=1, max_loop=2))) == 18

    def test_all_lassos_distinct(self):
        states = [st(x=0), st(x=1)]
        result = list(all_lassos(states, 1, 1))
        assert len(result) == len(set(result))
