"""Unit tests for states and universes."""

import pytest

from repro.kernel import BIT, FiniteDomain, State, Universe, interval

from tests.conftest import st


class TestState:
    def test_mapping_protocol(self):
        state = st(x=1, y=(2, 3))
        assert state["x"] == 1
        assert state["y"] == (2, 3)
        assert len(state) == 2
        assert set(state) == {"x", "y"}
        assert "x" in state and "z" not in state

    def test_missing_key(self):
        with pytest.raises(KeyError):
            st(x=1)["nope"]

    def test_equality_structural(self):
        assert st(x=1, y=2) == st(y=2, x=1)
        assert st(x=1) != st(x=2)
        assert st(x=1) != st(x=1, y=0)

    def test_hashable(self):
        assert hash(st(x=1, y=2)) == hash(st(y=2, x=1))
        assert len({st(x=1), st(x=1), st(x=2)}) == 2

    def test_usable_as_dict_key(self):
        graph = {st(x=0): "a"}
        assert graph[st(x=0)] == "a"

    def test_rejects_bad_values(self):
        with pytest.raises(TypeError):
            State({"x": [1, 2]})

    def test_rejects_bad_names(self):
        with pytest.raises(TypeError):
            State({1: 0})

    def test_update_is_functional(self):
        base = st(x=1, y=2)
        updated = base.update({"x": 9})
        assert updated == st(x=9, y=2)
        assert base == st(x=1, y=2)

    def test_assign_kwargs(self):
        assert st(x=1).assign(x=5) == st(x=5)

    def test_update_dotted_names(self):
        state = State({"i.sig": 0}).update({"i.sig": 1})
        assert state["i.sig"] == 1

    def test_restrict(self):
        assert st(x=1, y=2, z=3).restrict(["x", "z"]) == st(x=1, z=3)

    def test_restrict_missing_name_ignored(self):
        assert st(x=1).restrict(["x", "ghost"]) == st(x=1)

    def test_values_of_ordered(self):
        assert st(a=1, b=2, c=3).values_of(("c", "a")) == (3, 1)

    def test_repr_formats_values(self):
        assert "x=<<1>>" in repr(st(x=(1,)))

    def test_eq_non_state(self):
        assert (st(x=1) == 42) is False


class TestUniverse:
    def test_variables_sorted(self):
        universe = Universe({"b": BIT, "a": BIT})
        assert universe.variables == ("a", "b")

    def test_domain_lookup(self):
        universe = Universe({"x": interval(0, 5)})
        assert 5 in universe.domain("x")

    def test_domain_missing_is_helpful(self):
        with pytest.raises(KeyError, match="declared: x"):
            Universe({"x": BIT}).domain("y")

    def test_contains_and_declares(self):
        universe = Universe({"x": BIT, "y": BIT})
        assert "x" in universe
        assert universe.declares(["x", "y"])
        assert not universe.declares(["x", "z"])

    def test_merge_disjoint(self):
        merged = Universe({"x": BIT}).merge(Universe({"y": BIT}))
        assert merged.variables == ("x", "y")

    def test_merge_agreeing(self):
        merged = Universe({"x": BIT}).merge(Universe({"x": FiniteDomain([0, 1])}))
        assert merged.variables == ("x",)

    def test_merge_conflict_raises(self):
        with pytest.raises(ValueError, match="conflict"):
            Universe({"x": FiniteDomain([0, 1])}).merge(
                Universe({"x": FiniteDomain([0, 1, 2])})
            )

    def test_restrict(self):
        universe = Universe({"x": BIT, "y": BIT}).restrict(["y"])
        assert universe.variables == ("y",)

    def test_states_enumeration(self):
        universe = Universe({"x": BIT, "y": interval(0, 2)})
        states = list(universe.states())
        assert len(states) == 6
        assert State({"x": 1, "y": 2}) in states
        assert len(set(states)) == 6

    def test_states_empty_universe(self):
        assert list(Universe({}).states()) == [State({})]

    def test_state_count(self):
        assert Universe({"x": BIT, "y": interval(0, 2)}).state_count() == 6

    def test_rejects_non_domain(self):
        with pytest.raises(TypeError):
            Universe({"x": [0, 1]})
