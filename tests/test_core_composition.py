"""Unit tests for the Composition Theorem engine and the brute-force
semantic checker."""

import pytest

from repro.core import (
    AGSpec,
    Certificate,
    CompositionTheorem,
    DisjointSpec,
    Obligation,
    brute_force_equivalence,
    brute_force_implication,
    behavior_count,
    compose,
    refinement_corollary,
)
from repro.checker import RefinementMapping
from repro.kernel import And, BIT, Eq, Universe, Var, interval
from repro.spec import Component, Spec, weak_fairness
from repro.systems import circuit
from repro.temporal import Eventually, StatePred, holds

from tests.conftest import lasso

c, d = Var("c"), Var("d")


class TestCertificateModel:
    def test_obligation_trivial_skip(self):
        ob = Obligation("1", "desc", skipped_reason="E is TRUE")
        assert ob.ok
        assert "trivially" in ob.render()

    def test_obligation_requires_result(self):
        assert not Obligation("1", "desc").ok

    def test_certificate_aggregates(self):
        cert = Certificate("t", "conclusion")
        cert.add(Obligation("1", "a", skipped_reason="x"))
        assert cert.ok and bool(cert)
        cert.add(Obligation("2", "b"))
        assert not cert.ok
        assert cert.failed_obligations()[0].oid == "2"

    def test_expect_ok_raises(self):
        cert = Certificate("t", "conclusion")
        cert.add(Obligation("2", "b"))
        with pytest.raises(AssertionError):
            cert.expect_ok()

    def test_render_mentions_status(self):
        cert = Certificate("t", "conclusion")
        assert "NOT PROVED" in cert.render()
        cert.add(Obligation("1", "a", skipped_reason="x"))
        assert "PROVED" in cert.render()
        assert "Q.E.D." in cert.render()


class TestEngineOnCircuit:
    def test_figure1_safety_proved(self):
        ag_c, ag_d = circuit.safety_agspecs()
        cert = compose([ag_c, ag_d], circuit.safety_goal())
        assert cert.ok
        oids = [ob.oid for ob in cert.obligations]
        assert oids == ["0", "1[1]", "1[2]", "2a", "2b"]

    def test_agrees_with_brute_force(self):
        ag_c, ag_d = circuit.safety_agspecs()
        goal = circuit.safety_goal()
        thm = CompositionTheorem([ag_c, ag_d], goal)
        assert thm.verify().ok
        result = brute_force_implication(
            [ag_c.formula(), ag_d.formula()], goal.formula(),
            circuit.wire_universe())
        assert result.ok

    def test_conclusion_formula(self):
        ag_c, ag_d = circuit.safety_agspecs()
        thm = CompositionTheorem([ag_c, ag_d], circuit.safety_goal())
        formula = thm.conclusion_formula()
        # the implication holds on a well-behaved behavior and on one where
        # a premise fails
        ok = lasso([{"c": 0, "d": 0}], 0)
        assert holds(formula, ok, circuit.wire_universe())

    def test_broken_component_detected(self):
        """A device that violates its guarantee while its assumption holds
        must make hypothesis 2 fail."""
        bad_guarantee = Component(
            "bad-c", outputs=("c",), internals=(), inputs=(),
            init=Eq(c, 0), next_action=Eq(c.prime(), 1 - c),  # flips c!
            universe=Universe({"c": BIT}))
        ag_c = AGSpec("c-device", circuit.always_zero("d"), bad_guarantee)
        ag_d = AGSpec("d-device", circuit.always_zero("c"),
                      circuit.always_zero_component("d"))
        cert = compose([ag_c, ag_d], circuit.safety_goal())
        assert not cert.ok

    def test_missing_assumption_detected(self):
        """If the goal promises more than the devices guarantee, 2a/2b fail."""
        ag_c, ag_d = circuit.safety_agspecs()
        # goal: c = d = 0 AND c' = 0 stays -- but also demands d = 1?!
        impossible = Spec("absurd", And(Eq(c, 0), Eq(d, 1)),
                          And(Eq(c.prime(), 0), Eq(d.prime(), 1)),
                          ("c", "d"), circuit.wire_universe())
        cert = compose([ag_c, ag_d], AGSpec("absurd", None, impossible))
        assert not cert.ok

    def test_no_components_rejected(self):
        with pytest.raises(ValueError):
            CompositionTheorem([], circuit.safety_goal())

    def test_stats_accumulated(self):
        ag_c, ag_d = circuit.safety_agspecs()
        cert = compose([ag_c, ag_d], circuit.safety_goal())
        assert cert.total_states_explored() >= 1


class TestDisjointHandling:
    def test_g_becomes_first_part(self):
        ag_c, ag_d = circuit.safety_agspecs()
        disjoint = DisjointSpec([("c",), ("d",)])
        thm = CompositionTheorem([ag_c, ag_d], circuit.safety_goal(),
                                 disjoint=disjoint)
        assert thm.all_parts[0].name == "G"
        assert thm.all_parts[0].assumption is None
        assert thm.verify().ok

    def test_plus_sub_default_excludes_internals(self):
        from repro.systems.queue import DoubleQueue

        dq = DoubleQueue(1)
        thm = dq.composition_theorem()
        sub = thm.plus_sub()
        assert "q" not in sub and "q1" not in sub and "q2" not in sub
        assert "i.sig" in sub and "z.ack" in sub

    def test_orthogonality_needs_disjoint(self):
        """With a nontrivial goal assumption and no Disjoint condition,
        hypothesis 2a is not dischargeable."""
        ag_c, ag_d = circuit.safety_agspecs()
        goal = AGSpec("cond", circuit.always_zero("d"),
                      circuit.always_zero_component("c"))
        cert = compose([ag_c, ag_d], goal)
        h2a = [ob for ob in cert.obligations if ob.oid == "2a"][0]
        assert any(not rule.ok and "Disjoint" in " ".join(rule.details)
                   for rule in h2a.rules)


class TestRefinementCorollary:
    def test_refine_counter(self):
        """x counting mod 6 refines parity counting mod 2 under a fixed
        (trivial but shared) environment assumption."""
        x = Var("x")
        y = Var("y")
        env = Spec("env", Eq(Var("w"), 0), Eq(Var("w").prime(), 0), ("w",),
                   Universe({"w": BIT}))
        from repro.kernel import Arith, Const

        impl_step = Eq(x.prime(), Arith("%", x + 1, Const(6)))
        impl = Component("impl", outputs=("x",), internals=(), inputs=(),
                         init=Eq(x, 0), next_action=impl_step,
                         universe=Universe({"x": interval(0, 5)}),
                         fairness=[weak_fairness(("x",), impl_step)])
        target_step = Eq(y.prime(), Arith("%", y + 1, Const(2)))
        target = Component("target", outputs=("y",), internals=("y",)[:0],
                           inputs=(),
                           init=Eq(y, 0), next_action=target_step,
                           universe=Universe({"y": BIT}),
                           fairness=[weak_fairness(("y",), target_step)])
        mapping = RefinementMapping({"y": Arith("%", x, Const(2))})
        disjoint = DisjointSpec([("w",), ("x", "y")])
        cert = refinement_corollary(
            env, AGSpec("impl", env, impl), AGSpec("goal", env, target),
            mapping=mapping, disjoint=disjoint)
        assert cert.ok

    def test_assumption_mismatch_rejected(self):
        env1 = circuit.always_zero("c")
        env2 = circuit.always_zero("c")
        impl = AGSpec("i", env1, circuit.always_zero_component("d"))
        goal = AGSpec("g", env2, circuit.always_zero_component("d"))
        with pytest.raises(ValueError, match="same assumption"):
            refinement_corollary(env1, impl, goal)


class TestBruteForce:
    def test_equivalence_checker(self):
        u = circuit.wire_universe()
        f1 = StatePred(Eq(c, 0))
        result = brute_force_equivalence(f1, f1, u, max_stem=1, max_loop=1)
        assert result.ok
        f2 = StatePred(Eq(c, 1))
        result = brute_force_equivalence(f1, f2, u, max_stem=0, max_loop=1)
        assert not result.ok

    def test_behavior_count_closed_form(self):
        u = Universe({"c": BIT})
        counted = behavior_count(u, max_stem=1, max_loop=2)
        result = brute_force_implication([], StatePred(True), u,
                                         max_stem=1, max_loop=2)
        assert result.stats["behaviors"] == counted

    def test_max_behaviors_cutoff(self):
        u = circuit.wire_universe()
        result = brute_force_implication(
            [], StatePred(True), u, max_stem=2, max_loop=2, max_behaviors=10)
        assert result.ok
        assert result.notes

    def test_finds_minimal_counterexample_first(self):
        u = Universe({"c": BIT})
        result = brute_force_implication(
            [], Eventually(StatePred(Eq(c, 1))), u, max_stem=1, max_loop=1)
        assert not result.ok
        assert result.counterexample.trace.length == 1
