"""Unit tests for the mini-TLA front end: lexer, parser, elaborator, modules."""

import pytest

from repro.kernel import Const, Eq, Exists, State, TupleDomain, Var, structurally_equal
from repro.parser import (
    Context,
    ElaborationError,
    LexError,
    ParseError,
    elaborate_domain,
    load_module,
    parse_expr,
    parse_expression_text,
    parse_formula,
    tokenize,
)
from repro.temporal import (
    ActionBox,
    ActionDiamond,
    Always,
    Eventually,
    LeadsTo,
    SF,
    TAnd,
    TImplies,
    TOr,
    WF,
)


class TestLexer:
    def kinds(self, text):
        return [t.kind for t in tokenize(text)[:-1]]

    def test_symbols(self):
        assert self.kinds("/\\ \\/ => <=> ~>") == ["/\\", "\\/", "=>", "<=>", "~>"]

    def test_box_diamond(self):
        assert self.kinds("[] <> [ ]_") == ["[]", "<>", "[", "]_"]

    def test_numbers_strings(self):
        tokens = tokenize('42 "hi"')
        assert tokens[0].kind == "NUMBER" and tokens[0].text == "42"
        assert tokens[1].kind == "STRING" and tokens[1].text == "hi"

    def test_dotted_identifiers(self):
        tokens = tokenize("i.sig c.ack")
        assert [t.text for t in tokens[:-1]] == ["i.sig", "c.ack"]

    def test_range_vs_dot(self):
        assert self.kinds("0..2") == ["NUMBER", "..", "NUMBER"]

    def test_fairness_with_ident_subscript(self):
        tokens = tokenize("WF_x(A)")
        assert tokens[0].kind == "FAIRNESS" and tokens[0].text == "WF"
        assert tokens[1].kind == "IDENT" and tokens[1].text == "x"

    def test_fairness_with_tuple_subscript(self):
        tokens = tokenize("SF_<<x, y>>(A)")
        assert tokens[0].kind == "FAIRNESS" and tokens[0].text == "SF"
        assert tokens[1].kind == "_"
        assert tokens[2].kind == "<<"

    def test_comments_stripped(self):
        assert self.kinds("x \\* comment\n y") == ["IDENT", "IDENT"]
        assert self.kinds("x (* multi\nline (* nested *) *) y") == \
            ["IDENT", "IDENT"]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("(* oops")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_module_rules_skipped(self):
        assert self.kinds("---- MODULE M ----") == ["MODULE", "IDENT"]

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("x @ y")

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[1].line == 2 and tokens[1].column == 3


class TestExpressionParsing:
    def test_precedence_and_or(self):
        formula = parse_expr("x = 0 \\/ x = 1 /\\ y = 2")
        # /\ binds tighter than \/
        from repro.kernel import Or

        assert isinstance(formula, Or)

    def test_implies_right_assoc(self):
        node = parse_expression_text("a = 1 => b = 1 => c = 1")
        assert node[0] == "implies"
        assert node[2][0] == "implies"

    def test_arith_precedence(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.eval_state(State({})) == 7

    def test_parentheses(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.eval_state(State({})) == 9

    def test_unary_minus(self):
        assert parse_expr("0 - 2").eval_state(State({})) == -2
        assert parse_expr("-2").eval_state(State({})) == -2

    def test_prime_postfix(self):
        expr = parse_expr("x' = x + 1")
        assert expr.primed_vars() == {"x"}

    def test_tuple_and_builtins(self):
        expr = parse_expr("Append(<<1, 2>>, 3)")
        assert expr.eval_state(State({})) == (1, 2, 3)
        assert parse_expr("Len(<<1>>) = 1").eval_state(State({})) is True
        assert parse_expr("<<1>> \\o <<2>>").eval_state(State({})) == (1, 2)

    def test_hash_is_disequality(self):
        expr = parse_expr("x # 1")
        assert expr.eval_state(State({"x": 2})) is True

    def test_if_then_else(self):
        expr = parse_expr("IF x > 0 THEN 1 ELSE 0")
        assert expr.eval_state(State({"x": 5})) == 1

    def test_unchanged(self):
        expr = parse_expr("UNCHANGED <<x, y>>")
        assert expr.primed_vars() == {"x", "y"}

    def test_bounded_exists(self):
        expr = parse_expr("\\E v \\in 0..3 : x = v")
        assert isinstance(expr, Exists)
        assert expr.eval_state(State({"x": 2})) is True

    def test_in_domain(self):
        expr = parse_expr("x \\in {0, 2}")
        assert expr.eval_state(State({"x": 2})) is True
        assert expr.eval_state(State({"x": 1})) is False

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression_text("x = 1 )")

    def test_missing_operand(self):
        with pytest.raises(ParseError):
            parse_expression_text("x = ")


class TestTemporalParsing:
    def test_always_box_action(self):
        formula = parse_formula("[][x' = x + 1]_<<x>>")
        assert isinstance(formula, ActionBox)
        assert formula.sub == ("x",)

    def test_always_of_predicate(self):
        formula = parse_formula("[](x = 0)")
        assert isinstance(formula, Always)

    def test_eventually(self):
        assert isinstance(parse_formula("<>(x = 1)"), Eventually)

    def test_diamond_action(self):
        formula = parse_formula("<><<x' = x + 1>>_x")
        assert isinstance(formula, ActionDiamond)

    def test_eventually_tuple_not_action(self):
        # <۫> followed by a tuple that is not an action subscript
        formula = parse_formula("<>(<<x>> = <<1>>)")
        assert isinstance(formula, Eventually)

    def test_leadsto(self):
        formula = parse_formula("(x = 1) ~> (x = 2)")
        assert isinstance(formula, LeadsTo)

    def test_fairness(self):
        wf = parse_formula("WF_<<x, y>>(x' = x)")
        assert isinstance(wf, WF) and wf.sub == ("x", "y")
        sf = parse_formula("SF_x(x' = x)")
        assert isinstance(sf, SF) and sf.sub == ("x",)

    def test_spec_shape(self):
        formula = parse_formula(
            "x = 0 /\\ [][x' = x]_x /\\ WF_x(x' = x)")
        assert isinstance(formula, TAnd)
        assert [type(p).__name__ for p in formula.parts] == \
            ["StatePred", "ActionBox", "WF"]

    def test_mixed_levels_lifted(self):
        formula = parse_formula("x = 0 \\/ <>(x = 1)")
        assert isinstance(formula, TOr)

    def test_temporal_implication(self):
        formula = parse_formula("[](x = 0) => <>(y = 1)")
        assert isinstance(formula, TImplies)


class TestDomains:
    def test_range_domain(self):
        domain = elaborate_domain(parse_expression_text("0..3"))
        assert list(domain.values()) == [0, 1, 2, 3]

    def test_set_domain(self):
        domain = elaborate_domain(parse_expression_text("{1, 3}"))
        assert sorted(domain.values()) == [1, 3]

    def test_seq_domain(self):
        domain = elaborate_domain(parse_expression_text("Seq({0,1}, 2)"))
        assert isinstance(domain, TupleDomain)
        assert domain.max_len == 2

    def test_boolean_domain(self):
        domain = elaborate_domain(parse_expression_text("BOOLEAN"))
        assert sorted(domain.values()) == [False, True]

    def test_non_domain_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate_domain(parse_expression_text("x + 1"))

    def test_set_of_non_constants_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate_domain(parse_expression_text("{x, 1}"))


class TestContextResolution:
    def test_constants_inlined(self):
        ctx = Context(constants={"N": 3})
        expr = parse_expr("x < N")
        # constants resolve at elaboration, so re-parse with context
        from repro.parser import parse_expression_text as pt
        from repro.parser import elaborate_expr

        expr = elaborate_expr(pt("x < N"), ctx)
        assert expr.eval_state(State({"x": 2})) is True

    def test_definitions_expand(self):
        from repro.parser import elaborate_expr, parse_expression_text as pt

        ctx = Context()
        ctx.definitions["Init"] = elaborate_expr(pt("x = 0"), ctx)
        expr = elaborate_expr(pt("Init /\\ y = 1"), ctx)
        assert expr.eval_state(State({"x": 0, "y": 1})) is True

    def test_quantifier_shadows_constant(self):
        from repro.parser import elaborate_expr, parse_expression_text as pt

        ctx = Context(constants={"v": 9})
        expr = elaborate_expr(pt("\\E v \\in 0..1 : x = v"), ctx)
        assert expr.eval_state(State({"x": 1})) is True

    def test_unknown_call_rejected(self):
        with pytest.raises(ElaborationError, match="unknown operator"):
            parse_expr("Frobnicate(x)")


class TestModules:
    SOURCE = """
    MODULE Counter
    CONSTANT N = 3
    VARIABLE x \\in 0..2
    Init == x = 0
    Next == x' = (x + 1) % N
    Spec == Init /\\ [][Next]_<<x>> /\\ WF_<<x>>(Next)
    Small == [](x < 3)
    """

    def test_load(self):
        module = load_module(self.SOURCE)
        assert module.name == "Counter"
        assert module.constants == {"N": 3}
        assert "x" in module.universe

    def test_spec_extraction(self):
        module = load_module(self.SOURCE)
        spec = module.spec("Spec")
        assert spec.sub == ("x",)
        assert len(spec.fairness) == 1

    def test_definition_access(self):
        module = load_module(self.SOURCE)
        assert structurally_equal(module.expr("Init"), Eq(Var("x"), Const(0)))
        assert isinstance(module.formula("Small"), Always)
        with pytest.raises(KeyError, match="no definition"):
            module.get("Missing")
        with pytest.raises(TypeError):
            module.expr("Small")

    def test_model_checkable(self):
        from repro.checker import check_temporal_implication, explore

        module = load_module(self.SOURCE)
        spec = module.spec("Spec")
        assert explore(spec).state_count == 3
        result = check_temporal_implication(
            spec, parse_formula("<>(x = 2)"))
        assert result.ok

    def test_variable_needs_domain(self):
        with pytest.raises(ParseError, match="domain"):
            load_module("MODULE M\nVARIABLE x\nInit == x = 0")

    def test_constant_must_be_literal(self):
        with pytest.raises(ElaborationError):
            load_module("MODULE M\nCONSTANT N = x + 1\nVARIABLE x \\in 0..1")

    def test_multiple_variable_declarations(self):
        module = load_module(
            "MODULE M\nVARIABLES a \\in BOOLEAN, b \\in 0..1\nInit == b = 0")
        assert set(module.universe.variables) == {"a", "b"}
