"""Regression tests for the one-plan-per-walk fix in ``random_walk``.

``random_walk`` used to call the ``successors()`` convenience wrapper on
every step, re-deriving the compiled plan per iteration; it now builds
one :class:`~repro.kernel.action.SuccessorPlan` per walk.  The fix must
be behaviour-preserving: a seeded walk is deterministic, and the walk a
given seed produces is *unchanged* -- verified against a faithful
replica of the per-step implementation that consumes the RNG
identically.
"""

from __future__ import annotations

import random

import pytest

from repro.checker.explorer import initial_states
from repro.checker.simulate import random_walk, simulate_check
from repro.kernel.action import holds_on_step, successors
from repro.systems.circuit import composed_processes
from repro.systems.queue import complete_queue


def reference_walk(spec, steps, seed, allow_stutter=False):
    """The pre-fix implementation, warts intact: the per-step
    ``successors()`` wrapper call, same RNG consumption order."""
    rng = random.Random(seed)
    inits = list(initial_states(spec.init, spec.universe))
    state = rng.choice(inits)
    states = [state]
    for _ in range(steps):
        nexts = list(successors(spec.next_action, state, spec.universe))
        if not nexts:
            if allow_stutter:
                states.append(state)
                continue
            break
        state = rng.choice(nexts)
        states.append(state)
    return states


@pytest.mark.parametrize("seed", range(5))
def test_seeded_walk_unchanged_by_plan_hoisting(seed):
    spec = complete_queue(2)
    walk = random_walk(spec, steps=25, seed=seed)
    assert list(walk) == reference_walk(spec, steps=25, seed=seed)


def test_seeded_walk_deterministic():
    spec = complete_queue(2)
    first = random_walk(spec, steps=30, seed=42)
    second = random_walk(spec, steps=30, seed=42)
    assert first == second


def test_walk_steps_satisfy_next_action():
    spec = complete_queue(2)
    walk = random_walk(spec, steps=20, seed=7)
    assert len(walk) == 21
    for current, nxt in walk.steps():
        assert holds_on_step(spec.next_action, current, nxt)


def test_allow_stutter_walk_unchanged():
    spec = composed_processes()  # a single-state system: can only stutter
    walk = random_walk(spec, steps=4, seed=1, allow_stutter=True)
    assert list(walk) == reference_walk(spec, steps=4, seed=1,
                                        allow_stutter=True)
    assert len(walk) == 5
    assert len(set(walk)) == 1


def test_simulate_check_seeded_deterministic():
    spec = complete_queue(2)
    from repro.systems.queue import Queue

    invariant = Queue(2).capacity_invariant()
    first = simulate_check(spec, invariant, walks=10, steps=15, seed=3)
    second = simulate_check(spec, invariant, walks=10, steps=15, seed=3)
    assert first.ok and second.ok
    assert first.stats == second.stats
