"""Tests for the CLI, the simulator, and the queue-chain extension."""

import io

import pytest

from repro.checker.simulate import random_walk, simulate_check
from repro.kernel import And, Eq, Universe, Var, interval
from repro.spec import Spec
from repro.systems.queue import DoubleQueue, QueueChain
from repro.tools.cli import main

from tests.conftest import counter_spec

x = Var("x")

COUNTER_TLA = """
MODULE Counter
CONSTANT N = 3
VARIABLE x \\in 0..2
Init == x = 0
Next == x' = (x + 1) % N
Spec == Init /\\ [][Next]_<<x>> /\\ WF_<<x>>(Next)
Small == x < 3
TooSmall == x < 2
Progress == (x = 0) ~> (x = 2)
"""


@pytest.fixture
def module_file(tmp_path):
    path = tmp_path / "Counter.tla"
    path.write_text(COUNTER_TLA)
    return str(path)


class TestSimulator:
    def test_walk_follows_spec(self):
        spec = counter_spec()
        walk = random_walk(spec, steps=10, seed=42)
        assert walk[0]["x"] == 0
        for pre, post in walk.steps():
            assert post["x"] in ((pre["x"] + 1) % 3, pre["x"])

    def test_walk_deterministic_by_seed(self):
        spec = counter_spec()
        assert random_walk(spec, 10, seed=7) == random_walk(spec, 10, seed=7)

    def test_walk_stops_at_dead_end(self):
        universe = Universe({"x": interval(0, 1)})
        spec = Spec("once", Eq(x, 0), And(Eq(x, 0), Eq(x.prime(), 1)),
                    ("x",), universe)
        walk = random_walk(spec, steps=10, seed=1)
        assert len(walk) == 2

    def test_walk_allow_stutter(self):
        universe = Universe({"x": interval(0, 1)})
        spec = Spec("once", Eq(x, 0), And(Eq(x, 0), Eq(x.prime(), 1)),
                    ("x",), universe)
        walk = random_walk(spec, steps=5, seed=1, allow_stutter=True)
        assert len(walk) == 6

    def test_no_initial_state_raises(self):
        universe = Universe({"x": interval(0, 1)})
        spec = Spec("void", And(Eq(x, 0), Eq(x, 1)), Eq(x.prime(), x),
                    ("x",), universe)
        with pytest.raises(ValueError, match="no initial states"):
            random_walk(spec)

    def test_simulate_check_passes(self):
        result = simulate_check(counter_spec(), x < 3, walks=5, seed=3)
        assert result.ok
        assert "not a proof" in result.notes[0]

    def test_simulate_check_finds_violation(self):
        result = simulate_check(counter_spec(), x < 2, walks=20, seed=3)
        assert not result.ok
        assert result.counterexample.trace[-1]["x"] == 2


class TestCli:
    def run(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_check_ok(self, module_file):
        code, text = self.run("check", module_file,
                              "--invariant", "Small",
                              "--property", "Progress")
        assert code == 0
        assert "[OK] Small" in text and "[OK] Progress" in text

    def test_check_failure_exits_nonzero(self, module_file):
        code, text = self.run("check", module_file,
                              "--invariant", "TooSmall")
        assert code == 1
        assert "FAILED" in text and "counterexample" in text

    def test_check_without_checks(self, module_file):
        code, text = self.run("check", module_file)
        assert code == 0
        assert "exploration only" in text

    def test_explore(self, module_file):
        code, text = self.run("explore", module_file, "--show", "2")
        assert code == 0
        assert "states: 3" in text
        assert "State(x=0)" in text

    def test_trace(self, module_file):
        code, text = self.run("trace", module_file, "--steps", "5",
                              "--seed", "9")
        assert code == 0
        assert text.startswith("step")
        assert "\nx " in text

    def test_pretty_one_definition(self, module_file):
        code, text = self.run("pretty", module_file, "Next")
        assert code == 0
        assert "Next == x' = (x + 1) % 3" in text

    def test_pretty_all(self, module_file):
        code, text = self.run("pretty", module_file)
        assert code == 0
        for name in ("Init", "Next", "Spec", "Small"):
            assert f"{name} ==" in text

    def test_missing_file(self):
        code, text = self.run("explore", "/nonexistent.tla")
        assert code == 2
        assert "error" in text

    def test_parse_error_reported(self, tmp_path):
        path = tmp_path / "bad.tla"
        path.write_text("MODULE Bad\nVARIABLE x \\in 0..1\nInit == x = ")
        code, text = self.run("explore", str(path))
        assert code == 2
        assert "ParseError" in text


class TestQueueChain:
    def test_chain2_matches_double_queue(self):
        chain = QueueChain(2, 1)
        dq = DoubleQueue(1)
        assert chain.capacity == 3
        renamed = tuple(
            tuple(v.replace("z1.", "z.") for v in t)
            for t in chain.disjoint.tuples)
        assert renamed == dq.disjoint.tuples
        state = {
            "i.sig": 0, "i.ack": 0, "i.val": 0,
            "z1.sig": 1, "z1.ack": 0, "z1.val": 1,
            "o.sig": 0, "o.ack": 0, "o.val": 0,
            "q1": (0,), "q2": (1,),
        }
        from repro.kernel import State

        # note chain uses z1 where DoubleQueue uses z; mapping shape agrees
        mapped = chain.mapping.target_state(
            State(state), chain.big.universe)
        assert mapped["q"] == (1, 1, 0)

    def test_chain2_composition(self):
        cert = QueueChain(2, 1).composition_theorem().verify()
        assert cert.ok

    @pytest.mark.slow
    def test_chain3_composition(self):
        cert = QueueChain(3, 1).composition_theorem().verify()
        assert cert.ok

    def test_chain_capacity_formula(self):
        assert QueueChain(3, 2).capacity == 8
        assert QueueChain(4, 1).capacity == 7

    def test_chain_needs_two(self):
        with pytest.raises(ValueError):
            QueueChain(1, 1)

    def test_chain_disjoint_covers_goal_interface(self):
        chain = QueueChain(3, 1)
        assert chain.disjoint.separates_tuples(
            chain.env.outputs, chain.big.outputs)
