"""Property-based tests over seeded random specifications.

A deterministic random-spec generator builds small universes (2-3
variables over tiny integer domains) and random guarded-assignment
actions (disjunctions of conjunctions of guards, primed-variable
bindings, residual primed constraints, and rigid quantifiers).  Two
oracle comparisons then pin the successor machinery:

* ``SuccessorPlan.successors(s)`` must agree exactly with brute-force
  enumeration -- filter *all* states of the universe by evaluating the
  action on the step ``(s, t)`` -- for every state ``s``;
* ``State`` pickling and fingerprinting must round-trip: equality, hash,
  and fingerprint survive ``pickle``, and the fingerprint is stable
  across interpreter processes regardless of ``PYTHONHASHSEED`` (the
  property the parallel explorer's batch keying relies on).

Everything is seeded with ``random.Random``: failures reproduce exactly.
"""

from __future__ import annotations

import os
import pickle
import random
import subprocess
import sys
from pathlib import Path
from typing import List, Tuple

import pytest

from repro.kernel.action import compile_action, holds_on_step
from repro.kernel.expr import (
    And,
    Arith,
    Cmp,
    Const,
    Eq,
    EvalError,
    Exists,
    Expr,
    Not,
    Or,
    Var,
)
from repro.kernel.state import State, Universe
from repro.kernel.values import FiniteDomain

VAR_NAMES = ("x", "y", "z")


def random_universe(rng: random.Random) -> Universe:
    count = rng.randint(2, 3)
    return Universe({
        name: FiniteDomain(range(rng.randint(2, 3)))
        for name in VAR_NAMES[:count]
    })


def random_guard(rng: random.Random, universe: Universe) -> Expr:
    name = rng.choice(universe.variables)
    const = rng.choice(list(universe.domain(name).values()))
    kind = rng.randrange(4)
    if kind == 0:
        return Eq(Var(name), Const(const))
    if kind == 1:
        return Not(Eq(Var(name), Const(const)))
    if kind == 2:
        return Cmp(rng.choice(("<", "<=", ">", ">=")), Var(name), Const(const))
    # a rigid quantifier: ∃k ∈ dom : v = k ∧ k <= c  (always exercises the
    # Exists-compilation path, sometimes restricting, sometimes not)
    return Exists("k", universe.domain(name),
                  And(Eq(Var(name), Var("k")), Cmp("<=", Var("k"), Const(const))))


def random_binding(rng: random.Random, universe: Universe, name: str) -> Expr:
    other = rng.choice(universe.variables)
    kind = rng.randrange(3)
    if kind == 0:
        value = rng.choice(list(universe.domain(other).values()))
        rhs: Expr = Const(value)
    elif kind == 1:
        rhs = Var(other)
    else:
        # may step outside the domain: the compiler must drop the branch
        # for states where it does, exactly like brute force
        rhs = Arith("+", Var(other), 1)
    return Eq(Var(name, primed=True), rhs)


def random_branch(rng: random.Random, universe: Universe) -> Expr:
    conjuncts: List[Expr] = []
    for _ in range(rng.randint(0, 2)):
        conjuncts.append(random_guard(rng, universe))
    bound = rng.sample(universe.variables, rng.randint(0, len(universe.variables)))
    for name in bound:
        conjuncts.append(random_binding(rng, universe, name))
    if rng.random() < 0.4:
        # a residual primed constraint (not a binding): forces the
        # candidate-filtering path of the plan
        name = rng.choice(universe.variables)
        conjuncts.append(Not(Eq(Var(name, primed=True), Var(name))))
    if not conjuncts:
        conjuncts.append(Const(True))
    return And(*conjuncts)


def random_action(rng: random.Random, universe: Universe) -> Expr:
    return Or(*[random_branch(rng, universe)
                for _ in range(rng.randint(1, 3))])


def brute_force_successors(action: Expr, state: State,
                           universe: Universe) -> set:
    result = set()
    for candidate in universe.states():
        try:
            if holds_on_step(action, state, candidate):
                result.add(candidate)
        except EvalError:
            pass  # a type error on this step: not a successor
    return result


@pytest.mark.parametrize("seed", range(30))
def test_plan_successors_agree_with_brute_force(seed):
    rng = random.Random(seed)
    universe = random_universe(rng)
    action = random_action(rng, universe)
    plan = compile_action(action).plan(universe)
    for state in universe.states():
        got = list(plan.successors(state))
        assert len(got) == len(set(got)), (
            f"seed {seed}: duplicate successors for {state!r}"
        )
        expected = brute_force_successors(action, state, universe)
        assert set(got) == expected, (
            f"seed {seed}: plan and brute force disagree on {state!r} "
            f"under {action!r}"
        )


@pytest.mark.parametrize("seed", range(30))
def test_plan_enabled_agrees_with_brute_force(seed):
    rng = random.Random(seed + 1000)
    universe = random_universe(rng)
    action = random_action(rng, universe)
    plan = compile_action(action).plan(universe)
    for state in universe.states():
        assert plan.enabled(state) == bool(
            brute_force_successors(action, state, universe)
        )


# -- State pickle / fingerprint properties -----------------------------------


def random_states(seed: int, count: int = 40) -> List[State]:
    rng = random.Random(seed)
    states = []
    for _ in range(count):
        universe = random_universe(rng)
        assignment = {
            name: rng.choice(list(universe.domain(name).values()))
            for name in universe.variables
        }
        # sprinkle in composite values: tuples and strings
        if rng.random() < 0.5:
            assignment["q"] = tuple(
                rng.randrange(3) for _ in range(rng.randint(0, 3))
            )
        if rng.random() < 0.3:
            assignment["mode"] = rng.choice(("idle", "busy"))
        states.append(State(assignment))
    return states


@pytest.mark.parametrize("seed", range(10))
def test_state_pickle_roundtrip_preserves_identity(seed):
    for state in random_states(seed):
        clone = pickle.loads(pickle.dumps(state,
                                          protocol=pickle.HIGHEST_PROTOCOL))
        assert clone == state
        assert hash(clone) == hash(state)
        assert clone.fingerprint() == state.fingerprint()
        assert clone in {state}  # usable as the same dict/set key
        assert dict(clone) == dict(state)


def test_fingerprint_ignores_construction_path():
    a = State({"x": 1, "y": (0, 1)})
    b = State._trusted({"y": (0, 1), "x": 1})
    c = State({"x": 0, "y": (0, 1)}).update({"x": 1})
    assert a.fingerprint() == b.fingerprint() == c.fingerprint()
    # and caching returns the same value
    assert a.fingerprint() == a.fingerprint()


def test_fingerprints_distinct_across_a_universe():
    universe = Universe({name: FiniteDomain(range(3)) for name in VAR_NAMES})
    fingerprints = [state.fingerprint() for state in universe.states()]
    assert len(set(fingerprints)) == len(fingerprints)


def test_fingerprint_distinguishes_value_kinds():
    # 0 / False / "" / () must not collide under the tagged encoding
    states = [State({"x": 0}), State({"x": False}), State({"x": ""}),
              State({"x": ()})]
    fingerprints = {s.fingerprint() for s in states}
    assert len(fingerprints) == 4


_FINGERPRINT_SNIPPET = (
    "from repro.kernel.state import State; "
    "print(State({'i.sig': 1, 'q': (0, 1, 0), 'mode': 'busy'}).fingerprint())"
)


def test_fingerprint_stable_across_hash_seeds():
    """The fingerprint must not inherit ``PYTHONHASHSEED`` sensitivity from
    the built-in ``hash`` -- it is compared across coordinator runs."""
    src = str(Path(__file__).resolve().parents[1] / "src")
    outputs = []
    for hash_seed in ("0", "1", "12345"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _FINGERPRINT_SNIPPET],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.append(proc.stdout.strip())
    assert outputs[0] == outputs[1] == outputs[2]
    # and the in-process value agrees with the subprocesses
    local = State({"i.sig": 1, "q": (0, 1, 0), "mode": "busy"}).fingerprint()
    assert str(local) == outputs[0]


def test_state_pickle_skips_revalidation_via_trusted_path():
    """The pickle reducer routes through ``_trusted``; the payload is just
    the raw mapping (cheap worker hand-off, no ``check_value`` re-walk)."""
    state = State({"x": 1})
    func, args = state.__reduce__()
    assert args == ({"x": 1},)
    rebuilt = func(*args)
    assert rebuilt == state


def make_pairs(seed: int) -> List[Tuple[State, State]]:
    states = random_states(seed, count=20)
    rng = random.Random(seed + 7)
    return [(rng.choice(states), rng.choice(states)) for _ in range(30)]


@pytest.mark.parametrize("seed", range(5))
def test_fingerprint_equality_tracks_state_equality(seed):
    for lhs, rhs in make_pairs(seed):
        if lhs == rhs:
            assert lhs.fingerprint() == rhs.fingerprint()
        else:
            # not a guarantee in general (64-bit hash), but on these tiny
            # deterministic samples a collision means the fold is broken
            assert lhs.fingerprint() != rhs.fingerprint()
