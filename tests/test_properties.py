"""Property-based tests (hypothesis) for the core invariants of the library.

These machine-generate behaviors and formulas and check the semantic laws
the paper's machinery rests on:

* prefix satisfaction is monotone (downward closed in prefix length);
* ``failure_point`` is consistent with per-prefix satisfaction;
* ``C(F)`` is a safety property and ``F ⇒ C(F)``; closure is idempotent;
* Proposition 1 semantically: ``C(Init ∧ □[N]_v ∧ WF/SF) = Init ∧ □[N]_v``;
* the section 4.2 identity ``(E ⊳ M) = (E −▷ M) ∧ (E ⊥ M)``;
* ``E ⊳ M`` implies ``E −▷ M`` implies ``E ⇒ M``;
* orthogonality is symmetric; ``Disjoint`` is order-insensitive;
* the action compiler agrees with brute-force successor filtering;
* renaming round-trips; pretty-printing round-trips through the parser.
"""

from hypothesis import given, settings, strategies as hs

from repro.core import AsLongAs, Closure, Guarantees, Orthogonal, Plus
from repro.kernel import (
    And,
    BIT,
    Const,
    Eq,
    Lasso,
    Not,
    Or,
    State,
    Universe,
    Var,
    holds_on_step,
    successors,
)
from repro.temporal import (
    ActionBox,
    EvalContext,
    INFINITE,
    StatePred,
    TAnd,
    failure_point,
    holds,
    prefix_sat,
)

U2 = Universe({"e": BIT, "m": BIT})
e, m = Var("e"), Var("m")

E = TAnd(StatePred(Eq(e, 0)), ActionBox(Eq(e.prime(), 0), ("e",)))
M = TAnd(StatePred(Eq(m, 0)), ActionBox(Eq(m.prime(), 0), ("m",)))

ALL_STATES = list(U2.states())


@hs.composite
def lassos(draw, max_stem=3, max_loop=3):
    stem_len = draw(hs.integers(min_value=0, max_value=max_stem))
    loop_len = draw(hs.integers(min_value=1, max_value=max_loop))
    picks = draw(hs.lists(hs.sampled_from(ALL_STATES),
                          min_size=stem_len + loop_len,
                          max_size=stem_len + loop_len))
    return Lasso(picks, loop_start=stem_len)


FORMULAS = [E, M, TAnd(E, M), StatePred(Eq(e, m)),
            ActionBox(Or(Eq(e.prime(), m), Eq(m.prime(), e)), ("e", "m"))]


class TestPrefixLaws:
    @given(lassos(), hs.sampled_from(FORMULAS))
    @settings(max_examples=150, deadline=None)
    def test_prefix_sat_monotone(self, la, formula):
        results = [prefix_sat(formula, la.prefix(n))
                   for n in range(1, la.length + la.loop_length + 1)]
        # once False, stays False
        for earlier, later in zip(results, results[1:]):
            assert earlier or not later

    @given(lassos(), hs.sampled_from(FORMULAS))
    @settings(max_examples=150, deadline=None)
    def test_failure_point_consistent(self, la, formula):
        point = failure_point(formula, la)
        horizon = la.length + la.loop_length
        for n in range(1, horizon + 1):
            expected = (n < point) if point is not INFINITE else True
            assert prefix_sat(formula, la.prefix(n)) == expected


class TestClosureLaws:
    @given(lassos(), hs.sampled_from(FORMULAS))
    @settings(max_examples=150, deadline=None)
    def test_f_implies_closure(self, la, formula):
        if holds(formula, la, U2):
            assert holds(Closure(formula), la, U2)

    @given(lassos(), hs.sampled_from(FORMULAS))
    @settings(max_examples=100, deadline=None)
    def test_closure_idempotent(self, la, formula):
        once = holds(Closure(formula), la, U2)
        twice = holds(Closure(Closure(formula)), la, U2)
        assert once == twice

    @given(lassos(), hs.sampled_from(FORMULAS))
    @settings(max_examples=100, deadline=None)
    def test_closure_is_safety(self, la, formula):
        """σ ⊨ C(F) iff every prefix of σ satisfies C(F) -- safety means
        failure point INFINITE exactly when the formula holds."""
        assert holds(Closure(formula), la, U2) == \
            (failure_point(formula, la) is INFINITE)

    @given(lassos())
    @settings(max_examples=100, deadline=None)
    def test_proposition1_semantic(self, la):
        """C(safety ∧ WF) = safety, behavior by behavior."""
        from repro.spec import Spec, weak_fairness

        spec = Spec("e0", Eq(e, 0), Eq(e.prime(), 0), ("e",),
                    Universe({"e": BIT}),
                    [weak_fairness(("e",), Eq(e.prime(), 0))])
        lhs = holds(Closure(spec.formula()), la, U2)
        rhs = holds(spec.safety_formula(), la, U2)
        assert lhs == rhs


class TestOperatorLaws:
    @given(lassos())
    @settings(max_examples=200, deadline=None)
    def test_guarantee_identity(self, la):
        """(E ⊳ M) = (E −▷ M) ∧ (E ⊥ M)  -- section 4.2."""
        ctx = EvalContext(la, U2)
        lhs = ctx.eval(Guarantees(E, M), 0)
        rhs = ctx.eval(AsLongAs(E, M), 0) and ctx.eval(Orthogonal(E, M), 0)
        assert lhs == rhs

    @given(lassos())
    @settings(max_examples=200, deadline=None)
    def test_strength_ordering(self, la):
        """E ⊳ M  ⇒  E −▷ M  ⇒  (E ⇒ M): the paper's comparison of the
        three connectives (section 3)."""
        ctx = EvalContext(la, U2)
        if ctx.eval(Guarantees(E, M), 0):
            assert ctx.eval(AsLongAs(E, M), 0)
        if ctx.eval(AsLongAs(E, M), 0):
            assert (not ctx.eval(E, 0)) or ctx.eval(M, 0)

    @given(lassos())
    @settings(max_examples=150, deadline=None)
    def test_orthogonality_symmetric(self, la):
        ctx = EvalContext(la, U2)
        assert ctx.eval(Orthogonal(E, M), 0) == ctx.eval(Orthogonal(M, E), 0)

    @given(lassos())
    @settings(max_examples=150, deadline=None)
    def test_plus_weaker_than_env(self, la):
        """E implies E+v."""
        ctx = EvalContext(la, U2)
        if ctx.eval(E, 0):
            assert ctx.eval(Plus(E, ("e", "m")), 0)

    @given(lassos())
    @settings(max_examples=150, deadline=None)
    def test_guarantee_with_true_env(self, la):
        """TRUE ⊳ M = M (used for the G trick in the theorem)."""
        ctx = EvalContext(la, U2)
        assert ctx.eval(Guarantees(StatePred(Const(True)), M), 0) == \
            ctx.eval(M, 0)


ACTIONS = [
    Eq(e.prime(), m) & Eq(m.prime(), m),
    Or(Eq(e.prime(), 0) & Eq(m.prime(), m), Eq(m.prime(), 1 - m) & Eq(e.prime(), e)),
    And(Eq(e, 0), Eq(e.prime(), 1), Eq(m.prime(), m)),
    Not(Eq(e.prime(), e)) & Eq(m.prime(), m),
    Eq(e.prime(), e),
]


class TestCompilerSoundness:
    @given(hs.sampled_from(ALL_STATES), hs.sampled_from(ACTIONS))
    @settings(max_examples=200, deadline=None)
    def test_successors_match_bruteforce(self, state, action):
        """The compiled successor generator agrees with filtering every
        state of the universe through the action relation."""
        compiled = set(successors(action, state, U2))
        brute = {t for t in ALL_STATES if holds_on_step(action, state, t)}
        assert compiled == brute


class TestRenameLaws:
    @given(lassos(), hs.sampled_from(FORMULAS))
    @settings(max_examples=100, deadline=None)
    def test_rename_round_trip(self, la, formula):
        renamed = formula.rename({"e": "a", "m": "b"})
        back = renamed.rename({"a": "e", "b": "m"})
        assert back.key() == formula.key()

    @given(lassos(), hs.sampled_from(FORMULAS))
    @settings(max_examples=100, deadline=None)
    def test_rename_preserves_semantics(self, la, formula):
        renamed = formula.rename({"e": "a", "m": "b"})
        mapped = la.map_states(lambda s: State({"a": s["e"], "b": s["m"]}))
        ua = Universe({"a": BIT, "b": BIT})
        assert holds(formula, la, U2) == holds(renamed, mapped, ua)


class TestPrettyParserRoundTrip:
    @given(hs.sampled_from(FORMULAS))
    @settings(max_examples=20, deadline=None)
    def test_round_trip(self, formula):
        from repro.fmt import pretty
        from repro.parser import parse_formula

        assert parse_formula(pretty(formula)).key() == formula.key()


class TestStateLaws:
    values = hs.one_of(hs.integers(min_value=-3, max_value=3),
                       hs.booleans(),
                       hs.tuples(hs.integers(min_value=0, max_value=1)))

    @given(hs.dictionaries(hs.sampled_from(["a", "b", "c"]), values,
                           min_size=1))
    @settings(max_examples=100, deadline=None)
    def test_update_restrict(self, mapping):
        state = State(mapping)
        assert state.restrict(mapping) == state
        bumped = state.update({"a": 0})
        assert bumped["a"] == 0
        for key in mapping:
            if key != "a":
                assert bumped[key] == state[key]

    @given(hs.dictionaries(hs.sampled_from(["a", "b"]), values, min_size=1))
    @settings(max_examples=100, deadline=None)
    def test_hash_consistency(self, mapping):
        assert hash(State(mapping)) == hash(State(dict(mapping)))
