"""Unit tests for the expression AST: evaluation, analysis, substitution."""

import pytest

from repro.kernel import (
    And,
    Append,
    Arith,
    Cat,
    Cmp,
    Const,
    Eq,
    Equiv,
    EvalError,
    Exists,
    FALSE,
    Fn,
    Forall,
    Head,
    IfThenElse,
    Implies,
    InSet,
    Len,
    Not,
    Nth,
    Or,
    Tail,
    TRUE,
    TupleExpr,
    Var,
    interval,
    prime_expr,
    rename_vars,
    structurally_equal,
    to_expr,
)

from tests.conftest import st

x, y = Var("x"), Var("y")


def ev(expr, **values):
    return to_expr(expr).eval_state(st(**values))


def ev2(expr, pre, post):
    return to_expr(expr).eval_pair(st(**pre), st(**post))


class TestConstAndVar:
    def test_const(self):
        assert ev(Const(7)) == 7
        assert ev(TRUE) is True and ev(FALSE) is False

    def test_const_validates(self):
        with pytest.raises(TypeError):
            Const([1])

    def test_var_lookup(self):
        assert ev(x, x=3) == 3

    def test_unbound_var(self):
        with pytest.raises(EvalError, match="unbound"):
            ev(x, y=1)

    def test_primed_var_in_action(self):
        assert ev2(Var("x", primed=True), {"x": 1}, {"x": 9}) == 9

    def test_primed_var_outside_action(self):
        with pytest.raises(EvalError, match="outside an action"):
            Var("x", primed=True).eval_state(st(x=1))

    def test_var_name_validation(self):
        with pytest.raises(TypeError):
            Var("")

    def test_double_prime_rejected(self):
        with pytest.raises(ValueError):
            Var("x", primed=True).prime()


class TestBooleans:
    def test_and_or_not(self):
        assert ev(And(TRUE, TRUE)) is True
        assert ev(And(TRUE, FALSE)) is False
        assert ev(Or(FALSE, TRUE)) is True
        assert ev(Or(FALSE, FALSE)) is False
        assert ev(Not(FALSE)) is True

    def test_empty_and_is_true(self):
        assert ev(And()) is True

    def test_empty_or_is_false(self):
        assert ev(Or()) is False

    def test_flattening(self):
        conj = And(And(x == 1, y == 2), x == 1)
        assert len(conj.args) == 3

    def test_implies(self):
        assert ev(Implies(FALSE, FALSE)) is True
        assert ev(Implies(TRUE, FALSE)) is False

    def test_equiv(self):
        assert ev(Equiv(TRUE, TRUE)) is True
        assert ev(Equiv(TRUE, FALSE)) is False

    def test_non_boolean_operand(self):
        with pytest.raises(EvalError):
            ev(And(Const(3)), x=0)

    def test_operator_overloads(self):
        assert ev((x == 1) & (y == 2), x=1, y=2) is True
        assert ev((x == 1) | (y == 2), x=0, y=2) is True
        assert ev(~(x == 1), x=0) is True
        assert ev((x == 1).implies(y == 2), x=0, y=0) is True
        assert ev((x == 1).iff(y == 1), x=1, y=1) is True


class TestComparisonArithmetic:
    def test_eq_any_values(self):
        assert ev(Eq(TupleExpr(x), TupleExpr(Const(1))), x=1) is True
        assert ev(x == "a", x="a") is True

    def test_ne(self):
        assert ev(x != 1, x=2) is True

    def test_comparisons(self):
        assert ev(x < 2, x=1) is True
        assert ev(x <= 1, x=1) is True
        assert ev(x > 0, x=1) is True
        assert ev(x >= 2, x=1) is False

    def test_comparison_type_error(self):
        with pytest.raises(EvalError):
            ev(x < 2, x="a")

    def test_arithmetic(self):
        assert ev(x + 1, x=2) == 3
        assert ev(x - 1, x=2) == 1
        assert ev(x * 3, x=2) == 6
        assert ev(x % 2, x=5) == 1
        assert ev(Arith("div", x, Const(2)), x=5) == 2

    def test_radd_rsub(self):
        assert ev(1 + x, x=2) == 3
        assert ev(5 - x, x=2) == 3
        assert ev(2 * x, x=3) == 6

    def test_division_by_zero(self):
        with pytest.raises(EvalError, match="zero"):
            ev(x % 0, x=1)

    def test_arith_type_error(self):
        with pytest.raises(EvalError):
            ev(x + 1, x=(1,))

    def test_unknown_ops_rejected(self):
        with pytest.raises(ValueError):
            Cmp("!=", x, y)
        with pytest.raises(ValueError):
            Arith("**", x, y)


class TestStructures:
    def test_tuple_expr(self):
        assert ev(TupleExpr(x, Const(2)), x=1) == (1, 2)

    def test_if_then_else(self):
        expr = IfThenElse(x > 0, x - 1, Const(0))
        assert ev(expr, x=5) == 4
        assert ev(expr, x=0) == 0

    def test_sequence_functions(self):
        assert ev(Len(x), x=(1, 2, 3)) == 3
        assert ev(Head(x), x=(1, 2)) == 1
        assert ev(Tail(x), x=(1, 2)) == (2,)
        assert ev(Append(x, Const(9)), x=(1,)) == (1, 9)
        assert ev(Cat(x, y), x=(1,), y=(2,)) == (1, 2)

    def test_nth_one_based(self):
        assert ev(Nth(x, Const(1)), x=(7, 8)) == 7
        with pytest.raises(EvalError):
            ev(Nth(x, Const(0)), x=(7,))

    def test_head_of_empty(self):
        with pytest.raises(EvalError):
            ev(Head(x), x=())

    def test_fn_arity_checked(self):
        with pytest.raises(ValueError):
            Fn("Len", x, y)

    def test_unknown_fn(self):
        with pytest.raises(ValueError, match="unknown builtin"):
            Fn("Reverse", x)

    def test_in_set(self):
        assert ev(InSet(x, interval(0, 3)), x=2) is True
        assert ev(InSet(x, interval(0, 3)), x=9) is False


class TestQuantifiers:
    def test_exists(self):
        assert ev(Exists("v", interval(0, 3), Var("v") == x), x=2) is True
        assert ev(Exists("v", interval(0, 3), Var("v") == x), x=9) is False

    def test_forall(self):
        assert ev(Forall("v", interval(0, 2), Var("v") <= x), x=2) is True
        assert ev(Forall("v", interval(0, 2), Var("v") <= x), x=1) is False

    def test_bound_var_shadows_state(self):
        assert ev(Exists("x", interval(5, 5), Var("x") == 5), x=0) is True

    def test_rigid_across_step(self):
        action = Exists("v", interval(0, 3),
                        And(Var("v") == x, Var("x", primed=True) == Var("v")))
        assert ev2(action, {"x": 2}, {"x": 2}) is True
        assert ev2(action, {"x": 2}, {"x": 3}) is False

    def test_domain_type_checked(self):
        with pytest.raises(TypeError):
            Exists("v", [0, 1], TRUE)


class TestAnalysis:
    def test_free_vars(self):
        expr = And(x == 1, Var("y", primed=True) == 2)
        assert expr.free_vars() == {"x"}
        assert expr.primed_vars() == {"y"}
        assert expr.all_vars() == {"x", "y"}

    def test_bound_vars_excluded(self):
        expr = Exists("v", interval(0, 1), Var("v") == x)
        assert expr.free_vars() == {"x"}

    def test_is_state_function(self):
        assert (x + y).is_state_function()
        assert not (Var("x", primed=True) == 1).is_state_function()


class TestSubstitution:
    def test_simple(self):
        expr = (x + y).substitute({"x": Const(5)})
        assert expr.eval_state(st(y=1)) == 6

    def test_primed_occurrence(self):
        action = Eq(Var("x", primed=True), x)
        renamed = action.substitute({"x": Var("z")})
        assert renamed.primed_vars() == {"z"}
        assert renamed.free_vars() == {"z"}

    def test_substitute_expr_into_primed(self):
        action = Eq(Var("x", primed=True), Const(0))
        subst = action.substitute({"x": y + 1})
        # x' becomes (y + 1)' = y' + 1
        assert subst.primed_vars() == {"y"}

    def test_capture_avoidance(self):
        # \E v: v = x, substitute x -> v: bound v must be renamed
        expr = Exists("v", interval(0, 1), Var("v") == x)
        subst = expr.substitute({"x": Var("v")})
        assert subst.eval_state(st(v=0)) is True
        assert subst.eval_state(st(v=1)) is True  # inner still ranges over 0..1

    def test_shadowed_binding_untouched(self):
        expr = Exists("x", interval(0, 1), Var("x") == 0)
        assert structurally_equal(expr.substitute({"x": Const(9)}), expr)

    def test_rename_vars(self):
        expr = rename_vars(x + y, {"x": "a", "y": "b"})
        assert expr.eval_state(st(a=1, b=2)) == 3


class TestPriming:
    def test_prime_expr(self):
        primed = prime_expr(x + y)
        assert primed.primed_vars() == {"x", "y"}
        assert primed.free_vars() == set()

    def test_prime_skips_bound(self):
        expr = Exists("v", interval(0, 1), Var("v") == x)
        primed = prime_expr(expr)
        assert primed.primed_vars() == {"x"}

    def test_prime_already_primed_rejected(self):
        with pytest.raises(ValueError):
            prime_expr(Eq(Var("x", primed=True), Const(0)))


class TestStructuralIdentity:
    def test_equal_trees(self):
        assert structurally_equal(x + 1, Var("x") + 1)

    def test_different_trees(self):
        assert not structurally_equal(x + 1, x + 2)
        assert not structurally_equal(x < 1, Cmp("<=", x, Const(1)))

    def test_keys_hashable(self):
        assert isinstance(hash((x + y).key()), int)

    def test_to_expr_coercion(self):
        assert structurally_equal(to_expr(5), Const(5))
        with pytest.raises(TypeError):
            to_expr(object())
