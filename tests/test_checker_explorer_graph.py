"""Unit tests for state-space exploration and the graph machinery."""

import pytest

from repro.checker import ExploreStats, StateSpaceExplosion, explore, initial_states
from repro.checker.graph import StateGraph as Graph
from repro.kernel import And, BIT, Eq, Exists, Or, Universe, Var, interval
from repro.kernel.values import Domain
from repro.spec import Spec

from tests.conftest import counter_spec, st

x, y = Var("x"), Var("y")


class TestInitialStates:
    def test_fully_determined(self):
        universe = Universe({"x": interval(0, 5)})
        assert list(initial_states(Eq(x, 3), universe)) == [st(x=3)]

    def test_partially_determined(self):
        universe = Universe({"x": BIT, "y": BIT})
        states = set(initial_states(Eq(x, 0), universe))
        assert states == {st(x=0, y=0), st(x=0, y=1)}

    def test_constraint_form(self):
        universe = Universe({"x": interval(0, 3)})
        states = set(initial_states(x < 2, universe))
        assert states == {st(x=0), st(x=1)}

    def test_disjunctive_init(self):
        universe = Universe({"x": interval(0, 3)})
        states = set(initial_states(Or(Eq(x, 0), Eq(x, 3)), universe))
        assert states == {st(x=0), st(x=3)}

    def test_exists_init(self):
        universe = Universe({"x": interval(0, 3)})
        init = Exists("v", interval(1, 2), Eq(x, Var("v")))
        assert set(initial_states(init, universe)) == {st(x=1), st(x=2)}

    def test_primed_init_rejected(self):
        with pytest.raises(ValueError):
            list(initial_states(Eq(x.prime(), 0), Universe({"x": BIT})))

    def test_unsatisfiable(self):
        universe = Universe({"x": BIT})
        assert list(initial_states(And(Eq(x, 0), Eq(x, 1)), universe)) == []

    def test_empty_domain_names_the_variable(self):
        class EmptyDomain(Domain):
            def values(self):
                return iter(())

            def __contains__(self, value):
                return False

            def size(self):
                return 0

        universe = Universe({"x": BIT, "weird": EmptyDomain()})
        with pytest.raises(ValueError, match="'weird'.*empty domain"):
            list(initial_states(Eq(x, 0), universe))


class TestExplore:
    def test_counter(self):
        graph = explore(counter_spec())
        assert graph.state_count == 3
        assert graph.init_nodes == [0]
        # stutter self-loop on every node
        for node in range(graph.state_count):
            assert node in graph.succ[node]

    def test_unreachable_states_absent(self):
        universe = Universe({"x": interval(0, 9)})
        spec = Spec("stuck", Eq(x, 0), And(Eq(x, 0), Eq(x.prime(), 1)),
                    ("x",), universe)
        graph = explore(spec)
        assert graph.state_count == 2

    def test_explosion_guard(self):
        spec = counter_spec(modulus=3)
        with pytest.raises(StateSpaceExplosion):
            explore(spec, max_states=1)

    def test_budget_enforced_at_insertion_not_per_level(self):
        # exactly the reachable count fits; one less explodes
        spec = counter_spec(modulus=3)
        graph = explore(spec, max_states=3)
        assert graph.state_count == 3
        with pytest.raises(StateSpaceExplosion, match="state budget.*2"):
            explore(spec, max_states=2)

    def test_parent_paths(self):
        graph = explore(counter_spec())
        target = graph.index[st(x=2)]
        path = graph.path_to_root(target)
        assert [graph.states[i]["x"] for i in path] == [0, 1, 2]

    def test_edge_counts_split_real_from_stutter(self):
        graph = explore(counter_spec())
        # the 3-cycle has 3 real N-edges; stutter loops are one per node
        assert graph.edge_count == 3
        assert graph.stutter_count == 3
        assert graph.total_edge_count == 6

    def test_stats_populated(self):
        stats = ExploreStats()
        graph = explore(counter_spec(), stats=stats)
        assert stats.states == graph.state_count == 3
        assert stats.edges == 3 and stats.stutter_edges == 3
        assert stats.init_states == 1
        assert stats.depth == 2  # x=0 -> x=1 -> x=2
        assert stats.states_per_sec > 0
        assert stats.explore_seconds > 0
        assert "explore" in stats.phases
        assert "states/sec" in stats.format()


class TestStateGraph:
    def build_diamond(self):
        """0 -> {1, 2} -> 3 -> 0 (plus stutter loops)."""
        graph = Graph(Universe({"x": interval(0, 3)}))
        nodes = [graph.add_state(st(x=i))[0] for i in range(4)]
        for src, dst in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]:
            graph.add_edge(nodes[src], nodes[dst])
        graph.init_nodes = [0]
        return graph

    def test_bfs_path(self):
        graph = self.build_diamond()
        path = graph.bfs_path([0], lambda n: n == 3)
        assert path is not None and path[0] == 0 and path[-1] == 3
        assert len(path) == 3

    def test_bfs_respects_filters(self):
        graph = self.build_diamond()
        path = graph.bfs_path([0], lambda n: n == 3, node_ok=lambda n: n != 1)
        assert path == [0, 2, 3]
        none = graph.bfs_path([0], lambda n: n == 3,
                              node_ok=lambda n: n not in (1, 2))
        assert none is None

    def test_bfs_source_is_target(self):
        graph = self.build_diamond()
        assert graph.bfs_path([2], lambda n: n == 2) == [2]

    def test_sccs_whole_graph(self):
        graph = self.build_diamond()
        sccs = graph.sccs()
        assert sorted(len(c) for c in sccs) == [4]

    def test_sccs_with_edge_filter(self):
        graph = self.build_diamond()
        # cutting 3 -> 0 leaves only stutter-loop singletons
        sccs = graph.sccs(edge_ok=lambda s, d: (s, d) != (3, 0))
        assert sorted(len(c) for c in sccs) == [1, 1, 1, 1]

    def test_sccs_no_stutter_no_component(self):
        graph = self.build_diamond()
        sccs = graph.sccs(
            edge_ok=lambda s, d: s != d and (s, d) != (3, 0))
        assert sccs == []

    def test_covering_cycle_visits_everything(self):
        graph = self.build_diamond()
        cycle = graph.covering_cycle([0, 1, 2, 3])
        assert set(cycle) == {0, 1, 2, 3}
        # consecutive nodes connected, and wrap edge exists
        extended = cycle + [cycle[0]]
        for a, b in zip(extended, extended[1:]):
            assert b in graph.succ[a]

    def test_covering_cycle_with_required_edges(self):
        graph = self.build_diamond()
        cycle = graph.covering_cycle([0, 1, 2, 3],
                                     required_edges=[(0, 2), (0, 1)])
        pairs = set(zip(cycle, cycle[1:] + [cycle[0]]))
        assert (0, 2) in pairs and (0, 1) in pairs

    def test_covering_cycle_singleton_stutter(self):
        graph = self.build_diamond()
        assert graph.covering_cycle([1], edge_ok=lambda s, d: s == d) == [1]

    def test_covering_cycle_rejects_non_edge_requirement(self):
        graph = self.build_diamond()
        # (1, 2) is not an edge of the diamond at all
        with pytest.raises(ValueError, match=r"required edge \(1, 2\)"):
            graph.covering_cycle([0, 1, 2, 3], required_edges=[(1, 2)])

    def test_covering_cycle_rejects_filtered_requirement(self):
        graph = self.build_diamond()
        # (0, 1) exists but the filter forbids it
        with pytest.raises(ValueError, match="edge filter"):
            graph.covering_cycle([0, 1, 2, 3],
                                 edge_ok=lambda s, d: (s, d) != (0, 1),
                                 required_edges=[(0, 1)])

    def test_covering_cycle_rejects_requirement_outside_component(self):
        graph = self.build_diamond()
        with pytest.raises(ValueError, match="leaves the component"):
            graph.covering_cycle([0, 1, 3], required_edges=[(0, 2)])

    def test_add_state_idempotent(self):
        graph = Graph(Universe({"x": BIT}))
        n1, new1 = graph.add_state(st(x=0))
        n2, new2 = graph.add_state(st(x=0))
        assert n1 == n2 and new1 and not new2

    def test_add_edge_deduplicates_and_counts(self):
        graph = Graph(Universe({"x": interval(0, 3)}))
        nodes = [graph.add_state(st(x=i))[0] for i in range(3)]
        graph.add_edge(nodes[0], nodes[1])
        graph.add_edge(nodes[0], nodes[1])  # duplicate: ignored
        graph.add_edge(nodes[0], nodes[0])  # stutter: never re-added
        graph.add_edge(nodes[1], nodes[2])
        assert graph.succ[0] == [0, 1]  # stutter first, then the real edge
        assert graph.edge_count == 2
        assert graph.stutter_count == 3
        assert graph.has_edge(0, 1) and graph.has_edge(0, 0)
        assert not graph.has_edge(0, 2)

    def test_graph_level_budget(self):
        graph = Graph(Universe({"x": interval(0, 9)}), max_states=2,
                      name="tiny")
        graph.add_state(st(x=0))
        graph.add_state(st(x=1))
        graph.add_state(st(x=1))  # re-interning an old state is free
        with pytest.raises(StateSpaceExplosion, match="'tiny'.*2 states"):
            graph.add_state(st(x=2))


class TestNodeIdValidation:
    """Out-of-graph node ids (typically states dropped past the
    ``max_states`` budget) get a defined ``ValueError``, never a silent
    negative-index path or a bare ``IndexError``."""

    def build(self):
        graph = Graph(Universe({"x": interval(0, 3)}))
        nodes = [graph.add_state(st(x=i))[0] for i in range(3)]
        graph.add_edge(nodes[0], nodes[1])
        graph.add_edge(nodes[1], nodes[2])
        graph.parent = [None, 0, 1]
        graph.init_nodes = [0]
        return graph

    @pytest.mark.parametrize("bogus", [-1, -7, 3, 10**9])
    def test_path_to_root_rejects_out_of_graph_ids(self, bogus):
        graph = self.build()
        with pytest.raises(ValueError, match="not in this graph"):
            graph.path_to_root(bogus)

    def test_path_to_root_message_names_the_budget(self):
        graph = self.build()
        with pytest.raises(ValueError, match="max_states budget"):
            graph.path_to_root(99)

    @pytest.mark.parametrize("bogus", [-1, 3, 10**9])
    def test_bfs_path_rejects_out_of_graph_sources(self, bogus):
        graph = self.build()
        with pytest.raises(ValueError, match="not in this graph"):
            graph.bfs_path([0, bogus], lambda n: n == 2)

    def test_bfs_path_still_accepts_valid_generators(self):
        # sources may be any iterable; validation must not consume it
        # before filtering
        graph = self.build()
        path = graph.bfs_path(iter([0]), lambda n: n == 2)
        assert path == [0, 1, 2]

    def test_negative_id_does_not_wrap_around(self):
        # the regression this guards: parent[-1] used to index from the
        # end and produce a wrong-but-plausible path instead of an error
        graph = self.build()
        with pytest.raises(ValueError):
            graph.path_to_root(-1)


class TestCompactNodeIdValidation:
    """The compact graph mirrors the id-validation contract."""

    def build(self):
        from repro.checker import explore_compact
        from repro.systems.queue import complete_queue
        return explore_compact(complete_queue(2))

    @pytest.mark.parametrize("bogus", [-1, 10**9])
    def test_path_to_root_rejects_out_of_graph_ids(self, bogus):
        graph = self.build()
        with pytest.raises(ValueError, match="not in this graph"):
            graph.path_to_root(bogus)

    @pytest.mark.parametrize("bogus", [-1, 10**9])
    def test_state_at_rejects_out_of_graph_ids(self, bogus):
        graph = self.build()
        with pytest.raises(ValueError, match="not in this graph"):
            graph.state_at(bogus)

    def test_trace_to_rejects_out_of_graph_ids(self):
        graph = self.build()
        with pytest.raises(ValueError, match="not in this graph"):
            graph.trace_to(graph.state_count)
