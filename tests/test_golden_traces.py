"""Golden-trace regression suite: counterexample rendering, frozen.

For every system-under-test case (see ``tests/systems_under_test.py``)
the violated property's rendered counterexample is compared
**byte-for-byte** against a checked-in golden file.  Counterexample
traces are part of the user-facing contract -- the paper's Figure 2 is
literally such a table -- so any change to exploration order, trace
reconstruction, lasso search, or table formatting shows up here as a
reviewable diff instead of silently shifting what users see.

The renders are deterministic by construction: exploration is BFS over
a deterministic successor enumeration, state fingerprints are
``PYTHONHASHSEED``-independent, and ``Counterexample.render`` sorts its
variable rows -- the suite double-checks the render is identical across
two fresh explorations.

Run ``pytest tests/test_golden_traces.py --update-goldens`` after an
*intentional* output change, eyeball the diff, and commit the new files.
"""

from __future__ import annotations

import pytest

from repro.checker import explore

from .systems_under_test import CASE_PARAMS


def _rendered_violation(case) -> str:
    spec = case.make_spec()
    graph = explore(spec)
    result = case.check(spec, graph)
    assert not result.ok, f"{case.id}: expected a violation"
    assert result.counterexample is not None
    kind = "lasso" if result.counterexample.is_lasso else "finite"
    assert kind == case.kind
    # goldens end with a newline so they diff cleanly as text files
    return result.counterexample.render() + "\n"


@pytest.mark.parametrize("case", CASE_PARAMS)
def test_violation_trace_matches_golden(case, golden):
    golden.check(f"{case.id}_trace.txt", _rendered_violation(case))


@pytest.mark.parametrize("case", CASE_PARAMS)
def test_render_is_deterministic_across_runs(case):
    assert _rendered_violation(case) == _rendered_violation(case)


@pytest.mark.parametrize("case", CASE_PARAMS)
def test_summary_line_matches_golden(case, golden):
    spec = case.make_spec()
    graph = explore(spec)
    result = case.check(spec, graph)
    golden.check(f"{case.id}_summary.txt", result.summary() + "\n")
