"""Unit tests for the value model and finite domains."""

import pytest

from repro.kernel.values import (
    BIT,
    BOOLEAN,
    Domain,
    FiniteDomain,
    ProductDomain,
    TupleDomain,
    check_value,
    format_value,
    interval,
    is_value,
)


class TestIsValue:
    def test_scalars(self):
        assert is_value(0)
        assert is_value(True)
        assert is_value("hello")
        assert is_value(-17)

    def test_tuples(self):
        assert is_value(())
        assert is_value((1, 2, 3))
        assert is_value((1, ("a", True)))

    def test_frozensets(self):
        assert is_value(frozenset({1, 2}))
        assert is_value(frozenset())

    def test_rejects_mutables(self):
        assert not is_value([1, 2])
        assert not is_value({"a": 1})
        assert not is_value({1, 2})

    def test_rejects_none_and_floats(self):
        assert not is_value(None)
        assert not is_value(1.5)

    def test_rejects_nested_bad(self):
        assert not is_value((1, [2]))


class TestCheckValue:
    def test_passes_through(self):
        assert check_value(42) == 42
        assert check_value((1, 2)) == (1, 2)

    def test_raises_with_context(self):
        with pytest.raises(TypeError, match="my thing"):
            check_value([1], "my thing")


class TestFormatValue:
    def test_booleans(self):
        assert format_value(True) == "TRUE"
        assert format_value(False) == "FALSE"

    def test_sequences(self):
        assert format_value(()) == "<<>>"
        assert format_value((1, 2)) == "<<1, 2>>"

    def test_nested(self):
        assert format_value(((1,),)) == "<<<<1>>>>"

    def test_strings_quoted(self):
        assert format_value("hi") == '"hi"'

    def test_ints(self):
        assert format_value(7) == "7"


class TestFiniteDomain:
    def test_membership(self):
        domain = FiniteDomain([0, 1, 2])
        assert 1 in domain
        assert 3 not in domain
        assert "x" not in domain

    def test_unhashable_not_member(self):
        assert [1] not in FiniteDomain([0, 1])

    def test_dedup_preserves_order(self):
        domain = FiniteDomain([2, 1, 2, 0, 1])
        assert list(domain.values()) == [2, 1, 0]

    def test_size(self):
        assert FiniteDomain([0, 1, 2]).size() == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FiniteDomain([])

    def test_invalid_element_rejected(self):
        with pytest.raises(TypeError):
            FiniteDomain([[1]])

    def test_equality_and_hash(self):
        assert FiniteDomain([0, 1]) == FiniteDomain([1, 0])
        assert hash(FiniteDomain([0, 1])) == hash(FiniteDomain([1, 0]))
        assert FiniteDomain([0, 1]) != FiniteDomain([0, 1, 2])

    def test_iter(self):
        assert sorted(FiniteDomain([2, 0, 1])) == [0, 1, 2]


class TestInterval:
    def test_inclusive(self):
        assert list(interval(1, 3).values()) == [1, 2, 3]

    def test_singleton(self):
        assert list(interval(5, 5).values()) == [5]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            interval(3, 2)

    def test_bit_and_boolean(self):
        assert list(BIT.values()) == [0, 1]
        assert list(BOOLEAN.values()) == [False, True]


class TestTupleDomain:
    def test_values_by_length(self):
        domain = TupleDomain(BIT, max_len=2)
        values = list(domain.values())
        assert () in values
        assert (0,) in values and (1,) in values
        assert (0, 1) in values and (1, 1) in values
        assert len(values) == 1 + 2 + 4

    def test_membership(self):
        domain = TupleDomain(BIT, max_len=2)
        assert (0, 1) in domain
        assert (0, 1, 0) not in domain  # too long
        assert (2,) not in domain       # bad element
        assert 0 not in domain          # not a tuple

    def test_min_len(self):
        domain = TupleDomain(BIT, max_len=2, min_len=1)
        assert () not in domain
        assert (0,) in domain
        assert domain.size() == 2 + 4

    def test_size_closed_form(self):
        domain = TupleDomain(interval(0, 2), max_len=3)
        assert domain.size() == 1 + 3 + 9 + 27
        assert domain.size() == len(list(domain.values()))

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            TupleDomain(BIT, max_len=1, min_len=2)


class TestProductDomain:
    def test_values(self):
        domain = ProductDomain([BIT, interval(0, 1)])
        assert sorted(domain.values()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_membership(self):
        domain = ProductDomain([BIT, BIT])
        assert (0, 1) in domain
        assert (0,) not in domain
        assert (0, 2) not in domain

    def test_size(self):
        assert ProductDomain([BIT, BIT, BIT]).size() == 8

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ProductDomain([])


class TestDomainBase:
    def test_abstract(self):
        with pytest.raises(NotImplementedError):
            Domain().values()
        with pytest.raises(NotImplementedError):
            0 in Domain()
