"""JobManager state machine: the queued -> running -> terminal
lifecycle, streaming level events, caching/coalescing dispositions,
admission control, cooperative cancellation, and the acceptance
scenario -- graceful shutdown mid-job checkpoints, and a fresh manager
on the same state directory resumes to the identical graph digest."""

import asyncio
import json
import os
import time

import pytest

from repro.parser import ParseError
from repro.service.jobs import (
    MAX_MODULE_SOURCE,
    CheckRequest,
    JobManager,
    QueueFull,
    run_check,
    valid_job_id,
)

COUNTER_TLA = """
MODULE Counter
CONSTANT N = 3
VARIABLE x \\in 0..2
Init == x = 0
Next == x' = (x + 1) % N
Spec == Init /\\ [][Next]_<<x>> /\\ WF_<<x>>(Next)
Small == x < 3
TooSmall == x < 2
Progress == (x = 0) ~> (x = 2)
"""

# a 41-level chain: slow enough (with level_delay) to watch, cancel,
# and interrupt mid-flight, fast enough to finish within a test
CHAIN_TLA = """
MODULE Chain
CONSTANT N = 40
VARIABLE x \\in 0..40
Init == x = 0
Next == x' = IF x < N THEN x + 1 ELSE x
Spec == Init /\\ [][Next]_<<x>>
Bound == x <= 40
"""


def counter_request(**overrides):
    overrides.setdefault("module_source", COUNTER_TLA)
    overrides.setdefault("invariants", ("Small",))
    return CheckRequest(**overrides)


def chain_request(**overrides):
    overrides.setdefault("invariants", ("Bound",))
    return CheckRequest(module_source=CHAIN_TLA, **overrides)


async def wait_for(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        await asyncio.sleep(0.02)


async def wait_terminal(job, timeout=30.0):
    await wait_for(lambda: job.terminal, timeout,
                   f"job {job.id} to finish (state={job.state})")
    return job


class TestLifecycle:
    def test_submit_runs_to_done_with_events(self, tmp_path):
        async def scenario():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            job, disposition = manager.submit(counter_request())
            assert disposition == "created"
            assert job.state == "queued"
            await wait_terminal(job)
            await manager.shutdown()
            return job

        job = asyncio.run(scenario())
        assert job.state == "done"
        assert job.result["verdict"] == "ok"
        assert job.result["states"] == 3
        assert job.result["graph_digest"]
        kinds = [event["event"] for event in job.events]
        assert kinds[0] == "queued"
        assert kinds[1] == "started"
        assert kinds[-1] == "done"
        assert kinds.count("level") == job.result["stats"]["levels_seen"]
        # seq is a gap-free stream index (what the NDJSON watcher relies on)
        assert [event["seq"] for event in job.events] \
            == list(range(len(job.events)))
        # done jobs leave no checkpoint behind
        assert not os.path.exists(job.checkpoint_path)

    def test_violation_carries_portable_trace(self, tmp_path):
        async def scenario():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            job, _ = manager.submit(counter_request(invariants=("TooSmall",)))
            await wait_terminal(job)
            await manager.shutdown()
            return job

        job = asyncio.run(scenario())
        assert job.state == "done"
        assert job.result["verdict"] == "violation"
        (check,) = job.result["checks"]
        assert check["ok"] is False
        assert check["counterexample"] is not None

    def test_explosion_is_a_verdict_not_a_failure(self, tmp_path):
        async def scenario():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            job, _ = manager.submit(counter_request(max_states=2))
            await wait_terminal(job)
            # explosions are pure functions of the request too: cached
            rerun, disposition = manager.submit(counter_request(max_states=2))
            await manager.shutdown()
            return job, rerun, disposition

        job, rerun, disposition = asyncio.run(scenario())
        assert job.state == "done"
        assert job.result["verdict"] == "explosion"
        assert "state budget" in job.result["error"]
        assert disposition == "cached"
        assert rerun.result["verdict"] == "explosion"

    def test_record_and_event_log_persisted(self, tmp_path):
        async def scenario():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            job, _ = manager.submit(counter_request())
            await wait_terminal(job)
            await manager.shutdown()
            return job

        job = asyncio.run(scenario())
        record_path = tmp_path / "jobs" / (job.id + ".json")
        record = json.loads(record_path.read_text())
        assert record["state"] == "done"
        assert record["result"]["verdict"] == "ok"
        events_path = tmp_path / "jobs" / (job.id + ".events.ndjson")
        lines = [json.loads(line) for line in
                 events_path.read_text().splitlines() if line]
        assert lines == job.events

    def test_bad_submissions_rejected_eagerly(self, tmp_path):
        async def scenario():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            outcomes = {}
            for key, request in {
                "parse": CheckRequest(module_source="MODULE Bad\nInit == x ="),
                "spec": counter_request(spec="NoSuchSpec"),
                "name": counter_request(invariants=("NoSuchInv",)),
            }.items():
                try:
                    manager.submit(request)
                except (ParseError, ValueError, KeyError) as exc:
                    outcomes[key] = exc
            await manager.shutdown()
            return outcomes

        outcomes = asyncio.run(scenario())
        assert set(outcomes) == {"parse", "spec", "name"}

    def test_validate_request_is_submit_precheck(self, tmp_path):
        # the HTTP layer runs this on an executor thread, then submits
        # with prevalidated=True -- both paths must agree
        async def scenario():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            with pytest.raises(KeyError):
                manager.validate_request(
                    counter_request(invariants=("NoSuchInv",)))
            manager.validate_request(counter_request())
            job, disposition = manager.submit(counter_request(),
                                              prevalidated=True)
            assert disposition == "created"
            await wait_terminal(job)
            await manager.shutdown()
            return job

        assert asyncio.run(scenario()).state == "done"


class TestJobIdValidation:
    """Wire-supplied job ids are joined into jobs/<id>.* paths; anything
    that is not literally a generated id must be refused before any
    disk path is derived from it (the path-traversal regression)."""

    def test_valid_job_id_shape(self):
        assert valid_job_id("0123456789ab")
        for bad in ("", "0123456789AB", "0123456789abc", "0123456789a",
                    "../abcdef0123", "abcdef012345/../x", "0123456789a\n",
                    None, 123456789012):
            assert not valid_job_id(bad)

    def test_traversal_ids_cannot_reach_outside_jobs_dir(self, tmp_path):
        # a readable JSON file one level above jobs/ -- reachable via
        # "../<name>" before ids were validated
        outside = tmp_path / "outside.json"
        outside.write_text(json.dumps({"id": "x", "state": "queued"}))

        async def scenario():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            for evil in ("../outside", "../../../../etc/passwd",
                         "..%2foutside"):
                assert manager.job_record(evil) is None
                assert manager.job_events(evil) is None
                record, accepted = manager.cancel_any(evil)
                assert record is None and accepted is False
            await manager.shutdown()

        asyncio.run(scenario())
        # in particular no attacker-placed ".cancel" flag appeared next
        # to the targeted file
        assert not (tmp_path / "outside.cancel").exists()
        assert sorted(p.name for p in tmp_path.glob("*.cancel")) == []


class TestCacheAndCoalescing:
    def test_identical_resubmission_is_cached_with_zero_exploration(
            self, tmp_path):
        async def scenario():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            first, first_disposition = manager.submit(counter_request())
            await wait_terminal(first)
            # execution-only knobs differ; the fingerprint must not
            second, second_disposition = manager.submit(
                counter_request(workers=2, checkpoint_every=5))
            await manager.shutdown()
            return first, first_disposition, second, second_disposition

        first, d1, second, d2 = asyncio.run(scenario())
        assert (d1, d2) == ("created", "cached")
        assert second.state == "done" and second.cache_hit is True
        assert first.cache_hit is False
        # byte-identical verdict, trace, and graph -- served from cache
        assert second.result == first.result
        # zero new exploration: the cached job never started or levelled
        kinds = [event["event"] for event in second.events]
        assert kinds == ["done"]
        assert second.events[0]["cache_hit"] is True

    def test_any_semantic_change_misses_the_cache(self, tmp_path):
        async def scenario():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            first, _ = manager.submit(counter_request())
            await wait_terminal(first)
            changed, disposition = manager.submit(
                counter_request(module_source=COUNTER_TLA + "\n"))
            await wait_terminal(changed)
            await manager.shutdown()
            return disposition

        assert asyncio.run(scenario()) == "created"

    def test_cache_survives_a_manager_restart(self, tmp_path):
        async def first_life():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            job, _ = manager.submit(counter_request())
            await wait_terminal(job)
            await manager.shutdown()
            return job.result

        async def second_life():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            job, disposition = manager.submit(counter_request())
            await manager.shutdown()
            return job, disposition

        fresh_result = asyncio.run(first_life())
        job, disposition = asyncio.run(second_life())
        assert disposition == "cached"
        assert job.result == fresh_result

    def test_concurrent_identical_submissions_coalesce(self, tmp_path):
        async def scenario():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            slow = chain_request(level_delay=0.05)
            first, _ = manager.submit(slow)
            await wait_for(lambda: first.state == "running",
                           message="job to start")
            attached = [manager.submit(slow) for _ in range(4)]
            await wait_terminal(first)
            await manager.shutdown()
            return first, attached

        first, attached = asyncio.run(scenario())
        assert all(job is first for job, _ in attached)
        assert all(d == "coalesced" for _, d in attached)
        assert first.coalesced == 4
        assert first.state == "done" and first.result["verdict"] == "ok"


class TestAdmissionControl:
    def test_queue_limit_rejects_with_retry_after(self, tmp_path):
        async def scenario():
            manager = JobManager(str(tmp_path), pool_size=1, queue_limit=1)
            await manager.start()
            running, _ = manager.submit(chain_request(level_delay=0.05))
            await wait_for(lambda: running.state == "running",
                           message="job to start")
            # distinct max_states => distinct fingerprints, no coalescing
            queued, disposition = manager.submit(
                chain_request(max_states=1000))
            assert disposition == "created"
            try:
                manager.submit(chain_request(max_states=1001))
            except QueueFull as exc:
                rejection = exc
            else:
                rejection = None
            manager.cancel(running.id)
            await wait_terminal(running)
            await wait_terminal(queued)
            await manager.shutdown()
            return rejection

        rejection = asyncio.run(scenario())
        assert rejection is not None
        assert rejection.retry_after >= 1.0


class TestCancellation:
    def test_cancel_queued_is_immediate(self, tmp_path):
        async def scenario():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            running, _ = manager.submit(chain_request(level_delay=0.05))
            await wait_for(lambda: running.state == "running",
                           message="job to start")
            waiting, _ = manager.submit(chain_request(max_states=1000))
            job, accepted = manager.cancel(waiting.id)
            assert accepted and job.state == "cancelled"
            manager.cancel(running.id)
            await wait_terminal(running)
            await manager.shutdown()
            return waiting

        waiting = asyncio.run(scenario())
        assert waiting.state == "cancelled"
        assert waiting.events[-1]["while_state"] == "queued"

    def test_cancel_running_lands_at_next_level_boundary(self, tmp_path):
        async def scenario():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            job, _ = manager.submit(chain_request(level_delay=0.05))
            await wait_for(
                lambda: any(e["event"] == "level" for e in job.events),
                message="first level event")
            _, accepted = manager.cancel(job.id)
            assert accepted
            await wait_terminal(job)
            await manager.shutdown()
            return job

        job = asyncio.run(scenario())
        assert job.state == "cancelled"
        kinds = [event["event"] for event in job.events]
        assert "cancel_requested" in kinds
        assert job.events[-1]["while_state"] == "running"
        # it stopped early: nowhere near the chain's 41 levels
        assert kinds.count("level") < 41
        assert not os.path.exists(job.checkpoint_path)

    def test_cancel_terminal_job_is_rejected(self, tmp_path):
        async def scenario():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            job, _ = manager.submit(counter_request())
            await wait_terminal(job)
            _, accepted = manager.cancel(job.id)
            await manager.shutdown()
            return accepted

        assert asyncio.run(scenario()) is False

    def test_cancel_unknown_job(self, tmp_path):
        async def scenario():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            job, accepted = manager.cancel("nope")
            await manager.shutdown()
            return job, accepted

        assert asyncio.run(scenario()) == (None, False)


class TestShutdownAndResume:
    """The acceptance scenario: interrupt mid-job, restart, resume to
    the bit-for-bit identical graph."""

    def test_interrupted_job_resumes_to_identical_digest(self, tmp_path):
        request = chain_request(level_delay=0.05)
        fresh = run_check(chain_request())  # no pacing: the reference run

        async def first_life():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            job, _ = manager.submit(request)
            await wait_for(
                lambda: sum(1 for e in job.events
                            if e["event"] == "level") >= 3,
                message="a few levels of progress")
            await manager.shutdown()  # SIGTERM equivalent
            return job

        job = asyncio.run(first_life())
        assert job.state == "queued"  # interrupted, not lost
        assert job.resume is True
        assert os.path.exists(job.checkpoint_path)
        kinds = [event["event"] for event in job.events]
        assert kinds[-1] == "interrupted"
        assert 3 <= kinds.count("level") < 41  # genuinely mid-flight
        record = json.loads(
            (tmp_path / "jobs" / (job.id + ".json")).read_text())
        assert record["state"] == "queued" and record["resume"] is True

        async def second_life():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()  # recovery requeues the interrupted job
            resumed = manager.get(job.id)
            assert resumed is not None
            await wait_terminal(resumed)
            await manager.shutdown()
            return resumed

        resumed = asyncio.run(second_life())
        assert resumed.state == "done"
        assert resumed.result["verdict"] == "ok"
        # the resumed exploration produced the same graph, bit for bit
        assert resumed.result["graph_digest"] == fresh["graph_digest"]
        assert resumed.result["states"] == fresh["states"]
        assert resumed.result["edges"] == fresh["edges"]
        kinds = [event["event"] for event in resumed.events]
        assert "requeued" in kinds
        started = [e for e in resumed.events if e["event"] == "started"]
        assert started[-1]["resume"] is True
        assert not os.path.exists(resumed.checkpoint_path)

    def test_crashed_running_job_is_requeued_on_recovery(self, tmp_path):
        # simulate a worker crash (no graceful drain): a persisted record
        # stuck in "running" with no checkpoint must restart from scratch
        manager = JobManager(str(tmp_path), pool_size=1)
        request = counter_request()
        job = manager._new_job(request, request.fingerprint())
        job.state = "running"
        manager._jobs[job.id] = job
        manager._persist(job)

        async def next_life():
            recovered = JobManager(str(tmp_path), pool_size=1)
            await recovered.start()
            revived = recovered.get(job.id)
            assert revived is not None
            await wait_terminal(revived)
            await recovered.shutdown()
            return revived

        revived = asyncio.run(next_life())
        assert revived.state == "done"
        assert revived.resume is False  # no checkpoint survived the crash
        assert revived.result["verdict"] == "ok"

    def test_health_counters(self, tmp_path):
        async def scenario():
            manager = JobManager(str(tmp_path), pool_size=2, queue_limit=5)
            await manager.start()
            job, _ = manager.submit(counter_request())
            await wait_terminal(job)
            manager.submit(counter_request())  # cache hit
            health = manager.health()
            await manager.shutdown()
            return health

        health = asyncio.run(scenario())
        assert health["status"] == "ok"
        assert health["pool_size"] == 2 and health["queue_limit"] == 5
        assert health["jobs"]["done"] == 2
        assert health["cache"]["hits"] == 1
        assert health["cache"]["entries"] == 1

    def test_journal_compacts_when_log_outgrows_threshold(
            self, tmp_path, monkeypatch):
        # shutdown() compacts on graceful drains, but a long-lived (or
        # later SIGKILLed) process must fold the log in flight too
        monkeypatch.setattr("repro.service.jobs.JOURNAL_COMPACT_BYTES", 1)

        async def scenario():
            manager = JobManager(str(tmp_path), pool_size=1)
            await manager.start()
            job, _ = manager.submit(counter_request())
            await wait_terminal(job)
            # the fold runs on an executor thread after the job finishes
            await wait_for(
                lambda: not manager._compacting
                and manager.journal.log_size() == 0,
                message="in-flight journal compaction")
            folded = manager.journal.replay()
            await manager.shutdown()
            return job, folded

        job, folded = asyncio.run(scenario())
        assert folded[job.id]["state"] == "done"
        assert folded[job.id]["verdict"] == "ok"


class TestRequestValidation:
    def test_from_dict_roundtrip(self):
        request = chain_request(workers=2, level_delay=0.5)
        assert CheckRequest.from_dict(request.to_dict()) == request

    def test_single_string_invariant_is_accepted(self):
        request = CheckRequest.from_dict(
            {"module_source": COUNTER_TLA, "invariants": "Small"})
        assert request.invariants == ("Small",)

    @pytest.mark.parametrize("payload, fragment", [
        ({}, "module_source"),
        ({"module_source": ""}, "module_source"),
        ({"module_source": "m", "bogus": 1}, "unknown request fields"),
        ({"module_source": "m", "max_states": 0}, "max_states"),
        ({"module_source": "m", "max_states": True}, "max_states"),
        ({"module_source": "m", "checkpoint_every": 0}, "checkpoint_every"),
        ({"module_source": "m", "level_delay": -1}, "level_delay"),
        ({"module_source": "m", "level_delay": 60}, "level_delay"),
        ({"module_source": "m", "por": "yes"}, "por"),
        ({"module_source": "m", "invariants": [1]}, "invariants"),
    ])
    def test_bad_payloads_rejected(self, payload, fragment):
        with pytest.raises(ValueError, match=fragment):
            CheckRequest.from_dict(payload)

    def test_oversized_module_source_rejected(self):
        # the cap keeps admission-time parsing and journal lines bounded
        huge = "M" * (MAX_MODULE_SOURCE + 1)
        with pytest.raises(ValueError, match="at most"):
            CheckRequest.from_dict({"module_source": huge})
        # exactly at the cap is still only a parse error, not a size one
        with pytest.raises(ValueError) as excinfo:
            CheckRequest.from_dict({"module_source": "M" * MAX_MODULE_SOURCE,
                                    "spec": ""})
        assert "at most" not in str(excinfo.value)


class TestCompactRequests:
    """The compact engine through the service: same verdict, same trace,
    same graph digest, a distinct cache identity, and the property /
    unsupported-spec fallbacks ride the notes channel."""

    def test_verdict_trace_and_digest_match_full(self):
        full = run_check(counter_request(invariants=("Small", "TooSmall")))
        compact = run_check(counter_request(
            invariants=("Small", "TooSmall"), compact=True))
        assert compact["verdict"] == full["verdict"] == "violation"
        assert compact["graph_digest"] == full["graph_digest"]
        assert compact["checks"] == full["checks"]
        assert (compact["states"], compact["edges"], compact["stutter"]) \
            == (full["states"], full["edges"], full["stutter"])
        assert compact["stats"]["engine"] == "compact"
        assert full["stats"]["engine"] == "full"
        assert compact["stats"]["fingerprint_collisions"] == 0
        assert "collision_probability_bound" in compact["stats"]

    def test_compact_addresses_the_cache_separately(self):
        assert (counter_request(compact=True).fingerprint()
                != counter_request().fingerprint())
        assert counter_request(compact=True).semantic_config()["compact"] \
            is True

    def test_properties_auto_disable_compact_with_note(self):
        result = run_check(counter_request(
            properties=("Progress",), compact=True))
        assert result["verdict"] == "ok"
        assert any("compact engine disabled" in note
                   for note in result["notes"])
        assert result["stats"]["engine"] == "full"

    def test_explosion_verdict_matches_full(self):
        full = run_check(chain_request(max_states=5))
        compact = run_check(chain_request(max_states=5, compact=True))
        assert compact["verdict"] == full["verdict"] == "explosion"
        assert compact["error"] == full["error"]

    def test_from_dict_accepts_and_roundtrips_compact(self):
        request = CheckRequest.from_dict(
            {"module_source": COUNTER_TLA, "compact": True})
        assert request.compact is True
        assert CheckRequest.from_dict(request.to_dict()) == request

    @pytest.mark.parametrize("payload, fragment", [
        ({"module_source": "m", "compact": 1}, "compact"),
        ({"module_source": "m", "compact": True, "por": True},
         "mutually exclusive"),
    ])
    def test_bad_compact_payloads_rejected(self, payload, fragment):
        with pytest.raises(ValueError, match=fragment):
            CheckRequest.from_dict(payload)

    def test_compact_job_through_the_manager(self, tmp_path):
        async def scenario():
            manager = JobManager(str(tmp_path / "svc"), pool_size=1)
            await manager.start()
            job, disposition = manager.submit(
                counter_request(invariants=("TooSmall",), compact=True))
            assert disposition == "created"
            await wait_terminal(job)
            await manager.shutdown()
            return job

        job = asyncio.run(scenario())
        assert job.state == "done"
        assert job.result["verdict"] == "violation"
        reference = run_check(counter_request(invariants=("TooSmall",)))
        assert job.result["graph_digest"] == reference["graph_digest"]
