"""Differential tests: the bounded symbolic engine vs the explicit one.

The explicit BFS is the reference semantics.  For every bundled system
and a panel of seeded random specs, the symbolic engine's verdict must
agree with the explicit engine's under the bounded reading:

* explicit VIOLATION at BFS level L, symbolic depth k >= L  =>
  symbolic VIOLATION whose decoded trace *replays* on the concrete
  spec (first state initial, every step a real ``SuccessorPlan``
  successor, last state violating) -- and, with minimisation on, has
  exactly the explicit counterexample's length (the stutter-closed
  encoding makes the minimal SAT depth equal the BFS violation level);
* explicit HOLDS  =>  symbolic UNKNOWN at any depth -- never HOLDS,
  bounded search proves nothing about deeper states;
* symbolic depth k < L  =>  UNKNOWN(k), again never HOLDS.

The deep protocol instances (broken Lamport mutex, violation at level
12; broken Paxos, level 16) take minutes on the pure-Python CDCL
solver, so they run only when ``REPRO_SYMBOLIC_DEEP`` is set -- the CI
``symbolic-differential`` job sets it; the tier-1 run keeps the fast
systems and the random panel.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.checker import check_invariant, explore
from repro.checker.explorer import initial_states
from repro.checker.stats import ExploreStats
from repro.engine import (
    HOLDS,
    UNKNOWN,
    VIOLATION,
    SymbolicEngine,
    available_engines,
    create_engine,
)
from repro.kernel import packed
from repro.kernel.action import compile_action
from repro.kernel.expr import And, Cmp, Const, Eq, Len, Not, Var
from repro.kernel.state import Universe
from repro.kernel.values import FiniteDomain
from repro.spec import Spec
from repro.systems.arbiter import composed_system
from repro.systems.handshake import ready
from repro.systems.mutex import LamportMutex
from repro.systems.paxos import Paxos
from repro.systems.queue import complete_queue

from tests.test_compact_differential import handshake_system, random_spec

DEEP = bool(os.environ.get("REPRO_SYMBOLIC_DEEP"))
needs_deep = pytest.mark.skipif(
    not DEEP, reason="minutes-long CDCL solves; set REPRO_SYMBOLIC_DEEP=1")


def assert_replays(spec, trace, invariant) -> None:
    """The decoded trace is a real behaviour of *spec* ending in a
    violation: this is what makes a symbolic counterexample evidence
    rather than a SAT artifact."""
    states = list(trace)
    assert states, "empty counterexample trace"
    assert states[0] in set(initial_states(spec.init, spec.universe)), (
        f"trace does not start in an initial state: {states[0]!r}")
    plan = compile_action(spec.next_action).plan(spec.universe)
    for pre, post in zip(states, states[1:]):
        assert post in set(plan.successors(pre)), (
            f"decoded step is not a successor: {pre!r} -> {post!r}")
    final = states[-1]
    from repro.kernel.expr import Env

    assert invariant.holds(Env(final)) is False, (
        f"final trace state does not violate the invariant: {final!r}")


def differential(spec, invariant, depth, minimize=True):
    """Run both engines; return (explicit CheckResult, EngineResult)."""
    stats = ExploreStats()
    graph = explore(spec, stats=stats)
    explicit = check_invariant(graph, invariant)
    symbolic = SymbolicEngine(depth=depth, minimize=minimize).check_invariant(
        spec, invariant)
    return explicit, symbolic


class TestBundledSystems:
    def test_queue_overflow_found_at_the_bfs_level(self):
        spec = complete_queue(2)
        invariant = Cmp("<=", Len(Var("q")), 1)
        explicit, symbolic = differential(spec, invariant, depth=6)
        assert not explicit.ok and symbolic.verdict == VIOLATION
        explicit_len = len(list(explicit.counterexample.states()))
        got = list(symbolic.counterexample.states())
        assert len(got) == explicit_len  # minimal: depth == BFS level
        assert_replays(spec, symbolic.counterexample.trace, invariant)

    def test_handshake_violation_and_tautology(self):
        spec = handshake_system()
        violated = ready("c")
        explicit, symbolic = differential(spec, violated, depth=4)
        assert not explicit.ok and symbolic.verdict == VIOLATION
        assert len(list(symbolic.counterexample.states())) == len(
            list(explicit.counterexample.states()))
        assert_replays(spec, symbolic.counterexample.trace, violated)
        holds = Not(And(ready("c"), Not(ready("c"))))
        explicit2, symbolic2 = differential(spec, holds, depth=4)
        assert explicit2.ok
        assert symbolic2.verdict == UNKNOWN  # never HOLDS from a bound
        assert symbolic2.ok is False

    def test_arbiter_mutex_holds_so_symbolic_is_unknown(self):
        spec = composed_system()
        invariant = Not(And(Eq(Var("grant1"), 1), Eq(Var("grant2"), 1)))
        explicit, symbolic = differential(spec, invariant, depth=5)
        assert explicit.ok
        assert symbolic.verdict == UNKNOWN
        assert symbolic.depth == 5

    def test_depth_too_shallow_is_unknown_never_holds(self):
        # the queue overflows at BFS level 4: any bound below that must
        # answer UNKNOWN(k) -- reporting HOLDS would be unsound
        spec = complete_queue(2)
        invariant = Cmp("<=", Len(Var("q")), 1)
        for depth in (1, 2, 3):
            result = SymbolicEngine(depth=depth).check_invariant(
                spec, invariant)
            assert result.verdict == UNKNOWN, f"depth {depth}"
            assert result.verdict != HOLDS
            assert result.depth == depth
            assert result.ok is False


class TestDeepProtocols:
    """The corpus protocols whose violations sit many levels deep --
    exactly the shape BMC exists for.  Gated: see the module docstring."""

    @needs_deep
    def test_broken_mutex_violation_replays_at_minimal_depth(self):
        system = LamportMutex(2, 2, broken=True)
        spec = system.complete_spec()
        invariant = system.mutual_exclusion()
        explicit, symbolic = differential(spec, invariant, depth=12)
        assert not explicit.ok and symbolic.verdict == VIOLATION
        assert len(list(symbolic.counterexample.states())) == len(
            list(explicit.counterexample.states())) == 13
        assert_replays(spec, symbolic.counterexample.trace, invariant)

    @needs_deep
    def test_broken_paxos_violation_replays_within_bound(self):
        system = Paxos(2, 2, 2, broken=True)
        spec = system.complete_spec()
        invariant = system.agreement()
        # minimize=False: one solve at the bound (the binary search's
        # UNSAT refutations below level 16 would add minutes for no
        # extra information -- replayability, not minimality, is the
        # contract here)
        symbolic = SymbolicEngine(depth=18, minimize=False).check_invariant(
            spec, invariant)
        assert symbolic.verdict == VIOLATION
        states = list(symbolic.counterexample.states())
        assert len(states) <= 19
        assert_replays(spec, symbolic.counterexample.trace, invariant)


class TestRandomSpecs:
    """20 seeded random specs: reachability of a pinned target state is
    decided identically by both engines (the target's BFS level bounds
    the needed depth; the explicit run supplies it)."""

    @pytest.mark.parametrize("seed", range(20))
    def test_verdicts_agree(self, seed):
        spec = random_spec(seed)
        assert packed.supports(spec), "random specs must stay packable"
        rng = random.Random(seed + 4242)
        target = rng.choice(list(spec.universe.states()))
        invariant = Not(And(*[Eq(Var(name), Const(target[name]))
                              for name in spec.universe.variables]))
        stats = ExploreStats()
        graph = explore(spec, stats=stats)
        explicit = check_invariant(graph, invariant)
        depth = max(stats.depth or 0, 1)
        symbolic = SymbolicEngine(depth=depth).check_invariant(
            spec, invariant)
        if explicit.ok:
            # unreachable within the whole graph => UNSAT at any depth
            assert symbolic.verdict == UNKNOWN, f"seed {seed}"
        else:
            assert symbolic.verdict == VIOLATION, f"seed {seed}"
            explicit_len = len(list(explicit.counterexample.states()))
            got = list(symbolic.counterexample.states())
            assert len(got) == explicit_len, f"seed {seed}"
            assert_replays(spec, symbolic.counterexample.trace, invariant)


class TestSupportsProbe:
    """The public ``packed.supports`` / ``support_problem`` probe that
    the service fallback and the distributed engine resolver use."""

    def test_bundled_systems_are_supported(self):
        for spec in (complete_queue(2), handshake_system(),
                     composed_system()):
            assert packed.supports(spec)
            assert packed.support_problem(spec) is None

    def test_oversized_domain_is_reported(self):
        universe = Universe(
            {"x": FiniteDomain(range(packed.MAX_DOMAIN_SIZE + 1))})
        spec = Spec("huge", Eq(Var("x"), Const(0)),
                    Eq(Var("x", primed=True), Var("x")), ("x",), universe)
        assert not packed.supports(spec)
        problem = packed.support_problem(spec)
        assert problem is not None and "exceeds" in problem

    def test_probe_accepts_a_bare_universe(self):
        assert packed.supports(complete_queue(2).universe)


class TestEngineRegistry:
    def test_both_engines_are_registered(self):
        assert set(available_engines()) >= {"explicit", "symbolic"}

    def test_create_engine_dispatches_options(self):
        symbolic = create_engine("symbolic", depth=7)
        assert symbolic.depth == 7
        explicit = create_engine("explicit", mode="compact")
        assert explicit.mode == "compact"
        with pytest.raises(ValueError, match="unknown engine"):
            create_engine("quantum")

    def test_explicit_engine_agrees_with_direct_checker(self):
        spec = complete_queue(2)
        invariant = Cmp("<=", Len(Var("q")), 1)
        engine = create_engine("explicit")
        result = engine.check_invariant(spec, invariant, name="cap")
        assert result.verdict == VIOLATION
        direct = check_invariant(explore(spec), invariant, name="cap")
        assert (result.counterexample.render()
                == direct.counterexample.render())
