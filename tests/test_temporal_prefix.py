"""Unit tests for finite-behavior satisfaction and failure points --
the machinery beneath the paper's C, ⊳, +v, and ⊥ operators."""

import pytest

from repro.kernel import Eq, FiniteBehavior, Var, interval
from repro.temporal import (
    INFINITE,
    ActionBox,
    ActionDiamond,
    Always,
    Eventually,
    Hide,
    LeadsTo,
    NotSafetyCheckable,
    PrefixContext,
    SF,
    StatePred,
    TAnd,
    TImplies,
    TNot,
    TOr,
    WF,
    failure_point,
    holds_for_first,
    prefix_sat,
)

from tests.conftest import bits, st

x = Var("x")
incr = Eq(Var("x", primed=True), x + 1)


def fb(*values):
    return FiniteBehavior([st(x=v) for v in values])


class TestPrefixSat:
    def test_state_pred_first_state(self):
        assert prefix_sat(StatePred(Eq(x, 0)), fb(0, 5))
        assert not prefix_sat(StatePred(Eq(x, 1)), fb(0))

    def test_negated_state_pred(self):
        assert prefix_sat(TNot(StatePred(Eq(x, 1))), fb(0))

    def test_negation_of_nonpredicate_rejected(self):
        with pytest.raises(NotSafetyCheckable):
            prefix_sat(TNot(ActionBox(incr, ("x",))), fb(0))

    def test_action_box_over_steps(self):
        box = ActionBox(incr, ("x",))
        assert prefix_sat(box, fb(0, 1, 2))
        assert prefix_sat(box, fb(0, 0, 1))   # stutter allowed
        assert not prefix_sat(box, fb(0, 2))

    def test_always_state_pred(self):
        assert prefix_sat(Always(StatePred(x < 2)), fb(0, 1))
        assert not prefix_sat(Always(StatePred(x < 2)), fb(0, 2))

    def test_always_idempotent(self):
        assert prefix_sat(Always(Always(StatePred(x < 2))), fb(0, 1))

    def test_conjunction(self):
        formula = TAnd(StatePred(Eq(x, 0)), ActionBox(incr, ("x",)))
        assert prefix_sat(formula, fb(0, 1))
        assert not prefix_sat(formula, fb(1, 2))

    def test_disjunction_exact(self):
        formula = TOr(StatePred(Eq(x, 5)), StatePred(Eq(x, 0)))
        assert prefix_sat(formula, fb(0))

    def test_implication_with_predicate_hypothesis(self):
        formula = TImplies(StatePred(Eq(x, 1)), ActionBox(incr, ("x",)))
        assert prefix_sat(formula, fb(0, 9))  # antecedent false

    def test_implication_other_hypothesis_rejected(self):
        formula = TImplies(ActionBox(incr, ("x",)), StatePred(Eq(x, 0)))
        with pytest.raises(NotSafetyCheckable):
            prefix_sat(formula, fb(0))

    def test_fairness_always_finitely_satisfiable(self):
        assert prefix_sat(WF(("x",), incr), fb(0, 9, 3))
        assert prefix_sat(SF(("x",), incr), fb(0))

    def test_eventualities_finitely_satisfiable(self):
        assert prefix_sat(Eventually(StatePred(Eq(x, 7))), fb(0))
        assert prefix_sat(LeadsTo(StatePred(Eq(x, 0)), StatePred(Eq(x, 7))), fb(0))
        assert prefix_sat(ActionDiamond(incr, ("x",)), fb(0))

    def test_hide_witness_over_prefix(self):
        h = Var("h")
        formula = Hide({"h": interval(0, 2)}, Always(StatePred(Eq(h, x))))
        assert prefix_sat(formula, fb(0, 2, 1))
        bad = Hide({"h": interval(0, 2)},
                   TAnd(Always(StatePred(Eq(h, x))), Always(StatePred(Eq(h, 0)))))
        assert not prefix_sat(bad, fb(0, 1))

    def test_hide_budget(self):
        h = Var("h")
        formula = Hide({"h": interval(0, 2)}, Always(StatePred(Eq(h, 9))))
        ctx = PrefixContext(max_witness_candidates=2)
        with pytest.raises(NotSafetyCheckable):
            prefix_sat(formula, fb(0, 1, 2, 0, 1), ctx)

    def test_monotone_in_prefix_length(self):
        box = ActionBox(incr, ("x",))
        behavior = fb(0, 1, 2, 0)  # step 2 -> 0 violates
        results = [prefix_sat(box, behavior.prefix(n)) for n in range(1, 5)]
        assert results == [True, True, True, False]


class TestFailurePoint:
    def test_never_fails(self):
        assert failure_point(ActionBox(incr, ("x",)), bits("x", [0, 1], 1)) \
            == INFINITE

    def test_fails_at_bad_step(self):
        # prefix of length 2 contains the violating step 0 -> 2
        assert failure_point(ActionBox(incr, ("x",)), bits("x", [0, 2], 1)) == 2

    def test_fails_at_initial_state(self):
        assert failure_point(StatePred(Eq(x, 1)), bits("x", [0], 0)) == 1

    def test_failure_in_loop_wrap(self):
        # 0 1 (1)^w satisfies; 0 (1 0)^w has the wrap step 0 -> 1... all
        # increments; but 1 -> 0 inside the loop fails at prefix length 3
        la = bits("x", [0, 1, 0], 1)
        assert failure_point(ActionBox(incr, ("x",)), la) == 3

    def test_liveness_never_fails_finitely(self):
        assert failure_point(Eventually(StatePred(Eq(x, 9))),
                             bits("x", [0], 0)) == INFINITE

    def test_holds_for_first(self):
        la = bits("x", [0, 2], 1)
        box = ActionBox(incr, ("x",))
        assert holds_for_first(box, la, 0)   # vacuous
        assert holds_for_first(box, la, 1)
        assert not holds_for_first(box, la, 2)

    def test_conjunction_failure_is_min(self):
        la = bits("x", [1, 3], 1)
        formula = TAnd(StatePred(Eq(x, 1)), ActionBox(incr, ("x",)))
        # init ok (x=1), step 1->3 bad at prefix length 2
        assert failure_point(formula, la) == 2
