"""Differential tests for the state-space reduction subsystem.

Two claims, checked empirically against the unreduced serial explorer
(the reference semantics):

* **Partial-order reduction never changes verdicts or reported
  traces.**  For every bundled system and a battery of seeded random
  specs, POR-on and POR-off runs must agree on invariant verdicts,
  counterexample traces (via the canonicalising re-exploration in
  :func:`~repro.checker.reduction.check_invariant_reduced`), and
  deadlock existence -- while the reduced runs are free to visit fewer
  states.  Reduced exploration must itself be bit-for-bit deterministic
  across worker counts (ample sets are computed in workers, the C3
  proviso on the coordinator in serial merge order).
* **The state-store backend is invisible.**  A spill-store run whose
  state count exceeds the hot LRU capacity must produce the *identical*
  graph -- same states under the same node numbering, same adjacency,
  same BFS parents -- as the in-RAM store, at any worker count, with or
  without reduction, and spill checkpoints must survive explosion /
  worker-kill interruptions and resume bit-for-bit.
"""

from __future__ import annotations

import functools
import os
import random

import pytest

import repro.checker.parallel as parallel_module
from repro.checker import (
    CheckpointError,
    ExploreStats,
    ReductionConfig,
    StateSpaceExplosion,
    build_store,
    check_deadlock_free,
    check_invariant,
    check_invariant_reduced,
    decompose,
    explore,
    explore_parallel,
    resume,
)
from repro.kernel.expr import Cmp, Const, Len, Var
from repro.spec import Spec
from repro.systems.handshake import ready
from repro.systems.queue import QueueChain, complete_queue

from .systems_under_test import CASES
from .test_fault_injection import _kill_once
from .test_property_random_specs import random_action, random_universe

WORKER_COUNTS = [1, 2, 4]
_extra = int(os.environ.get("REPRO_TEST_WORKERS", "0"))
if _extra and _extra not in WORKER_COUNTS:
    WORKER_COUNTS.append(_extra)


def graph_signature(graph):
    """Everything that must be bit-for-bit equal between two runs."""
    return (list(graph.states), [list(adj) for adj in graph.succ],
            list(graph.parent), list(graph.init_nodes),
            graph.edge_count, graph.stutter_count)


def spill_store(tmp_path, hot_capacity=8, name="spill"):
    directory = tmp_path / name
    directory.mkdir(exist_ok=True)
    return build_store({"kind": "spill", "spill_dir": str(directory),
                        "hot_capacity": hot_capacity})


# the bundled invariant cases: (system id, spec factory, invariant expr,
# expected verdict) -- one violated and one satisfied invariant per
# reducible system, so both the counterexample path and the ok path of
# the reduced checker are exercised
INVARIANT_CASES = [
    pytest.param(lambda: complete_queue(2),
                 Cmp("<=", Len(Var("q")), 1), False, id="queue-violated"),
    pytest.param(lambda: complete_queue(2),
                 Cmp("<=", Len(Var("q")), 2), True, id="queue-ok"),
    pytest.param(lambda: QueueChain(2, 1).complete_spec(),
                 Cmp("<=", Len(Var("q1")), 1), True, id="chain-ok"),
    pytest.param(lambda: QueueChain(2, 1).complete_spec(),
                 Cmp("<=", Len(Var("q2")), 0), False, id="chain-violated"),
]


# ---------------------------------------------------------------------------
# POR verdict / trace equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("make_spec,invariant,expected_ok", INVARIANT_CASES)
def test_por_invariant_verdict_and_trace_identical(make_spec, invariant,
                                                   expected_ok):
    spec = make_spec()
    full = check_invariant(explore(spec), invariant, name="inv")
    reduced, used = check_invariant_reduced(spec, invariant, name="inv")
    assert full.ok == reduced.ok == expected_ok
    if not expected_ok:
        # the canonicalising re-exploration makes even the *trace* equal
        assert (reduced.counterexample.render()
                == full.counterexample.render())


def test_handshake_reduction_correct_but_unprofitable():
    """Two mutually dependent classes: POR stays enabled but every state
    is fully expanded, and verdicts are untouched."""
    case = next(c for c in CASES if c.id == "handshake")
    spec = case.make_spec()
    full = check_invariant(explore(spec), ready("c"), name="ready")
    reduced, used = check_invariant_reduced(spec, ready("c"), name="ready")
    assert not used  # dependent classes: no state is ample-expanded
    assert full.ok == reduced.ok
    assert (reduced.counterexample.render()
            == full.counterexample.render())


@pytest.mark.parametrize("case", [pytest.param(c, id=c.id) for c in CASES])
def test_por_deadlock_existence_preserved(case):
    """C0/C1 preserve deadlocks: the reduced graph reports a deadlock iff
    the full graph has one (persistent sets keep every deadlock state
    reachable, and prune no successor down to zero)."""
    spec = case.make_spec()
    full_verdict = check_deadlock_free(explore(spec)).ok
    reduced = explore(spec, reduction=ReductionConfig(()))
    assert check_deadlock_free(reduced).ok == full_verdict


def test_chain_reduction_shrinks_the_graph():
    """The k-queue chain is the profitable shape: disjoint components
    give independent classes, and the reduced graph is strictly smaller
    with the same deadlock verdict."""
    spec = QueueChain(2, 1).complete_spec()
    full = explore(spec)
    stats = ExploreStats()
    reduced = explore(spec, stats=stats, reduction=ReductionConfig(()))
    assert reduced.state_count < full.state_count
    assert stats.por_enabled is True
    assert stats.por_counters["ample_states"] > 0
    assert (check_deadlock_free(reduced).ok
            == check_deadlock_free(full).ok)


def test_liveness_shaped_specs_auto_disable():
    """Specs whose decomposition collapses are refused with a recorded
    reason, and the run silently falls back to full exploration."""
    case = next(c for c in CASES if c.id == "arbiter")
    spec = case.make_spec()
    stats = ExploreStats()
    reduced = explore(spec, stats=stats, reduction=ReductionConfig(()))
    assert stats.por_enabled is False
    assert stats.por_reason
    assert graph_signature(reduced) == graph_signature(explore(spec))


# ---------------------------------------------------------------------------
# seeded random specs: POR + both stores against the reference explorer
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(20))
def test_random_specs_reduction_and_stores_agree(seed, tmp_path):
    rng = random.Random(seed)
    universe = random_universe(rng)
    spec = Spec(f"rand{seed}", Const(True), random_action(rng, universe),
                universe.variables, universe)
    full = explore(spec)
    # spill store: bit-for-bit the in-RAM graph even with a tiny LRU
    spilled = explore(spec, store=spill_store(tmp_path, hot_capacity=4))
    assert graph_signature(spilled) == graph_signature(full)
    # reduction: deadlock existence preserved ...
    reduced = explore(spec, reduction=ReductionConfig(()))
    assert check_deadlock_free(reduced).ok == check_deadlock_free(full).ok
    # ... and a random observed invariant gets the same verdict and the
    # same (canonical) counterexample trace
    name = rng.choice(universe.variables)
    bound = rng.choice(list(universe.domain(name).values()))
    invariant = Cmp("<=", Var(name), bound)
    full_result = check_invariant(full, invariant, name="inv")
    reduced_result, _used = check_invariant_reduced(spec, invariant,
                                                    name="inv")
    assert reduced_result.ok == full_result.ok
    if not full_result.ok:
        assert (reduced_result.counterexample.render()
                == full_result.counterexample.render())


# ---------------------------------------------------------------------------
# determinism across worker counts
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_reduced_parallel_matches_reduced_serial(workers):
    """The reduced graph -- not just its verdicts -- is identical for
    every worker count: ample sets are pure worker-side functions and the
    proviso is applied in serial merge order on the coordinator."""
    spec = complete_queue(2)
    config = ReductionConfig(("q",))
    serial = explore(spec, reduction=config)
    parallel = explore_parallel(spec, workers=workers, reduction=config)
    assert graph_signature(parallel) == graph_signature(serial)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_spill_store_identical_at_any_worker_count(workers, tmp_path):
    """Acceptance criterion: a spill run whose state count (170) exceeds
    the hot LRU capacity (8) is bit-for-bit the mem-store run at any
    worker count."""
    spec = complete_queue(2)
    reference = explore(spec)
    store = spill_store(tmp_path, hot_capacity=8, name=f"w{workers}")
    graph = explore_parallel(spec, workers=workers, store=store)
    assert graph.state_count > 8
    assert graph_signature(graph) == graph_signature(reference)
    assert graph.store.counters()["evictions"] > 0
    graph.store.close()


def test_spill_plus_reduction_plus_workers(tmp_path):
    """All three levers at once still reproduce the serial reduced run."""
    spec = QueueChain(2, 1).complete_spec()
    config = ReductionConfig(())
    reference = explore(spec, reduction=config)
    store = spill_store(tmp_path, hot_capacity=8)
    graph = explore_parallel(spec, workers=2, reduction=config, store=store)
    assert graph_signature(graph) == graph_signature(reference)
    graph.store.close()


# ---------------------------------------------------------------------------
# durability: spill checkpoints under interruption, config mismatch refusal
# ---------------------------------------------------------------------------


def _interrupted_checkpoint(spec, tmp_path, budget):
    """Explode a reduced spill run mid-way, leaving a live checkpoint."""
    path = str(tmp_path / "run.ckpt")
    store = spill_store(tmp_path, hot_capacity=8, name="ckpt-spill")
    with pytest.raises(StateSpaceExplosion):
        explore(spec, max_states=budget, checkpoint=path,
                reduction=ReductionConfig(("q",)), store=store)
    store.close()
    return path


def test_spill_checkpoint_resume_bit_for_bit(tmp_path):
    spec = complete_queue(2)
    reference = explore(spec, reduction=ReductionConfig(("q",)))
    path = _interrupted_checkpoint(spec, tmp_path, budget=60)
    # the resumed run adopts the stored reduction + spill configuration
    graph = resume(path, max_states=200_000)
    assert graph.store.kind == "spill"
    assert graph_signature(graph) == graph_signature(reference)
    graph.store.close()


def test_resume_refuses_mismatched_configs(tmp_path):
    spec = complete_queue(2)
    path = _interrupted_checkpoint(spec, tmp_path, budget=60)
    with pytest.raises(CheckpointError, match="reduction"):
        resume(path, max_states=200_000, reduction=None)
    with pytest.raises(CheckpointError, match="state store"):
        resume(path, max_states=200_000, store={"kind": "mem"})
    with pytest.raises(CheckpointError, match="reduction"):
        resume(path, max_states=200_000,
               reduction=ReductionConfig(("q", "i.sig")))  # wrong observed
    # matching explicit configs are accepted
    graph = resume(path, max_states=200_000,
                   reduction=ReductionConfig(("q",)),
                   store={"kind": "spill",
                          "spill_dir": str(tmp_path / "ckpt-spill"),
                          "hot_capacity": 8})
    reference = explore(spec, reduction=ReductionConfig(("q",)))
    assert graph_signature(graph) == graph_signature(reference)
    graph.store.close()


def test_spill_resume_survives_deleted_spill_files(tmp_path):
    """The checkpoint is self-contained: resuming re-interns every state
    through a fresh spill store, so losing the spill files is harmless."""
    spec = complete_queue(2)
    reference = explore(spec, reduction=ReductionConfig(("q",)))
    path = _interrupted_checkpoint(spec, tmp_path, budget=60)
    for stale in (tmp_path / "ckpt-spill").iterdir():
        stale.unlink()
    graph = resume(path, max_states=200_000)
    assert graph_signature(graph) == graph_signature(reference)
    graph.store.close()


def test_spill_reduced_run_survives_worker_kill(tmp_path, monkeypatch):
    """Fault injection: a SIGKILLed worker mid-chunk does not perturb a
    reduced spill-store exploration (the chunk is retried and the merge
    stream -- including proviso decisions -- is unchanged)."""
    monkeypatch.setattr(parallel_module, "_MIN_CHUNK", 1)
    spec = complete_queue(2)
    config = ReductionConfig(("q",))
    reference = explore(spec, reduction=config)
    stats = ExploreStats()
    hook = functools.partial(_kill_once, str(tmp_path / "killed.marker"))
    store = spill_store(tmp_path, hot_capacity=8)
    graph = explore_parallel(spec, workers=2, stats=stats, fault_hook=hook,
                             checkpoint=str(tmp_path / "run.ckpt"),
                             reduction=config, store=store)
    assert graph_signature(graph) == graph_signature(reference)
    assert stats.total_retries >= 1
    graph.store.close()


# ---------------------------------------------------------------------------
# option validation: no silent degradation to the serial engine
# ---------------------------------------------------------------------------


def test_explicit_serial_with_parallel_only_options_rejected():
    spec = complete_queue(2)
    with pytest.raises(ValueError, match="serial"):
        explore_parallel(spec, workers=1, worker_timeout=5.0)
    with pytest.raises(ValueError, match="serial"):
        explore_parallel(spec, workers=1, fault_hook=_kill_once)


def test_autosized_workers_keep_parallel_options():
    """workers=0 resolves to the core count and is exempt from the
    explicit-workers=1 rejection (it never *silently* degrades)."""
    spec = complete_queue(2)
    graph = explore_parallel(spec, workers=0, worker_timeout=60.0)
    assert graph_signature(graph) == graph_signature(explore(spec))


# ---------------------------------------------------------------------------
# observability: the new stats surface
# ---------------------------------------------------------------------------


def test_stats_summary_reports_reduction_store_and_levels(tmp_path):
    spec = complete_queue(2)
    stats = ExploreStats()
    store = spill_store(tmp_path, hot_capacity=8)
    explore(spec, stats=stats, reduction=ReductionConfig(("q",)),
            store=store)
    text = stats.summary()
    assert "reduction: por on" in text
    assert "store: spill" in text
    assert "per-level:" in text
    assert "real-edges" in text
    assert "peak RSS:" in text
    snapshot = stats.as_dict()
    assert snapshot["por_enabled"] is True
    assert snapshot["store_kind"] == "spill"
    assert snapshot["levels"], "per-level rows missing from the snapshot"
    assert snapshot["peak_rss_kb"] >= 0
    store.close()


def test_decompose_is_pure():
    """Workers rebuild the decomposition from the pickled spec; the two
    sides must agree on every class footprint."""
    spec = QueueChain(2, 1).complete_spec()
    first = decompose(spec)
    second = decompose(spec)
    assert [c.label for c in first.classes] == [c.label
                                               for c in second.classes]
    assert [c.writes for c in first.classes] == [c.writes
                                                 for c in second.classes]
    assert first.dep == second.dep


# ---------------------------------------------------------------------------
# store lifecycle: every error path releases the spill files
# ---------------------------------------------------------------------------


def test_spill_store_closed_when_serial_run_explodes(tmp_path):
    """Regression: a budget explosion used to leak the spill store's
    mmap'd fingerprint index and data handles (the graph escapes only
    via the exception, so nobody could close it).  The explorer now
    closes the caller's store on every error path."""
    store = spill_store(tmp_path, hot_capacity=8)
    with pytest.raises(StateSpaceExplosion):
        explore(complete_queue(2), max_states=10, store=store)
    assert store.closed


def test_spill_store_closed_when_parallel_run_explodes(tmp_path):
    store = spill_store(tmp_path, hot_capacity=8)
    with pytest.raises(StateSpaceExplosion):
        explore_parallel(complete_queue(2), workers=2, max_states=10,
                         store=store)
    assert store.closed


def test_spill_store_closed_when_resume_validation_fails(tmp_path):
    """A refused resume (mismatched config assertion) must not leak the
    store it built for the attempt."""
    spec = complete_queue(2)
    path = str(tmp_path / "run.ckpt")
    graph = explore(spec, checkpoint=path,
                    store=spill_store(tmp_path, name="first"))
    graph.store.close()
    with pytest.raises(CheckpointError):
        # the checkpoint records spill; asserting mem must be refused
        resume(path, spec, store={"kind": "mem"})


def test_spill_store_is_a_context_manager(tmp_path):
    with spill_store(tmp_path, hot_capacity=8) as store:
        graph = explore(complete_queue(2), store=store)
        assert graph.state_count == explore(complete_queue(2)).state_count
    assert store.closed
    store.close()  # idempotent


def test_exploded_spill_run_is_resource_warning_clean(tmp_path):
    """The strict-unlink discipline: after an explosion the spill files
    can be removed immediately, and garbage collection raises no
    ResourceWarning for abandoned handles."""
    import gc
    import warnings

    store = spill_store(tmp_path, hot_capacity=8, name="strict")
    with pytest.raises(StateSpaceExplosion):
        explore(complete_queue(2), max_states=10, store=store)
    with warnings.catch_warnings():
        warnings.simplefilter("error", ResourceWarning)
        del store
        gc.collect()
    for leftover in (tmp_path / "strict").iterdir():
        leftover.unlink()  # strict unlink: no open handle blocks this
