"""Unit tests for the lasso evaluation engine: Hide witness search,
memoisation, ENABLED caching."""

import pytest

from repro.kernel import And, Eq, Universe, Var, interval
from repro.temporal import (
    ActionBox,
    Always,
    EvalContext,
    Eventually,
    Hide,
    StatePred,
    TAnd,
    WitnessSearchExhausted,
    check_implication_on,
    holds,
)

from tests.conftest import bits

x, h = Var("x"), Var("h")
U = Universe({"x": interval(0, 2)})
HDOM = interval(0, 2)


class TestHideWitness:
    def test_simple_witness(self):
        formula = Hide({"h": HDOM}, Always(StatePred(Eq(h, x))))
        assert holds(formula, bits("x", [0, 1, 2], 0), U)

    def test_no_witness(self):
        formula = Hide({"h": HDOM},
                       TAnd(Always(StatePred(Eq(h, x))),
                            Always(StatePred(Eq(h, 0)))))
        assert not holds(formula, bits("x", [0, 1], 0), U)

    def test_witness_constrained_by_action(self):
        # h must count modulo 3 regardless of x
        step = Eq(Var("h", primed=True), (h + 1) % 3)
        formula = Hide({"h": HDOM},
                       TAnd(StatePred(Eq(h, 0)), ActionBox(step, ("h",))))
        assert holds(formula, bits("x", [0, 0, 0], 0), U)

    def test_witness_overrides_existing_value(self):
        # ∃x: x = 2 is true even on a lasso where the visible x is 0
        formula = Hide({"x": HDOM}, StatePred(Eq(x, 2)))
        assert holds(formula, bits("x", [0], 0), U)

    def test_witness_needs_unrolling(self):
        # visible loop has period 1 (x constant) but h must alternate 0,1:
        # only an unrolled copy of the loop admits the witness
        step = Eq(Var("h", primed=True), 1 - h)
        formula = Hide({"h": interval(0, 1)},
                       TAnd(StatePred(Eq(h, 0)),
                            ActionBox(And(step, Eq(Var("x", primed=True), x)),
                                      ("h",)),
                            Eventually(StatePred(Eq(h, 1)))))
        la = bits("x", [0], 0)
        assert holds(formula, la, U, max_unroll=2)
        assert not holds(formula, la, U, max_unroll=1)

    def test_multiple_hidden_vars(self):
        g = Var("g")
        formula = Hide({"h": HDOM, "g": HDOM},
                       Always(StatePred(And(Eq(h, x), Eq(g, x)))))
        assert holds(formula, bits("x", [1, 2], 0), U)

    def test_exhaustion_raises(self):
        formula = Hide({"h": HDOM}, Always(StatePred(Eq(h, 9))))
        la = bits("x", [0, 1, 2, 0, 1, 2], 0)
        with pytest.raises(WitnessSearchExhausted):
            holds(formula, la, U, max_witness_candidates=5)

    def test_nonzero_position_rejected(self):
        formula = Always(Hide({"h": HDOM}, StatePred(Eq(h, x))))
        with pytest.raises(NotImplementedError):
            holds(formula, bits("x", [0, 1], 0), U)

    def test_empty_bindings_rejected(self):
        with pytest.raises(ValueError):
            Hide({}, StatePred(Eq(x, 0)))


class TestEvalContext:
    def test_memoisation(self):
        la = bits("x", [0, 1, 2], 0)
        ctx = EvalContext(la, U)
        formula = Always(Eventually(StatePred(Eq(x, 2))))
        assert ctx.eval(formula, 0)
        assert (id(formula), 0) in ctx._memo

    def test_enabled_cache(self):
        from repro.temporal import WF

        la = bits("x", [0], 0)
        ctx = EvalContext(la, U)
        wf = WF(("x",), Eq(Var("x", primed=True), x + 1))
        ctx.eval(wf, 0)
        assert ctx._enabled_cache


class TestCheckImplicationOn:
    def test_holds(self):
        la = bits("x", [0, 1], 0)
        premise = StatePred(Eq(x, 0))
        conclusion = Eventually(StatePred(Eq(x, 1)))
        assert check_implication_on(premise, conclusion, la, U)

    def test_fails(self):
        la = bits("x", [0], 0)
        premise = StatePred(Eq(x, 0))
        conclusion = Eventually(StatePred(Eq(x, 1)))
        assert not check_implication_on(premise, conclusion, la, U)

    def test_vacuous(self):
        la = bits("x", [1], 0)
        premise = StatePred(Eq(x, 0))
        conclusion = Eventually(StatePred(Eq(x, 2)))
        assert check_implication_on(premise, conclusion, la, U)
