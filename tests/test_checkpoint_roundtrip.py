"""Checkpoint/resume correctness: round-trips and bit-for-bit resumption.

Three layers of property-based evidence that durable runs are exact:

* **value/state round-trips** -- the tagged portable encoding of
  :mod:`repro.kernel.state` reproduces every value, state, and
  fingerprint exactly;
* **graph round-trips** -- for seeded random specs (reusing the
  generators of ``tests/test_property_random_specs.py``), serializing an
  explored :class:`StateGraph` through a checkpoint file and restoring
  it reproduces the graph field-for-field: node numbering, adjacency
  order, stutter split, BFS parents, init nodes;
* **kill-and-resume equality** -- for every bundled system, interrupting
  a checkpointed run after its k-th snapshot (for *every* k) and
  resuming yields a graph bit-for-bit identical to the uninterrupted
  serial run; likewise resuming under more workers, resuming after a
  :class:`StateSpaceExplosion` with a larger budget, and resuming from
  the embedded pickled spec (the acceptance criterion of the
  checkpointing PR).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.checker import (
    CheckpointError,
    StateSpaceExplosion,
    explore,
    load_checkpoint,
    resume,
    save_checkpoint,
)
from repro.checker.checkpoint import CHECKPOINT_VERSION
from repro.checker.stats import ExploreStats
from repro.kernel.expr import And, Const, Eq, Or, Var
from repro.kernel.state import (
    State,
    value_from_portable,
    value_to_portable,
)
from repro.spec import Spec

from .systems_under_test import CASE_PARAMS
from .test_property_random_specs import random_action, random_universe


# ---------------------------------------------------------------------------
# portable value / state round-trips
# ---------------------------------------------------------------------------


PORTABLE_VALUES = [
    True,
    False,
    0,
    -7,
    12345,
    "",
    "hello",
    (),
    (1, 2, 3),
    ("a", (1, (2,)), False),
    frozenset(),
    frozenset({1, 2, 3}),
    frozenset({(1, 2), (3,)}),
    ((frozenset({1}), "x"), frozenset({("y", 0)})),
]


@pytest.mark.parametrize("value", PORTABLE_VALUES,
                         ids=[repr(v) for v in PORTABLE_VALUES])
def test_portable_value_roundtrip(value):
    encoded = value_to_portable(value)
    json.dumps(encoded)  # must be JSON-serializable as-is
    decoded = value_from_portable(json.loads(json.dumps(encoded)))
    assert decoded == value
    assert type(decoded) is type(value)


def test_portable_encoding_rejects_unknown_types():
    with pytest.raises(TypeError):
        value_to_portable(object())
    with pytest.raises(ValueError):
        value_from_portable(["X", 1])


def test_frozenset_encoding_is_order_independent():
    a = value_to_portable(frozenset({3, 1, 2}))
    b = value_to_portable(frozenset({2, 3, 1}))
    assert a == b  # canonical element order -> stable checkpoint bytes


@pytest.mark.parametrize("seed", range(10))
def test_state_portable_roundtrip(seed):
    rng = random.Random(seed)
    universe = random_universe(rng)
    for state in universe.states():
        back = State.from_portable(state.to_portable())
        assert back == state
        assert hash(back) == hash(state)
        assert back.fingerprint() == state.fingerprint()


# ---------------------------------------------------------------------------
# random-spec graph round-trips
# ---------------------------------------------------------------------------


def random_spec(seed: int) -> Spec:
    """A seeded random spec: random action, one or two random initial
    states (the property-suite generators, wrapped as a Spec)."""
    rng = random.Random(seed)
    universe = random_universe(rng)
    action = random_action(rng, universe)
    inits = [
        And(*[Eq(Var(name),
                 Const(rng.choice(list(universe.domain(name).values()))))
              for name in universe.variables])
        for _ in range(rng.randint(1, 2))
    ]
    return Spec(f"rand{seed}", Or(*inits), action,
                tuple(universe.variables), universe)


def assert_same_graph(restored, original):
    assert restored.states == original.states
    assert restored.succ == original.succ
    assert restored.parent == original.parent
    assert restored.init_nodes == original.init_nodes
    assert restored.edge_count == original.edge_count
    assert restored.stutter_count == original.stutter_count
    assert restored.index == original.index


@pytest.mark.parametrize("seed", range(25))
def test_random_graph_checkpoint_roundtrip(seed, tmp_path):
    spec = random_spec(seed)
    graph = explore(spec)
    path = str(tmp_path / "graph.ckpt")
    save_checkpoint(path, spec, graph, frontier=[], depth=3, levels=4,
                    elapsed_seconds=1.5)
    loaded = load_checkpoint(path)
    assert loaded.depth == 3
    assert loaded.levels == 4
    assert loaded.elapsed_seconds == 1.5
    assert loaded.frontier == []
    assert_same_graph(loaded.restore_graph(spec), graph)


@pytest.mark.parametrize("seed", range(5))
def test_checkpoint_file_is_stable_json(seed, tmp_path):
    # two saves of the same run produce byte-identical files: the
    # encoding has no process-, hash-seed-, or time-dependent parts
    spec = random_spec(seed)
    graph = explore(spec)
    a, b = str(tmp_path / "a.ckpt"), str(tmp_path / "b.ckpt")
    save_checkpoint(a, spec, graph, [0], depth=1, levels=1,
                    elapsed_seconds=0.0)
    save_checkpoint(b, spec, graph, [0], depth=1, levels=1,
                    elapsed_seconds=0.0)
    with open(a, "rb") as fa, open(b, "rb") as fb:
        assert fa.read() == fb.read()


# ---------------------------------------------------------------------------
# kill-and-resume equality on the bundled systems
# ---------------------------------------------------------------------------


class _SimulatedCrash(Exception):
    """Raised by the instrumented checkpointer to cut a run short."""


def _run_until_crash(monkeypatch, spec, path, crash_after: int) -> int:
    """Explore with checkpointing, killing the run right after its
    ``crash_after``-th snapshot; returns the number of snapshots taken."""
    import repro.checker.explorer as explorer_module

    real_save = save_checkpoint
    saves = [0]

    def crashing_save(*args, **kwargs):
        real_save(*args, **kwargs)
        saves[0] += 1
        if saves[0] >= crash_after:
            raise _SimulatedCrash()

    monkeypatch.setattr(explorer_module, "save_checkpoint", crashing_save)
    try:
        explore(spec, checkpoint=path, checkpoint_every=1)
    except _SimulatedCrash:
        pass
    finally:
        monkeypatch.undo()
    return saves[0]


def _count_snapshots(spec, scratch_path: str) -> int:
    """How many snapshots a checkpoint_every=1 run of *spec* takes."""
    counter = [0]
    import repro.checker.explorer as explorer_module

    real_save = explorer_module.save_checkpoint

    def counting_save(*args, **kwargs):
        counter[0] += 1
        real_save(*args, **kwargs)

    explorer_module.save_checkpoint = counting_save
    try:
        explore(spec, checkpoint=scratch_path, checkpoint_every=1)
    finally:
        explorer_module.save_checkpoint = real_save
    return counter[0]


@pytest.mark.parametrize("case", CASE_PARAMS)
def test_resume_after_crash_at_every_level(case, tmp_path, monkeypatch):
    """The acceptance criterion: kill after the k-th snapshot, for every
    k, and the resumed graph is bit-for-bit the uninterrupted one."""
    spec = case.make_spec()
    reference = explore(spec)
    total = _count_snapshots(case.make_spec(), str(tmp_path / "scratch.ckpt"))
    assert total >= 1, f"{case.id}: expected at least one snapshot"
    for k in range(1, total + 1):
        path = str(tmp_path / f"crash{k}.ckpt")
        taken = _run_until_crash(monkeypatch, case.make_spec(), path, k)
        assert taken == k
        resumed = resume(path, case.make_spec(), checkpoint=None)
        assert_same_graph(resumed, reference)


@pytest.mark.parametrize("case", CASE_PARAMS)
def test_checkpointed_run_equals_plain_run(case, tmp_path):
    spec = case.make_spec()
    reference = explore(case.make_spec())
    path = str(tmp_path / "run.ckpt")
    checkpointed = explore(spec, checkpoint=path, checkpoint_every=1)
    assert_same_graph(checkpointed, reference)


@pytest.mark.parametrize("case", CASE_PARAMS)
def test_resume_with_more_workers_is_identical(case, tmp_path, monkeypatch):
    spec = case.make_spec()
    reference = explore(spec)
    path = str(tmp_path / "run.ckpt")
    _run_until_crash(monkeypatch, case.make_spec(), path, 1)
    resumed = resume(path, case.make_spec(), workers=2, checkpoint=None)
    assert_same_graph(resumed, reference)


@pytest.mark.parametrize("case", CASE_PARAMS)
def test_resume_uses_embedded_spec(case, tmp_path, monkeypatch):
    reference = explore(case.make_spec())
    path = str(tmp_path / "run.ckpt")
    _run_until_crash(monkeypatch, case.make_spec(), path, 1)
    # no spec argument at all: resume() unpickles the one in the file
    assert_same_graph(resume(path, checkpoint=None), reference)


def test_explosion_then_resume_with_bigger_budget(tmp_path):
    from repro.systems.queue import complete_queue

    spec = complete_queue(2)
    reference = explore(spec)
    path = str(tmp_path / "run.ckpt")
    with pytest.raises(StateSpaceExplosion):
        explore(complete_queue(2), max_states=50, checkpoint=path,
                checkpoint_every=1)
    # the last snapshot before the explosion survives; a larger budget
    # continues to exactly the full graph
    resumed = resume(path, complete_queue(2),
                     max_states=reference.state_count, checkpoint=None)
    assert_same_graph(resumed, reference)


def test_resumed_run_keeps_checkpointing_to_same_path(tmp_path, monkeypatch):
    from repro.systems.queue import complete_queue

    path = str(tmp_path / "run.ckpt")
    _run_until_crash(monkeypatch, complete_queue(2), path, 1)
    first = load_checkpoint(path)
    resume(path, complete_queue(2))  # default: keep writing to `path`
    final = load_checkpoint(path)
    assert final.levels > first.levels


def test_resume_restores_stats_counters(tmp_path, monkeypatch):
    from repro.systems.queue import complete_queue

    spec = complete_queue(2)
    path = str(tmp_path / "run.ckpt")
    stats = ExploreStats()
    stats.record_retry("crash")  # pretend the first leg saw a retry
    graph = explore(spec, stats=stats, checkpoint=path, checkpoint_every=1)
    resumed_stats = ExploreStats()
    resume(path, complete_queue(2), stats=resumed_stats, checkpoint=None)
    assert resumed_stats.worker_retries == {"crash": 1}
    assert resumed_stats.states == graph.state_count
    # elapsed time carries over: the resumed total includes the stored leg
    assert resumed_stats.explore_seconds > 0.0


# ---------------------------------------------------------------------------
# validation and integrity
# ---------------------------------------------------------------------------


def _write_tampered(tmp_path, mutate):
    from repro.systems.queue import complete_queue

    spec = complete_queue(1)
    graph = explore(spec)
    path = str(tmp_path / "run.ckpt")
    save_checkpoint(path, spec, graph, [0], depth=0, levels=0,
                    elapsed_seconds=0.0)
    with open(path) as handle:
        payload = json.load(handle)
    mutate(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path, spec


def test_fingerprint_mismatch_is_detected(tmp_path):
    def corrupt(payload):
        payload["graph"]["fingerprints"][0] = "0" * 16

    path, spec = _write_tampered(tmp_path, corrupt)
    with pytest.raises(CheckpointError, match="fingerprint mismatch"):
        load_checkpoint(path).restore_graph(spec)


def test_wrong_format_is_rejected(tmp_path):
    path, _spec = _write_tampered(
        tmp_path, lambda payload: payload.update(format="something-else"))
    with pytest.raises(CheckpointError, match="not a repro-checkpoint"):
        load_checkpoint(path)


def test_future_version_is_rejected(tmp_path):
    path, _spec = _write_tampered(
        tmp_path,
        lambda payload: payload.update(version=CHECKPOINT_VERSION + 1))
    with pytest.raises(CheckpointError, match="unsupported checkpoint"):
        load_checkpoint(path)


def test_variable_mismatch_is_rejected(tmp_path):
    def rename(payload):
        payload["graph"]["variables"][0] = "zz"

    path, spec = _write_tampered(tmp_path, rename)
    with pytest.raises(CheckpointError, match="do not match"):
        load_checkpoint(path).restore_graph(spec)


def test_truncated_file_is_a_checkpoint_error(tmp_path):
    path = tmp_path / "broken.ckpt"
    path.write_text('{"format": "repro-checkpoint", "ver')
    with pytest.raises(CheckpointError, match="unreadable"):
        load_checkpoint(str(path))


def test_missing_file_raises_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_checkpoint(str(tmp_path / "nope.ckpt"))
