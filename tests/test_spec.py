"""Unit tests for canonical specifications and components (section 2.2)."""

import pytest

from repro.kernel import And, Const, Eq, Or, Universe, Var, interval, BIT
from repro.spec import (
    Component,
    Fairness,
    Spec,
    conjoin,
    spec_of_formula,
    strong_fairness,
    weak_fairness,
)
from repro.temporal import (
    ActionBox,
    Always,
    Eventually,
    Hide,
    SF,
    StatePred,
    TAnd,
    WF,
    holds,
)

from tests.conftest import bits, counter_spec, lasso

x, y = Var("x"), Var("y")
U = Universe({"x": interval(0, 2)})


class TestFairness:
    def test_kinds(self):
        assert weak_fairness(("x",), Eq(x.prime(), x)).kind == "WF"
        assert strong_fairness(("x",), Eq(x.prime(), x)).kind == "SF"
        with pytest.raises(ValueError):
            Fairness("GF", ("x",), Eq(x.prime(), x))

    def test_formula(self):
        assert isinstance(weak_fairness(("x",), Eq(x.prime(), x)).formula(), WF)
        assert isinstance(strong_fairness(("x",), Eq(x.prime(), x)).formula(), SF)

    def test_rename(self):
        fair = weak_fairness(("x",), Eq(x.prime(), x + 1)).rename({"x": "y"})
        assert fair.sub == ("y",)
        assert fair.action.primed_vars() == {"y"}


class TestSpec:
    def test_formula_structure(self):
        spec = counter_spec()
        formula = spec.formula()
        assert isinstance(formula, TAnd)
        kinds = [type(p).__name__ for p in formula.parts]
        assert kinds == ["StatePred", "ActionBox", "WF"]

    def test_safety_formula_drops_fairness(self):
        spec = counter_spec()
        kinds = [type(p).__name__ for p in spec.safety_formula().parts]
        assert kinds == ["StatePred", "ActionBox"]

    def test_liveness_formula(self):
        assert counter_spec(fair=False).liveness_formula() is None
        assert counter_spec().liveness_formula() is not None

    def test_undeclared_variable_rejected(self):
        with pytest.raises(ValueError, match="undeclared"):
            Spec("bad", Eq(x, 0), Eq(y.prime(), 0), ("x",), U)

    def test_primed_init_rejected(self):
        with pytest.raises(ValueError, match="primed"):
            Spec("bad", Eq(x.prime(), 0), Eq(x.prime(), 0), ("x",), U)

    def test_empty_subscript_rejected(self):
        with pytest.raises(ValueError):
            Spec("bad", Eq(x, 0), Eq(x.prime(), 0), (), U)

    def test_rename(self):
        renamed = counter_spec().rename({"x": "y"})
        assert renamed.sub == ("y",)
        assert "y" in renamed.universe
        assert "x" not in renamed.universe
        uy = Universe({"y": interval(0, 2)})
        assert holds(renamed.formula(), bits("y", [0, 1, 2], 0), uy)

    def test_rename_non_injective_rejected(self):
        spec = Spec("s", And(Eq(x, 0), Eq(y, 0)),
                    And(Eq(x.prime(), x), Eq(y.prime(), y)), ("x", "y"),
                    Universe({"x": BIT, "y": BIT}))
        with pytest.raises(ValueError, match="injective"):
            spec.rename({"x": "z", "y": "z"})

    def test_without_fairness(self):
        spec = counter_spec().without_fairness()
        assert not spec.fairness

    def test_validate_fairness_subactions_ok(self):
        assert counter_spec().validate_fairness_subactions() == []

    def test_validate_fairness_subactions_disjunct(self):
        a = And(Eq(x, 0), Eq(x.prime(), 1))
        b = And(Eq(x, 1), Eq(x.prime(), 0))
        spec = Spec("s", Eq(x, 0), Or(a, b), ("x",), U,
                    [weak_fairness(("x",), a)])
        assert spec.validate_fairness_subactions() == []

    def test_validate_fairness_subactions_bad(self):
        alien = Eq(x.prime(), 2)
        spec = Spec("s", Eq(x, 0), Eq(x.prime(), x), ("x",), U,
                    [weak_fairness(("x",), alien)])
        assert spec.validate_fairness_subactions()


class TestConjoin:
    def test_single(self):
        spec = counter_spec()
        assert conjoin([spec]) is spec

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            conjoin([])

    def test_product_semantics(self):
        """x counts mod 2, y counts mod 2, interleaved or simultaneous --
        conjunction of □[Nx]_x and □[Ny]_y."""
        ux = Universe({"x": BIT})
        uy = Universe({"y": BIT})
        sx = Spec("sx", Eq(x, 0), Eq(x.prime(), 1 - x), ("x",), ux)
        sy = Spec("sy", Eq(y, 0), Eq(y.prime(), 1 - y), ("y",), uy)
        both = conjoin([sx, sy])
        assert set(both.sub) == {"x", "y"}
        assert set(both.universe.variables) == {"x", "y"}

        good = lasso([{"x": 0, "y": 0}, {"x": 1, "y": 0}, {"x": 1, "y": 1}], 2)
        assert holds(both.formula(), good, both.universe)
        # simultaneous change also allowed by plain conjunction
        sim = lasso([{"x": 0, "y": 0}, {"x": 1, "y": 1}], 1)
        assert holds(both.formula(), sim, both.universe)
        # but y jumping while x's box is violated is not
        bad = lasso([{"x": 0, "y": 1}], 0)
        assert not holds(both.formula(), bad, both.universe)

    def test_fairness_concatenated(self):
        s1 = counter_spec()
        s2 = counter_spec().rename({"x": "y"})
        assert len(conjoin([s1, s2]).fairness) == 2


class TestComponent:
    def make(self):
        return Component(
            "comp",
            outputs=("x",),
            internals=("h",),
            inputs=("y",),
            init=And(Eq(x, 0), Eq(Var("h"), 0)),
            next_action=And(Eq(x.prime(), y), Eq(Var("h").prime(), x),
                            Eq(y.prime(), y)),
            universe=Universe({"x": BIT, "y": BIT, "h": BIT}),
        )

    def test_sub_is_outputs_then_internals(self):
        assert self.make().sub == ("x", "h")

    def test_role_overlap_rejected(self):
        with pytest.raises(ValueError, match="several interface roles"):
            Component("bad", outputs=("x",), internals=(), inputs=("x",),
                      init=Eq(x, 0), next_action=Eq(x.prime(), x),
                      universe=Universe({"x": BIT}))

    def test_formula_hides_internals(self):
        formula = self.make().formula()
        assert isinstance(formula, Hide)
        assert set(formula.bindings) == {"h"}

    def test_formula_without_internals_unhidden(self):
        comp = Component("c", outputs=("x",), internals=(), inputs=(),
                         init=Eq(x, 0), next_action=Eq(x.prime(), x),
                         universe=Universe({"x": BIT}))
        assert not isinstance(comp.formula(), Hide)

    def test_safety_formula_hides(self):
        formula = self.make().safety_formula()
        assert isinstance(formula, Hide)
        kinds = [type(p).__name__ for p in formula.body.parts]
        assert "WF" not in kinds

    def test_validate_interleaving_clean(self):
        assert self.make().validate_interleaving() == []

    def test_validate_interleaving_allows_inputs_in_init(self):
        # the paper's Init_E = CInit(i) mentions the receiver's i.ack
        comp = Component("c", outputs=("x",), internals=(), inputs=("y",),
                         init=Eq(y, 0), next_action=Eq(x.prime(), x),
                         universe=Universe({"x": BIT, "y": BIT}))
        assert comp.validate_interleaving() == []

    def test_validate_interleaving_flags_undeclared_init(self):
        comp = Component("c", outputs=("x",), internals=(), inputs=(),
                         init=Eq(Var("ghost"), 0), next_action=Eq(x.prime(), x),
                         universe=Universe({"x": BIT, "ghost": BIT}))
        problems = comp.validate_interleaving()
        assert any("Init" in p for p in problems)

    def test_rename(self):
        renamed = self.make().rename({"x": "a", "h": "hh"})
        assert renamed.outputs == ("a",)
        assert renamed.internals == ("hh",)
        assert renamed.inputs == ("y",)

    def test_visible_vars(self):
        assert self.make().visible_vars() == ("x", "y")


class TestSpecOfFormula:
    def test_round_trip(self):
        spec = counter_spec()
        rebuilt = spec_of_formula(spec.formula(), spec.universe)
        assert rebuilt.sub == spec.sub
        assert len(rebuilt.fairness) == 1
        la = bits("x", [0, 1, 2], 0)
        assert holds(rebuilt.formula(), la, spec.universe)

    def test_always_pred_becomes_init_and_box(self):
        formula = TAnd(Always(StatePred(Eq(x, 0))),
                       ActionBox(Eq(x.prime(), x), ("x",)))
        spec = spec_of_formula(formula, U)
        assert not holds(spec.formula(), bits("x", [1], 0), U)
        assert holds(spec.formula(), bits("x", [0], 0), U)

    def test_constant_always(self):
        formula = TAnd(Always(StatePred(Const(True))),
                       ActionBox(Eq(x.prime(), x), ("x",)))
        spec = spec_of_formula(formula, U)
        assert holds(spec.formula(), bits("x", [1], 0), U)

    def test_no_box_rejected(self):
        with pytest.raises(TypeError):
            spec_of_formula(StatePred(Eq(x, 0)), U)

    def test_hide_rejected(self):
        formula = Hide({"h": interval(0, 1)},
                       ActionBox(Eq(x.prime(), x), ("x",)))
        with pytest.raises(TypeError, match="Proposition 2"):
            spec_of_formula(formula, U)

    def test_liveness_other_than_fairness_rejected(self):
        formula = TAnd(ActionBox(Eq(x.prime(), x), ("x",)),
                       Eventually(StatePred(Eq(x, 0))))
        with pytest.raises(TypeError):
            spec_of_formula(formula, U)
