"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pathlib
from typing import Dict, Sequence

import pytest

from repro.kernel import Arith, Const, Eq, Lasso, State, Universe, Var, interval
from repro.spec import Spec, weak_fairness

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite the golden files under tests/goldens/ from the "
             "current output instead of comparing against them",
    )


class GoldenComparer:
    """Byte-for-byte comparison against a file under ``tests/goldens/``.

    ``golden.check("name.txt", text)`` fails with a diff-friendly message
    on any byte difference; running pytest with ``--update-goldens``
    rewrites the files instead (review the diff before committing).
    """

    def __init__(self, update: bool):
        self.update = update

    def check(self, name: str, actual: str) -> None:
        path = GOLDEN_DIR / name
        if self.update:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(actual)
            return
        if not path.exists():
            raise AssertionError(
                f"golden file {path} does not exist; run "
                f"pytest --update-goldens to create it"
            )
        expected = path.read_text()
        if actual != expected:
            raise AssertionError(
                f"output differs from golden {name} "
                f"(run pytest --update-goldens to accept the change):\n"
                f"--- golden\n{expected}\n--- actual\n{actual}"
            )


@pytest.fixture
def golden(request) -> GoldenComparer:
    return GoldenComparer(request.config.getoption("--update-goldens"))


def st(**values) -> State:
    """Shorthand state constructor: ``st(x=1, y=2)``."""
    return State(values)


def lasso(states: Sequence[Dict[str, object]], loop_start: int = 0) -> Lasso:
    """Build a lasso from dicts: ``lasso([{"x":0},{"x":1}], 1)``."""
    return Lasso([State(d) for d in states], loop_start)


def bits(var: str, values: Sequence[int], loop_start: int = 0) -> Lasso:
    """One-variable lasso: ``bits("x", [0,1,1], 1)``."""
    return lasso([{var: v} for v in values], loop_start)


@pytest.fixture
def xy_universe() -> Universe:
    return Universe({"x": interval(0, 2), "y": interval(0, 2)})


@pytest.fixture
def x_universe() -> Universe:
    return Universe({"x": interval(0, 2)})


def counter_spec(modulus: int = 3, fair: bool = True) -> Spec:
    """``x`` counts 0..modulus-1 cyclically; the workhorse toy spec."""
    x = Var("x")
    universe = Universe({"x": interval(0, modulus - 1)})
    step = Eq(x.prime(), Arith("%", x + 1, Const(modulus)))
    fairness = [weak_fairness(("x",), step)] if fair else []
    return Spec(f"counter{modulus}", Eq(x, 0), step, ("x",), universe, fairness)


@pytest.fixture
def counter() -> Spec:
    return counter_spec()
