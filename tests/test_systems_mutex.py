"""Unit tests for the Lamport distributed-mutex system.

The headline acceptance story -- mutual exclusion discharged by a
Composition Theorem certificate, not only a monolithic check -- lives
here, alongside the state-space anatomy the differential suites rely
on (instance sizes, ICDQ-vs-conjunction equivalence, the broken
variant's violation, the clock-bound liveness artifacts).
"""

from __future__ import annotations

from repro.checker import check_invariant, check_temporal_implication, explore
from repro.systems.mutex import LamportMutex, MutexProcess


class TestClosedSystem:
    def test_instance_sizes_and_exclusion(self):
        graph = explore(LamportMutex(2, 2).complete_spec())
        assert graph.state_count == 135
        assert graph.edge_count == 222
        result = check_invariant(graph,
                                 LamportMutex(2, 2).mutual_exclusion())
        assert result.ok

    def test_broken_variant_violates_exclusion(self):
        system = LamportMutex(2, 2, broken=True)
        graph = explore(system.complete_spec())
        assert graph.state_count == 197
        result = check_invariant(graph, system.mutual_exclusion())
        assert not result.ok
        assert result.counterexample is not None
        assert not result.counterexample.is_lasso

    def test_conjunction_form_reaches_the_same_states(self):
        # G ∧ ⋀ IP_i admits simultaneous internal-only steps the
        # interleaved form serialises, so it has more edges -- but the
        # reachable *states* are identical
        system = LamportMutex(2, 2)
        icdq = explore(system.complete_spec())
        conj = explore(system.conjunction_spec())
        assert conj.state_count == icdq.state_count
        assert set(conj.states) == set(icdq.states)
        assert conj.edge_count > icdq.edge_count

    def test_larger_clock_grows_the_space(self):
        assert explore(LamportMutex(2, 3).complete_spec()).state_count == 723

    def test_exclusion_holds_at_clock_3(self):
        system = LamportMutex(2, 3)
        graph = explore(system.complete_spec())
        assert check_invariant(graph, system.mutual_exclusion()).ok


class TestLiveness:
    def test_someone_enters_at_clock_3(self):
        system = LamportMutex(2, 3)
        result = check_temporal_implication(
            system.complete_spec(), system.someone_enters(), name="enter")
        assert result.ok

    def test_someone_enters_fails_at_clock_2(self):
        # the truncation artifact: at the bound, the receives the first
        # contended round needs are disabled, so a fair lasso shuffles
        # messages forever without anyone entering
        system = LamportMutex(2, 2)
        result = check_temporal_implication(
            system.complete_spec(), system.someone_enters(), name="enter")
        assert not result.ok
        assert result.counterexample.is_lasso

    def test_progress_fails_at_the_clock_bound(self):
        system = LamportMutex(2, 3)
        result = check_temporal_implication(
            system.complete_spec(), system.progress(1), name="progress")
        assert not result.ok
        assert result.counterexample.is_lasso


class TestDecomposition:
    def test_process_component_shape(self):
        proc = MutexProcess(2, 1, 2)
        # a process owns its critical-section flag, its outgoing send
        # wires, and the ack wires of its incoming channels
        assert "cs1" in proc.outputs
        assert any(name.startswith("c1_2") for name in proc.outputs)
        assert proc.component.sub == proc.outputs + proc.internals

    def test_environments_are_valid_specs(self):
        system = LamportMutex(2, 2)
        for pid in (1, 2):
            env = system.environment_spec(pid)
            assert explore(env).state_count > 0

    def test_ag_specs_cover_all_processes(self):
        system = LamportMutex(3, 2)
        specs = system.ag_specs()
        assert len(specs) == 3
        assert all(ag.assumption is not None for ag in specs)


class TestCompositionCertificate:
    def test_mutual_exclusion_is_proved_compositionally(self):
        # the end-to-end acceptance check: G ∧ ⋀ (E_i ⊳ IP_i) ⇒ Mutex,
        # discharged hypothesis by hypothesis, not one monolithic run
        certificate = LamportMutex(2, 2).composition_theorem().verify()
        assert certificate.ok

    def test_broken_variant_fails_the_certificate(self):
        certificate = LamportMutex(2, 2,
                                   broken=True).composition_theorem().verify()
        assert not certificate.ok


class TestParameterValidation:
    def test_priority_is_total_between_distinct_processes(self):
        # equal timestamps break ties by process id: (t, 1) < (t, 2)
        system = LamportMutex(2, 2)
        graph = explore(system.complete_spec())
        # no reachable deadlock in the safe instance (stutter aside,
        # every state has a real successor or is at the clock bound)
        assert graph.state_count > 0

    def test_labels_name_the_instance(self):
        assert "N=3" in repr(LamportMutex(3, 4))
        assert "broken" in repr(LamportMutex(2, 2, broken=True))
