"""Differential tests: the parallel explorer is bit-for-bit the serial one.

For every bundled system (queue, arbiter, handshake, circuit) and every
worker count k in {1, 2, 4} (plus ``REPRO_TEST_WORKERS`` from the CI
matrix, if set), ``explore_parallel(spec, workers=k)`` must yield the
*identical* graph to serial ``explore``: same states under the same node
numbering, same adjacency, same ``init_nodes``, same BFS parent tree,
same ``stutter_count``, same BFS depth -- and ``StateSpaceExplosion``
must fire at the same budget.  This is the cross-checking-backends
discipline of TLAPS-style tooling applied to the explorer pair: the
serial path (workers=1) is the reference semantics, and any divergence
under sharding is a bug by definition.
"""

from __future__ import annotations

import os

import pytest

from repro.checker import (
    ExploreStats,
    StateSpaceExplosion,
    explore,
    explore_parallel,
)
from repro.kernel.expr import And, Exists, Or, Var
from repro.spec import Spec
from repro.systems.arbiter import composed_system
from repro.systems.circuit import composed_processes
from repro.systems.handshake import (
    ack,
    channel_universe,
    channel_vars,
    cinit,
    send,
)
from repro.systems.queue import DEFAULT_MSG, complete_queue


def handshake_system() -> Spec:
    """A closed Figure-2 system: one channel, a sender that transmits
    arbitrary messages and a receiver that acknowledges them."""
    chan = "c"
    nxt = Or(Exists("v", DEFAULT_MSG, send(Var("v"), chan)), ack(chan))
    return Spec(
        "handshake(c)",
        And(cinit(chan)),
        nxt,
        channel_vars(chan),
        channel_universe(chan, DEFAULT_MSG),
    )


SYSTEMS = [
    pytest.param(lambda: complete_queue(2), id="queue"),
    pytest.param(composed_system, id="arbiter"),
    pytest.param(handshake_system, id="handshake"),
    pytest.param(composed_processes, id="circuit"),
]

WORKER_COUNTS = [1, 2, 4]
_extra = int(os.environ.get("REPRO_TEST_WORKERS", "0"))
if _extra and _extra not in WORKER_COUNTS:
    WORKER_COUNTS.append(_extra)


def assert_graphs_identical(serial, parallel, serial_depth, parallel_depth):
    # node sets *and* numbering: the states lists must be elementwise equal
    assert parallel.states == serial.states
    # edge sets, including order of insertion per adjacency list
    assert parallel.succ == serial.succ
    assert parallel.edge_count == serial.edge_count
    assert parallel.init_nodes == serial.init_nodes
    assert parallel.stutter_count == serial.stutter_count
    # the BFS tree (counterexample traces) must also coincide
    assert parallel.parent == serial.parent
    assert parallel_depth == serial_depth


@pytest.mark.parametrize("make_spec", SYSTEMS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_explore_matches_serial(make_spec, workers):
    spec = make_spec()
    serial_stats = ExploreStats()
    serial = explore(spec, stats=serial_stats)
    parallel_stats = ExploreStats()
    parallel = explore_parallel(spec, workers=workers, stats=parallel_stats)
    assert_graphs_identical(serial, parallel,
                            serial_stats.depth, parallel_stats.depth)
    assert parallel_stats.states == serial_stats.states
    assert parallel_stats.edges == serial_stats.edges
    assert parallel_stats.stutter_edges == serial_stats.stutter_edges
    assert parallel_stats.init_states == serial_stats.init_states
    if workers > 1:
        assert parallel_stats.workers == workers


@pytest.mark.parametrize("workers", [2, 4])
def test_explosion_fires_at_the_same_budget(workers):
    spec = complete_queue(2)
    full = explore(spec)
    # a budget below the true state count must blow up on both paths ...
    budget = full.state_count // 2
    with pytest.raises(StateSpaceExplosion):
        explore(spec, max_states=budget)
    with pytest.raises(StateSpaceExplosion):
        explore_parallel(spec, max_states=budget, workers=workers)
    # ... and the exact state count must succeed on both
    serial = explore(spec, max_states=full.state_count)
    parallel = explore_parallel(spec, max_states=full.state_count,
                                workers=workers)
    assert parallel.states == serial.states
    assert parallel.succ == serial.succ


@pytest.mark.parametrize("budget", [1, 5, 17, 100])
def test_explosion_budget_sweep_queue(budget):
    """The budget is enforced at the same insertion for every budget value,
    not just one: either both paths explode or both succeed identically."""
    spec = complete_queue(2)
    try:
        serial = explore(spec, max_states=budget)
        serial_exploded = False
    except StateSpaceExplosion:
        serial_exploded = True
    try:
        parallel = explore_parallel(spec, max_states=budget, workers=2)
        parallel_exploded = False
    except StateSpaceExplosion:
        parallel_exploded = True
    assert serial_exploded == parallel_exploded
    if not serial_exploded:
        assert parallel.states == serial.states


def test_workers_zero_resolves_to_cores():
    """``workers=0`` auto-sizes; the result is still the reference graph."""
    spec = composed_processes()
    serial = explore(spec)
    parallel = explore_parallel(spec, workers=0)
    assert parallel.states == serial.states
    assert parallel.succ == serial.succ


def test_negative_workers_rejected():
    with pytest.raises(ValueError):
        explore_parallel(complete_queue(2), workers=-1)
