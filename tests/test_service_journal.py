"""Unit tests for the append-only job journal: replay folding, torn
final lines (the SIGKILL residue), orphan detection, the exactly-once
claim protocol, and snapshot compaction."""

import json
import os

import pytest

from repro.service.journal import (
    JobJournal,
    owner_alive,
    pid_alive,
    process_start_time,
)

DEAD_PID = 999999999  # beyond pid_max on any Linux


def journal_for(tmp_path):
    return JobJournal(str(tmp_path / "journal"))


class TestReplay:
    def test_lifecycle_folds_to_one_record(self, tmp_path):
        journal = journal_for(tmp_path)
        journal.append("submitted", "job-1", tenant="alice",
                       fingerprint="f" * 16, request={"spec": "Spec"})
        journal.append("started", "job-1")
        journal.append("done", "job-1", verdict="ok")
        jobs = journal.replay()
        assert set(jobs) == {"job-1"}
        record = jobs["job-1"]
        assert record["state"] == "done"
        assert record["tenant"] == "alice"
        assert record["verdict"] == "ok"
        assert record["request"] == {"spec": "Spec"}
        assert record["owner"] == os.getpid()
        assert record["counts"] == {"submitted": 1, "started": 1, "done": 1}

    def test_replay_is_idempotent_under_reapplied_suffix(self, tmp_path):
        journal = journal_for(tmp_path)
        journal.append("submitted", "job-1", tenant="a")
        journal.append("started", "job-1")
        first = journal.replay()
        # duplicate the whole log (a replayed suffix): the fold keyed by
        # job id reaches the same state, only the counts change
        with open(journal.log_path) as handle:
            lines = handle.read()
        with open(journal.log_path, "a") as handle:
            handle.write(lines)
        second = journal.replay()
        assert second["job-1"]["state"] == first["job-1"]["state"]
        assert second["job-1"]["owner"] == first["job-1"]["owner"]

    def test_torn_final_line_is_tolerated(self, tmp_path):
        journal = journal_for(tmp_path)
        journal.append("submitted", "job-1", tenant="a")
        journal.append("submitted", "job-2", tenant="a")
        with open(journal.log_path, "a") as handle:
            handle.write('{"kind": "done", "job": "job-2", "verd')
        jobs = journal.replay()
        assert jobs["job-2"]["state"] == "queued"  # torn write lost
        assert journal.torn_lines == 1

    def test_requeued_returns_running_job_to_queue(self, tmp_path):
        journal = journal_for(tmp_path)
        journal.append("submitted", "job-1", tenant="a")
        journal.append("started", "job-1")
        journal.append("requeued", "job-1")
        assert journal.replay()["job-1"]["state"] == "queued"


class TestOrphans:
    def test_dead_owner_is_orphaned(self, tmp_path):
        journal = journal_for(tmp_path)
        journal.append("submitted", "job-1", tenant="a")
        jobs = journal.replay()
        jobs["job-1"]["owner"] = DEAD_PID
        assert journal.orphans(jobs) == ["job-1"]

    def test_own_pid_is_claimable(self, tmp_path):
        # an in-process manager restart: same pid, jobs must be re-owned
        journal = journal_for(tmp_path)
        journal.append("submitted", "job-1", tenant="a")
        assert journal.orphans() == ["job-1"]

    def test_live_foreign_owner_is_left_alone(self, tmp_path):
        journal = journal_for(tmp_path)
        journal.append("submitted", "job-1", tenant="a")
        jobs = journal.replay()
        owner = os.getppid() or 1  # alive, not us
        jobs["job-1"]["owner"] = owner
        jobs["job-1"]["owner_start"] = process_start_time(owner)
        assert journal.orphans(jobs) == []

    @pytest.mark.skipif(process_start_time(os.getpid()) is None,
                        reason="needs /proc start times")
    def test_recycled_pid_owner_is_orphaned(self, tmp_path):
        # the dead owner's pid was reused by an unrelated live process:
        # a bare pid check would call it alive and strand the job, but
        # the recorded start time no longer matches, so it is reclaimed
        journal = journal_for(tmp_path)
        journal.append("submitted", "job-1", tenant="a")
        jobs = journal.replay()
        owner = os.getppid() or 1  # alive -- but a different incarnation
        jobs["job-1"]["owner"] = owner
        jobs["job-1"]["owner_start"] = \
            (process_start_time(owner) or 0) + 17
        assert journal.orphans(jobs) == ["job-1"]

    def test_terminal_jobs_are_never_orphans(self, tmp_path):
        journal = journal_for(tmp_path)
        journal.append("submitted", "job-1", tenant="a")
        journal.append("done", "job-1", verdict="ok")
        jobs = journal.replay()
        jobs["job-1"]["owner"] = DEAD_PID
        assert journal.orphans(jobs) == []

    def test_claim_transfers_ownership_exactly_once(self, tmp_path):
        # the recovery protocol: replay -> claim under one lock; a
        # second recoverer's replay then sees a live owner and backs off
        journal = journal_for(tmp_path)
        journal.append("submitted", "job-1", tenant="a")
        with journal.lock():
            orphans = journal.orphans()
            assert orphans == ["job-1"]
            for job_id in orphans:
                journal.append_locked("claimed", job_id)
        record = journal.replay()["job-1"]
        assert record["owner"] == os.getpid()
        assert record["state"] == "queued"
        assert len(record["claims"]) == 1
        # we own it and we are alive-and-equal: still claimable by us,
        # but a *different* live process would see owner alive and skip
        assert pid_alive(record["owner"])

    def test_pid_alive(self):
        assert pid_alive(os.getpid())
        assert not pid_alive(DEAD_PID)
        assert not pid_alive(None)
        assert not pid_alive(0)

    def test_owner_alive_degrades_without_start(self):
        # a record with no start time (old journal, non-Linux writer)
        # falls back to the pid check
        assert owner_alive(os.getpid(), None)
        assert not owner_alive(DEAD_PID, None)
        assert owner_alive(os.getpid(), process_start_time(os.getpid()))

    @pytest.mark.skipif(process_start_time(os.getpid()) is None,
                        reason="needs /proc start times")
    def test_owner_alive_rejects_mismatched_start(self):
        ours = process_start_time(os.getpid())
        assert not owner_alive(os.getpid(), ours + 1)


class TestCompaction:
    def test_compact_truncates_log_preserving_state(self, tmp_path):
        journal = journal_for(tmp_path)
        for n in range(20):
            journal.append("submitted", f"job-{n}", tenant="a",
                           request={"n": n})
        journal.append("done", "job-0", verdict="ok")
        size_before = journal.log_size()
        retained = journal.compact()
        assert retained == 20
        assert journal.log_size() == 0
        assert size_before > 0
        jobs = journal.replay()
        assert jobs["job-0"]["state"] == "done"
        assert jobs["job-5"]["state"] == "queued"
        assert jobs["job-5"]["request"] == {"n": 5}

    def test_appends_after_compaction_layer_on_snapshot(self, tmp_path):
        journal = journal_for(tmp_path)
        journal.append("submitted", "job-1", tenant="a")
        journal.compact()
        journal.append("started", "job-1")
        journal.append("done", "job-1", verdict="ok")
        assert journal.replay()["job-1"]["state"] == "done"

    def test_extra_blob_is_persisted(self, tmp_path):
        journal = journal_for(tmp_path)
        journal.append("submitted", "job-1", tenant="a")
        journal.compact(extra={"metrics": {"families": {}}})
        with open(journal.snapshot_path) as handle:
            snapshot = json.load(handle)
        assert snapshot["extra"] == {"metrics": {"families": {}}}

    def test_terminal_records_age_out(self, tmp_path):
        journal = journal_for(tmp_path)
        journal.append("submitted", "old", tenant="a")
        journal.append("done", "old", verdict="ok")
        journal.append("submitted", "young", tenant="a")
        # everything terminal older than -1s from now, i.e. all of it
        retained = journal.compact(drop_terminal_older_than=-1.0)
        jobs = journal.replay()
        assert "old" not in jobs          # terminal and aged out
        assert jobs["young"]["state"] == "queued"  # non-terminal kept
        assert retained == 1
