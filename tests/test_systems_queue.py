"""Unit tests for the queue systems of the appendix (Figures 3-9)."""

import pytest

from repro.checker import (
    check_invariant,
    check_safety_refinement,
    check_temporal_implication,
    explore,
    premises_of_spec,
)
from repro.kernel import Cmp, FiniteDomain, Len, State, Var
from repro.systems.handshake import pending, ready
from repro.systems.queue import (
    DoubleQueue,
    Queue,
    QueueEnvironment,
    complete_queue,
    complete_queue_conjunction,
    cq_formula,
)
from repro.temporal import Hide, LeadsTo, StatePred, holds

MSG = FiniteDomain([0, 1])


def edge_set(graph):
    return {
        (graph.states[s], graph.states[d])
        for s in range(graph.state_count)
        for d in graph.succ[s]
    }


class TestQueueComponent:
    def test_interface_partition(self):
        q = Queue(2)
        assert q.outputs == ("i.ack", "o.sig", "o.val")
        assert q.inputs == ("i.sig", "i.val", "o.ack")
        assert q.sub == ("i.ack", "o.sig", "o.val", "q")

    def test_component_validates(self):
        q = Queue(1)
        assert q.component.validate_interleaving() == []
        assert q.spec.validate_fairness_subactions() == []

    def test_formula_hides_buffer(self):
        assert isinstance(Queue(1).formula(), Hide)

    def test_enq_appends(self):
        from repro.kernel import successors

        q = Queue(2)
        state = State({"i.sig": 1, "i.ack": 0, "i.val": 1,
                       "o.sig": 0, "o.ack": 0, "o.val": 0, "q": ()})
        result = list(successors(q.enq, state, q.universe))
        assert len(result) == 1
        assert result[0]["q"] == (1,)
        assert result[0]["i.ack"] == 1

    def test_enq_blocked_when_full(self):
        from repro.kernel import successors

        q = Queue(1)
        state = State({"i.sig": 1, "i.ack": 0, "i.val": 1,
                       "o.sig": 0, "o.ack": 0, "o.val": 0, "q": (0,)})
        assert list(successors(q.enq, state, q.universe)) == []

    def test_deq_sends_head(self):
        from repro.kernel import successors

        q = Queue(2)
        state = State({"i.sig": 0, "i.ack": 0, "i.val": 0,
                       "o.sig": 0, "o.ack": 0, "o.val": 0, "q": (1, 0)})
        result = list(successors(q.deq, state, q.universe))
        assert len(result) == 1
        assert result[0]["o.val"] == 1
        assert result[0]["q"] == (0,)
        assert result[0]["o.sig"] == 1

    def test_deq_blocked_when_unacked(self):
        from repro.kernel import successors

        q = Queue(2)
        state = State({"i.sig": 0, "i.ack": 0, "i.val": 0,
                       "o.sig": 1, "o.ack": 0, "o.val": 0, "q": (1,)})
        assert list(successors(q.deq, state, q.universe)) == []

    def test_size_validation(self):
        with pytest.raises(ValueError):
            Queue(0)

    def test_renamed_instances(self):
        """The paper's F[1] = F[z/o, q1/q] by construction."""
        q1 = Queue(1, inp="i", out="z", qvar="q1")
        assert q1.outputs == ("i.ack", "z.sig", "z.val")
        assert "q1" in q1.universe


class TestEnvironment:
    def test_interface(self):
        env = QueueEnvironment()
        assert env.outputs == ("i.sig", "i.val", "o.ack")
        assert not env.spec.fairness  # never obliged to send or ack

    def test_put_sends_arbitrary_value(self):
        from repro.kernel import successors

        env = QueueEnvironment(MSG)
        state = State({"i.sig": 0, "i.ack": 0, "i.val": 0,
                       "o.sig": 0, "o.ack": 0, "o.val": 0})
        values = {s["i.val"] for s in successors(env.put, state, env.universe)}
        assert values == {0, 1}

    def test_get_acks(self):
        from repro.kernel import successors

        env = QueueEnvironment(MSG)
        state = State({"i.sig": 0, "i.ack": 0, "i.val": 0,
                       "o.sig": 1, "o.ack": 0, "o.val": 1})
        result = list(successors(env.get, state, env.universe))
        assert len(result) == 1 and result[0]["o.ack"] == 1


class TestCompleteQueue:
    def test_figure6_equals_conjunction(self):
        """ICQ (Figure 6's disjunct form) and QE ∧ IQM generate the same
        reachable graph -- composition is conjunction."""
        g1 = explore(complete_queue(1))
        g2 = explore(complete_queue_conjunction(1))
        assert set(g1.index) == set(g2.index)
        assert edge_set(g1) == edge_set(g2)

    def test_capacity_invariant(self):
        spec = complete_queue(2)
        result = check_invariant(spec, Queue(2).capacity_invariant())
        assert result.ok

    def test_handshake_discipline(self):
        """o.val changes only while o is ready (the metastability concern
        of section A.1)."""
        from repro.temporal import ActionBox

        spec = complete_queue(1)
        graph = explore(spec)
        discipline = ActionBox(ready("o"), ("o.val",))
        result = check_temporal_implication(graph, discipline,
                                            premises=[], name="discipline")
        assert result.ok

    def test_forward_progress(self):
        spec = complete_queue(1)
        progress = LeadsTo(
            StatePred(Cmp(">", Len(Var("q")), 0) & ready("o")),
            StatePred(pending("o")))
        result = check_temporal_implication(
            spec, progress, premises=premises_of_spec(spec))
        assert result.ok

    def test_blocked_environment_counterexample(self):
        """Without environment fairness, a pending input need not be acked
        (the queue can be full while o is never drained)."""
        spec = complete_queue(1)
        hopeful = LeadsTo(StatePred(pending("i")), StatePred(ready("i")))
        result = check_temporal_implication(
            spec, hopeful, premises=premises_of_spec(spec))
        assert not result.ok

    def test_cq_formula_holds_on_reachable_lasso(self):
        from repro.kernel import Lasso

        spec = complete_queue(1)
        graph = explore(spec)
        # build a stuttering lasso from an initial state and hide q
        la = Lasso([graph.states[graph.init_nodes[0]]], 0)
        assert holds(cq_formula(1), la.project(
            [v for v in spec.universe.variables if v != "q"]),
            spec.universe.restrict([v for v in spec.universe.variables
                                    if v != "q"]))


class TestDoubleQueue:
    def test_figure8_equals_conjunction_with_g(self):
        """ICDQ (Figure 8) = QE ∧ IQM[1] ∧ IQM[2] ∧ G: the interleaved form
        is the conjunction *under the Disjoint condition*."""
        from repro.spec import conjoin

        dq = DoubleQueue(1)
        g1 = explore(dq.cdq_spec())
        with_g = conjoin([dq.env.spec, dq.q1.spec, dq.q2.spec,
                          dq.disjoint.spec(dq.universe.restrict(
                              [v for t in dq.disjoint.tuples for v in t]))])
        g2 = explore(with_g)
        assert set(g1.index) == set(g2.index)
        assert edge_set(g1) == edge_set(g2)

    def test_plain_conjunction_allows_simultaneity(self):
        """Section A.5's observation: without G, the conjunction allows an
        Enq of the first queue simultaneous with a Deq of the second --
        steps the interleaved ICDQ forbids."""
        dq = DoubleQueue(1)
        g1 = explore(dq.cdq_spec())
        g2 = explore(dq.cdq_conjunction())
        assert set(g1.index) == set(g2.index)  # same reachable states
        extra = edge_set(g2) - edge_set(g1)
        assert extra, "plain conjunction should allow simultaneous steps"
        assert not (edge_set(g1) - edge_set(g2))
        # at least one extra edge changes outputs of two components at once
        def changed(pre, post):
            return {v for v in pre if pre[v] != post[v]}
        assert any(
            changed(pre, post) & {"i.ack", "q1"} and
            changed(pre, post) & {"o.sig", "q2"}
            for pre, post in extra)

    def test_capacity_of_composition(self):
        """q1, q2 hold at most N each; with the z slot, total 2N+1."""
        from repro.kernel import Arith, Len

        dq = DoubleQueue(1)
        graph = explore(dq.cdq_spec())
        total = Cmp("<=",
                    Arith("+", Len(Var("q1")), Len(Var("q2"))),
                    2)
        assert check_invariant(graph, total).ok

    def test_mapping_concatenation_order(self):
        dq = DoubleQueue(1)
        state = State({"i.sig": 0, "i.ack": 0, "i.val": 0,
                       "z.sig": 1, "z.ack": 0, "z.val": 1,
                       "o.sig": 0, "o.ack": 0, "o.val": 0,
                       "q1": (0,), "q2": (1,)})
        mapped = dq.mapping.target_state(state, dq.icq_dbl().universe)
        # q2 (oldest) ++ in-flight on z ++ q1 (newest)
        assert mapped["q"] == (1, 1, 0)

    def test_refinement_safety(self):
        dq = DoubleQueue(1)
        result = check_safety_refinement(dq.cdq_spec(), dq.icq_dbl(),
                                         dq.mapping)
        assert result.ok

    def test_refinement_liveness(self):
        dq = DoubleQueue(1)
        spec = dq.cdq_spec()
        target = dq.icq_dbl()
        result = check_temporal_implication(
            spec, target.liveness_formula(), mapping=dq.mapping,
            target_universe=target.universe)
        assert result.ok

    def test_ag_specs_shape(self):
        dq = DoubleQueue(1)
        assert dq.ag_q1().assumption.name == "QE[1]"
        assert dq.ag_q2().assumption.name == "QE[2]"
        assert dq.ag_goal().guarantee_component.internals == ("q",)

    def test_disjoint_covers_prop4_pairs(self):
        dq = DoubleQueue(1)
        env_owned = dq.env.outputs
        sys_owned = dq.big.outputs
        assert dq.disjoint.separates_tuples(env_owned, sys_owned)
