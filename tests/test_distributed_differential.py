"""Differential tests: distributed exploration is bit-for-bit serial.

:func:`repro.checker.distributed.explore_distributed` claims the
strongest possible portability property: the graph built by a
coordinator driving 1, 2, or 4 worker *nodes* (separate processes,
spoken to over HTTP) is **bit-for-bit** the graph of the serial
reference explorer -- same node numbering, BFS parents, edge and
stutter accounting, ``StateSpaceExplosion`` insertion point, and
streaming :class:`~repro.checker.digest.GraphDigest` -- and therefore
the same verdicts and byte-identical counterexample traces.  These
tests make the claim empirical for every bundled system (including the
deliberately broken mutex and Paxos variants) in both engines:

* **compact** -- workers own visited-set partitions keyed by
  fingerprint range; the coordinator keeps only the packed columns;
* **full** -- workers are stateless expanders over portable state rows
  (forced with ``engine="full"``: every bundled system supports packed
  encoding, so the full path needs explicit selection).

Golden distributed-run manifests freeze the digest and the per-level
partition counts for the mutex and Paxos corpus systems; because
pristine ranges never reshape (rebalancing only moves owners), those
manifests are identical with and without node failures.

One 4-worker pool is spawned per module and reset per run via
``POST /load``; worker counts k < 4 use a prefix of the pool.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.checker import (
    ExploreStats,
    StateSpaceExplosion,
    digest_of_graph,
    explore,
    explore_compact,
    explore_distributed,
    explore_parallel,
    partition_ranges,
    spawn_local_workers,
)
from repro.systems import bundled_module
from repro.tools.cli import main as cli_main

from .systems_under_test import CASE_PARAMS, CASES
from .test_checkpoint_roundtrip import assert_same_graph

WORKER_COUNTS = [1, 2, 4]
_extra = int(os.environ.get("REPRO_TEST_WORKERS", "0"))
if _extra and _extra not in WORKER_COUNTS:
    WORKER_COUNTS.append(_extra)

_MAX_POOL = max(WORKER_COUNTS)


@pytest.fixture(scope="module")
def pool():
    """One worker fleet for the whole module; ``/load`` resets every
    run, so tests share processes without sharing state."""
    with spawn_local_workers(_MAX_POOL) as fleet:
        yield fleet


@pytest.fixture(scope="module")
def references():
    """Serial reference graphs, explored once per module."""
    cache = {}

    def get(case):
        if case.id not in cache:
            cache[case.id] = explore(case.make_spec())
        return cache[case.id]

    return get


# ---------------------------------------------------------------------------
# graph identity, both engines, every bundled system
# ---------------------------------------------------------------------------


def assert_distributed_compact_matches(spec, urls, reference):
    stats = ExploreStats()
    graph = explore_distributed(spec, urls, stats=stats)
    # engine auto-resolves to compact: every bundled system packs
    assert stats.engine == "compact"
    assert list(graph.states) == list(reference.states)
    assert graph.parent == [-1 if p is None else p
                            for p in reference.parent]
    assert graph.init_nodes == reference.init_nodes
    assert graph.state_count == reference.state_count
    assert graph.edge_count == reference.edge_count
    assert graph.stutter_count == reference.stutter_count
    assert graph.digest() == digest_of_graph(reference)
    return graph, stats


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("case", CASE_PARAMS)
def test_compact_graph_identical_to_serial(case, workers, pool, references):
    spec = case.make_spec()
    graph, _stats = assert_distributed_compact_matches(
        spec, pool.urls[:workers], references(case))
    # ... and to the single-machine compact engine, digest for digest
    assert graph.digest() == explore_compact(spec).digest()


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("case", CASE_PARAMS)
def test_full_graph_identical_to_serial_and_parallel(case, workers, pool,
                                                     references):
    graph = explore_distributed(case.make_spec(), pool.urls[:workers],
                                engine="full")
    assert_same_graph(graph, references(case))
    assert_same_graph(graph, explore_parallel(case.make_spec(), workers=2))


@pytest.mark.parametrize("case", CASE_PARAMS)
def test_verdicts_and_traces_identical(case, pool, references):
    """The checks built on top agree too: same summaries, byte-identical
    rendered counterexample traces, in both engines."""
    spec = case.make_spec()
    reference = references(case)
    ref_result = case.check(spec, reference)
    assert not ref_result.ok  # every row violates its property

    full = explore_distributed(case.make_spec(), pool.urls[:2],
                               engine="full")
    result = case.check(spec, full)
    assert result.summary() == ref_result.summary()
    assert result.counterexample.render() == \
        ref_result.counterexample.render()

    if case.kind == "finite":  # lasso checks need the full graph
        compact = explore_distributed(spec, pool.urls[:2])
        compact_result = case.check(spec, compact)
        assert compact_result.summary() == ref_result.summary()
        assert compact_result.counterexample.render() == \
            ref_result.counterexample.render()


# ---------------------------------------------------------------------------
# budget explosions: identical insertion point and boundary digest
# ---------------------------------------------------------------------------


def test_explosion_point_and_digest_identical(pool):
    spec = bundled_module("mutex:n=2,clock=3").spec("Spec")
    with pytest.raises(StateSpaceExplosion) as serial_exc:
        explore_compact(spec, max_states=300)
    with pytest.raises(StateSpaceExplosion) as dist_exc:
        explore_distributed(spec, pool.urls[:2], max_states=300)
    assert dist_exc.value.graph.state_count == \
        serial_exc.value.graph.state_count
    assert dist_exc.value.graph.digest() == serial_exc.value.graph.digest()


def test_acceptance_paxos_20k_budget_4_workers(pool):
    """The PR's acceptance criterion: a 4-worker distributed run of the
    droppable-messages Paxos instance under a 20k budget produces a
    ``GraphDigest`` byte-identical to the single-machine compact
    engine's, at the identical explosion point."""
    spec = bundled_module(
        "paxos:acceptors=3,ballots=3,droppable").spec("Spec")
    with pytest.raises(StateSpaceExplosion) as serial_exc:
        explore_compact(spec, max_states=20_000)
    with pytest.raises(StateSpaceExplosion) as dist_exc:
        explore_distributed(spec, pool.urls[:4], max_states=20_000)
    assert dist_exc.value.graph.state_count == 20_000
    assert dist_exc.value.graph.digest() == serial_exc.value.graph.digest()


# ---------------------------------------------------------------------------
# sharding invariants
# ---------------------------------------------------------------------------


def test_partition_ranges_tile_the_fingerprint_space():
    for workers in (1, 2, 3, 4, 7):
        ranges = partition_ranges(workers)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 1 << 64
        for (_lo, hi), (lo2, _hi2) in zip(ranges, ranges[1:]):
            assert hi == lo2  # contiguous, no gaps, no overlaps
    with pytest.raises(ValueError):
        partition_ranges(0)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_level_partitions_sum_to_level_sizes(workers, pool, references):
    """The per-level partition counts are a decomposition of the BFS
    levels: each row sums to the number of states interned that level,
    and rows are identical across engines (both shard by the same
    fingerprints)."""
    case = CASES[0]  # queue
    compact = explore_distributed(case.make_spec(), pool.urls[:workers])
    full = explore_distributed(case.make_spec(), pool.urls[:workers],
                               engine="full")
    assert compact.level_partitions == full.level_partitions
    assert len(compact.partition_ranges) == workers
    assert sum(compact.level_partitions[0]) == len(compact.init_nodes)
    assert sum(sum(row) for row in compact.level_partitions) == \
        compact.state_count


# ---------------------------------------------------------------------------
# golden distributed-run manifests (mutex + paxos corpus systems)
# ---------------------------------------------------------------------------


def _distributed_manifest(graph, workers: int) -> str:
    return json.dumps({
        "workers": workers,
        "digest": graph.digest(),
        "states": graph.state_count,
        "edges": graph.edge_count,
        "level_partitions": graph.level_partitions,
    }, indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize("name,ref", [
    ("mutex_distributed.json", "mutex:n=2,clock=3"),
    ("paxos_distributed.json", "paxos:acceptors=2,ballots=2"),
])
def test_golden_distributed_manifest(name, ref, pool, golden):
    """Digest and per-level partition counts frozen byte-for-byte at 4
    workers.  Rebalancing moves range *owners* but never reshapes the
    pristine ranges, so these manifests are fault-independent."""
    spec = bundled_module(ref).spec("Spec")
    graph = explore_distributed(spec, pool.urls[:4])
    golden.check(name, _distributed_manifest(graph, workers=4))


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_coordinate_against_running_workers(pool, tmp_path, capsys):
    stats_json = tmp_path / "stats.json"
    code = cli_main(["coordinate", "@mutex:n=2,clock=3",
                     "--worker-at", pool.urls[0],
                     "--worker-at", pool.urls[1],
                     "--stats-json", str(stats_json)])
    out = capsys.readouterr().out
    assert code == 0
    reference = explore_compact(
        bundled_module("mutex:n=2,clock=3").spec("Spec"))
    assert f"digest: {reference.digest()}" in out
    assert "723 states" in out
    payload = json.loads(stats_json.read_text())
    assert payload["workers"] == 2
    assert payload["node_losses"] == 0


def test_cli_coordinate_requires_a_fleet(capsys):
    code = cli_main(["coordinate", "@mutex:n=2,clock=3"])
    assert code == 2
    assert "--spawn" in capsys.readouterr().out
