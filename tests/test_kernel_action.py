"""Unit tests for the action toolkit and the successor compiler."""

import pytest

from repro.kernel import (
    And,
    Const,
    Eq,
    Exists,
    Not,
    Or,
    State,
    TupleExpr,
    Universe,
    Var,
    angle,
    changed,
    compile_action,
    enabled,
    holds_on_step,
    interval,
    square,
    successors,
    unchanged,
)

from tests.conftest import st

x, y = Var("x"), Var("y")
xp, yp = Var("x", primed=True), Var("y", primed=True)


def succ_set(action, state, universe, frame=None):
    return set(successors(action, state, universe, frame))


@pytest.fixture
def uni():
    return Universe({"x": interval(0, 2), "y": interval(0, 2)})


class TestHelpers:
    def test_unchanged(self):
        action = unchanged(["x", "y"])
        assert holds_on_step(action, st(x=1, y=2), st(x=1, y=2))
        assert not holds_on_step(action, st(x=1, y=2), st(x=1, y=3))

    def test_unchanged_empty(self):
        assert holds_on_step(unchanged([]), st(x=0), st(x=5))

    def test_changed(self):
        assert holds_on_step(changed(["x"]), st(x=0), st(x=1))
        assert not holds_on_step(changed(["x"]), st(x=0), st(x=0))

    def test_square_allows_stutter(self):
        action = square(Eq(xp, x + 1), ["x"])
        assert holds_on_step(action, st(x=0), st(x=1))
        assert holds_on_step(action, st(x=0), st(x=0))
        assert not holds_on_step(action, st(x=0), st(x=2))

    def test_angle_requires_change(self):
        action = angle(Eq(xp, x), ["x"])
        assert not holds_on_step(action, st(x=0), st(x=0))


class TestCompile:
    def test_binding_recognised(self):
        compiled = compile_action(Eq(xp, x + 1))
        assert len(compiled.branches) == 1
        assert set(compiled.branches[0].bindings) == {"x"}

    def test_binding_reversed_orientation(self):
        compiled = compile_action(Eq(x + 1, xp))
        assert set(compiled.branches[0].bindings) == {"x"}

    def test_primed_rhs_not_binding(self):
        compiled = compile_action(Eq(xp, yp))
        assert not compiled.branches[0].bindings

    def test_disjunction_branches(self):
        compiled = compile_action(Or(Eq(xp, 0), Eq(xp, 1)))
        assert len(compiled.branches) == 2

    def test_tuple_destructuring(self):
        compiled = compile_action(Eq(TupleExpr(xp, yp), TupleExpr(y, x)))
        assert set(compiled.branches[0].bindings) == {"x", "y"}

    def test_exists_expansion(self):
        compiled = compile_action(Exists("v", interval(0, 2), Eq(xp, Var("v"))))
        assert len(compiled.branches) == 3

    def test_false_compiles_to_nothing(self):
        assert compile_action(Const(False)).branches == []

    def test_true_compiles_to_one_empty_branch(self):
        branches = compile_action(Const(True)).branches
        assert len(branches) == 1
        assert not branches[0].bindings and not branches[0].constraints

    def test_conflicting_bindings_become_checks(self):
        compiled = compile_action(And(Eq(xp, 0), Eq(xp, 1)))
        branch = compiled.branches[0]
        assert branch.binding_checks

    def test_cache_by_identity(self):
        action = Eq(xp, x)
        assert compile_action(action) is compile_action(action)


class TestSuccessors:
    def test_deterministic_action(self, uni):
        action = And(Eq(xp, x + 1), Eq(yp, y))
        assert succ_set(action, st(x=0, y=0), uni) == {st(x=1, y=0)}

    def test_out_of_domain_post_state(self, uni):
        action = And(Eq(xp, x + 1), Eq(yp, y))
        assert succ_set(action, st(x=2, y=0), uni) == set()

    def test_unconstrained_var_enumerates(self, uni):
        action = Eq(xp, 0)
        result = succ_set(action, st(x=1, y=1), uni)
        assert result == {st(x=0, y=0), st(x=0, y=1), st(x=0, y=2)}

    def test_frame_pins_variables(self, uni):
        action = Eq(xp, 0)
        assert succ_set(action, st(x=1, y=1), uni, frame=["x"]) == {st(x=0, y=1)}

    def test_frame_conflicting_binding_filtered(self, uni):
        # the action wants to change y, but y is outside the frame
        action = And(Eq(xp, 0), Eq(yp, 2))
        assert succ_set(action, st(x=1, y=1), uni, frame=["x"]) == set()

    def test_residual_constraint(self, uni):
        action = And(Eq(xp, x), Not(Eq(yp, y)))
        result = succ_set(action, st(x=0, y=0), uni)
        assert result == {st(x=0, y=1), st(x=0, y=2)}

    def test_disjunction_dedups(self, uni):
        action = Or(And(Eq(xp, 1), Eq(yp, y)), And(Eq(xp, 1), Eq(yp, y)))
        assert len(list(successors(action, st(x=0, y=0), uni))) == 1

    def test_conflicting_conjunction_empty(self, uni):
        action = And(Eq(xp, 0), Eq(xp, 1), Eq(yp, y))
        assert succ_set(action, st(x=2, y=0), uni) == set()

    def test_eval_error_disables_branch(self, uni):
        from repro.kernel import Head

        action = And(Eq(xp, Head(TupleExpr())), Eq(yp, y))
        assert succ_set(action, st(x=0, y=0), uni) == set()

    def test_guard_blocks(self, uni):
        action = And(Eq(x, 0), Eq(xp, 1), Eq(yp, y))
        assert succ_set(action, st(x=1, y=0), uni) == set()
        assert succ_set(action, st(x=0, y=0), uni) == {st(x=1, y=0)}

    def test_exists_successors(self, uni):
        action = And(Exists("v", interval(0, 2), Eq(xp, Var("v"))), Eq(yp, y))
        assert len(succ_set(action, st(x=0, y=0), uni)) == 3


class TestEnabled:
    def test_enabled_basic(self, uni):
        action = And(Eq(x, 0), Eq(xp, 1), Eq(yp, y))
        assert enabled(action, st(x=0, y=0), uni)
        assert not enabled(action, st(x=1, y=0), uni)

    def test_enabled_angle_of_stutter(self, uni):
        # <x' = x>_x can never change x, hence never enabled
        action = angle(Eq(xp, x), ["x"])
        assert not enabled(And(action, Eq(yp, y)), st(x=0, y=0), uni)

    def test_enabled_depends_on_domain(self):
        small = Universe({"x": interval(0, 0)})
        action = Eq(xp, x + 1)
        assert not enabled(action, State({"x": 0}), small)
