"""Client-side production behaviour: the 429 retry loop (Retry-After
honoured, exponential backoff capped, jitter applied -- all with an
injectable clock so the tests are deterministic), tenant headers, and
the ``repro admin`` operator verbs over a live server."""

import io
import json
import random
import time

import pytest

from repro.service import (
    BackgroundServer,
    QueueFullError,
    ServiceClient,
    TenantPolicy,
)
from repro.tools.cli import main

COUNTER_TLA = """
MODULE Counter
CONSTANT N = 3
VARIABLE x \\in 0..2
Init == x = 0
Next == x' = (x + 1) % N
Spec == Init /\\ [][Next]_<<x>> /\\ WF_<<x>>(Next)
Small == x < 3
"""


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class ZeroRandom(random.Random):
    """rng whose random() is always 0.0: jitter drops out of the math."""

    def random(self):
        return 0.0


class TestBackoffMath:
    def test_server_hint_is_the_floor(self):
        client = ServiceClient(sleep=lambda _: None, rng=ZeroRandom())
        # hint dominates while it exceeds the exponential
        assert client._backoff_delay(0, 3.0) == 3.0
        # exponential dominates once it outgrows the hint
        assert client._backoff_delay(6, 3.0) == pytest.approx(5.0)

    def test_exponential_growth_is_capped(self):
        client = ServiceClient(backoff_base=0.1, backoff_cap=5.0,
                               sleep=lambda _: None, rng=ZeroRandom())
        delays = [client._backoff_delay(n, 0.0) for n in range(8)]
        assert delays[:4] == pytest.approx([0.1, 0.2, 0.4, 0.8])
        assert delays[-1] == 5.0  # capped, not 12.8

    def test_jitter_stretches_up_to_25_percent(self):
        class OneRandom(random.Random):
            def random(self):
                return 1.0

        client = ServiceClient(sleep=lambda _: None, rng=OneRandom())
        assert client._backoff_delay(0, 2.0) == pytest.approx(2.5)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ServiceClient(retries=-1)


class TestRetryLoop:
    def test_throttled_submit_retries_and_lands(self, tmp_path):
        # burst=1 and a slow refill (0.5 tokens/s, so the window stays
        # open across the first submit's roundtrip even on a loaded
        # machine): the second submission is throttled by its own
        # bucket, and the client must sleep ~the refill and succeed
        slept = []

        def recording_sleep(delay):
            slept.append(delay)
            time.sleep(delay)

        with BackgroundServer(
                str(tmp_path / "svc"),
                tenant_policy=TenantPolicy(rate=0.5, burst=1)) as server:
            client = ServiceClient(
                server.url, tenant="alice", retries=4,
                sleep=recording_sleep, rng=ZeroRandom())
            first = client.submit(COUNTER_TLA, invariants=["Small"])
            assert first["disposition"] == "created"
            # different max_states: a distinct job, not a cache hit
            second = client.submit(COUNTER_TLA, invariants=["Small"],
                                   max_states=999)
            assert second["disposition"] == "created"
        assert slept, "the second submit should have been throttled"
        # every sleep honoured the bucket-derived Retry-After
        assert all(delay >= 0.1 for delay in slept)

    def test_retries_zero_fails_fast_with_tenant_and_reason(self, tmp_path):
        with BackgroundServer(
                str(tmp_path / "svc"),
                tenant_policy=TenantPolicy(rate=0.001, burst=1)) as server:
            client = ServiceClient(server.url, tenant="bob", retries=0)
            client.submit(COUNTER_TLA, invariants=["Small"])
            with pytest.raises(QueueFullError) as info:
                client.submit(COUNTER_TLA, invariants=["Small"],
                              max_states=999)
        assert info.value.tenant == "bob"
        assert info.value.reason == "rate"
        assert info.value.retry_after > 0

    def test_budget_exhaustion_reraises(self, tmp_path):
        slept = []
        with BackgroundServer(
                str(tmp_path / "svc"),
                tenant_policy=TenantPolicy(rate=0.001, burst=1)) as server:
            client = ServiceClient(
                server.url, tenant="carol", retries=2, backoff_cap=0.01,
                sleep=lambda d: slept.append(d), rng=ZeroRandom())
            client.submit(COUNTER_TLA, invariants=["Small"])
            with pytest.raises(QueueFullError):
                # rate 0.001/s: no token will land during the test; the
                # fake sleep keeps the 2 retries instant
                client.submit(COUNTER_TLA, invariants=["Small"],
                              max_states=999, retries=2)
        assert len(slept) == 2

    def test_tenant_header_reaches_the_scheduler(self, tmp_path):
        with BackgroundServer(str(tmp_path / "svc")) as server:
            client = ServiceClient(server.url, tenant="team-7")
            job = client.submit(COUNTER_TLA, invariants=["Small"])["job"]
            assert job["tenant"] == "team-7"
            assert "team-7" in client.tenants()


class TestAdminVerbs:
    @pytest.fixture
    def server(self, tmp_path):
        with BackgroundServer(str(tmp_path / "svc")) as background:
            client = ServiceClient(background.url, tenant="alice")
            job_id = client.submit(COUNTER_TLA,
                                   invariants=["Small"])["job"]["id"]
            client.wait(job_id, timeout=60)
            yield background

    def test_admin_metrics_prints_prometheus_text(self, server):
        code, text = run_cli("admin", "metrics", "--at", server.url)
        assert code == 0
        assert "# TYPE repro_jobs_admitted_total counter" in text
        assert 'repro_jobs_admitted_total{tenant="alice"} 1' in text

    def test_admin_tenants_table_and_json(self, server):
        code, text = run_cli("admin", "tenants", "--at", server.url)
        assert code == 0
        assert "alice" in text and "completed" in text
        code, text = run_cli("admin", "tenants", "--at", server.url,
                             "--json")
        assert code == 0
        assert json.loads(text)["alice"]["completed"] == 1

    def test_admin_jobs_table_and_json(self, server):
        code, text = run_cli("admin", "jobs", "--at", server.url)
        assert code == 0
        assert "alice" in text and "done" in text and "ok" in text
        code, text = run_cli("admin", "jobs", "--at", server.url, "--json")
        assert code == 0
        (record,) = json.loads(text)
        assert record["state"] == "done"
        assert record["tenant"] == "alice"
