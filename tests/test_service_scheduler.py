"""Unit tests for the per-tenant quota layer: token buckets, tenant
policies, and deficit-round-robin dispatch.  Everything runs on a fake
clock, so the rate-limit tests are deterministic and instant."""

import pytest

from repro.service.scheduler import (
    DEFAULT_TENANT,
    FairScheduler,
    QueueFull,
    TenantPolicy,
    TenantThrottled,
    TokenBucket,
    valid_tenant,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTenantNames:
    def test_accepts_header_safe_names(self):
        for name in ("default", "alice", "team-7", "a.b_c-D", "x" * 64):
            assert valid_tenant(name), name

    def test_rejects_everything_else(self):
        for name in ("", "x" * 65, "a b", "a/b", "a\nb", "hé", None,
                     42, b"bytes"):
            assert not valid_tenant(name), name


class TestTenantPolicy:
    def test_defaults_are_fully_permissive(self):
        policy = TenantPolicy()
        assert policy.rate is None
        assert policy.max_inflight is None
        assert policy.max_queued is None

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            TenantPolicy(rate=0)
        with pytest.raises(ValueError):
            TenantPolicy(rate=-1.0)
        with pytest.raises(ValueError):
            TenantPolicy(burst=0)
        with pytest.raises(ValueError):
            TenantPolicy(max_inflight=0)
        with pytest.raises(ValueError):
            TenantPolicy(max_queued=0)


class TestTokenBucket:
    def test_burst_then_dry(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.try_take() for _ in range(4)] \
            == [True, True, True, False]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_take()
        assert not bucket.try_take()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token
        assert bucket.try_take()

    def test_retry_after_is_time_of_next_token(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1, clock=clock)
        assert bucket.retry_after() == 0.0
        bucket.try_take()
        assert bucket.retry_after() == pytest.approx(0.25)
        clock.advance(0.1)
        assert bucket.retry_after() == pytest.approx(0.15)

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(1000.0)
        assert bucket.tokens == pytest.approx(2.0)


class TestAdmission:
    def test_rate_limit_throttles_with_bucket_derived_retry_after(self):
        clock = FakeClock()
        sched = FairScheduler(TenantPolicy(rate=1.0, burst=2), clock=clock)
        sched.admit("alice")
        sched.admit("alice")
        with pytest.raises(TenantThrottled) as info:
            sched.admit("alice")
        assert info.value.reason == "rate"
        assert info.value.tenant == "alice"
        assert info.value.retry_after == pytest.approx(1.0)
        # the throttle is per tenant: bob still has his whole burst
        sched.admit("bob")

    def test_throttled_is_a_queue_full_for_429_handling(self):
        clock = FakeClock()
        sched = FairScheduler(TenantPolicy(rate=1.0, burst=1), clock=clock)
        sched.admit("alice")
        with pytest.raises(QueueFull):
            sched.admit("alice")

    def test_max_queued_bounds_one_tenants_share(self):
        sched = FairScheduler(TenantPolicy(max_queued=2))
        for n in range(2):
            sched.admit("alice")
            sched.push("alice", f"job-{n}")
        with pytest.raises(TenantThrottled) as info:
            sched.admit("alice")
        assert info.value.reason == "queue"
        sched.admit("bob")  # unaffected

    def test_throttle_count_lands_in_view(self):
        clock = FakeClock()
        sched = FairScheduler(TenantPolicy(rate=1.0, burst=1), clock=clock)
        sched.admit("alice")
        for _ in range(3):
            with pytest.raises(TenantThrottled):
                sched.admit("alice")
        assert sched.tenants_view()["alice"]["throttled"] == 3


class TestFairDispatch:
    def test_single_tenant_is_fifo(self):
        sched = FairScheduler()
        for n in range(3):
            sched.push(DEFAULT_TENANT, f"job-{n}")
        popped = [sched.pop()[1] for _ in range(3)]
        assert popped == ["job-0", "job-1", "job-2"]
        assert sched.pop() is None

    def test_round_robin_interleaves_tenants(self):
        sched = FairScheduler()
        for n in range(3):
            sched.push("alice", f"a{n}")
        sched.push("bob", "b0")
        sched.push("carol", "c0")
        order = []
        while True:
            item = sched.pop()
            if item is None:
                break
            order.append(item[0])
        # alice's backlog cannot starve bob or carol: they are each
        # served within the first round
        assert set(order[:3]) == {"alice", "bob", "carol"}
        assert order.count("alice") == 3

    def test_fair_share_under_asymmetric_load(self):
        # one tenant floods 100 jobs, another trickles 10: after 20
        # dispatches the trickler has been served its entire backlog's
        # fair share, not starved behind the flood
        sched = FairScheduler()
        for n in range(100):
            sched.push("flood", f"f{n}")
        for n in range(10):
            sched.push("trickle", f"t{n}")
        first_20 = [sched.pop()[0] for _ in range(20)]
        assert first_20.count("trickle") == 10

    def test_inflight_cap_skips_without_starving(self):
        sched = FairScheduler(TenantPolicy(max_inflight=1))
        sched.push("alice", "a0")
        sched.push("alice", "a1")
        sched.push("bob", "b0")
        assert sched.pop() == ("alice", "a0")
        # alice is capped: the next pop must serve bob, not block
        assert sched.pop() == ("bob", "b0")
        # everyone capped -> pop yields None rather than violating caps
        assert sched.pop() is None
        sched.release("alice")
        assert sched.pop() == ("alice", "a1")

    def test_fractional_quantum_still_dispatches(self):
        # quantum < 1 takes several DRR passes to accrue a whole job's
        # deficit; pop() must cycle until someone crosses 1.0 rather
        # than return None with work queued (which would stall dispatch
        # forever: nothing re-sets the manager's wake event)
        sched = FairScheduler(quantum=0.3)
        sched.push("alice", "a0")
        sched.push("bob", "b0")
        order = []
        while True:
            item = sched.pop()
            if item is None:
                break
            order.append(item)
        assert sorted(order) == [("alice", "a0"), ("bob", "b0")]
        # and with every queue drained it still terminates with None
        assert sched.pop() is None

    def test_fractional_quantum_respects_inflight_caps(self):
        sched = FairScheduler(TenantPolicy(max_inflight=1), quantum=0.5)
        sched.push("alice", "a0")
        sched.push("alice", "a1")
        assert sched.pop() == ("alice", "a0")
        assert sched.pop() is None  # capped, must not spin forever
        sched.release("alice")
        assert sched.pop() == ("alice", "a1")

    def test_release_and_forget_bookkeeping(self):
        sched = FairScheduler()
        sched.push("alice", "a0")
        sched.push("alice", "a1")
        assert sched.pop() == ("alice", "a0")
        assert sched.inflight() == 1
        assert sched.depth() == 1
        sched.release("alice", completed=True)
        assert sched.inflight() == 0
        assert sched.forget("alice", "a1")
        assert not sched.forget("alice", "a1")
        assert not sched.forget("nobody", "x")
        assert sched.depth() == 0
        assert sched.pop() is None
        view = sched.tenants_view()["alice"]
        assert view["completed"] == 1
        assert view["dispatched"] == 1

    def test_view_includes_tokens_only_when_rate_limited(self):
        clock = FakeClock()
        plain = FairScheduler()
        plain.push("a", "j")
        assert "tokens" not in plain.tenants_view()["a"]
        limited = FairScheduler(TenantPolicy(rate=2.0, burst=4),
                                clock=clock)
        limited.admit("a")
        view = limited.tenants_view()["a"]
        assert view["tokens"] == pytest.approx(3.0)
        assert view["rate"] == 2.0
