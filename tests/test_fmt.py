"""Unit tests for pretty printing, including parser round-trips."""

import pytest

from repro.fmt import pretty, pretty_spec
from repro.kernel import (
    And,
    Cat,
    Const,
    Eq,
    Exists,
    IfThenElse,
    Len,
    Not,
    Or,
    TupleExpr,
    Var,
    interval,
    structurally_equal,
)
from repro.parser import parse_expr, parse_formula
from repro.temporal import ActionBox, Always, Eventually, Hide, LeadsTo, SF, StatePred, WF

from tests.conftest import counter_spec

x, y = Var("x"), Var("y")


class TestExprPretty:
    def test_atoms(self):
        assert pretty(Const(7)) == "7"
        assert pretty(Const(True)) == "TRUE"
        assert pretty(Const((1, 2))) == "<<1, 2>>"
        assert pretty(x) == "x"
        assert pretty(x.prime()) == "x'"

    def test_operators(self):
        assert pretty(Eq(x, Const(0))) == "x = 0"
        assert pretty(Not(Eq(x, Const(0)))) == "x # 0"
        assert pretty(x + 1) == "x + 1"
        assert pretty((x + 1) * 2) == "(x + 1) * 2"
        assert pretty(x < 2) == "x < 2"

    def test_connectives(self):
        expr = And(Eq(x, Const(0)), Or(Eq(y, Const(1)), Eq(y, Const(2))))
        assert pretty(expr) == "x = 0 /\\ (y = 1 \\/ y = 2)"

    def test_unicode_mode(self):
        expr = And(Eq(x, Const(0)), Eq(y, Const(1)))
        assert "∧" in pretty(expr, unicode=True)

    def test_tuple_and_functions(self):
        assert pretty(TupleExpr(x, y)) == "<<x, y>>"
        assert pretty(Len(x)) == "Len(x)"
        assert pretty(Cat(x, y)) == "x \\o y"

    def test_ite(self):
        assert pretty(IfThenElse(x > 0, x, y)) == "IF x > 0 THEN x ELSE y"

    def test_quantifier(self):
        expr = Exists("v", interval(0, 3), Eq(x, Var("v")))
        assert pretty(expr) == "\\E v \\in 0..3 : x = v"


class TestFormulaPretty:
    def test_action_box(self):
        formula = ActionBox(Eq(x.prime(), x + 1), ("x",))
        assert pretty(formula) == "[][x' = x + 1]_x"

    def test_action_box_tuple_sub(self):
        formula = ActionBox(Eq(x.prime(), x), ("x", "y"))
        assert pretty(formula) == "[][x' = x]_<<x, y>>"

    def test_temporal_operators(self):
        assert pretty(Always(StatePred(Eq(x, Const(0))))) == "[](x = 0)"
        assert pretty(Eventually(StatePred(Eq(x, Const(0))))) == "<>(x = 0)"
        assert pretty(LeadsTo(StatePred(Eq(x, Const(0))),
                              StatePred(Eq(x, Const(1))))) == "x = 0 ~> x = 1"

    def test_fairness(self):
        assert pretty(WF(("x",), Eq(x.prime(), x + 1))) == "WF_x(x' = x + 1)"
        assert pretty(SF(("x", "y"), Eq(x.prime(), x))) == "SF_<<x, y>>(x' = x)"

    def test_hide(self):
        formula = Hide({"h": interval(0, 1)}, StatePred(Eq(Var("h"), 0)))
        assert pretty(formula) == "\\E h : h = 0"

    def test_paper_operators(self):
        from repro.core import Closure, Guarantees, Orthogonal, Plus

        e_formula = StatePred(Eq(x, Const(0)))
        m_formula = StatePred(Eq(y, Const(0)))
        assert pretty(Closure(e_formula)) == "C(x = 0)"
        assert "-+>" in pretty(Guarantees(e_formula, m_formula))
        assert "⊳" in pretty(Guarantees(e_formula, m_formula), unicode=True)
        assert "_|_" in pretty(Orthogonal(e_formula, m_formula))
        assert pretty(Plus(e_formula, ("x",))).endswith("+x")

    def test_pretty_spec_layout(self):
        text = pretty_spec(counter_spec())
        lines = text.splitlines()
        assert lines[0].endswith("==")
        assert lines[1].lstrip().startswith("/\\")
        assert "WF_x" in lines[3]

    def test_unknown_object_rejected(self):
        with pytest.raises(TypeError):
            pretty(42)


class TestRoundTrip:
    """pretty() output re-parses to a structurally equal tree."""

    EXPRESSIONS = [
        "x = 0",
        "x # 0",
        "x + 1 * 2",
        "(x + 1) * 2",
        "x = 0 /\\ (y = 1 \\/ y = 2)",
        "x < 2 => y = 1",
        "<<x, y>> = <<0, 1>>",
        "Append(q, x) = q",
        "Len(q) < 3",
        "IF x > 0 THEN x ELSE y",
        "x' = x + 1",
        "\\E v \\in 0..3 : x = v",
        "q \\o <<1>> = q",
    ]

    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_expr_round_trip(self, text):
        expr = parse_expr(text)
        assert structurally_equal(parse_expr(pretty(expr)), expr)

    FORMULAS = [
        "[](x = 0)",
        "<>(x = 1)",
        "[][x' = x + 1]_<<x, y>>",
        "<><<x' = x + 1>>_x",
        "WF_x(x' = x + 1)",
        "SF_<<x, y>>(x' = x)",
        "x = 0 /\\ [][x' = x]_x /\\ WF_x(x' = x)",
        "(x = 0) ~> (x = 1)",
        "[](x = 0) => <>(y = 1)",
    ]

    @pytest.mark.parametrize("text", FORMULAS)
    def test_formula_round_trip(self, text):
        formula = parse_formula(text)
        reparsed = parse_formula(pretty(formula))
        assert reparsed.key() == formula.key()
