"""Unit tests for the stdlib metrics layer: families and children,
Prometheus text rendering, histogram quantiles, and the multi-process
snapshot merge (counters of dead processes keep counting, their gauges
drop out)."""

import json
import os

import pytest

from repro.service.journal import process_start_time
from repro.service.metrics import (
    DEFAULT_BUCKETS,
    MetricsDir,
    MetricsRegistry,
    merge_snapshots,
    render_snapshot,
)


class TestFamilies:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total").default
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_goes_both_ways(self):
        gauge = MetricsRegistry().gauge("depth").default
        gauge.set(5)
        gauge.dec(2)
        gauge.inc()
        assert gauge.value == 4.0

    def test_labels_split_children(self):
        registry = MetricsRegistry()
        family = registry.counter("jobs_total", labelnames=("tenant",))
        family.labels(tenant="alice").inc()
        family.labels(tenant="alice").inc()
        family.labels(tenant="bob").inc()
        assert family.labels(tenant="alice").value == 2
        assert family.labels(tenant="bob").value == 1
        with pytest.raises(ValueError):
            family.labels(user="alice")
        with pytest.raises(ValueError):
            family.default  # labelled family has no unlabelled child

    def test_reregistration_must_match(self):
        registry = MetricsRegistry()
        registry.counter("x", help_text="first")
        registry.counter("x")  # same shape: fine
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.counter("x", labelnames=("tenant",))


class TestHistogram:
    def test_buckets_are_cumulative(self):
        hist = MetricsRegistry().histogram(
            "lat", buckets=(0.1, 1.0, 10.0)).default
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        data = hist._data()
        assert data["buckets"] == {"0.1": 1, "1": 3, "10": 4}
        assert data["inf"] == 5
        assert data["count"] == 5
        assert data["sum"] == pytest.approx(56.05)

    def test_quantile_is_bucket_upper_bound(self):
        hist = MetricsRegistry().histogram(
            "lat", buckets=(0.1, 1.0, 10.0)).default
        for value in (0.05,) * 50 + (0.5,) * 45 + (5.0,) * 5:
            hist.observe(value)
        assert hist.quantile(0.5) == 0.1
        assert hist.quantile(0.95) == 1.0
        assert hist.quantile(0.99) == 10.0
        assert hist.quantile(0.0) == 0.1

    def test_quantile_edge_cases(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0,)).default
        assert hist.quantile(0.5) == 0.0  # empty
        hist.observe(99.0)
        assert hist.quantile(1.0) == float("inf")  # beyond last bucket
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_default_buckets_cover_cache_hit_to_minutes(self):
        assert DEFAULT_BUCKETS[0] <= 0.005
        assert DEFAULT_BUCKETS[-1] >= 60.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRendering:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", "Jobs admitted.",
                         labelnames=("tenant",)) \
            .labels(tenant="alice").inc(3)
        registry.gauge("repro_queue_depth", "Queued jobs.").default.set(2)
        text = registry.render()
        assert "# HELP repro_jobs_total Jobs admitted." in text
        assert "# TYPE repro_jobs_total counter" in text
        assert 'repro_jobs_total{tenant="alice"} 3' in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 2" in text
        assert text.endswith("\n")

    def test_histogram_rendering_is_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0)).default
        hist.observe(0.05)
        hist.observe(0.5)
        text = registry.render()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_count 2" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x", labelnames=("t",)) \
            .labels(t='a"b\\c\nd').inc()
        text = registry.render()
        assert 'x{t="a\\"b\\\\c\\nd"} 1' in text


class TestMerge:
    @staticmethod
    def _snapshot(pid, counter=0.0, gauge=0.0):
        registry = MetricsRegistry()
        registry.counter("done_total").default.inc(counter)
        registry.gauge("running").default.set(gauge)
        snapshot = registry.snapshot()
        snapshot["pid"] = pid
        return snapshot

    def test_counters_sum_across_dead_processes(self):
        merged = merge_snapshots(
            [self._snapshot(1, counter=3), self._snapshot(2, counter=4)],
            live_pids={2})
        samples = merged["families"]["done_total"]["samples"]
        assert samples == [[[], 7.0]]

    def test_gauges_only_from_live_processes(self):
        merged = merge_snapshots(
            [self._snapshot(1, gauge=5), self._snapshot(2, gauge=2)],
            live_pids={2})
        samples = merged["families"]["running"]["samples"]
        assert samples == [[[], 2.0]]

    def test_merged_snapshot_renders(self):
        merged = merge_snapshots(
            [self._snapshot(1, counter=1, gauge=1),
             self._snapshot(2, counter=2, gauge=2)],
            live_pids={1, 2})
        text = render_snapshot(merged)
        assert "done_total 3" in text
        assert "running 3" in text


class TestMetricsDir:
    def test_flush_and_render_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        metrics = MetricsDir(str(tmp_path), registry)
        registry.counter("done_total").default.inc(2)
        text = metrics.render()
        assert "done_total 2" in text
        assert os.path.exists(metrics.path)

    def test_dead_sibling_counters_survive_gauges_drop(self, tmp_path):
        # simulate a SIGKILLed sibling: its last flush is on disk under
        # a pid that no longer exists
        dead = MetricsRegistry()
        dead.counter("done_total").default.inc(10)
        dead.gauge("running").default.set(7)
        snapshot = dead.snapshot()
        snapshot["pid"] = 999999999  # certainly dead
        (tmp_path / "proc-999999999-dead.json").write_text(
            json.dumps(snapshot))

        live = MetricsRegistry()
        live.counter("done_total").default.inc(1)
        live.gauge("running").default.set(2)
        text = MetricsDir(str(tmp_path), live).render()
        assert "done_total 11" in text  # dead counter still counts
        assert "running 2" in text      # dead gauge dropped

    def test_same_pid_restart_retires_stale_gauges(self, tmp_path):
        # an in-process manager restart: the old file carries OUR pid,
        # so liveness filtering alone would double-count its gauges
        first = MetricsRegistry()
        first.counter("done_total").default.inc(5)
        first.gauge("running").default.set(3)
        MetricsDir(str(tmp_path), first).flush()

        second = MetricsRegistry()
        second.counter("done_total").default.inc(1)
        second.gauge("running").default.set(1)
        text = MetricsDir(str(tmp_path), second).render()
        assert "done_total 6" in text  # history kept
        assert "running 1" in text     # stale gauge retired

    def test_dead_files_fold_into_one_baseline(self, tmp_path):
        # three SIGKILLed siblings left snapshot files behind; a new
        # MetricsDir folds them into one merged baseline instead of
        # keeping (and re-reading, on every scrape) every dead process's
        # file forever
        for n in range(3):
            dead = MetricsRegistry()
            dead.counter("done_total").default.inc(2)
            dead.gauge("running").default.set(1)
            snapshot = dead.snapshot()
            snapshot["pid"] = 999999900 + n  # certainly dead
            (tmp_path / f"proc-{999999900 + n}-x{n}.json").write_text(
                json.dumps(snapshot))
        live = MetricsRegistry()
        live.counter("done_total").default.inc(1)
        metrics = MetricsDir(str(tmp_path), live)
        names = sorted(os.listdir(str(tmp_path)))
        assert "proc-dead-merged.json" in names
        assert not any(name.startswith("proc-9999999") for name in names)
        text = metrics.render()
        assert "done_total 7" in text  # 3 x 2 dead + 1 live
        assert "running" not in text   # dead gauges dropped in the fold
        # a second fold with nothing new is a no-op
        assert metrics.fold_dead() == 0

    @pytest.mark.skipif(process_start_time(os.getpid()) is None,
                        reason="needs /proc start times")
    def test_recycled_pid_gauges_are_not_resurrected(self, tmp_path):
        # a dead sibling's pid was reused by an unrelated live process:
        # the snapshot's recorded start time no longer matches, so its
        # gauges must NOT be counted as live
        ghost = MetricsRegistry()
        ghost.counter("done_total").default.inc(4)
        ghost.gauge("running").default.set(9)
        snapshot = ghost.snapshot()
        owner = os.getppid() or 1  # alive -- but a different incarnation
        snapshot["pid"] = owner
        snapshot["pid_start"] = (process_start_time(owner) or 0) + 17
        (tmp_path / f"proc-{owner}-ghost.json").write_text(
            json.dumps(snapshot))
        live = MetricsRegistry()
        live.counter("done_total").default.inc(1)
        text = MetricsDir(str(tmp_path), live).render()
        assert "done_total 5" in text  # the work still happened
        assert "running 9" not in text  # the ghost gauge stays dead
