"""Unit tests for DisjointSpec and AGSpec."""

import pytest

from repro.core import AGSpec, DisjointSpec, Guarantees
from repro.kernel import BIT, Eq, Universe, Var
from repro.spec import Component, Spec, weak_fairness
from repro.temporal import Hide, StatePred, holds

from tests.conftest import lasso

a, b, c = Var("a"), Var("b"), Var("c")
U3 = Universe({"a": BIT, "b": BIT, "c": BIT})


class TestDisjointSpec:
    def test_formula_semantics(self):
        disjoint = DisjointSpec([("a",), ("b",)])
        ok = lasso([{"a": 0, "b": 0}, {"a": 1, "b": 0}, {"a": 1, "b": 1}], 2)
        assert holds(disjoint.formula(), ok, U3.restrict(["a", "b"]))
        bad = lasso([{"a": 0, "b": 0}, {"a": 1, "b": 1}], 1)
        assert not holds(disjoint.formula(), bad, U3.restrict(["a", "b"]))

    def test_three_way_pairs(self):
        disjoint = DisjointSpec([("a",), ("b",), ("c",)])
        formula = disjoint.formula()
        assert len(formula.parts) == 3  # one box per unordered pair

    def test_tuple_variables_move_together(self):
        disjoint = DisjointSpec([("a", "b"), ("c",)])
        ok = lasso([{"a": 0, "b": 0, "c": 0}, {"a": 1, "b": 1, "c": 0}], 1)
        assert holds(disjoint.formula(), ok, U3)

    def test_separates(self):
        disjoint = DisjointSpec([("a", "b"), ("c",)])
        assert disjoint.separates("a", "c")
        assert not disjoint.separates("a", "b")   # same tuple
        assert not disjoint.separates("a", "zz")  # undeclared

    def test_separates_tuples(self):
        disjoint = DisjointSpec([("a",), ("b",), ("c",)])
        assert disjoint.separates_tuples(("a",), ("b", "c"))
        assert not disjoint.separates_tuples(("a", "zz"), ("b",))

    def test_spec_conversion(self):
        disjoint = DisjointSpec([("a",), ("b",)])
        spec = disjoint.spec(U3.restrict(["a", "b"]))
        assert set(spec.sub) == {"a", "b"}
        assert not spec.fairness

    def test_validation(self):
        with pytest.raises(ValueError, match="at least two"):
            DisjointSpec([("a",)])
        with pytest.raises(ValueError, match="overlap"):
            DisjointSpec([("a",), ("a", "b")])
        with pytest.raises(ValueError, match="nonempty"):
            DisjointSpec([(), ("a",)])


def simple_component(name="M"):
    return Component(
        name, outputs=("a",), internals=("h",), inputs=("b",),
        init=Eq(a, 0) & Eq(Var("h"), 0),
        next_action=Eq(a.prime(), b) & Eq(Var("h").prime(), a) & Eq(b.prime(), b),
        universe=Universe({"a": BIT, "b": BIT, "h": BIT}),
        fairness=[weak_fairness(("a", "h"),
                  Eq(a.prime(), b) & Eq(Var("h").prime(), a) & Eq(b.prime(), b))],
    )


def simple_assumption():
    return Spec("E", Eq(b, 0), Eq(b.prime(), 0), ("b",), Universe({"b": BIT}))


class TestAGSpec:
    def test_formula_is_guarantees(self):
        ag = AGSpec("ag", simple_assumption(), simple_component())
        formula = ag.formula()
        assert isinstance(formula, Guarantees)
        assert isinstance(formula.sys, Hide)

    def test_true_assumption_collapses(self):
        ag = AGSpec("ag", None, simple_component())
        assert not isinstance(ag.formula(), Guarantees)
        assert isinstance(ag.assumption_formula(), StatePred)

    def test_guarantee_views(self):
        comp = simple_component()
        ag = AGSpec("ag", None, comp)
        assert ag.guarantee_component is comp
        assert ag.guarantee_spec is comp.spec
        assert ag.internals == ("h",)

    def test_spec_guarantee(self):
        spec = simple_assumption()
        ag = AGSpec("ag", None, spec)
        assert ag.guarantee_component is None
        assert ag.guarantee_spec is spec
        assert ag.internals == ()

    def test_fair_assumption_rejected(self):
        fair_env = Spec("E", Eq(b, 0), Eq(b.prime(), 0), ("b",),
                        Universe({"b": BIT}),
                        [weak_fairness(("b",), Eq(b.prime(), 0))])
        with pytest.raises(TypeError, match="fairness"):
            AGSpec("bad", fair_env, simple_component())

    def test_formula_assumption_rejected(self):
        with pytest.raises(TypeError, match="canonical Spec"):
            AGSpec("bad", StatePred(Eq(b, 0)), simple_component())

    def test_bad_guarantee_rejected(self):
        with pytest.raises(TypeError):
            AGSpec("bad", None, StatePred(Eq(a, 0)))
