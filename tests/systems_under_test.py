"""The shared system-under-test table for the durability test layer.

One row per bundled example system (queue, arbiter, handshake, circuit),
each paired with a property that the system **violates**, so every case
produces a deterministic counterexample trace:

* the golden-trace suite freezes the rendered traces byte-for-byte,
* the checkpoint suite replays kill-and-resume runs on every system,
* the fault-injection suite re-checks graph identity under crashes.

Keeping the table in one module means a new bundled system gets golden,
checkpoint, and fault coverage by adding one row here.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import pytest

from repro.checker import (
    CompactGraph,
    ExploreStats,
    StateGraph,
    check_invariant,
    check_invariant_compact,
)
from repro.checker.liveness import check_temporal_implication, premises_of_spec
from repro.checker.results import CheckResult
from repro.kernel.expr import And, Cmp, Exists, Len, Or, Var
from repro.spec import Spec
from repro.systems.arbiter import composed_system, starvation_property
from repro.systems.circuit import composed_processes, eventually_one
from repro.systems.handshake import (
    ack,
    channel_universe,
    channel_vars,
    cinit,
    ready,
    send,
)
from repro.systems.mutex import LamportMutex
from repro.systems.paxos import Paxos
from repro.systems.queue import DEFAULT_MSG, complete_queue


def handshake_system() -> Spec:
    """A closed Figure-2 system: one channel, a sender that transmits
    arbitrary messages and a receiver that acknowledges them."""
    chan = "c"
    nxt = Or(Exists("v", DEFAULT_MSG, send(Var("v"), chan)), ack(chan))
    return Spec(
        "handshake(c)",
        And(cinit(chan)),
        nxt,
        channel_vars(chan),
        channel_universe(chan, DEFAULT_MSG),
    )


class SystemCase:
    """A bundled system plus a property it violates."""

    def __init__(self, case_id: str, make_spec: Callable[[], Spec],
                 check: Callable[[Spec, StateGraph, Optional[ExploreStats]],
                                 CheckResult],
                 kind: str):
        self.id = case_id
        self.make_spec = make_spec
        self._check = check
        self.kind = kind  # "finite" or "lasso" counterexample

    def check(self, spec: Spec, graph: StateGraph,
              stats: Optional[ExploreStats] = None) -> CheckResult:
        """Run the violated check against a pre-explored graph."""
        return self._check(spec, graph, stats)

    def __repr__(self) -> str:
        return f"SystemCase({self.id!r}, kind={self.kind!r})"


def _check_invariant(graph, expr, name, stats):
    """Invariant check dispatched on the graph flavour, so the same case
    table drives the full, compact, and distributed engines."""
    run = check_invariant_compact if isinstance(graph, CompactGraph) \
        else check_invariant
    return run(graph, expr, name=name, run_stats=stats)


def _queue_overfull(spec, graph, stats):
    # the 2-place queue does reach length 2: capacity <= 1 is violated
    return _check_invariant(graph, Cmp("<=", Len(Var("q")), 1),
                            "queue-capacity-1", stats)


def _arbiter_starvation(spec, graph, stats):
    # under weak fairness only, client 1 can be starved forever (the
    # paper's reason the arbiter needs SF): the property fails by lasso
    return check_temporal_implication(
        graph, starvation_property(1), premises=premises_of_spec(spec),
        name="arbiter-no-starvation", run_stats=stats)


def _handshake_never_pending(spec, graph, stats):
    # "the channel is always ready" is false the moment anything is sent
    return _check_invariant(graph, ready("c"), "handshake-always-ready",
                            stats)


def _circuit_eventually_one(spec, graph, stats):
    # both processes keep their wires at 0 forever: ◇(c = 1) fails
    return check_temporal_implication(
        graph, eventually_one("c"), premises=premises_of_spec(spec),
        name="circuit-eventually-one", run_stats=stats)


def _mutex_broken_exclusion(spec, graph, stats):
    # the broken variant drops the timestamp-priority guard, so both
    # processes sit in their critical sections by state ~12
    return _check_invariant(graph, LamportMutex(2, 2).mutual_exclusion(),
                            "mutex-mutual-exclusion", stats)


def _paxos_broken_agreement(spec, graph, stats):
    # without the ballot discipline, two quorums choose different values
    return _check_invariant(graph, Paxos(2, 2, 2).agreement(),
                            "paxos-agreement", stats)


CASES: List[SystemCase] = [
    SystemCase("queue", lambda: complete_queue(2), _queue_overfull, "finite"),
    SystemCase("arbiter", lambda: composed_system(strong=False),
               _arbiter_starvation, "lasso"),
    SystemCase("handshake", handshake_system, _handshake_never_pending,
               "finite"),
    SystemCase("circuit", composed_processes, _circuit_eventually_one,
               "lasso"),
    SystemCase("mutex",
               lambda: LamportMutex(2, 2, broken=True).complete_spec(),
               _mutex_broken_exclusion, "finite"),
    SystemCase("paxos",
               lambda: Paxos(2, 2, 2, broken=True).complete_spec(),
               _paxos_broken_agreement, "finite"),
]

CASE_PARAMS = [pytest.param(case, id=case.id) for case in CASES]
