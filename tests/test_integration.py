"""End-to-end integration tests: the paper's headline results, verified in
one go per figure (see DESIGN.md's per-experiment index)."""

import pytest

from repro.checker import (
    check_safety_refinement,
    check_temporal_implication,
    explore,
    premises_of_spec,
)
from repro.core import CompositionTheorem, brute_force_implication
from repro.systems import circuit
from repro.systems.queue import DoubleQueue, complete_queue


class TestFig1:
    def test_safety_composition_theorem_and_brute_force_agree(self):
        ag_c, ag_d = circuit.safety_agspecs()
        goal = circuit.safety_goal()
        cert = CompositionTheorem([ag_c, ag_d], goal).verify()
        assert cert.ok
        brute = brute_force_implication(
            [ag_c.formula(), ag_d.formula()], goal.formula(),
            circuit.wire_universe())
        assert brute.ok

    def test_liveness_counterexample_is_the_papers(self):
        p1, p2 = circuit.liveness_premises()
        result = brute_force_implication(
            [p1, p2], circuit.liveness_goal_formula(),
            circuit.wire_universe(), max_stem=1, max_loop=1)
        assert not result.ok
        assert all(s["c"] == 0 and s["d"] == 0
                   for s in result.counterexample.trace.states)


class TestFig9:
    @pytest.fixture(scope="class")
    def dq(self):
        return DoubleQueue(1)

    def test_full_composition_proof(self, dq):
        cert = dq.composition_theorem().verify()
        assert cert.ok, cert.render()
        # the certificate mirrors Figure 9: closures, H1 per queue, 2a
        # with Propositions 3+4, 2b
        oids = [ob.oid for ob in cert.obligations]
        assert oids == ["0", "1[1]", "1[2]", "2a", "2b"]
        h2a = cert.obligations[3]
        applied = [rule.proposition for rule in h2a.rules]
        assert "Proposition 3" in applied
        assert "Proposition 4" in applied

    def test_without_g_every_model_checked_hypothesis_fails(self, dq):
        cert = CompositionTheorem(
            [dq.ag_q1(), dq.ag_q2()], dq.ag_goal(),
            disjoint=None, mapping=dq.mapping).verify()
        assert not cert.ok
        failed = {ob.oid for ob in cert.failed_obligations()}
        assert "1[1]" in failed and "1[2]" in failed

    def test_a4_refinement(self, dq):
        graph = explore(dq.cdq_spec())
        target = dq.icq_dbl()
        assert check_safety_refinement(graph, target, dq.mapping).ok
        assert check_temporal_implication(
            graph, target.liveness_formula(), mapping=dq.mapping,
            target_universe=target.universe,
            premises=premises_of_spec(dq.cdq_spec())).ok

    def test_certificate_renders_like_figure9(self, dq):
        text = dq.composition_theorem().verify().render()
        assert "Q.E.D." in text
        assert "QE[1]" in text and "QE[2]" in text
        assert "QM[dbl]" in text
        assert "Proposition 4" in text


class TestScaleUp:
    def test_complete_queue_grows_with_n(self):
        sizes = [explore(complete_queue(n)).state_count for n in (1, 2)]
        assert sizes[0] < sizes[1]

    def test_composition_proof_n2(self):
        """The theorem route stays feasible at N=2 (the direct semantic
        check over the 11-variable behavior universe would be astronomically
        large; see the ABL-DIRECT benchmark)."""
        cert = DoubleQueue(2).composition_theorem().verify()
        assert cert.ok


class TestExamplesRun:
    """The example scripts are part of the deliverable: they must run."""

    @pytest.mark.parametrize("module_name", [
        "quickstart", "queue_composition", "arbiter", "mini_tla",
        "paxos_certificate",
    ])
    def test_example(self, module_name, capsys):
        import importlib.util
        import pathlib
        import sys

        path = (pathlib.Path(__file__).resolve().parent.parent
                / "examples" / f"{module_name}.py")
        spec = importlib.util.spec_from_file_location(
            f"example_{module_name}", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        spec.loader.exec_module(module)
        module.main() if module_name != "queue_composition" else module.main(1)
        assert capsys.readouterr().out
