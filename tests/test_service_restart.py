"""Durability acceptance scenarios against real server processes:

* SIGKILL (no drain, no atexit) with jobs queued and running; a
  restarted server re-admits every one of them **exactly once** from
  the journal, and the interrupted running job resumes to the graph
  digest an uninterrupted run produces;
* ``/metrics`` reconciles with the journal across the kill: every
  admitted job is eventually completed/failed/cancelled exactly once,
  with the dead process's counters still counting;
* the pre-forked front (``repro serve --procs 2``): one port, one
  state directory, N processes -- submissions from two tenants all
  complete and the fleet-wide metrics add up.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.service import ServiceClient
from repro.service.jobs import CheckRequest, run_check
from repro.service.journal import JobJournal

CHAIN_TLA = """
MODULE Chain
CONSTANT N = 40
VARIABLE x \\in 0..40
Init == x = 0
Next == x' = IF x < N THEN x + 1 ELSE x
Spec == Init /\\ [][Next]_<<x>>
Bound == x <= 40
"""

COUNTER_TLA = """
MODULE Counter
CONSTANT N = 3
VARIABLE x \\in 0..2
Init == x = 0
Next == x' = (x + 1) % N
Spec == Init /\\ [][Next]_<<x>> /\\ WF_<<x>>(Next)
Small == x < 3
"""


def wait_until(predicate, timeout=60.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.05)


def spawn_server(state_dir, *extra):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--state-dir", state_dir, "--pool-size", "1", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)


def endpoint(state_dir):
    path = os.path.join(state_dir, "server.json")
    wait_until(lambda: os.path.exists(path), message="server.json")
    with open(path) as handle:
        return json.load(handle)


def metric_total(text, name, **labels):
    """Sum every sample of *name* whose labels include **labels."""
    total = 0.0
    for line in text.splitlines():
        if not line.startswith(name) or line.startswith("#"):
            continue
        match = re.match(rf"{re.escape(name)}(?:\{{([^}}]*)\}})? (\S+)$",
                         line)
        if not match:
            continue
        got = dict(re.findall(r'(\w+)="([^"]*)"', match.group(1) or ""))
        if all(got.get(k) == v for k, v in labels.items()):
            total += float(match.group(2))
    return total


class TestSigkillRestart:
    def test_queued_jobs_survive_sigkill_exactly_once(self, tmp_path):
        state_dir = str(tmp_path / "svc")
        fresh = run_check(CheckRequest(module_source=CHAIN_TLA,
                                       invariants=("Bound",)))

        first = spawn_server(state_dir)
        try:
            client = ServiceClient(endpoint(state_dir)["url"], timeout=120)
            # pool 1: the slow chain runs, the three counters queue up
            slow_id = client.submit(CHAIN_TLA, invariants=["Bound"],
                                    level_delay=0.1)["job"]["id"]
            queued = [client.submit(COUNTER_TLA, invariants=["Small"],
                                    max_states=1000 + n)["job"]["id"]
                      for n in range(3)]
            wait_until(lambda: client.job(slow_id)["events"] >= 6,
                       message="the slow job to make checkpointed progress")
            for job_id in queued:
                assert client.job(job_id)["state"] == "queued"
            first.send_signal(signal.SIGKILL)  # no drain, no goodbye
            first.wait(timeout=30)
        finally:
            if first.poll() is None:
                first.kill()

        os.unlink(os.path.join(state_dir, "server.json"))
        second = spawn_server(state_dir)
        try:
            client = ServiceClient(endpoint(state_dir)["url"], timeout=120)
            all_ids = [slow_id] + queued
            for job_id in all_ids:
                final = client.wait(job_id, timeout=120)
                assert final["state"] == "done", (job_id, final)
                assert final["result"]["verdict"] == "ok"

            # the interrupted running job resumed to the digest an
            # uninterrupted run produces (the checkpoint was honoured)
            resumed = client.job(slow_id)
            assert resumed["result"]["graph_digest"] \
                == fresh["graph_digest"]
            assert resumed["result"]["states"] == fresh["states"]

            # /metrics reconciles with the journal across the kill:
            # the dead process's admitted counters still count, and
            # admitted == completed with nothing lost or duplicated
            text = client.metrics()
            admitted = metric_total(text, "repro_jobs_admitted_total")
            completed = metric_total(text, "repro_jobs_completed_total")
            failed = metric_total(text, "repro_jobs_failed_total")
            cancelled = metric_total(text, "repro_jobs_cancelled_total")
            assert admitted == float(len(all_ids))
            assert admitted == completed + failed + cancelled

            second.send_signal(signal.SIGTERM)
            second.wait(timeout=30)
        finally:
            if second.poll() is None:
                second.kill()
        assert second.returncode == 0

        # exactly once, straight from the journal: one submitted and one
        # done per job, and each re-admission left a claim trail
        folded = JobJournal(os.path.join(state_dir, "journal")).replay()
        for job_id in [slow_id] + queued:
            record = folded[job_id]
            assert record["state"] == "done", (job_id, record)
            assert record["counts"]["submitted"] == 1
            assert record["counts"]["done"] == 1
            assert record["counts"].get("claimed", 0) >= 1

    def test_journal_only_job_is_rebuilt_after_sigkill(self, tmp_path):
        # kill the server so fast the job may exist only as journal
        # lines; the journal stores the full request, so recovery can
        # rebuild and run it either way
        state_dir = str(tmp_path / "svc")
        first = spawn_server(state_dir)
        try:
            client = ServiceClient(endpoint(state_dir)["url"])
            job_id = client.submit(COUNTER_TLA,
                                   invariants=["Small"])["job"]["id"]
            first.send_signal(signal.SIGKILL)
            first.wait(timeout=30)
        finally:
            if first.poll() is None:
                first.kill()

        os.unlink(os.path.join(state_dir, "server.json"))
        second = spawn_server(state_dir)
        try:
            client = ServiceClient(endpoint(state_dir)["url"], timeout=120)
            final = client.wait(job_id, timeout=120)
            assert final["state"] == "done"
            assert final["result"]["verdict"] == "ok"
            second.send_signal(signal.SIGTERM)
            second.wait(timeout=30)
        finally:
            if second.poll() is None:
                second.kill()


class TestMultiProcess:
    def test_two_procs_one_port_two_tenants(self, tmp_path):
        state_dir = str(tmp_path / "svc")
        server = spawn_server(state_dir, "--procs", "2")
        try:
            info = endpoint(state_dir)
            assert info["procs"] == 2
            url = info["url"]

            def answering(client):
                # the endpoint file lands before the children bind, so
                # early polls may be refused outright
                try:
                    return client.health()["status"] == "ok"
                except OSError:
                    return False

            job_ids = []
            for offset, tenant in ((2000, "alice"), (3000, "bob")):
                client = ServiceClient(url, tenant=tenant, timeout=120)
                wait_until(lambda c=client: answering(c),
                           message="a child process to answer")
                # distinct max_states per job AND per tenant: nothing
                # coalesces or caches, every submission is an admission
                for n in range(3):
                    job_ids.append(
                        (client,
                         client.submit(COUNTER_TLA, invariants=["Small"],
                                       max_states=offset + n)["job"]["id"]))
            for client, job_id in job_ids:
                final = client.wait(job_id, timeout=120)
                assert final["state"] == "done", (job_id, final)
                assert final["result"]["verdict"] == "ok"

            # the fleet-wide exposition adds both children's slices up,
            # whichever child served each submission
            text = ServiceClient(url).metrics()
            admitted = metric_total(text, "repro_jobs_admitted_total")
            completed = metric_total(text, "repro_jobs_completed_total")
            assert admitted == 6.0
            assert completed == 6.0
            for tenant in ("alice", "bob"):
                assert metric_total(text, "repro_jobs_admitted_total",
                                    tenant=tenant) == 3.0

            server.send_signal(signal.SIGTERM)  # parent relays to children
            server.wait(timeout=30)
        finally:
            if server.poll() is None:
                server.kill()
        assert server.returncode == 0

    @pytest.mark.skipif(not os.path.isdir("/proc"),
                        reason="finds the children via /proc cmdlines")
    def test_children_drain_when_parent_is_sigkilled(self, tmp_path):
        # SIGKILL on the supervisor cannot be relayed; the children's
        # re-parenting watchdog must drain them instead of leaving two
        # orphans serving a port nobody supervises
        state_dir = str(tmp_path / "svc")
        server = spawn_server(state_dir, "--procs", "2")
        try:
            url = endpoint(state_dir)["url"]
            client = ServiceClient(url, timeout=120)

            def answering():
                try:
                    return client.health()["status"] == "ok"
                except OSError:
                    return False

            wait_until(answering, message="a child process to answer")
            children = _serve_pids(state_dir, exclude=server.pid)
            assert len(children) == 2, children

            server.send_signal(signal.SIGKILL)
            server.wait(timeout=30)
            wait_until(lambda: all(not _pid_alive(pid) for pid in children),
                       timeout=30,
                       message="orphaned children to drain themselves")
        finally:
            if server.poll() is None:
                server.kill()


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


def _serve_pids(state_dir, exclude):
    """Pids of every ``repro serve`` process over *state_dir* (via
    /proc cmdlines), minus *exclude* -- i.e. the forked children."""
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit() or int(entry) == exclude:
            continue
        try:
            with open(f"/proc/{entry}/cmdline", "rb") as handle:
                cmdline = handle.read().decode("utf-8", "replace")
        except OSError:
            continue
        if state_dir in cmdline and "serve" in cmdline:
            pids.append(int(entry))
    return pids
