"""FIFO data integrity: a scripted environment drives the queue and the
checker proves values come out in order.

The generic environment ``QE`` sends arbitrary values, so FIFO order is
not expressible as a simple invariant there.  Here a *scripted* environment
sends the fixed sequence 0, 1 and then only acknowledges; the composed
system must deliver 0 before 1 on the output channel -- checked as
invariants and leads-to properties over the full reachable graph.
"""

import pytest

from repro.checker import (
    check_invariant,
    check_temporal_implication,
    explore,
    premises_of_spec,
)
from repro.kernel import And, Eq, Implies, Or, Universe, Var, interval
from repro.spec import Spec, conjoin, weak_fairness
from repro.systems.handshake import ack, channel_vars, cinit, pending, send
from repro.systems.queue import Queue
from repro.temporal import Eventually, LeadsTo, StatePred


def scripted_env(values):
    """An environment that sends the given values on ``i`` in order (one
    per handshake round), acknowledges everything on ``o``, and then stops
    sending.  A counter ``sent`` tracks progress."""
    sent = Var("sent")
    puts = [
        And(Eq(sent, idx), send(value, "i"),
            Eq(sent.prime(), idx + 1),
            *[Eq(Var(v).prime(), Var(v)) for v in channel_vars("o")])
        for idx, value in enumerate(values)
    ]
    get = And(ack("o"), Eq(sent.prime(), sent),
              *[Eq(Var(v).prime(), Var(v)) for v in channel_vars("i")])
    action = Or(*puts, get)
    universe = (
        Queue(len(values)).universe
        .merge(Universe({"sent": interval(0, len(values))}))
    )
    return Spec(
        "ScriptedEnv",
        And(cinit("i"), Eq(sent, 0)),
        action,
        ("i.sig", "i.val", "o.ack", "sent"),
        universe,
        [weak_fairness(("i.sig", "i.val", "o.ack", "sent"), action)],
    )


@pytest.fixture(scope="module")
def system():
    env = scripted_env([0, 1])
    queue = Queue(2)
    spec = conjoin([env, queue.spec], name="scripted queue")
    return spec, explore(spec)


class TestFifoIntegrity:
    def test_output_order(self, system):
        """While the 1 has not been sent, the output can only carry the 0:
        o.val = 1 implies everything before it was already delivered."""
        spec, graph = system
        sent, o_val = Var("sent"), Var("o.val")
        # if o is carrying an in-flight 1, both values must have been sent
        invariant = Implies(And(pending("o"), Eq(o_val, 1)),
                            Eq(sent, 2))
        assert check_invariant(graph, invariant).ok

    def test_queue_never_reorders(self, system):
        """The buffer contents are always a subsequence of <0, 1>."""
        spec, graph = system
        q = Var("q")
        ok_values = Or(Eq(q, ()), Eq(q, (0,)), Eq(q, (1,)), Eq(q, (0, 1)))
        assert check_invariant(graph, ok_values).ok
        # in particular <1, 0> is unreachable
        bad = check_invariant(graph, ~Eq(q, (1, 0)))
        assert bad.ok

    def test_both_values_delivered(self, system):
        """With a fair environment and queue, the 1 eventually crosses o
        (and the 0 crossed strictly earlier, by the order invariant)."""
        spec, graph = system
        delivered_one = Eventually(
            StatePred(And(pending("o"), Eq(Var("o.val"), 1))))
        result = check_temporal_implication(
            graph, delivered_one, premises=premises_of_spec(spec))
        assert result.ok

    def test_first_value_delivered_first(self, system):
        """From the start (nothing sent yet), the 0 is eventually in flight
        on o -- and by the order invariant it precedes the 1.

        (Anchoring at ``sent = 1`` would be wrong: the environment may have
        already acknowledged the delivered 0 while ``sent`` is still 1, and
        the checker duly produces that counterexample.)"""
        spec, graph = system
        zero_delivered = LeadsTo(
            StatePred(Eq(Var("sent"), 0)),
            StatePred(And(pending("o"), Eq(Var("o.val"), 0))))
        result = check_temporal_implication(
            graph, zero_delivered, premises=premises_of_spec(spec))
        assert result.ok

    def test_misanchored_property_refuted(self, system):
        """The subtlety above, pinned as a test: 'sent = 1 ~> 0 in flight'
        is genuinely false -- the 0 may already be delivered and acked."""
        spec, graph = system
        misanchored = LeadsTo(
            StatePred(Eq(Var("sent"), 1)),
            StatePred(And(pending("o"), Eq(Var("o.val"), 0))))
        result = check_temporal_implication(
            graph, misanchored, premises=premises_of_spec(spec))
        assert not result.ok

    def test_environment_terminates(self, system):
        spec, graph = system
        done = Eventually(StatePred(Eq(Var("sent"), 2)))
        result = check_temporal_implication(
            graph, done, premises=premises_of_spec(spec))
        assert result.ok
