"""Unit tests for the Figure 1 circuit and the arbiter example system."""


from repro.checker import (
    check_invariant,
    check_temporal_implication,
    explore,
)
from repro.core import Guarantees, brute_force_implication, compose
from repro.kernel import And, Eq, Var
from repro.systems import arbiter, circuit
from repro.temporal import holds

from tests.conftest import lasso


class TestCircuitSafety:
    def test_always_zero_spec(self):
        spec = circuit.always_zero("c")
        good = lasso([{"c": 0}], 0)
        bad = lasso([{"c": 0}, {"c": 1}], 1)
        assert holds(spec.formula(), good, spec.universe)
        assert not holds(spec.formula(), bad, spec.universe)

    def test_theorem_discharges_circularity(self):
        ag_c, ag_d = circuit.safety_agspecs()
        cert = compose([ag_c, ag_d], circuit.safety_goal())
        assert cert.ok

    def test_brute_force_agrees(self):
        ag_c, ag_d = circuit.safety_agspecs()
        result = brute_force_implication(
            [ag_c.formula(), ag_d.formula()],
            circuit.safety_goal().formula(),
            circuit.wire_universe())
        assert result.ok

    def test_processes_satisfy_ag_specs(self):
        ag_c, _ = circuit.safety_agspecs()
        result = brute_force_implication(
            [circuit.pi_c().formula()], ag_c.formula(),
            circuit.wire_universe())
        assert result.ok

    def test_composed_processes_stay_zero(self):
        graph = explore(circuit.composed_processes())
        assert graph.state_count == 1
        result = check_invariant(
            graph, And(Eq(Var("c"), 0), Eq(Var("d"), 0)))
        assert result.ok


class TestCircuitLiveness:
    def test_circular_liveness_fails(self):
        """The paper's example 2: the all-stutter behavior satisfies both
        premises but not the conclusion."""
        p1, p2 = circuit.liveness_premises()
        result = brute_force_implication(
            [p1, p2], circuit.liveness_goal_formula(),
            circuit.wire_universe(), max_stem=1, max_loop=1)
        assert not result.ok
        trace = result.counterexample.trace
        assert all(s["c"] == 0 and s["d"] == 0 for s in trace.states)

    def test_composed_processes_violate_liveness(self):
        result = check_temporal_implication(
            circuit.composed_processes(), circuit.liveness_goal_formula())
        assert not result.ok

    def test_process_fails_literal_liveness_ag(self):
        """With assumption literally <>(d=1), Pi_c may miss the flash of 1
        (see the module docstring's note)."""
        result = brute_force_implication(
            [circuit.pi_c().formula()],
            Guarantees(circuit.eventually_one("d"), circuit.eventually_one("c")),
            circuit.wire_universe(), max_stem=2, max_loop=1)
        assert not result.ok

    def test_process_meets_strengthened_liveness_ag(self):
        result = brute_force_implication(
            [circuit.pi_c().formula()],
            Guarantees(circuit.eventually_stays_one("d"),
                       circuit.eventually_one("c")),
            circuit.wire_universe(), max_stem=2, max_loop=2)
        assert result.ok


class TestArbiterComposition:
    def test_mutex_by_composition_theorem(self):
        cert = compose(list(arbiter.ag_specs()), arbiter.mutex_goal())
        assert cert.ok

    def test_mutex_invariant_on_composed_system(self):
        graph = explore(arbiter.composed_system())
        g1, g2 = Var("grant1"), Var("grant2")
        from repro.kernel import Not

        result = check_invariant(graph, Not(And(Eq(g1, 1), Eq(g2, 1))))
        assert result.ok

    def test_components_validate(self):
        for comp in (arbiter.arbiter_component(), arbiter.client_component(1),
                     arbiter.client_component(2)):
            assert comp.validate_interleaving() == []
            assert comp.spec.validate_fairness_subactions() == []

    def test_broken_client_breaks_hypothesis1(self):
        """A client that raises its request while granted violates the
        request protocol; the theorem's hypothesis 1 must catch it."""
        from repro.core import AGSpec
        from repro.kernel import BIT, Or, Universe
        from repro.spec import Component

        req1 = Var("req1")
        rogue_raise = And(Eq(req1, 0), Eq(req1.prime(), 1),
                          Eq(Var("grant1").prime(), Var("grant1")))
        rogue = Component(
            "RogueClient", outputs=("req1",), internals=(),
            inputs=("grant1",),
            init=Eq(req1, 0), next_action=Or(rogue_raise, arbiter.client_lower(1)),
            universe=Universe({"req1": BIT, "grant1": BIT}))
        _, _, ag_client2 = arbiter.ag_specs()
        ag_arbiter = arbiter.ag_specs()[0]
        ag_rogue = AGSpec("rogue", arbiter.grant_protocol_spec(1), rogue)
        cert = compose([ag_arbiter, ag_rogue, ag_client2],
                       arbiter.mutex_goal())
        assert not cert.ok
        failed = {ob.oid for ob in cert.failed_obligations()}
        assert any(oid.startswith("1[") for oid in failed)


class TestArbiterLiveness:
    def test_no_starvation_with_sf(self):
        system = arbiter.composed_system(strong=True)
        for j in (1, 2):
            assert check_temporal_implication(
                system, arbiter.starvation_property(j)).ok

    def test_starvation_with_wf_only(self):
        system = arbiter.composed_system(strong=False)
        result = check_temporal_implication(
            system, arbiter.starvation_property(1))
        assert not result.ok
        # the lasso really is a starvation scenario: req1 stays up,
        # grant1 stays down
        trace = result.counterexample.trace
        loop_states = [trace.states[p] for p in trace.loop_positions()]
        assert all(s["grant1"] == 0 for s in loop_states)
        assert any(s["req1"] == 1 for s in loop_states)

    def test_grant_eventually_revoked(self):
        from repro.temporal import LeadsTo, StatePred

        system = arbiter.composed_system()
        result = check_temporal_implication(
            system,
            LeadsTo(StatePred(Eq(Var("grant1"), 1)),
                    StatePred(Eq(Var("grant1"), 0))))
        assert result.ok
