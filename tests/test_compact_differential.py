"""Differential tests: the compact engine is bit-for-bit the full one.

For every bundled system (queue, arbiter, handshake, circuit), a panel
of seeded random specifications, and every worker count k in {1, 2, 4}
(plus ``REPRO_TEST_WORKERS`` from the CI matrix, if set),
``explore_compact(spec, workers=k)`` must agree with the full engine's
``explore(spec)`` on *everything observable*: decoded states under the
same node numbering, the BFS parent tree, initial nodes, edge and
stutter accounting, the ``StateSpaceExplosion`` insertion point, the
streaming :class:`~repro.checker.digest.GraphDigest` -- and the checks
built on top: invariant verdicts and byte-identical regenerated
counterexample traces.  Checkpoint kill/resume must land on the same
digest as the uninterrupted run.

This is the same cross-checking-backends discipline as
``test_parallel_differential.py``: the full serial explorer is the
reference semantics, and any compact divergence is a bug by definition.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.checker import (
    ExploreStats,
    StateSpaceExplosion,
    check_invariant,
    check_invariant_compact,
    digest_of_graph,
    explore,
    explore_compact,
    explore_parallel,
    resume,
    resume_compact,
)
from repro.checker.checkpoint import CheckpointError
from repro.kernel.expr import (
    And,
    Arith,
    Cmp,
    Const,
    Eq,
    Exists,
    Len,
    Not,
    Or,
    Var,
)
from repro.kernel.state import Universe
from repro.kernel.values import FiniteDomain
from repro.spec import Spec
from repro.systems.arbiter import composed_system
from repro.systems.circuit import composed_processes
from repro.systems.handshake import (
    ack,
    channel_universe,
    channel_vars,
    cinit,
    ready,
    send,
)
from repro.systems.queue import DEFAULT_MSG, complete_queue

from tests.test_property_random_specs import random_action, random_universe


def handshake_system() -> Spec:
    chan = "c"
    nxt = Or(Exists("v", DEFAULT_MSG, send(Var("v"), chan)), ack(chan))
    return Spec(
        "handshake(c)",
        And(cinit(chan)),
        nxt,
        channel_vars(chan),
        channel_universe(chan, DEFAULT_MSG),
    )


SYSTEMS = [
    pytest.param(lambda: complete_queue(2), id="queue"),
    pytest.param(composed_system, id="arbiter"),
    pytest.param(handshake_system, id="handshake"),
    pytest.param(composed_processes, id="circuit"),
]

WORKER_COUNTS = [1, 2, 4]
_extra = int(os.environ.get("REPRO_TEST_WORKERS", "0"))
if _extra and _extra not in WORKER_COUNTS:
    WORKER_COUNTS.append(_extra)

RANDOM_SEEDS = range(20)


def random_spec(seed: int) -> Spec:
    """A seeded random spec: the generator panel of
    ``test_property_random_specs`` plus a random initial predicate
    (one or two fully pinned states, so ``initial_states`` is cheap and
    the init-node set is still exercised)."""
    rng = random.Random(seed)
    universe = random_universe(rng)
    action = random_action(rng, universe)
    states = list(universe.states())

    def pin(state) -> And:
        return And(*[Eq(Var(name), Const(state[name]))
                     for name in universe.variables])

    picks = rng.sample(states, rng.randint(1, 2))
    init_expr = pin(picks[0]) if len(picks) == 1 else Or(*map(pin, picks))
    return Spec(f"random-{seed}", init_expr, action,
                tuple(universe.variables), universe)


def assert_compact_matches_full(spec, workers: int,
                                max_states: int = 200_000):
    full_stats, compact_stats = ExploreStats(), ExploreStats()
    full = explore(spec, max_states=max_states, stats=full_stats)
    compact = explore_compact(spec, max_states=max_states, workers=workers,
                              stats=compact_stats)
    # decoded states, elementwise: same node numbering
    assert list(compact.states) == list(full.states)
    # the BFS parent tree (compact encodes "initial" as -1, full as None)
    assert compact.parent == [-1 if p is None else p for p in full.parent]
    assert compact.init_nodes == full.init_nodes
    assert compact.state_count == full.state_count
    assert compact.edge_count == full.edge_count
    assert compact.stutter_count == full.stutter_count
    assert compact_stats.depth == full_stats.depth
    # the transition relation, via the streaming digest
    assert compact.digest() == digest_of_graph(full)
    assert compact_stats.engine == "compact"
    assert compact_stats.fingerprint_collisions == 0
    return full, compact


class TestBundledSystems:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("make_spec", SYSTEMS)
    def test_graph_identical(self, make_spec, workers):
        assert_compact_matches_full(make_spec(), workers)

    def test_queue_violation_and_trace_identical(self):
        spec = complete_queue(2)
        full, compact = assert_compact_matches_full(spec, workers=1)
        overfull = Cmp("<=", Len(Var("q")), 1)
        res_full = check_invariant(full, overfull, name="cap")
        res_compact = check_invariant_compact(compact, overfull, name="cap")
        assert not res_full.ok and not res_compact.ok
        assert res_full.summary() == res_compact.summary()
        # the regenerated trace renders byte-identically
        assert (res_compact.counterexample.render()
                == res_full.counterexample.render())

    def test_handshake_ok_verdict_identical(self):
        spec = handshake_system()
        full, compact = assert_compact_matches_full(spec, workers=1)
        for expr, expect_ok in ((Or(ready("c"), Not(ready("c"))), True),
                                (ready("c"), False)):
            res_full = check_invariant(full, expr)
            res_compact = check_invariant_compact(compact, expr)
            assert res_full.ok is res_compact.ok is expect_ok
            if not expect_ok:
                assert (res_compact.counterexample.render()
                        == res_full.counterexample.render())

    def test_non_bool_invariant_raises_like_full(self):
        spec = complete_queue(2)
        full = explore(spec)
        compact = explore_compact(spec)
        bogus = Len(Var("q"))
        with pytest.raises(TypeError, match="returned"):
            check_invariant(full, bogus)
        with pytest.raises(TypeError, match="returned"):
            check_invariant_compact(compact, bogus)


class TestRandomSpecs:
    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_graph_identical_serial(self, seed):
        assert_compact_matches_full(random_spec(seed), workers=1)

    @pytest.mark.parametrize("workers", [w for w in WORKER_COUNTS if w > 1])
    @pytest.mark.parametrize("seed", [0, 7, 13])
    def test_graph_identical_parallel(self, seed, workers):
        assert_compact_matches_full(random_spec(seed), workers=workers)

    @pytest.mark.parametrize("seed", [3, 11])
    def test_explosion_fires_at_the_same_budget(self, seed):
        spec = random_spec(seed)
        size = explore(spec).state_count
        if size < 2:
            pytest.skip("degenerate random spec: nothing beyond init")
        budget = size - 1
        with pytest.raises(StateSpaceExplosion) as full_exc:
            explore(spec, max_states=budget)
        with pytest.raises(StateSpaceExplosion) as compact_exc:
            explore_compact(spec, max_states=budget)
        assert str(compact_exc.value) == str(full_exc.value)


def wide_spec() -> Spec:
    """Four counters over 0..3 stepping independently: 256 states with
    frontiers wide enough (>= workers*16) to push the parallel compact
    engine past its inline threshold and through the real worker pool."""
    names = ("a", "b", "c", "d")
    universe = Universe({name: FiniteDomain(range(4)) for name in names})

    def bump(name):
        conjuncts = [Eq(Var(name, primed=True),
                        Arith("%", Arith("+", Var(name), 1), 4))]
        conjuncts += [Eq(Var(other, primed=True), Var(other))
                      for other in names if other != name]
        return And(*conjuncts)

    step = Or(*[bump(name) for name in names])
    init = And(*[Eq(Var(name), Const(0)) for name in names])
    return Spec("wide", init, step, names, universe)


class TestParallelPool:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_pooled_expansion_matches_full(self, workers):
        assert_compact_matches_full(wide_spec(), workers=workers)


class _StopAtLevel(Exception):
    pass


def _explore_killed_then_resumed(spec, path, kill_after: int,
                                 workers: int = 1,
                                 resume_workers: int = 1):
    """Kill a checkpointing compact run at a level boundary, then resume
    it; returns the resumed graph."""
    stats = ExploreStats()

    def bomb(level, row):
        if level + 1 >= kill_after:
            raise _StopAtLevel()

    stats.add_level_listener(bomb)
    with pytest.raises(_StopAtLevel):
        explore_compact(spec, workers=workers, stats=stats,
                        checkpoint=str(path), checkpoint_every=1)
    return resume_compact(str(path), spec, workers=resume_workers)


class TestCheckpointResume:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_kill_and_resume_reaches_identical_digest(self, tmp_path,
                                                      workers):
        spec = complete_queue(2)
        reference = explore_compact(spec)
        resumed = _explore_killed_then_resumed(
            spec, tmp_path / "c.ckpt", kill_after=2, workers=1,
            resume_workers=workers)
        assert resumed.digest() == reference.digest()
        assert resumed.packed == reference.packed
        assert resumed.parent == reference.parent
        assert resumed.init_nodes == reference.init_nodes
        assert resumed.edge_count == reference.edge_count

    def test_parallel_run_killed_then_resumed(self, tmp_path):
        spec = wide_spec()
        reference = explore_compact(spec)
        resumed = _explore_killed_then_resumed(
            spec, tmp_path / "w.ckpt", kill_after=4, workers=2,
            resume_workers=2)
        assert resumed.digest() == reference.digest()

    def test_resumed_graph_still_checks_and_traces(self, tmp_path):
        spec = complete_queue(2)
        resumed = _explore_killed_then_resumed(
            spec, tmp_path / "t.ckpt", kill_after=2)
        full = explore(spec)
        overfull = Cmp("<=", Len(Var("q")), 1)
        res_full = check_invariant(full, overfull)
        res_resumed = check_invariant_compact(resumed, overfull)
        assert (res_resumed.counterexample.render()
                == res_full.counterexample.render())

    def test_compact_refuses_full_checkpoint(self, tmp_path):
        spec = complete_queue(2)
        path = tmp_path / "full.ckpt"
        explore_parallel(spec, checkpoint=str(path))
        with pytest.raises(CheckpointError, match="full-state engine"):
            resume_compact(str(path), spec)

    def test_full_refuses_compact_checkpoint(self, tmp_path):
        spec = complete_queue(2)
        path = tmp_path / "compact.ckpt"
        explore_compact(spec, checkpoint=str(path))
        with pytest.raises(CheckpointError, match="compact engine"):
            resume(str(path), spec)

    def test_resume_rejects_layout_mismatch(self, tmp_path):
        path = tmp_path / "m.ckpt"
        explore_compact(complete_queue(2), checkpoint=str(path))
        with pytest.raises(CheckpointError, match="layout"):
            resume_compact(str(path), composed_processes())
