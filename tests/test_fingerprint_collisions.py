"""Fingerprint collisions are counted, surfaced, and never silent.

64-bit FNV-1a fingerprints can collide (birthday bound ~n^2/2^65).
Everywhere the repo *has* full states available -- the in-RAM store, the
disk spill store, the compact engine's packed interning -- a collision
must be **observed and survived**: distinct states stay distinct, the
count lands on ``ExploreStats.fingerprint_collisions``, and the human
summary says so.  Real collisions are unobtainable in a test, so these
tests force them by monkeypatching the fingerprint functions to a
constant and then assert that nothing merged and nothing stayed quiet.
"""

from __future__ import annotations

import pytest

from repro.checker import (
    ExploreStats,
    build_store,
    explore,
    explore_compact,
)
from repro.kernel import state as state_mod
from repro.kernel.packed import PackedCodec
from repro.systems.queue import complete_queue


@pytest.fixture
def spec():
    return complete_queue(2)


def constant_fingerprint(self) -> int:
    return 0xDEAD


class TestBaselineIsClean:
    def test_no_collisions_on_real_fingerprints(self, spec):
        stats = ExploreStats()
        graph = explore(spec, stats=stats)
        assert stats.fingerprint_collisions == 0
        assert "collision(s) detected" not in stats.summary()
        # the bound is still reported, honestly, as a probability
        assert "collision probability bound" in stats.summary()
        assert stats.as_dict()["fingerprint_collisions"] == 0
        assert 0.0 < stats.collision_probability_bound < 1e-9
        assert graph.state_count > 1


class TestMemoryStoreCollisions:
    def test_forced_collision_is_counted_not_silent(self, spec, monkeypatch):
        monkeypatch.setattr(state_mod.State, "fingerprint",
                            constant_fingerprint)
        stats = ExploreStats()
        graph = explore(spec, stats=stats)
        # interning is keyed on full states: nothing merged
        assert graph.state_count == explore(spec).state_count
        assert stats.fingerprint_collisions == graph.state_count - 1
        assert (f"{graph.state_count - 1} collision(s) detected"
                in stats.summary())
        assert (stats.as_dict()["fingerprint_collisions"]
                == graph.state_count - 1)


class TestSpillStoreCollisions:
    def test_forced_collision_chains_in_the_index(self, spec, tmp_path,
                                                  monkeypatch):
        monkeypatch.setattr(state_mod.State, "fingerprint",
                            constant_fingerprint)
        store = build_store({"kind": "spill", "spill_dir": str(tmp_path),
                             "hot_capacity": 8})
        stats = ExploreStats()
        graph = explore(spec, stats=stats, store=store)
        # the fingerprint index chains colliding nodes; states survive
        assert graph.state_count > 1
        assert stats.fingerprint_collisions == graph.state_count - 1
        assert "collision(s) detected" in stats.summary()
        store.close()


class TestCompactEngineCollisions:
    def test_forced_collision_is_counted_not_silent(self, spec, monkeypatch):
        reference = explore_compact(spec)
        monkeypatch.setattr(PackedCodec, "fingerprint",
                            lambda self, packed: 0xDEAD)
        stats = ExploreStats()
        graph = explore_compact(spec, stats=stats)
        # interning is keyed on packed ints -- bijective -- so a colliding
        # fingerprint can never merge states
        assert graph.state_count == reference.state_count
        assert graph.parent == reference.parent
        assert graph.fingerprint_collisions == graph.state_count - 1
        assert stats.fingerprint_collisions == graph.state_count - 1
        assert stats.engine == "compact"
        assert (f"{graph.state_count - 1} collision(s) detected"
                in stats.summary())

    def test_collision_count_survives_checkpoint_resume(self, spec, tmp_path,
                                                        monkeypatch):
        monkeypatch.setattr(PackedCodec, "fingerprint",
                            lambda self, packed: 0xDEAD)
        from repro.checker import resume_compact

        class _Stop(Exception):
            pass

        stats = ExploreStats()

        def bomb(level, row):
            if level >= 1:
                raise _Stop()

        stats.add_level_listener(bomb)
        path = tmp_path / "c.ckpt"
        with pytest.raises(_Stop):
            explore_compact(spec, stats=stats, checkpoint=str(path))
        resumed_stats = ExploreStats()
        graph = resume_compact(str(path), spec, stats=resumed_stats)
        # collisions are recomputed from the packed table on restore and
        # keep accumulating through the resumed levels
        assert graph.fingerprint_collisions == graph.state_count - 1
        assert resumed_stats.fingerprint_collisions == graph.state_count - 1
