"""Unit tests for single-decree Paxos with the lossy channel component.

Agreement discharged by the Composition Theorem certificate (with and
without the channel in the device list), the broken variant's
violation, the exploded per-message state vocabulary, and the channel
component's construction rules.
"""

from __future__ import annotations

import pytest

from repro.checker import check_invariant, explore
from repro.systems.paxos import (
    NONE,
    Paxos,
    PaxosChannel,
    lost_var,
    v1a,
    v1b,
    v2a,
    v2b,
    vote_pairs,
)


class TestVocabulary:
    def test_vote_pairs_enumerate_earlier_ballots(self):
        assert vote_pairs(0, 2) == [(NONE, NONE)]
        assert vote_pairs(2, 2) == [(NONE, NONE), (0, 0), (0, 1),
                                    (1, 0), (1, 1)]

    def test_message_vars_are_stable_and_complete(self):
        system = Paxos(2, 2, 2)
        vocabulary = system.message_vars()
        assert vocabulary == Paxos(2, 2, 2).message_vars()
        assert v1a(0) in vocabulary
        assert v1b(1, 0, 0, 1) in vocabulary
        assert v2a(1, 1) in vocabulary
        assert v2b(0, 1, 0) in vocabulary
        assert len(vocabulary) == len(set(vocabulary))

    def test_unknown_droppable_is_rejected(self):
        with pytest.raises(ValueError, match="unknown droppable"):
            Paxos(2, 2, 2, droppable=("no_such_message",))

    def test_channel_requires_something_to_drop(self):
        with pytest.raises(ValueError, match="nothing to drop"):
            PaxosChannel(())

    def test_no_droppable_means_no_channel_component(self):
        assert Paxos(2, 2, 2).channel is None
        assert Paxos(2, 2, 2, droppable="all").channel is not None


class TestClosedSystem:
    def test_instance_size_and_agreement(self):
        system = Paxos(2, 2, 2)
        graph = explore(system.complete_spec())
        assert graph.state_count == 300
        assert check_invariant(graph, system.agreement()).ok

    def test_broken_variant_violates_agreement(self):
        system = Paxos(2, 2, 2, broken=True)
        graph = explore(system.complete_spec())
        assert graph.state_count == 572
        result = check_invariant(graph, system.agreement())
        assert not result.ok
        assert not result.counterexample.is_lasso

    def test_no_decision_is_the_violated_hunt(self):
        # ¬decided is deliberately false: its counterexample trace is a
        # complete successful run of the protocol
        system = Paxos(2, 2, 2)
        graph = explore(system.complete_spec())
        result = check_invariant(graph, system.no_decision())
        assert not result.ok

    def test_conjunction_form_reaches_the_same_states(self):
        system = Paxos(2, 2, 2)
        icdq = explore(system.complete_spec())
        conj = explore(system.conjunction_spec())
        assert conj.state_count == icdq.state_count
        assert set(conj.states) == set(icdq.states)

    def test_single_value_agreement_is_trivial(self):
        from repro.kernel.expr import Const

        system = Paxos(2, 2, 1)
        assert isinstance(system.agreement(), Const)

    def test_loss_only_shrinks_nothing_but_adds_states(self):
        plain = explore(Paxos(2, 1, 1).complete_spec())
        lossy = explore(Paxos(2, 1, 1, droppable="all").complete_spec())
        assert lossy.state_count > plain.state_count
        # every lossless state is still reachable when loss is possible
        lossless_vars = set(plain.universe.variables)
        lossy_projected = {
            tuple(sorted((k, v) for k, v in state.items()
                         if k in lossless_vars))
            for state in lossy.states
        }
        for state in plain.states:
            assert tuple(sorted(state.items())) in lossy_projected


class TestDecomposition:
    def test_component_ownership_is_disjoint(self):
        system = Paxos(3, 2, 2, droppable="all")
        owned = [set(c.outputs) for c in system.components]
        for index, left in enumerate(owned):
            for right in owned[index + 1:]:
                assert not (left & right)

    def test_channel_owns_exactly_the_lost_bits(self):
        system = Paxos(2, 2, 2, droppable=(v1a(0), v2a(1, 0)))
        assert set(system.channel.outputs) == {
            lost_var(v1a(0)), lost_var(v2a(1, 0))}

    def test_ag_specs_shapes(self):
        system = Paxos(2, 2, 2, droppable=(v1a(0),))
        devices = system.ag_specs()
        # 2 proposers + 2 acceptors with rising-input assumptions,
        # plus the unconditional channel
        assert len(devices) == 5
        assert sum(1 for d in devices if d.assumption is None) == 1

    def test_environments_are_valid_specs(self):
        system = Paxos(2, 2, 2)
        for comp in system.proposers + system.acceptor_procs:
            env = system.environment_spec(comp)
            assert explore(env).state_count > 0


class TestCompositionCertificate:
    def test_agreement_is_proved_compositionally(self):
        certificate = Paxos(2, 2, 2).composition_theorem().verify()
        assert certificate.ok

    def test_lossy_certificate_includes_the_channel_device(self):
        system = Paxos(2, 2, 2, droppable=(v1a(1), v2a(1, 0)))
        certificate = system.composition_theorem().verify()
        assert certificate.ok

    def test_broken_variant_fails_the_certificate(self):
        certificate = Paxos(2, 2, 2,
                            broken=True).composition_theorem().verify()
        assert not certificate.ok
