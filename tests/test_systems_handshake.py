"""Unit tests for the two-phase handshake channel (Figure 2)."""


from repro.kernel import FiniteDomain, State, Var, holds_on_step, successors
from repro.systems.handshake import (
    ack,
    channel_universe,
    channel_vars,
    check_protocol_trace,
    cinit,
    in_flight_expr,
    pending,
    protocol_trace,
    ready,
    render_figure2,
    send,
    snd_vars,
)

MSG = FiniteDomain([0, 1])
U = channel_universe("c", MSG)


def chan_state(sig, ack_value, val):
    return State({"c.sig": sig, "c.ack": ack_value, "c.val": val})


class TestVocabulary:
    def test_channel_vars(self):
        assert channel_vars("c") == ("c.sig", "c.ack", "c.val")
        assert snd_vars("c") == ("c.sig", "c.val")

    def test_universe(self):
        assert set(U.variables) == set(channel_vars("c"))

    def test_cinit(self):
        assert cinit("c").eval_state(chan_state(0, 0, 1)) is True
        assert cinit("c").eval_state(chan_state(1, 0, 1)) is False

    def test_ready_pending(self):
        assert ready("c").eval_state(chan_state(0, 0, 0)) is True
        assert pending("c").eval_state(chan_state(1, 0, 0)) is True

    def test_in_flight(self):
        assert in_flight_expr("c").eval_state(chan_state(0, 0, 7)) == ()
        assert in_flight_expr("c").eval_state(chan_state(1, 0, 7)) == (7,)


class TestSendAck:
    def test_send_from_ready(self):
        result = list(successors(send(1, "c"), chan_state(0, 0, 0), U))
        assert result == [chan_state(1, 0, 1)]

    def test_send_blocked_when_pending(self):
        assert list(successors(send(1, "c"), chan_state(1, 0, 0), U)) == []

    def test_send_frames_ack(self):
        """Our deviation note: Send keeps c.ack unchanged."""
        step = send(1, "c")
        assert not holds_on_step(step, chan_state(0, 0, 0), chan_state(1, 1, 1))

    def test_ack_from_pending(self):
        result = list(successors(ack("c"), chan_state(1, 0, 1), U))
        assert result == [chan_state(1, 1, 1)]

    def test_ack_out_of_domain_value_has_no_successor(self):
        # c.val = 5 is outside the message domain, so c.val' = c.val cannot
        # land in the universe: no successor
        assert list(successors(ack("c"), chan_state(1, 0, 5), U)) == []

    def test_ack_blocked_when_ready(self):
        assert list(successors(ack("c"), chan_state(0, 0, 1), U)) == []

    def test_ack_frames_snd(self):
        assert not holds_on_step(ack("c"), chan_state(1, 0, 1),
                                 chan_state(1, 1, 0))

    def test_send_expression_value(self):
        v = Var("k")
        step = send(v, "c")
        assert "k" in step.free_vars()


class TestFigure2:
    def test_render_matches_paper(self):
        table = render_figure2("c", (37, 4, 19))
        lines = table.splitlines()
        assert "initial state" in lines[0]
        assert "37 sent" in lines[0] and "37 acked" in lines[0]
        assert "19 sent" in lines[0]
        # rows exactly as printed in the paper
        assert lines[1].split()[1:] == ["0", "0", "1", "1", "0", "0"]
        assert lines[2].split()[1:] == ["0", "1", "1", "0", "0", "1"]
        assert lines[3].split()[1:] == ["-", "37", "37", "4", "4", "19"]

    def test_trace_follows_protocol(self):
        trace = protocol_trace("c", [37, 4, 19], initial_val=0)
        assert check_protocol_trace(trace, "c") == []

    def test_trace_length(self):
        # initial + (send, ack) per value except last value unacked
        trace = protocol_trace("c", [1, 0, 1], initial_val=0)
        assert len(trace) == 1 + 2 + 2 + 1

    def test_corrupted_trace_detected(self):
        trace = protocol_trace("c", [1, 0], initial_val=0)
        states = list(trace.states)
        states[1] = states[1].update({"c.sig": states[0]["c.sig"]})
        from repro.kernel import FiniteBehavior

        problems = check_protocol_trace(FiniteBehavior(states), "c")
        assert problems
