"""CLI subcommand coverage: trace, explore --show, check exit codes,
StateSpaceExplosion surfacing, the --stats observability layer, and the
durable-run flags (--checkpoint / --resume / manifests)."""

import io
import json

import pytest

from repro.tools.cli import main

COUNTER_TLA = """
MODULE Counter
CONSTANT N = 3
VARIABLE x \\in 0..2
Init == x = 0
Next == x' = (x + 1) % N
Spec == Init /\\ [][Next]_<<x>> /\\ WF_<<x>>(Next)
Small == x < 3
TooSmall == x < 2
Progress == (x = 0) ~> (x = 2)
Stuck == (x = 0) ~> (x = 3)
"""


@pytest.fixture
def module_file(tmp_path):
    path = tmp_path / "Counter.tla"
    path.write_text(COUNTER_TLA)
    return str(path)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCheckExitCodes:
    def test_ok_is_exit_zero(self, module_file):
        code, text = run_cli("check", module_file, "--invariant", "Small")
        assert code == 0
        assert "[OK] Small" in text

    def test_failure_is_exit_one_with_counterexample(self, module_file):
        code, text = run_cli("check", module_file, "--invariant", "TooSmall")
        assert code == 1
        assert "[FAIL]" in text or "TooSmall" in text
        # a rendered trace reaches the violating state
        assert "x" in text

    def test_mixed_results_still_exit_one(self, module_file):
        code, text = run_cli("check", module_file,
                             "--invariant", "Small",
                             "--invariant", "TooSmall")
        assert code == 1
        assert "[OK] Small" in text

    def test_edge_line_reports_real_and_stutter_separately(self, module_file):
        code, text = run_cli("check", module_file)
        assert code == 0
        # 3 reachable states, 3 real N-edges, 3 materialised stutter loops
        assert "3 states, 3 edges (+3 stutter)" in text

    def test_explosion_surfaces_as_exit_two(self, module_file):
        code, text = run_cli("check", module_file, "--max-states", "1")
        assert code == 2
        assert "StateSpaceExplosion" in text
        assert "state budget" in text and "1" in text

    def test_missing_file_is_exit_two(self):
        code, text = run_cli("check", "/nonexistent/No.tla")
        assert code == 2
        assert "error" in text


class TestExplore:
    def test_show_limits_states_printed(self, module_file):
        code, text = run_cli("explore", module_file, "--show", "2")
        assert code == 0
        assert text.count("State(") == 2
        assert "first 2 state(s):" in text

    def test_show_zero_prints_no_states(self, module_file):
        code, text = run_cli("explore", module_file, "--show", "0")
        assert code == 0
        assert "State(" not in text

    def test_show_clamped_to_state_count(self, module_file):
        code, text = run_cli("explore", module_file, "--show", "99")
        assert code == 0
        assert text.count("State(") == 3

    def test_reports_real_and_stutter_edges(self, module_file):
        code, text = run_cli("explore", module_file)
        assert code == 0
        assert "states: 3" in text
        assert "edges:  3 (+3 stutter)" in text

    def test_explosion_is_exit_two(self, module_file):
        code, text = run_cli("explore", module_file, "--max-states", "2")
        assert code == 2
        assert "StateSpaceExplosion" in text


class TestWorkers:
    def test_workers_output_identical_to_serial(self, module_file):
        code_serial, serial = run_cli("check", module_file,
                                      "--invariant", "Small")
        code_par, par = run_cli("check", module_file,
                                "--invariant", "Small", "--workers", "2")
        assert code_serial == code_par == 0
        assert par == serial  # same graph, same counts, same report

    def test_explore_workers_identical_to_serial(self, module_file):
        _, serial = run_cli("explore", module_file, "--show", "99")
        code, par = run_cli("explore", module_file, "--show", "99",
                            "--workers", "2")
        assert code == 0
        assert par == serial  # same states printed in the same numbering

    def test_parallel_explosion_same_exit_and_budget(self, module_file):
        code, text = run_cli("check", module_file, "--max-states", "1",
                             "--workers", "2")
        assert code == 2
        assert "StateSpaceExplosion" in text

    def test_stats_report_worker_block(self, module_file):
        code, text = run_cli("explore", module_file, "--stats",
                             "--workers", "2")
        assert code == 0
        assert "workers" in text


class TestTrace:
    def test_header_and_variable_rows(self, module_file):
        code, text = run_cli("trace", module_file, "--steps", "5", "--seed", "3")
        assert code == 0
        lines = [line for line in text.splitlines() if line.strip()]
        header = lines[0].split()
        assert header[0] == "step"
        assert header[1:] == [str(i) for i in range(len(header) - 1)]
        assert any(line.split()[0] == "x" for line in lines[1:])

    def test_deterministic_by_seed(self, module_file):
        _, first = run_cli("trace", module_file, "--steps", "8", "--seed", "7")
        _, second = run_cli("trace", module_file, "--steps", "8", "--seed", "7")
        assert first == second

    def test_trace_values_follow_spec(self, module_file):
        code, text = run_cli("trace", module_file, "--steps", "6", "--seed", "1")
        assert code == 0
        row = next(line for line in text.splitlines()
                   if line.split() and line.split()[0] == "x")
        values = [int(v) for v in row.split()[1:]]
        assert values[0] == 0
        for pre, post in zip(values, values[1:]):
            assert post in ((pre + 1) % 3, pre)


class TestStats:
    def test_check_stats_prints_throughput_depth_and_edge_split(
            self, module_file):
        code, text = run_cli("check", module_file,
                             "--invariant", "Small", "--stats")
        assert code == 0
        assert "states/sec" in text
        assert "depth 2" in text
        assert "3 real edges + 3 stutter" in text
        assert "invariant:Small" in text  # per-phase timing

    def test_check_stats_includes_liveness_phase(self, module_file):
        code, text = run_cli("check", module_file,
                             "--property", "Progress", "--stats")
        assert code == 0
        assert "liveness:Progress" in text

    def test_explore_stats(self, module_file):
        code, text = run_cli("explore", module_file, "--stats")
        assert code == 0
        assert "states/sec" in text
        assert "depth 2" in text

    def test_no_stats_by_default(self, module_file):
        code, text = run_cli("check", module_file, "--invariant", "Small")
        assert code == 0
        assert "states/sec" not in text


class TestStatsJson:
    def test_check_stats_json_writes_machine_readable_file(
            self, module_file, tmp_path):
        path = tmp_path / "stats.json"
        code, text = run_cli("check", module_file, "--invariant", "Small",
                             "--stats-json", str(path))
        assert code == 0
        assert "states/sec" not in text  # no human summary unless --stats
        stats = json.loads(path.read_text())
        assert stats["states"] == 3
        assert stats["depth"] == 2
        assert stats["levels_seen"] == 3
        assert "invariant:Small" in stats["phases"]

    def test_explore_stats_json_and_stats_compose(self, module_file,
                                                  tmp_path):
        path = tmp_path / "stats.json"
        code, text = run_cli("explore", module_file, "--stats",
                             "--stats-json", str(path))
        assert code == 0
        assert "states/sec" in text  # both renderings at once
        assert json.loads(path.read_text())["states"] == 3

    def test_stats_json_written_even_on_explosion(self, module_file,
                                                  tmp_path):
        path = tmp_path / "stats.json"
        code, _ = run_cli("check", module_file, "--max-states", "1",
                          "--stats-json", str(path))
        assert code == 2
        # the partial document still lands, machine-readable
        assert "states" in json.loads(path.read_text())


class TestParseTimeValidation:
    """--checkpoint-every and --spill-cache reject non-positive values
    as usage errors (exit 2) before any work starts."""

    @pytest.mark.parametrize("flags", [
        ("--checkpoint-every", "0"),
        ("--checkpoint-every", "-3"),
        ("--checkpoint-every", "two"),
        ("--spill-cache", "0"),
        ("--spill-cache", "-5"),
    ])
    def test_bad_values_are_usage_errors(self, module_file, flags):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("check", module_file, *flags)
        assert excinfo.value.code == 2

    def test_boundary_value_one_is_accepted(self, module_file):
        code, _ = run_cli("check", module_file, "--invariant", "Small",
                          "--checkpoint-every", "1")
        assert code == 0


class TestDurableRuns:
    def _paths(self, tmp_path):
        cp = str(tmp_path / "run.ckpt")
        return cp, cp + ".manifest.json"

    def test_checkpoint_writes_snapshot_and_manifest(self, module_file,
                                                     tmp_path):
        cp, manifest = self._paths(tmp_path)
        code, _ = run_cli("check", module_file, "--invariant", "Small",
                          "--checkpoint", cp)
        assert code == 0
        with open(cp) as handle:
            snapshot = json.load(handle)
        assert snapshot["format"] == "repro-checkpoint"
        assert snapshot["spec_name"]
        with open(manifest) as handle:
            data = json.load(handle)
        assert data["format"] == "repro-run-manifest"
        assert data["spec"] == "Counter!Spec"
        assert data["outcome"] == "ok"
        assert data["states"] == 3
        assert data["counterexample"] is None
        assert data["wall_seconds"] >= 0

    def test_manifest_records_invariant_violation(self, module_file,
                                                  tmp_path):
        cp, manifest = self._paths(tmp_path)
        code, _ = run_cli("check", module_file, "--invariant", "TooSmall",
                          "--checkpoint", cp)
        assert code == 1
        data = json.load(open(manifest))
        assert data["outcome"] == "violation"
        cex = data["counterexample"]
        assert cex["kind"] == "finite"
        assert "x" in cex["rendered"]
        assert len(cex["states"]) >= 2

    def test_manifest_records_liveness_violation_as_lasso(self, module_file,
                                                          tmp_path):
        cp, manifest = self._paths(tmp_path)
        code, text = run_cli("check", module_file, "--property", "Stuck",
                             "--checkpoint", cp)
        assert code == 1
        assert "counterexample" in text
        data = json.load(open(manifest))
        assert data["outcome"] == "violation"
        assert data["counterexample"]["kind"] == "lasso"
        assert "loop_start" in data["counterexample"]

    def test_resume_output_identical_to_fresh_run(self, module_file,
                                                  tmp_path):
        cp, _ = self._paths(tmp_path)
        code_fresh, fresh = run_cli("explore", module_file, "--show", "99",
                                    "--checkpoint", cp)
        assert code_fresh == 0
        code_resumed, resumed = run_cli("explore", module_file, "--show",
                                        "99", "--checkpoint", cp, "--resume")
        assert code_resumed == 0
        assert resumed == fresh  # same graph, same numbering, same counts

    def test_resume_without_checkpoint_is_exit_two(self, module_file):
        for command in ("check", "explore"):
            code, text = run_cli(command, module_file, "--resume")
            assert code == 2
            assert "--resume requires --checkpoint" in text

    def test_explosion_manifest_then_resume_with_bigger_budget(
            self, module_file, tmp_path):
        cp, manifest = self._paths(tmp_path)
        code, _ = run_cli("check", module_file, "--max-states", "2",
                          "--checkpoint", cp)
        assert code == 2
        data = json.load(open(manifest))
        assert data["outcome"] == "explosion"
        assert "budget" in data["error"]
        # the pre-explosion snapshot survives; a larger budget finishes
        code, text = run_cli("check", module_file, "--max-states", "3",
                             "--checkpoint", cp, "--resume")
        assert code == 0
        assert "3 states" in text
        assert json.load(open(manifest))["outcome"] == "ok"

    def test_worker_timeout_flag_keeps_output_identical(self, module_file):
        _, serial = run_cli("check", module_file, "--invariant", "Small")
        code, timed = run_cli("check", module_file, "--invariant", "Small",
                              "--workers", "2", "--worker-timeout", "60")
        assert code == 0
        assert timed == serial

    def test_parallel_checkpoint_resume(self, module_file, tmp_path):
        cp, manifest = self._paths(tmp_path)
        code, fresh = run_cli("explore", module_file, "--show", "99",
                              "--workers", "2", "--checkpoint", cp)
        assert code == 0
        code, resumed = run_cli("explore", module_file, "--show", "99",
                                "--workers", "2", "--checkpoint", cp,
                                "--resume")
        assert code == 0
        assert resumed == fresh
        assert json.load(open(manifest))["workers"] == 2


class TestCounterexampleRegressions:
    """repro check must exit nonzero on *any* counterexample, and trace
    rendering must stay robust for degenerate variable selections."""

    def test_failing_property_is_exit_one(self, module_file):
        code, text = run_cli("check", module_file, "--property", "Stuck")
        assert code == 1
        assert "[FAILED] Stuck" in text
        assert "counterexample" in text

    def test_failing_property_and_passing_invariant_still_exit_one(
            self, module_file):
        code, _ = run_cli("check", module_file, "--invariant", "Small",
                          "--property", "Stuck")
        assert code == 1

    def test_render_with_empty_variables_falls_back_to_all(self):
        from repro.checker.results import Counterexample
        from repro.kernel.behavior import FiniteBehavior, Lasso
        from repro.kernel.state import State

        trace = FiniteBehavior([State({"x": 0}), State({"x": 1})])
        cex = Counterexample(trace, "boom")
        for empty in ((), []):
            rendered = cex.render(variables=empty)
            assert rendered == cex.render()
            assert "x" in rendered  # not a header-only table
        lasso = Counterexample(Lasso([State({"x": 0})], 0), "boom")
        assert "x" in lasso.render(variables=())


class TestCompactEngine:
    """--compact: same verdicts, traces, and rendered output as the full
    engine, plus the stats surface the collision report rides on."""

    def test_check_output_identical_to_full(self, module_file):
        for invariant in ("Small", "TooSmall"):
            code_full, full = run_cli("check", module_file,
                                      "--invariant", invariant)
            code_compact, compact = run_cli("check", module_file,
                                            "--invariant", invariant,
                                            "--compact")
            assert code_compact == code_full
            assert compact == full  # byte-identical, trace included

    def test_explore_output_identical_to_full(self, module_file):
        _, full = run_cli("explore", module_file, "--show", "99")
        code, compact = run_cli("explore", module_file, "--show", "99",
                                "--compact")
        assert code == 0
        assert compact == full

    def test_stats_report_engine_and_collision_bound(self, module_file):
        code, text = run_cli("check", module_file, "--invariant", "Small",
                             "--compact", "--stats")
        assert code == 0
        assert "engine: compact" in text
        assert "collision probability bound" in text
        assert "collision(s) detected" not in text

    def test_stats_json_records_engine(self, module_file, tmp_path):
        out = tmp_path / "stats.json"
        code, _ = run_cli("check", module_file, "--invariant", "Small",
                          "--compact", "--stats-json", str(out))
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["engine"] == "compact"
        assert payload["fingerprint_collisions"] == 0
        assert 0 <= payload["collision_probability_bound"] < 1

    def test_checkpoint_resume_identical(self, module_file, tmp_path):
        cp = str(tmp_path / "c.ckpt")
        _, fresh = run_cli("explore", module_file, "--show", "99",
                           "--compact")
        code, _ = run_cli("explore", module_file, "--show", "99",
                          "--compact", "--checkpoint", cp)
        assert code == 0
        code, resumed = run_cli("explore", module_file, "--show", "99",
                                "--compact", "--checkpoint", cp, "--resume")
        assert code == 0
        assert resumed == fresh
        manifest = json.loads((tmp_path / "c.ckpt.manifest.json").read_text())
        assert manifest["store"] == {"kind": "compact"}

    def test_compact_workers_identical_to_serial(self, module_file):
        _, serial = run_cli("check", module_file, "--invariant", "TooSmall",
                            "--compact")
        code, parallel = run_cli("check", module_file, "--invariant",
                                 "TooSmall", "--compact", "--workers", "2")
        assert code == 1
        assert parallel == serial


class TestUsageErrorPaths:
    """Broken inputs exit 2 with an actionable one-line error -- never a
    traceback, never a silent fallback (the CheckpointError audit)."""

    def test_resume_with_missing_checkpoint_file(self, module_file,
                                                 tmp_path):
        for extra in ((), ("--compact",)):
            code, text = run_cli("check", module_file, "--checkpoint",
                                 str(tmp_path / "nope.ckpt"), "--resume",
                                 *extra)
            assert code == 2
            assert "error: cannot resume" in text
            assert "does not exist" in text

    def test_resume_with_corrupt_checkpoint(self, module_file, tmp_path):
        bad = tmp_path / "bad.ckpt"
        bad.write_text("{not json")
        for extra in ((), ("--compact",)):
            code, text = run_cli("check", module_file, "--checkpoint",
                                 str(bad), "--resume", *extra)
            assert code == 2
            assert "error:" in text and "unreadable checkpoint" in text
            assert "Traceback" not in text

    def test_resume_with_non_object_checkpoint(self, module_file, tmp_path):
        bad = tmp_path / "list.ckpt"
        bad.write_text("[1, 2, 3]")
        code, text = run_cli("explore", module_file, "--checkpoint",
                             str(bad), "--resume")
        assert code == 2
        assert "not a JSON object" in text

    def test_resume_with_wrong_format_checkpoint(self, module_file,
                                                 tmp_path):
        bad = tmp_path / "foreign.ckpt"
        bad.write_text(json.dumps({"format": "something-else"}))
        code, text = run_cli("check", module_file, "--checkpoint",
                             str(bad), "--resume")
        assert code == 2
        assert "error:" in text

    def test_cross_engine_resume_is_exit_two_both_ways(self, module_file,
                                                       tmp_path):
        full_cp = str(tmp_path / "full.ckpt")
        compact_cp = str(tmp_path / "compact.ckpt")
        assert run_cli("explore", module_file, "--checkpoint",
                       full_cp)[0] == 0
        assert run_cli("explore", module_file, "--checkpoint", compact_cp,
                       "--compact")[0] == 0
        code, text = run_cli("explore", module_file, "--checkpoint",
                             full_cp, "--resume", "--compact")
        assert code == 2
        assert "full-state engine" in text
        code, text = run_cli("explore", module_file, "--checkpoint",
                             compact_cp, "--resume")
        assert code == 2
        assert "compact engine" in text

    def test_spill_dir_pointing_at_a_file(self, module_file):
        # tests may run as root, where permission bits don't block -- an
        # existing regular file is the portable "unusable directory"
        code, text = run_cli("check", module_file, "--store", "spill",
                             "--spill-dir", module_file)
        assert code == 2
        assert "error: --spill-dir" in text
        assert "not a writable directory" in text

    def test_spill_dir_under_a_file_prefix(self, module_file):
        code, text = run_cli("check", module_file, "--store", "spill",
                             "--spill-dir", module_file + "/sub")
        assert code == 2
        assert "not a writable directory" in text

    def test_compact_excludes_por(self, module_file):
        code, text = run_cli("check", module_file, "--compact", "--por")
        assert code == 2
        assert "mutually exclusive" in text

    def test_compact_excludes_spill_store(self, module_file, tmp_path):
        code, text = run_cli("check", module_file, "--compact",
                             "--store", "spill", "--spill-dir",
                             str(tmp_path / "spill"))
        assert code == 2
        assert "--store spill" in text

    def test_compact_excludes_temporal_properties(self, module_file):
        code, text = run_cli("check", module_file, "--compact",
                             "--property", "Progress")
        assert code == 2
        assert "temporal properties" in text

    def test_explore_has_no_property_flag_so_compact_is_fine(
            self, module_file):
        code, _ = run_cli("explore", module_file, "--compact")
        assert code == 0


class TestBundledModules:
    """The @name:key=val,... surface over the protocol corpus."""

    def test_mutex_ok_instance(self):
        code, text = run_cli("check", "@mutex:n=2,clock=2",
                             "--invariant", "MutualExclusion")
        assert code == 0
        assert "135 states" in text
        assert "[OK] MutualExclusion" in text

    def test_mutex_broken_instance_violates(self):
        code, text = run_cli("check", "@mutex:n=2,clock=2,broken",
                             "--invariant", "MutualExclusion")
        assert code == 1
        assert "cs1" in text  # the rendered trace shows both CS flags

    def test_paxos_defaults_and_liveness(self):
        code, text = run_cli("check", "@paxos",
                             "--invariant", "Agreement",
                             "--property", "EventuallyDecides")
        assert code == 0
        assert "[OK] Agreement" in text
        assert "[OK] EventuallyDecides" in text

    def test_paxos_broken_agreement_fails(self):
        code, text = run_cli("check", "@paxos:broken",
                             "--invariant", "Agreement")
        assert code == 1

    def test_bundled_compact_matches_full_output(self):
        ref_code, ref_text = run_cli("check", "@mutex:n=2,clock=2",
                                     "--invariant", "MutualExclusion")
        code, text = run_cli("check", "@mutex:n=2,clock=2", "--compact",
                             "--invariant", "MutualExclusion")
        assert (code, text) == (ref_code, ref_text)

    def test_bundled_por_same_verdict(self):
        code, text = run_cli("check", "@mutex:n=2,clock=2,broken", "--por",
                             "--invariant", "MutualExclusion")
        assert code == 1

    def test_unknown_bundled_name_is_exit_two(self):
        code, text = run_cli("check", "@nope")
        assert code == 2
        assert "no bundled system" in text

    def test_unknown_parameter_is_exit_two(self):
        code, text = run_cli("check", "@mutex:frobnicate=3")
        assert code == 2
        assert "unknown mutex parameter" in text

    def test_bad_parameter_value_is_exit_two(self):
        code, text = run_cli("check", "@paxos:ballots=many")
        assert code == 2
        assert "not an integer" in text

    def test_explore_and_trace_work_on_bundled(self):
        code, text = run_cli("explore", "@paxos:acceptors=2", "--show", "1")
        assert code == 0
        assert "states:" in text
        code, text = run_cli("trace", "@mutex:n=2,clock=2", "--steps", "3",
                             "--seed", "11")
        assert code == 0
        assert "clk1" in text
