"""Content-addressed cache layer: fingerprint soundness (semantic knobs
address the result, execution-only knobs never do), ResultCache
persistence/atomicity/counters, LRU eviction with ExploreStats-style
summaries, and the sharded multi-process store."""

import json
import os

import pytest

from repro.service.cache import (
    ResultCache,
    ShardedResultCache,
    canonical_fingerprint,
)
from repro.service.jobs import CheckRequest

COUNTER_TLA = """
MODULE Counter
CONSTANT N = 3
VARIABLE x \\in 0..2
Init == x = 0
Next == x' = (x + 1) % N
Spec == Init /\\ [][Next]_<<x>> /\\ WF_<<x>>(Next)
Small == x < 3
TooSmall == x < 2
Progress == (x = 0) ~> (x = 2)
"""


def fp(**overrides):
    request = CheckRequest(module_source=COUNTER_TLA,
                           invariants=("Small",), **overrides)
    return request.fingerprint()


class TestFingerprint:
    def test_stable_across_calls(self):
        assert fp() == fp()

    def test_execution_knobs_do_not_change_the_key(self):
        # the engine is deterministic for any worker count, checkpoint
        # cadence, and pacing -- so none of them may address the cache
        base = fp()
        assert fp(workers=4) == base
        assert fp(checkpoint_every=7) == base
        assert fp(level_delay=0.25) == base

    def test_semantic_knobs_all_change_the_key(self):
        base = fp()
        assert fp(max_states=10) != base
        assert fp(por=True) != base
        assert CheckRequest(module_source=COUNTER_TLA,
                            invariants=("TooSmall",)).fingerprint() != base
        assert CheckRequest(module_source=COUNTER_TLA,
                            invariants=("Small",),
                            properties=("Progress",)).fingerprint() != base

    def test_module_source_changes_the_key(self):
        assert CheckRequest(
            module_source=COUNTER_TLA + "\n",
            invariants=("Small",)).fingerprint() != fp()

    def test_spec_name_changes_the_key(self):
        a = canonical_fingerprint("m", "Spec", {"max_states": 1})
        b = canonical_fingerprint("m", "Spec2", {"max_states": 1})
        assert a != b

    def test_key_order_in_config_does_not_matter(self):
        a = canonical_fingerprint("m", "Spec", {"a": 1, "b": 2})
        b = canonical_fingerprint("m", "Spec", {"b": 2, "a": 1})
        assert a == b

    def test_engine_changes_the_key(self):
        # an explicit "ok" and a symbolic "unknown" answer the same
        # module differently; the cache must never conflate them
        assert fp(engine="symbolic") != fp()

    def test_depth_changes_the_key_for_symbolic(self):
        assert fp(engine="symbolic", depth=5) != fp(engine="symbolic",
                                                    depth=6)

    def test_default_depth_is_normalised_into_the_key(self):
        # "symbolic, depth unspecified" and "symbolic at the default
        # depth" are the same request and must share one cache entry
        from repro.engine import DEFAULT_DEPTH

        assert fp(engine="symbolic") == fp(engine="symbolic",
                                           depth=DEFAULT_DEPTH)

    def test_depth_never_fragments_the_explicit_cache(self):
        # the explicit engine ignores depth, so it must not address the
        # result (a stray depth on an explicit request is rejected at
        # the request boundary; this guards the key derivation itself)
        assert fp(depth=5) == fp()

    def test_invariant_order_matters(self):
        # the CLI runs checks in the order given; the report differs
        a = CheckRequest(module_source=COUNTER_TLA,
                         invariants=("Small", "TooSmall")).fingerprint()
        b = CheckRequest(module_source=COUNTER_TLA,
                         invariants=("TooSmall", "Small")).fingerprint()
        assert a != b


class TestResultCache:
    def test_memory_roundtrip_and_counters(self):
        cache = ResultCache()
        assert cache.get("deadbeef") is None
        cache.put("deadbeef", {"verdict": "ok"})
        assert cache.get("deadbeef") == {"verdict": "ok"}
        assert "deadbeef" in cache
        assert len(cache) == 1
        assert cache.counters() == {"hits": 1, "misses": 1,
                                    "evictions": 0, "entries": 1}

    def test_disk_persistence_across_instances(self, tmp_path):
        directory = str(tmp_path / "cache")
        first = ResultCache(directory)
        first.put("abc123", {"verdict": "violation", "states": 3})
        second = ResultCache(directory)  # fresh process, cold memory
        assert second.get("abc123") == {"verdict": "violation", "states": 3}
        assert second.hits == 1 and second.misses == 0
        assert "abc123" in second and len(second) == 1

    def test_torn_entry_is_a_miss_not_a_crash(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory)
        (tmp_path / "cache" / "feed.json").write_text("{not json")
        assert cache.get("feed") is None
        assert cache.misses == 1

    def test_put_is_atomic_on_disk(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory)
        cache.put("aa", {"verdict": "ok"})
        files = list(tmp_path.glob("cache/*"))
        assert [f.name for f in files] == ["aa.json"]  # no .tmp leftovers
        assert json.loads(files[0].read_text()) == {"verdict": "ok"}


class TestEvictionStats:
    def test_memory_lru_eviction_counts(self):
        cache = ResultCache(max_entries=2)
        cache.put("aa", {"n": 1})
        cache.put("bb", {"n": 2})
        cache.put("cc", {"n": 3})
        assert cache.evictions == 1
        assert len(cache) == 2
        assert cache.get("aa") is None  # the oldest went
        assert cache.get("cc") == {"n": 3}

    def test_get_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("aa", {"n": 1})
        cache.put("bb", {"n": 2})
        cache.get("aa")             # aa is now the most recently used
        cache.put("cc", {"n": 3})
        assert cache.get("bb") is None  # bb was LRU, not aa
        assert cache.get("aa") == {"n": 1}

    def test_disk_eviction_by_mtime(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), max_entries=2)
        for n, name in enumerate(("aa", "bb", "cc")):
            cache.put(name, {"n": n})
            os.utime(tmp_path / "cache" / (name + ".json"),
                     (1000.0 + n, 1000.0 + n))
        cache.put("dd", {"n": 3})
        assert cache.evictions >= 2
        assert not (tmp_path / "cache" / "aa.json").exists()
        assert (tmp_path / "cache" / "dd.json").exists()

    def test_summary_and_to_json_expose_eviction_pressure(self):
        cache = ResultCache(max_entries=1)
        cache.get("aa")             # miss
        cache.put("aa", {"n": 1})
        cache.get("aa")             # hit
        cache.put("bb", {"n": 2})   # evicts aa
        line = cache.summary(indent="  ")
        assert line.startswith("  result cache: 1 entries")
        assert "1 hits / 1 misses (50.0% hit rate)" in line
        assert "1 evictions" in line
        assert json.loads(cache.to_json()) == {
            "hits": 1, "misses": 1, "evictions": 1, "entries": 1}

    def test_on_event_feeds_external_counters(self):
        seen = []
        cache = ResultCache(max_entries=1,
                            on_event=lambda kind, n: seen.append((kind, n)))
        cache.get("aa")
        cache.put("aa", {"n": 1})
        cache.put("bb", {"n": 2})
        assert ("misses", 1) in seen
        assert ("evictions", 1) in seen


class TestShardedResultCache:
    def test_roundtrip_lands_in_a_shard(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path / "cache"), shards=4)
        fingerprint = "ab" * 32
        cache.put(fingerprint, {"verdict": "ok"})
        shard = int("ab", 16) % 4
        assert (tmp_path / "cache" / f"shard-{shard:02x}"
                / (fingerprint + ".json")).exists()
        assert cache.get(fingerprint) == {"verdict": "ok"}

    def test_cold_process_reads_what_another_wrote(self, tmp_path):
        directory = str(tmp_path / "cache")
        ShardedResultCache(directory).put("cd" * 32, {"states": 7})
        second = ShardedResultCache(directory)
        assert second.get("cd" * 32) == {"states": 7}
        assert second.hits == 1

    def test_legacy_flat_entries_still_hit(self, tmp_path):
        directory = tmp_path / "cache"
        directory.mkdir()
        fingerprint = "ef" * 32
        (directory / (fingerprint + ".json")).write_text(
            json.dumps({"verdict": "ok"}))
        cache = ShardedResultCache(str(directory))
        assert cache.get(fingerprint) == {"verdict": "ok"}
        assert fingerprint in cache
        assert len(cache) == 1

    def test_entry_bound_evicts_lru_within_shard(self, tmp_path):
        # one shard, so the global bound is exactly the shard bound
        cache = ShardedResultCache(str(tmp_path / "cache"), shards=1,
                                   max_entries=2, memory_entries=0)
        shard = tmp_path / "cache" / "shard-00"
        for n, prefix in enumerate(("aa", "bb", "cc")):
            fingerprint = prefix * 32
            cache.put(fingerprint, {"n": n})
            os.utime(shard / (fingerprint + ".json"),
                     (1000.0 + n, 1000.0 + n))
        cache.put("dd" * 32, {"n": 3})
        assert cache.evictions >= 2
        assert not (shard / ("aa" * 32 + ".json")).exists()
        assert cache.get("dd" * 32) == {"n": 3}

    def test_byte_bound_evicts(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path / "cache"), shards=1,
                                   max_entries=None, max_bytes=64,
                                   memory_entries=0)
        shard = tmp_path / "cache" / "shard-00"
        cache.put("aa" * 32, {"blob": "x" * 50})
        os.utime(shard / ("aa" * 32 + ".json"), (1000.0, 1000.0))
        cache.put("bb" * 32, {"blob": "y" * 50})
        assert cache.evictions >= 1
        assert cache.total_bytes() <= 64

    def test_counters_include_bytes_and_shards(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path / "cache"), shards=8)
        cache.put("aa" * 32, {"n": 1})
        counters = cache.counters()
        assert counters["entries"] == 1
        assert counters["shards"] == 8
        assert counters["bytes"] > 0
        assert "evictions" in counters

    def test_rejects_nonsense(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedResultCache(str(tmp_path), shards=0)
        with pytest.raises(ValueError):
            ShardedResultCache(str(tmp_path), max_entries=0)
        with pytest.raises(ValueError):
            ShardedResultCache(str(tmp_path), max_bytes=0)
        with pytest.raises(ValueError):
            ShardedResultCache(str(tmp_path), memory_entries=-1)
