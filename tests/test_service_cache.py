"""Content-addressed cache layer: fingerprint soundness (semantic knobs
address the result, execution-only knobs never do) and ResultCache
persistence/atomicity/counters."""

import json

from repro.service.cache import ResultCache, canonical_fingerprint
from repro.service.jobs import CheckRequest

COUNTER_TLA = """
MODULE Counter
CONSTANT N = 3
VARIABLE x \\in 0..2
Init == x = 0
Next == x' = (x + 1) % N
Spec == Init /\\ [][Next]_<<x>> /\\ WF_<<x>>(Next)
Small == x < 3
TooSmall == x < 2
Progress == (x = 0) ~> (x = 2)
"""


def fp(**overrides):
    request = CheckRequest(module_source=COUNTER_TLA,
                           invariants=("Small",), **overrides)
    return request.fingerprint()


class TestFingerprint:
    def test_stable_across_calls(self):
        assert fp() == fp()

    def test_execution_knobs_do_not_change_the_key(self):
        # the engine is deterministic for any worker count, checkpoint
        # cadence, and pacing -- so none of them may address the cache
        base = fp()
        assert fp(workers=4) == base
        assert fp(checkpoint_every=7) == base
        assert fp(level_delay=0.25) == base

    def test_semantic_knobs_all_change_the_key(self):
        base = fp()
        assert fp(max_states=10) != base
        assert fp(por=True) != base
        assert CheckRequest(module_source=COUNTER_TLA,
                            invariants=("TooSmall",)).fingerprint() != base
        assert CheckRequest(module_source=COUNTER_TLA,
                            invariants=("Small",),
                            properties=("Progress",)).fingerprint() != base

    def test_module_source_changes_the_key(self):
        assert CheckRequest(
            module_source=COUNTER_TLA + "\n",
            invariants=("Small",)).fingerprint() != fp()

    def test_spec_name_changes_the_key(self):
        a = canonical_fingerprint("m", "Spec", {"max_states": 1})
        b = canonical_fingerprint("m", "Spec2", {"max_states": 1})
        assert a != b

    def test_key_order_in_config_does_not_matter(self):
        a = canonical_fingerprint("m", "Spec", {"a": 1, "b": 2})
        b = canonical_fingerprint("m", "Spec", {"b": 2, "a": 1})
        assert a == b

    def test_engine_changes_the_key(self):
        # an explicit "ok" and a symbolic "unknown" answer the same
        # module differently; the cache must never conflate them
        assert fp(engine="symbolic") != fp()

    def test_depth_changes_the_key_for_symbolic(self):
        assert fp(engine="symbolic", depth=5) != fp(engine="symbolic",
                                                    depth=6)

    def test_default_depth_is_normalised_into_the_key(self):
        # "symbolic, depth unspecified" and "symbolic at the default
        # depth" are the same request and must share one cache entry
        from repro.engine import DEFAULT_DEPTH

        assert fp(engine="symbolic") == fp(engine="symbolic",
                                           depth=DEFAULT_DEPTH)

    def test_depth_never_fragments_the_explicit_cache(self):
        # the explicit engine ignores depth, so it must not address the
        # result (a stray depth on an explicit request is rejected at
        # the request boundary; this guards the key derivation itself)
        assert fp(depth=5) == fp()

    def test_invariant_order_matters(self):
        # the CLI runs checks in the order given; the report differs
        a = CheckRequest(module_source=COUNTER_TLA,
                         invariants=("Small", "TooSmall")).fingerprint()
        b = CheckRequest(module_source=COUNTER_TLA,
                         invariants=("TooSmall", "Small")).fingerprint()
        assert a != b


class TestResultCache:
    def test_memory_roundtrip_and_counters(self):
        cache = ResultCache()
        assert cache.get("deadbeef") is None
        cache.put("deadbeef", {"verdict": "ok"})
        assert cache.get("deadbeef") == {"verdict": "ok"}
        assert "deadbeef" in cache
        assert len(cache) == 1
        assert cache.counters() == {"hits": 1, "misses": 1, "entries": 1}

    def test_disk_persistence_across_instances(self, tmp_path):
        directory = str(tmp_path / "cache")
        first = ResultCache(directory)
        first.put("abc123", {"verdict": "violation", "states": 3})
        second = ResultCache(directory)  # fresh process, cold memory
        assert second.get("abc123") == {"verdict": "violation", "states": 3}
        assert second.hits == 1 and second.misses == 0
        assert "abc123" in second and len(second) == 1

    def test_torn_entry_is_a_miss_not_a_crash(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory)
        (tmp_path / "cache" / "feed.json").write_text("{not json")
        assert cache.get("feed") is None
        assert cache.misses == 1

    def test_put_is_atomic_on_disk(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory)
        cache.put("aa", {"verdict": "ok"})
        files = list(tmp_path.glob("cache/*"))
        assert [f.name for f in files] == ["aa.json"]  # no .tmp leftovers
        assert json.loads(files[0].read_text()) == {"verdict": "ok"}
