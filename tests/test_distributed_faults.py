"""Chaos tests: node loss, hangs, and network faults never change results.

The distributed explorer inherits the repo-wide fault discipline (see
``test_fault_injection.py`` for the process-pool layer) and extends it
to *node* loss: a worker that is SIGKILLed mid-level, hangs past the
heartbeat, or sits behind a lossy/duplicating network must never
perturb the graph -- the coordinator rebalances the dead node's
fingerprint ranges onto the survivors, rebuilds the orphaned visited
partitions from its own packed column, re-ships only the unanswered
sources, and the final :class:`~repro.checker.digest.GraphDigest` is
byte-identical to the serial run.  Failures only show up in the new
``ExploreStats`` counters (``node_losses``, ``rebalances``,
``reshipped_sources``).

The fault seams:

* the **worker fault hook** (shipped pickled via ``/load``, invoked per
  ``/expand`` on the worker's loop thread) kills or hangs a node at a
  chosen level, coordinated through marker files exactly like the
  process-pool hooks;
* :class:`~repro.service.wire.NetFaultPlan` deterministically drops
  (transient ``ConnectionError`` absorbed by wire retries) and
  duplicates (idempotence check) coordinator requests;
* the **coordinator kill** test ``os._exit``\\ s a real coordinator
  subprocess between levels and resumes its checkpoint on the same
  (still running) workers.

The acceptance sweep kills a worker at *every* BFS level in turn, at
both 2 and 4 worker nodes.
"""

from __future__ import annotations

import functools
import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.checker import (
    ExploreStats,
    NetFaultPlan,
    WorkerFailure,
    explore_compact,
    explore_distributed,
    resume_distributed,
    spawn_local_workers,
)
from repro.systems.mutex import LamportMutex
from repro.systems.queue import complete_queue


# ---------------------------------------------------------------------------
# picklable worker fault hooks (shipped through /load; the marker file
# coordinates "exactly once" across worker processes)
# ---------------------------------------------------------------------------


def _kill_node_at_level(marker: str, level: int, info) -> None:
    """SIGKILL the first worker that expands at (or past) *level*."""
    if info["level"] < level:
        return
    try:
        with open(marker, "x"):
            pass
    except FileExistsError:
        return
    os.kill(os.getpid(), signal.SIGKILL)


def _hang_node_at_level(marker: str, level: int, info) -> None:
    """Hang one worker far past any heartbeat; runs on the loop thread,
    so the node's /healthz freezes too -- a *hung* node, not a busy one."""
    if info["level"] < level:
        return
    try:
        with open(marker, "x"):
            pass
    except FileExistsError:
        return
    time.sleep(300)


def _mutex_spec():
    return LamportMutex(2, 2).complete_spec()


@pytest.fixture(scope="module")
def reference():
    return explore_compact(_mutex_spec())


# ---------------------------------------------------------------------------
# worker loss and hangs
# ---------------------------------------------------------------------------


def test_sigkilled_worker_mid_level_rebalances_to_same_digest(
        reference, tmp_path):
    stats = ExploreStats()
    hook = functools.partial(_kill_node_at_level,
                             str(tmp_path / "killed.marker"), 4)
    with spawn_local_workers(2) as pool:
        graph = explore_distributed(_mutex_spec(), pool.urls, stats=stats,
                                    fault_hook=hook)
        assert len(pool.alive()) == 1  # the kill really happened
    assert graph.digest() == reference.digest()
    assert graph.state_count == reference.state_count
    assert stats.node_losses == 1
    assert stats.rebalances == 1
    # the loss surfaces in the human stats rendering too
    assert "node loss" in stats.format()


def test_externally_killed_worker_between_levels(reference, tmp_path):
    """Loss discovered by the *coordinator's* next request (not a hook):
    the process dies between levels, from outside."""
    stats = ExploreStats()
    state = {"levels": 0, "pool": None}

    def kill_at_level_3(level, info):
        state["levels"] += 1
        if state["levels"] == 3:
            state["pool"].kill(1)

    stats.add_level_listener(kill_at_level_3)
    with spawn_local_workers(2) as pool:
        state["pool"] = pool
        graph = explore_distributed(_mutex_spec(), pool.urls, stats=stats)
    assert graph.digest() == reference.digest()
    assert stats.node_losses == 1


def test_hung_worker_detected_by_heartbeat(reference, tmp_path):
    """A node that hangs (rather than dies) freezes its own /healthz;
    the heartbeat monitor aborts its link, which converts the blocked
    read into a transport error and triggers the normal rebalance."""
    stats = ExploreStats()
    hook = functools.partial(_hang_node_at_level,
                             str(tmp_path / "hung.marker"), 4)
    with spawn_local_workers(2) as pool:
        graph = explore_distributed(_mutex_spec(), pool.urls, stats=stats,
                                    fault_hook=hook, heartbeat=0.2)
        assert len(pool.alive()) == 2  # hung, not dead
    assert graph.digest() == reference.digest()
    assert stats.node_losses == 1


def test_losing_every_node_raises_worker_failure(tmp_path):
    hook = functools.partial(_kill_node_at_level,
                             str(tmp_path / "a.marker"), 0)
    with spawn_local_workers(1) as pool:
        with pytest.raises(WorkerFailure, match="worker nodes were lost"):
            explore_distributed(_mutex_spec(), pool.urls, fault_hook=hook)


@pytest.mark.parametrize("workers", [2, 4])
def test_kill_a_worker_at_every_level(workers, tmp_path):
    """Acceptance sweep: for every BFS level L of the queue system, a
    fresh cluster loses one node at level L -- and every run lands on
    the serial digest."""
    spec = complete_queue(2)
    reference = explore_compact(spec)
    # level count from a distributed run's own manifest (the partition
    # table has one seed row plus one row per expanded BFS level)
    with spawn_local_workers(workers) as pool:
        levels = len(explore_distributed(spec, pool.urls).level_partitions) - 1
    for level in range(levels):
        stats = ExploreStats()
        hook = functools.partial(
            _kill_node_at_level,
            str(tmp_path / f"kill-{workers}-{level}.marker"), level)
        with spawn_local_workers(workers) as pool:
            graph = explore_distributed(spec, pool.urls, stats=stats,
                                        fault_hook=hook)
        assert graph.digest() == reference.digest(), \
            f"digest diverged when killing a node at level {level}"
        assert stats.node_losses == 1, \
            f"no node was lost at level {level}"


# ---------------------------------------------------------------------------
# network faults: seeded drops and duplicates
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [7, 23])
def test_dropped_and_duplicated_messages_are_absorbed(reference, seed):
    """Every coordinator POST may be dropped (absorbed by wire retries)
    or duplicated (absorbed by endpoint idempotence/purity); the graph
    never notices."""
    fault = NetFaultPlan(seed=seed, drop_rate=0.05, dup_rate=0.08)
    stats = ExploreStats()
    with spawn_local_workers(2) as pool:
        graph = explore_distributed(_mutex_spec(), pool.urls, stats=stats,
                                    net_fault=fault)
    assert graph.digest() == reference.digest()
    assert graph.state_count == reference.state_count
    assert fault.drops > 0 and fault.duplicates > 0  # faults really fired
    assert stats.worker_retries.get("wire", 0) >= fault.drops


def test_network_faults_compose_with_node_loss(reference, tmp_path):
    fault = NetFaultPlan(seed=11, drop_rate=0.04, dup_rate=0.04)
    hook = functools.partial(_kill_node_at_level,
                             str(tmp_path / "killed.marker"), 5)
    stats = ExploreStats()
    with spawn_local_workers(3) as pool:
        graph = explore_distributed(_mutex_spec(), pool.urls, stats=stats,
                                    net_fault=fault, fault_hook=hook)
    assert graph.digest() == reference.digest()
    assert stats.node_losses == 1


# ---------------------------------------------------------------------------
# coordinator death: checkpoint + resume on the surviving cluster
# ---------------------------------------------------------------------------


_CRASHING_COORDINATOR = textwrap.dedent("""
    import json, os, sys
    import repro.checker.distributed as distributed_module
    from repro.checker.compact import save_compact_checkpoint
    from repro.systems.mutex import LamportMutex

    path, crash_after = sys.argv[1], int(sys.argv[2])
    urls = json.loads(sys.argv[3])
    saves = [0]

    def save_then_die(*args, **kwargs):
        save_compact_checkpoint(*args, **kwargs)
        saves[0] += 1
        if saves[0] >= crash_after:
            os._exit(17)  # the coordinator machine dies between levels

    distributed_module.save_compact_checkpoint = save_then_die
    distributed_module.explore_distributed(
        LamportMutex(2, 2).complete_spec(), urls, checkpoint=path)
""")


@pytest.mark.parametrize("crash_after", [1, 4])
def test_coordinator_killed_between_levels_resumes(reference, tmp_path,
                                                   crash_after):
    path = str(tmp_path / "run.ckpt")
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    with spawn_local_workers(2) as pool:
        proc = subprocess.run(
            [sys.executable, "-c", _CRASHING_COORDINATOR, path,
             str(crash_after), json.dumps(pool.urls)],
            env=env, capture_output=True, text=True)
        assert proc.returncode == 17, proc.stderr
        # the workers survived their coordinator; resume on them
        graph = resume_distributed(path, pool.urls)
    assert graph.digest() == reference.digest()
    assert graph.state_count == reference.state_count
    # the snapshot carried the distributed section along
    with open(path) as handle:
        payload = json.load(handle)
    assert payload["distributed"]["ranges"][0][0] == 0


def test_resume_on_larger_cluster_same_digest(reference, tmp_path):
    """The checkpoint pins the pristine ranges, not the cluster: a
    2-worker snapshot finishes on 3 fresh workers, digest unchanged."""
    path = str(tmp_path / "run.ckpt")
    stats = ExploreStats()

    class Stop(Exception):
        pass

    state = {"levels": 0}

    def stop_at_level_5(level, info):
        state["levels"] += 1
        if state["levels"] == 5:
            raise Stop()

    stats.add_level_listener(stop_at_level_5)
    with spawn_local_workers(2) as pool:
        with pytest.raises(Stop):
            explore_distributed(_mutex_spec(), pool.urls, stats=stats,
                                checkpoint=path)
    with spawn_local_workers(3) as pool:
        graph = resume_distributed(path, pool.urls)
    assert graph.digest() == reference.digest()
