"""Fault-injection tests: worker crashes and hangs never change results.

The parallel explorer claims a strong property: a worker that is
SIGKILLed mid-chunk or hangs past the per-chunk timeout is retried on a
fresh process, and the final graph is **bit-for-bit** the serial one --
retries only show up in ``ExploreStats.worker_retries``.  These tests
make that claim empirical:

* a picklable fault hook (installed in workers through the pool
  initializer) kills or hangs exactly one chunk, coordinated through a
  marker file shared with the retried process;
* ``_MIN_CHUNK`` is patched down so the small bundled systems actually
  ship chunks to workers instead of taking the inline path;
* a chunk that *always* kills its worker must raise
  :class:`WorkerFailure` after the bounded retries rather than loop;
* a whole-process crash (a subprocess that ``os._exit``\\ s mid-run) is
  recovered by ``resume()`` from the surviving checkpoint, using the
  spec pickle embedded in the file.
"""

from __future__ import annotations

import functools
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

import repro.checker.parallel as parallel_module
from repro.checker import (
    ExploreStats,
    WorkerFailure,
    explore,
    explore_parallel,
    load_checkpoint,
    resume,
)

from .systems_under_test import CASE_PARAMS
from .test_checkpoint_roundtrip import assert_same_graph


# ---------------------------------------------------------------------------
# picklable fault hooks (module-level + functools.partial: survive the
# trip through the pool initializer)
# ---------------------------------------------------------------------------


def _kill_once(marker: str, chunk) -> None:
    """SIGKILL the worker on the first chunk ever processed; the marker
    file makes the retried process sail through."""
    try:
        with open(marker, "x"):
            pass
    except FileExistsError:
        return
    os.kill(os.getpid(), signal.SIGKILL)


def _hang_once(marker: str, chunk) -> None:
    """Hang the worker well past any test timeout, once."""
    try:
        with open(marker, "x"):
            pass
    except FileExistsError:
        return
    time.sleep(300)


def _kill_always(chunk) -> None:
    os.kill(os.getpid(), signal.SIGKILL)


@pytest.fixture
def shipped_chunks(monkeypatch):
    """Force the coordinator to ship chunks: with ``_MIN_CHUNK = 1`` even
    the small bundled systems cross the inline threshold."""
    monkeypatch.setattr(parallel_module, "_MIN_CHUNK", 1)


# ---------------------------------------------------------------------------
# crash / hang recovery
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case", CASE_PARAMS)
def test_killed_worker_graph_identical_to_serial(case, tmp_path,
                                                 shipped_chunks):
    """Acceptance criterion: under an injected SIGKILL, every bundled
    system still explores to the exact serial graph."""
    reference = explore(case.make_spec())
    stats = ExploreStats()
    hook = functools.partial(_kill_once, str(tmp_path / "killed.marker"))
    graph = explore_parallel(case.make_spec(), workers=2, stats=stats,
                             fault_hook=hook)
    assert_same_graph(graph, reference)


def test_killed_worker_is_retried_and_counted(tmp_path, shipped_chunks):
    from repro.systems.queue import complete_queue

    reference = explore(complete_queue(2))
    stats = ExploreStats()
    hook = functools.partial(_kill_once, str(tmp_path / "killed.marker"))
    graph = explore_parallel(complete_queue(2), workers=2, stats=stats,
                             fault_hook=hook)
    assert_same_graph(graph, reference)
    assert stats.worker_retries.get("crash", 0) >= 1
    assert stats.total_retries >= 1
    # the retry shows up in the human-readable stats line too
    assert "retries" in stats.format()


def test_hung_worker_times_out_and_is_retried(tmp_path, shipped_chunks):
    from repro.systems.queue import complete_queue

    reference = explore(complete_queue(2))
    stats = ExploreStats()
    hook = functools.partial(_hang_once, str(tmp_path / "hung.marker"))
    graph = explore_parallel(complete_queue(2), workers=2, stats=stats,
                             worker_timeout=0.5, fault_hook=hook)
    assert_same_graph(graph, reference)
    assert stats.worker_retries.get("timeout", 0) >= 1


def test_chunk_that_always_kills_raises_worker_failure(shipped_chunks):
    from repro.systems.queue import complete_queue

    stats = ExploreStats()
    with pytest.raises(WorkerFailure, match="failed"):
        explore_parallel(complete_queue(2), workers=2, stats=stats,
                         fault_hook=_kill_always)
    # every attempt beyond the first was counted before giving up
    assert stats.worker_retries.get("crash", 0) > \
        parallel_module._MAX_CHUNK_RETRIES


def test_crash_during_checkpointed_parallel_run_resumes(tmp_path,
                                                        shipped_chunks):
    """Kill + retry and checkpoint/resume compose: a parallel run that
    both checkpoints and loses a worker still resumes to the serial
    graph."""
    from repro.systems.queue import complete_queue

    reference = explore(complete_queue(2))
    path = str(tmp_path / "run.ckpt")
    hook = functools.partial(_kill_once, str(tmp_path / "killed.marker"))
    graph = explore_parallel(complete_queue(2), workers=2, checkpoint=path,
                             checkpoint_every=1, fault_hook=hook)
    assert_same_graph(graph, reference)
    assert_same_graph(resume(path, complete_queue(2), checkpoint=None),
                      reference)


# ---------------------------------------------------------------------------
# whole-process death: the coordinator itself is killed mid-run
# ---------------------------------------------------------------------------


_CRASHING_RUN = textwrap.dedent("""
    import os, sys
    import repro.checker.explorer as explorer_module
    from repro.checker.checkpoint import save_checkpoint
    from repro.systems.queue import complete_queue

    crash_after = int(sys.argv[2])
    saves = [0]

    def save_then_die(*args, **kwargs):
        save_checkpoint(*args, **kwargs)
        saves[0] += 1
        if saves[0] >= crash_after:
            os._exit(17)  # simulate an OOM kill / power loss

    explorer_module.save_checkpoint = save_then_die
    explorer_module.explore(complete_queue(2), checkpoint=sys.argv[1],
                            checkpoint_every=1)
""")


@pytest.mark.parametrize("crash_after", [1, 3])
def test_process_death_recovered_via_embedded_spec(tmp_path, crash_after):
    from repro.systems.queue import complete_queue

    path = str(tmp_path / "run.ckpt")
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CRASHING_RUN, path, str(crash_after)],
        env=env, capture_output=True, text=True)
    assert proc.returncode == 17, proc.stderr
    # the checkpoint survived the crash; no spec object needed to resume
    loaded = load_checkpoint(path)
    assert loaded.levels == crash_after
    assert_same_graph(resume(path, checkpoint=None),
                      explore(complete_queue(2)))
