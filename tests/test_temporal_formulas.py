"""Unit tests for temporal formula semantics on lassos."""

import pytest

from repro.kernel import And, Eq, Universe, Var, interval
from repro.temporal import (
    ActionBox,
    ActionDiamond,
    Always,
    Eventually,
    Hide,
    Invariant,
    LeadsTo,
    SF,
    StatePred,
    TAnd,
    TEquiv,
    TImplies,
    TNot,
    TOr,
    WF,
    holds,
    to_tf,
)

from tests.conftest import bits

x = Var("x")
U = Universe({"x": interval(0, 3)})


def is_(v):
    return StatePred(Eq(x, v))


class TestStatePred:
    def test_first_state_only(self):
        assert holds(is_(0), bits("x", [0, 1], 1), U)
        assert not holds(is_(1), bits("x", [0, 1], 1), U)

    def test_rejects_primes(self):
        with pytest.raises(TypeError):
            StatePred(Eq(Var("x", primed=True), 0))

    def test_rejects_non_boolean(self):
        with pytest.raises(TypeError):
            holds(StatePred(x + 1), bits("x", [0]), U)

    def test_to_tf_coercions(self):
        assert holds(to_tf(True), bits("x", [0]), U)
        assert holds(to_tf(Eq(x, 0)), bits("x", [0]), U)
        with pytest.raises(TypeError):
            to_tf(Eq(Var("x", primed=True), 0))
        with pytest.raises(TypeError):
            to_tf("x = 0")


class TestAlwaysEventually:
    def test_always_on_loop(self):
        assert holds(Always(is_(1)), bits("x", [1, 1], 1), U)
        assert not holds(Always(is_(1)), bits("x", [1, 2], 1), U)

    def test_always_checks_stem_and_loop(self):
        assert not holds(Always(is_(1)), bits("x", [0, 1], 1), U)

    def test_eventually_in_stem(self):
        assert holds(Eventually(is_(0)), bits("x", [0, 1], 1), U)

    def test_eventually_in_loop(self):
        assert holds(Eventually(is_(1)), bits("x", [0, 1], 1), U)

    def test_eventually_never(self):
        assert not holds(Eventually(is_(3)), bits("x", [0, 1], 1), U)

    def test_always_eventually(self):
        la = bits("x", [0, 1, 2], 1)
        assert holds(Always(Eventually(is_(2))), la, U)
        assert not holds(Always(Eventually(is_(0))), la, U)  # 0 only in stem

    def test_eventually_always(self):
        la = bits("x", [0, 1, 1], 2)
        assert holds(Eventually(Always(is_(1))), la, U)
        assert not holds(Always(is_(1)), la, U)

    def test_invariant_helper(self):
        assert holds(Invariant(x < 2), bits("x", [0, 1], 1), U)


class TestLeadsTo:
    def test_triggered_and_satisfied(self):
        la = bits("x", [0, 1, 2], 1)
        assert holds(LeadsTo(is_(1), is_(2)), la, U)

    def test_trigger_in_loop_must_keep_answering(self):
        la = bits("x", [1, 2], 1)  # 1 (2)^w
        assert holds(LeadsTo(is_(1), is_(2)), la, U)

    def test_violated(self):
        la = bits("x", [1, 0], 1)
        assert not holds(LeadsTo(is_(1), is_(2)), la, U)

    def test_vacuous(self):
        assert holds(LeadsTo(is_(3), is_(0)), bits("x", [0], 0), U)

    def test_immediate_satisfaction(self):
        # P ~> Q is satisfied when Q holds at the P state itself
        la = bits("x", [1, 0], 1)
        assert holds(LeadsTo(is_(1), is_(1)), la, U)


class TestActionFormulas:
    def test_action_box(self):
        incr = Eq(Var("x", primed=True), x + 1)
        assert holds(ActionBox(incr, ("x",)), bits("x", [0, 1, 2, 2], 3), U)
        assert not holds(ActionBox(incr, ("x",)), bits("x", [0, 2], 1), U)

    def test_action_box_allows_stutter(self):
        incr = Eq(Var("x", primed=True), x + 1)
        assert holds(ActionBox(incr, ("x",)), bits("x", [0], 0), U)

    def test_action_box_checks_wrap_step(self):
        incr = Eq(Var("x", primed=True), x + 1)
        # loop 1 -> 2 -> 1: the wrap step 2 -> 1 is not an increment
        assert not holds(ActionBox(incr, ("x",)), bits("x", [1, 2], 0), U)

    def test_action_diamond(self):
        incr = Eq(Var("x", primed=True), x + 1)
        assert holds(ActionDiamond(incr, ("x",)), bits("x", [0, 1, 1], 2), U)
        assert not holds(ActionDiamond(incr, ("x",)), bits("x", [0], 0), U)

    def test_empty_subscript_rejected(self):
        with pytest.raises(ValueError):
            ActionBox(Eq(Var("x", primed=True), x), ())
        with pytest.raises(ValueError):
            ActionDiamond(Eq(Var("x", primed=True), x), ())


class TestFairness:
    incr = Eq(Var("x", primed=True), (x + 1) % 4)

    def test_wf_taken(self):
        assert holds(WF(("x",), self.incr), bits("x", [0, 1, 2, 3], 0), U)

    def test_wf_violated_by_stutter(self):
        assert not holds(WF(("x",), self.incr), bits("x", [0], 0), U)

    def test_wf_vacuous_when_disabled(self):
        blocked = And(Eq(x, 3), Eq(Var("x", primed=True), 3))
        # <blocked>_x never changes x, so it is never enabled
        assert holds(WF(("x",), blocked), bits("x", [0], 0), U)

    def test_sf_violated_by_intermittent_enabling(self):
        # action enabled only at x=0; loop 0 -> 1 -> 0 never takes it
        act = And(Eq(x, 0), Eq(Var("x", primed=True), 3))
        la = bits("x", [0, 1], 0)
        assert not holds(SF(("x",), act), la, U)
        # WF is satisfied: infinitely many disabled states (x=1)
        assert holds(WF(("x",), act), la, U)

    def test_sf_taken(self):
        act = And(Eq(x, 0), Eq(Var("x", primed=True), 1))
        assert holds(SF(("x",), act), bits("x", [0, 1], 0), U)

    def test_fairness_needs_universe(self):
        with pytest.raises(ValueError, match="Universe"):
            holds(WF(("x",), self.incr), bits("x", [0], 0), universe=None)


class TestBooleanConnectives:
    def test_tand_tor_tnot(self):
        la = bits("x", [0, 1], 1)
        assert holds(TAnd(is_(0), Eventually(is_(1))), la, U)
        assert holds(TOr(is_(9), is_(0)), la, U)
        assert holds(TNot(is_(1)), la, U)

    def test_timplies_tequiv(self):
        la = bits("x", [0, 1], 1)
        assert holds(TImplies(is_(1), is_(9)), la, U)       # false antecedent
        assert holds(TEquiv(is_(0), Eventually(is_(0))), la, U)

    def test_flattening(self):
        conj = TAnd(TAnd(is_(0), is_(1)), is_(2))
        assert len(conj.parts) == 3

    def test_sugar(self):
        la = bits("x", [0, 1], 1)
        assert holds(is_(0) & Eventually(is_(1)), la, U)
        assert holds(is_(9) | is_(0), la, U)
        assert holds(~is_(1), la, U)
        assert holds(is_(1).implies(is_(9)), la, U)


class TestRenaming:
    def test_rename_distributes(self):
        formula = TAnd(is_(0), Always(StatePred(x < 2)),
                       ActionBox(Eq(Var("x", primed=True), x), ("x",)),
                       WF(("x",), Eq(Var("x", primed=True), x + 1)))
        renamed = formula.rename({"x": "y"})
        assert renamed.vars() == {"y"}
        la = bits("y", [0, 1], 1)
        uy = Universe({"y": interval(0, 3)})
        assert holds(Eventually(StatePred(Eq(Var("y"), 1))), la, uy)

    def test_hide_renames_bound(self):
        formula = Hide({"q": interval(0, 1)}, Always(StatePred(Eq(Var("q"), x))))
        renamed = formula.rename({"q": "q1", "x": "y"})
        assert "q1" in renamed.bindings
        assert renamed.vars() == {"y"}

    def test_hide_rename_collision_rejected(self):
        formula = Hide({"a": interval(0, 1), "b": interval(0, 1)},
                       StatePred(Eq(Var("a"), Var("b"))))
        with pytest.raises(ValueError):
            formula.rename({"a": "b"})

    def test_vars_includes_subscripts(self):
        box = ActionBox(Eq(Var("x", primed=True), 0), ("x", "z"))
        assert box.vars() == {"x", "z"}
