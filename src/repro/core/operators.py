"""The paper's temporal operators: ``C``, ``⊳``, ``−▷``, ``+v``, ``⊥``.

All five are defined semantically in the paper (sections 2.4, 3, 4) by
quantifying over the prefixes of a behavior.  On a lasso, prefix
satisfaction is *monotone*: once the first ``n`` states fail to be
extendable to satisfy ``F``, so do all longer prefixes.  Each behavior
therefore has a single **failure point** ``f(F, σ) ∈ {1, 2, ...} ∪ {∞}``
(:func:`repro.temporal.prefix.failure_point`), and every operator reduces
to arithmetic on failure points:

=====================  ==========================================================
operator               truth on σ, where fE = f(E, σ), fM = f(M, σ)
=====================  ==========================================================
``C(M)``  (closure)    ``fM = ∞``
``E ⊳ M``              ``(E ⇒ M on σ)  ∧  (fM = ∞  ∨  fM > fE)``
``E −▷ M``             ``(E ⇒ M on σ)  ∧  (fM = ∞  ∨  fM ≥ fE)``
``E ⊥ M``              ``¬(fE = fM < ∞)``
``E +v``               ``σ ⊨ E,  or  v freezes at some j with j < fE``
=====================  ==========================================================

These reductions are direct transcriptions of the paper's definitions:
"E holds for the first n states" is ``n < fE`` (vacuously true at n = 0).
The identity ``(E ⊳ M) = (E −▷ M) ∧ (E ⊥ M)`` claimed at the end of
section 4.2 is immediate in this form -- and is property-tested in the
test suite rather than taken on faith.

``⊳`` is the paper's assumption/guarantee connective (typeset there as a
triangle: if the environment satisfies E through time n, the system
satisfies M through time n + 1).  ``−▷`` is the "while" operator (M holds
at least as long as E) the paper contrasts it with.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..kernel.behavior import Lasso
from ..temporal.formulas import TemporalFormula, to_tf
from ..temporal.prefix import INFINITE, PrefixContext, failure_point


def _prefix_ctx(ctx) -> PrefixContext:
    return PrefixContext(universe=ctx.universe)


def _failure(ctx, formula: TemporalFormula):
    """Failure point of *formula* on the context's lasso, memoised.

    The cache pins the formula object alongside the value: id()-keyed
    caches must retain their keys or a recycled id would alias entries.
    """
    cache = getattr(ctx, "_failure_cache", None)
    if cache is None:
        cache = {}
        ctx._failure_cache = cache
    key = id(formula)
    if key not in cache:
        cache[key] = (formula, failure_point(formula, ctx.lasso, _prefix_ctx(ctx)))
    return cache[key][1]


class _Binary(TemporalFormula):
    """Shared structure for the binary operators over (env, sys) pairs."""

    __slots__ = ("env", "sys")

    SYMBOL = "?"

    def __init__(self, env: object, sys: object):
        self.env = to_tf(env)
        self.sys = to_tf(sys)

    def subformulas(self) -> Tuple[TemporalFormula, ...]:
        return (self.env, self.sys)

    def rename(self, mapping) -> TemporalFormula:
        return type(self)(self.env.rename(mapping), self.sys.rename(mapping))

    def key(self) -> Tuple:
        return (type(self).__name__, self.env.key(), self.sys.key())

    def _check_pos(self, pos: int) -> None:
        if pos != 0:
            raise NotImplementedError(
                f"{type(self).__name__} is evaluated at the start of a "
                "behavior only (its definition quantifies over all prefixes)"
            )

    def __repr__(self) -> str:
        return f"({self.env!r} {self.SYMBOL} {self.sys!r})"


class Guarantees(_Binary):
    """``E ⊳ M``: the paper's assumption/guarantee specification (section 3).

    True of σ iff ``E ⇒ M`` is true of σ and, for every n ≥ 0, if E holds
    for the first n states then M holds for the first n + 1 states.
    """

    __slots__ = ()
    SYMBOL = "⊳"

    def eval_at(self, ctx, pos: int) -> bool:
        self._check_pos(pos)
        f_sys = _failure(ctx, self.sys)
        if f_sys is not INFINITE:
            f_env = _failure(ctx, self.env)
            if not (f_env is not INFINITE and f_sys > f_env):
                return False
        return (not ctx.eval(self.env, 0)) or ctx.eval(self.sys, 0)


class AsLongAs(_Binary):
    """``E −▷ M``: M holds at least as long as E does (section 3's
    alternative connective, which reacts "instantaneously")."""

    __slots__ = ()
    SYMBOL = "−▷"

    def eval_at(self, ctx, pos: int) -> bool:
        self._check_pos(pos)
        f_sys = _failure(ctx, self.sys)
        if f_sys is not INFINITE:
            f_env = _failure(ctx, self.env)
            if not (f_env is not INFINITE and f_sys >= f_env):
                return False
        return (not ctx.eval(self.env, 0)) or ctx.eval(self.sys, 0)


class Orthogonal(_Binary):
    """``E ⊥ M``: no step makes both E and M false (section 4.2)."""

    __slots__ = ()
    SYMBOL = "⊥"

    def eval_at(self, ctx, pos: int) -> bool:
        self._check_pos(pos)
        f_env = _failure(ctx, self.env)
        if f_env is INFINITE:
            return True
        return _failure(ctx, self.sys) != f_env


class Closure(TemporalFormula):
    """``C(F)``: the strongest safety property implied by F (section 2.4).

    σ ⊨ C(F) iff every prefix of σ satisfies F.  For canonical
    specifications, Proposition 1 computes C syntactically -- see
    :mod:`repro.core.closure`; this node is the semantic fallback (and the
    referee for testing Proposition 1).
    """

    __slots__ = ("body",)

    def __init__(self, body: object):
        self.body = to_tf(body)

    def eval_at(self, ctx, pos: int) -> bool:
        if pos != 0:
            raise NotImplementedError("C(F) is evaluated at position 0 only")
        return _failure(ctx, self.body) is INFINITE

    def finite_sat(self, fb, pctx) -> bool:
        # ρ extends to satisfy C(F) iff ρ itself finitely satisfies F:
        # prefix satisfaction is monotone, and the stuttering extension of a
        # complying prefix keeps complying.
        from ..temporal.prefix import prefix_sat

        return prefix_sat(self.body, fb, pctx)

    def subformulas(self) -> Tuple[TemporalFormula, ...]:
        return (self.body,)

    def rename(self, mapping) -> TemporalFormula:
        return Closure(self.body.rename(mapping))

    def key(self) -> Tuple:
        return ("Closure", self.body.key())

    def __repr__(self) -> str:
        return f"C({self.body!r})"


class Plus(TemporalFormula):
    """``E +v``: if E ever becomes false, the state function v stops
    changing (section 4.1).

    σ ⊨ E+v iff σ ⊨ E, or there is an n such that E holds for the first n
    states and v never changes from the (n+1)-st state on.
    """

    __slots__ = ("env", "sub")

    def __init__(self, env: object, sub: Sequence[str]):
        self.env = to_tf(env)
        self.sub: Tuple[str, ...] = tuple(sub)
        if not self.sub:
            raise ValueError("Plus needs a nonempty variable tuple v")

    def eval_at(self, ctx, pos: int) -> bool:
        if pos != 0:
            raise NotImplementedError("E+v is evaluated at position 0 only")
        if ctx.eval(self.env, 0):
            return True
        freeze = _freeze_index(ctx.lasso, self.sub)
        if freeze is None:
            return False
        f_env = _failure(ctx, self.env)
        return f_env is INFINITE or freeze < f_env

    def subformulas(self) -> Tuple[TemporalFormula, ...]:
        return (self.env,)

    def vars(self):
        return super().vars() | frozenset(self.sub)

    def rename(self, mapping) -> TemporalFormula:
        return Plus(self.env.rename(mapping),
                    tuple(mapping.get(name, name) for name in self.sub))

    def key(self) -> Tuple:
        return ("Plus", self.env.key(), self.sub)

    def __repr__(self) -> str:
        return f"({self.env!r})+{self.sub}"


def _freeze_index(lasso: Lasso, sub: Tuple[str, ...]) -> Optional[int]:
    """The smallest index from which *sub* never changes; None if the loop
    keeps changing it."""

    def values(pos: int) -> Tuple[object, ...]:
        return lasso.states[pos].values_of(sub)

    for p, succ in lasso.loop_steps():
        if values(p) != values(succ):
            return None
    # the loop is frozen; walk the stem backwards while steps stay frozen
    freeze = lasso.loop_start
    while freeze > 0 and values(freeze - 1) == values(freeze):
        freeze -= 1
    return freeze


def guarantees(env: object, sys: object) -> Guarantees:
    """Build ``E ⊳ M`` -- convenience for the DSL."""
    return Guarantees(env, sys)
