"""The Composition Theorem (section 5 of the paper), as a proof engine.

Given devices with assumption/guarantee specifications ``E_j ⊳ M_j`` and a
goal ``E ⊳ M``, the theorem concludes ``⋀_j (E_j ⊳ M_j) ⇒ (E ⊳ M)`` from
three families of *complete-system* hypotheses:

1. for each i:   ``C(E) ∧ ⋀_j C(M_j)  ⇒  E_i``
2. (a)           ``C(E)+v ∧ ⋀_j C(M_j)  ⇒  C(M)``
   (b)           ``E ∧ ⋀_j M_j  ⇒  M``

The engine turns each hypothesis into a model-checking run over the
*conjunction* of the involved canonical specifications (which is itself a
canonical specification -- exactly the observation the paper makes after
stating the theorem), applying the paper's propositions to justify each
syntactic step:

* **Proposition 1** computes the closures ``C(M_j)`` (drop fairness);
* **Proposition 2** removes the ``∃`` quantifiers: the hypotheses are
  checked with internal variables visible, the goal's internals supplied
  by a refinement mapping (the witness for ``∃x`` on the right);
* **Propositions 3 and 4** eliminate the ``+v`` in hypothesis 2(a):
  given the interleaving condition ``Disjoint`` and the initial
  disjunction, ``C(E) ⊥ C(M)`` holds, so 2(a) reduces to the plain safety
  implication ``C(E) ∧ ⋀ C(M_j) ⇒ C(M)``.

Conditional implementation ``G ∧ ⋀(E_j ⊳ M_j) ⇒ (E ⊳ M)`` is obtained by
the paper's trick of adding ``G`` as a component with ``M_1 = G`` and
``E_1 = true`` (``true ⊳ G`` equals ``G``); pass the interleaving
condition as ``disjoint=`` and the engine does exactly that.

The result is a :class:`~repro.core.certificate.Certificate` whose
rendering mirrors the paper's Figure 9 proof sketch.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..checker.explorer import explore
from ..checker.liveness import check_temporal_implication
from ..checker.refinement import IDENTITY, RefinementMapping, check_safety_refinement
from ..kernel.state import Universe
from ..spec import Spec, conjoin
from .agspec import AGSpec
from .certificate import Certificate, Obligation
from .disjoint import DisjointSpec
from .propositions import (
    PropositionReport,
    proposition1,
    proposition2,
    proposition3,
    proposition4,
)


class CompositionTheorem:
    """One application of the Composition Theorem.

    Parameters
    ----------
    components:
        The devices' assumption/guarantee specifications ``E_j ⊳ M_j``.
    goal:
        The target specification ``E ⊳ M``.
    disjoint:
        The interleaving condition ``G`` (optional).  It is added as the
        component ``true ⊳ G`` and also feeds Proposition 4.
    mapping:
        Refinement mapping supplying the goal guarantee's internal
        variables as state functions of the composition (Proposition 2's
        witness).  Identity by default.
    plus_sub:
        The tuple ``v`` of the ``+v`` in hypothesis 2(a); defaults to all
        visible (non-internal) variables in play, matching the paper's
        ``<i, o, z>`` in the queue proof.
    """

    def __init__(
        self,
        components: Sequence[AGSpec],
        goal: AGSpec,
        disjoint: Optional[DisjointSpec] = None,
        mapping: Optional[RefinementMapping] = None,
        plus_sub: Optional[Sequence[str]] = None,
        name: Optional[str] = None,
        max_states: int = 200_000,
    ):
        if not components:
            raise ValueError("the Composition Theorem needs at least one component")
        self.devices = list(components)
        self.goal = goal
        self.disjoint = disjoint
        self.mapping = mapping or IDENTITY
        self.max_states = max_states
        self.name = name or (
            " ∧ ".join(ag.name for ag in self.devices) + f" ⇒ {goal.name}"
        )

        self.universe = self._merged_universe()
        self._plus_sub = tuple(plus_sub) if plus_sub is not None else None

        # all_parts: the M_j of the theorem, with G (if any) first,
        # mirroring the paper's substitution M_1 <- G, E_1 <- true.
        self.all_parts: List[AGSpec] = []
        if disjoint is not None:
            # restrict G's universe to the variables it actually mentions:
            # handing it the full merged universe would drag the goal's
            # internal variables into the hypothesis products, where nothing
            # constrains them (see the note in _safety_product)
            g_vars = [v for t in disjoint.tuples for v in t]
            self.all_parts.append(
                AGSpec("G", None,
                       disjoint.spec(self.universe.restrict(g_vars), name="G"))
            )
        self.all_parts.extend(self.devices)

    # -- setup helpers -------------------------------------------------------

    def _merged_universe(self) -> Universe:
        universe = self.goal.guarantee_spec.universe
        if self.goal.assumption is not None:
            universe = universe.merge(self.goal.assumption.universe)
        for ag in self.devices:
            universe = universe.merge(ag.guarantee_spec.universe)
            if ag.assumption is not None:
                universe = universe.merge(ag.assumption.universe)
        return universe

    def _all_internals(self) -> Tuple[str, ...]:
        names: Tuple[str, ...] = tuple(self.goal.internals)
        for ag in self.all_parts:
            names += tuple(x for x in ag.internals if x not in names)
        return names

    def plus_sub(self) -> Tuple[str, ...]:
        if self._plus_sub is not None:
            return self._plus_sub
        internals = set(self._all_internals())
        return tuple(v for v in self.universe.variables if v not in internals)

    def conclusion_formula(self):
        """``⋀_j (E_j ⊳ M_j) ⇒ (E ⊳ M)`` as a temporal formula, including
        ``G`` as ``true ⊳ G``; usable by the brute-force semantic checker."""
        from ..temporal.formulas import TAnd, TImplies

        premises = TAnd(*[ag.formula() for ag in self.all_parts])
        return TImplies(premises, self.goal.formula())

    # -- the proof -------------------------------------------------------------

    def verify(self) -> Certificate:
        cert = Certificate(
            self.name,
            "⋀_j (E_j ⊳ M_j) ⇒ (E ⊳ M)   with   "
            + ", ".join(f"M_{j + 1} ← {ag.guarantee_spec.name}"
                        for j, ag in enumerate(self.all_parts))
            + f",  E ← {self.goal.assumption.name if self.goal.assumption else 'TRUE'}"
            + f",  M ← {self.goal.guarantee_spec.name}",
        )

        closures, setup = self._setup_closures()
        cert.add(setup)
        if not setup.ok:
            return cert

        safety_product = self._safety_product(closures)

        for i, ag in enumerate(self.devices, start=1):
            cert.add(self._hypothesis1(i, ag, safety_product))

        cert.add(self._hypothesis2a(safety_product))
        cert.add(self._hypothesis2b())
        return cert

    # -- step 0: closures (Propositions 1 and 2) -------------------------------

    def _setup_closures(self) -> Tuple[List[Spec], Obligation]:
        rules: List[PropositionReport] = []
        closures: List[Spec] = []
        for ag in self.all_parts:
            cspec, report = proposition1(ag.guarantee_spec)
            closures.append(cspec)
            if ag.guarantee_spec.fairness:
                rules.append(report)
        parts = [
            (ag.name, ag.internals, ag.guarantee_spec.formula().vars())
            for ag in self.all_parts
        ]
        target = (
            self.goal.name,
            self.goal.internals,
            self.goal.guarantee_spec.formula().vars(),
        )
        rules.append(proposition2(parts, target))
        ob = Obligation(
            "0",
            "compute closures C(M_j) and unhide internal variables",
            rules=rules,
            skipped_reason="reductions only; no model checking needed"
            if all(rule.ok for rule in rules) else None,
        )
        return closures, ob

    def _safety_product(self, closures: List[Spec]) -> Spec:
        specs: List[Spec] = []
        if self.goal.assumption is not None:
            specs.append(self.goal.assumption.without_fairness(
                name=f"C({self.goal.assumption.name})"
            ))
        specs.extend(closures)
        # NOTE: the product's universe is the merge of the *parts'*
        # universes only.  Merging in the goal's universe would add the
        # goal's internal variables (e.g. the big queue's q), which nothing
        # in the product constrains -- they would be enumerated freely at
        # every step, multiplying the state space for no semantic gain (the
        # refinement mapping supplies their values instead).
        return conjoin(specs, name="C(E) ∧ ⋀ C(M_j)")

    # -- hypothesis 1 ------------------------------------------------------------

    def _hypothesis1(self, index: int, ag: AGSpec, product: Spec) -> Obligation:
        oid = f"1[{index}]"
        if ag.assumption is None:
            return Obligation(
                oid,
                f"C(E) ∧ ⋀ C(M_j) ⇒ E_{index}",
                skipped_reason=f"E_{index} is TRUE",
            )
        result = check_safety_refinement(
            self._explored(product),
            ag.assumption,
            mapping=IDENTITY,
            name=f"C(E) ∧ ⋀ C(M_j) ⇒ {ag.assumption.name}",
            max_states=self.max_states,
        )
        return Obligation(
            oid,
            f"C(E) ∧ ⋀ C(M_j) ⇒ {ag.assumption.name}",
            result=result,
        )

    # -- hypothesis 2(a) ------------------------------------------------------------

    def _hypothesis2a(self, product: Spec) -> Obligation:
        rules: List[PropositionReport] = []
        description = "C(E)+v ∧ ⋀ C(M_j) ⇒ C(M)"

        target_closure, prop1_report = proposition1(self.goal.guarantee_spec)
        if self.goal.guarantee_spec.fairness:
            rules.append(prop1_report)

        if self.goal.assumption is not None:
            # eliminate the +v via Propositions 3 and 4
            sub = self.plus_sub()
            rules.append(proposition3(self.goal.guarantee_formula(), sub))
            rules.append(self._orthogonality_report(product))

        result = check_safety_refinement(
            self._explored(product),
            target_closure,
            mapping=self.mapping,
            name=f"C(E) ∧ ⋀ C(M_j) ⇒ C({self.goal.guarantee_spec.name})",
            max_states=self.max_states,
        )
        return Obligation("2a", description, rules=rules, result=result)

    def _orthogonality_report(self, product: Spec) -> PropositionReport:
        """``⋀ C(M_j) ⇒ C(E) ⊥ C(M)`` via Proposition 4 (Figure 9, step 2.1)."""
        assumption = self.goal.assumption
        assert assumption is not None
        goal_comp = self.goal.guarantee_component
        if goal_comp is not None:
            sys_owned: Sequence[str] = goal_comp.outputs
        else:
            sys_owned = self.goal.guarantee_spec.sub
        if self.disjoint is None:
            return PropositionReport(
                "Proposition 4",
                False,
                [
                    "no Disjoint condition supplied: cannot establish "
                    "C(E) ⊥ C(M) for an interleaving composition "
                    "(pass disjoint=DisjointSpec(...))"
                ],
            )
        report = proposition4(assumption.sub, sys_owned, self.disjoint)
        # initial disjunction, checked on the product's initial states with
        # the mapping supplying the goal's internal variables
        graph = self._explored(product)
        goal_universe = self.goal.guarantee_spec.universe
        details = list(report.details)
        ok = report.ok
        for node in graph.init_nodes:
            state = graph.states[node]
            env_ok = bool(assumption.init.eval_state(state))
            mapped = self.mapping.target_state(state, goal_universe)
            sys_ok = bool(self.goal.guarantee_spec.init.eval_state(mapped))
            if not (env_ok or sys_ok):
                ok = False
                details.append(f"initial disjunction fails at {state!r}")
                break
        else:
            details.append(
                "initial disjunction (∃x: Init_E) ∨ (∃y: Init_M) holds at "
                f"all {len(graph.init_nodes)} initial product states"
            )
        return PropositionReport("Proposition 4", ok, details)

    # -- hypothesis 2(b) ------------------------------------------------------------

    def _hypothesis2b(self) -> Obligation:
        specs: List[Spec] = []
        if self.goal.assumption is not None:
            specs.append(self.goal.assumption)
        specs.extend(ag.guarantee_spec for ag in self.all_parts)
        full_product = conjoin(specs, name="E ∧ ⋀ M_j")
        conclusion = self.goal.guarantee_spec.formula()
        result = check_temporal_implication(
            full_product,
            conclusion,
            mapping=self.mapping,
            target_universe=self.goal.guarantee_spec.universe,
            name=f"E ∧ ⋀ M_j ⇒ {self.goal.guarantee_spec.name}",
            max_states=self.max_states,
        )
        return Obligation("2b", "E ∧ ⋀ M_j ⇒ M", result=result)

    # -- shared exploration cache ------------------------------------------------

    def _explored(self, product: Spec):
        cache = getattr(self, "_graph_cache", None)
        if cache is None:
            cache = {}
            self._graph_cache = cache
        key = id(product)
        if key not in cache:
            cache[key] = explore(product, max_states=self.max_states)
        return cache[key]


def compose(
    components: Sequence[AGSpec],
    goal: AGSpec,
    disjoint: Optional[DisjointSpec] = None,
    mapping: Optional[RefinementMapping] = None,
    plus_sub: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
    max_states: int = 200_000,
) -> Certificate:
    """One-call façade: build the theorem instance and verify it."""
    return CompositionTheorem(
        components, goal, disjoint=disjoint, mapping=mapping,
        plus_sub=plus_sub, name=name, max_states=max_states,
    ).verify()


def refinement_corollary(
    assumption: Optional[Spec],
    impl: AGSpec,
    goal: AGSpec,
    mapping: Optional[RefinementMapping] = None,
    disjoint: Optional[DisjointSpec] = None,
    name: Optional[str] = None,
    max_states: int = 200_000,
) -> Certificate:
    """The Corollary of section 5: ``(E ⊳ M') ⇒ (E ⊳ M)`` for a fixed
    environment assumption ``E`` -- the correctness of refining a system
    whose environment does not change.

    Implemented as the Composition Theorem with the single component
    ``E ⊳ M'``; hypothesis 1 (``C(E) ∧ C(M') ⇒ E``) is then trivially
    discharged because ``E`` is a conjunct of the premise.
    """
    if impl.assumption is not assumption or goal.assumption is not assumption:
        raise ValueError(
            "the refinement corollary requires the same assumption object "
            "on the implementation and the goal"
        )
    return compose(
        [impl], goal, disjoint=disjoint, mapping=mapping,
        name=name or f"{impl.name} refines {goal.name}", max_states=max_states,
    )
