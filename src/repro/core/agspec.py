"""Assumption/guarantee specifications ``E ⊳ M`` (paper, section 3).

An :class:`AGSpec` packages an environment assumption ``E`` and a system
guarantee ``M``:

* the **assumption** is a safety property in canonical form -- a
  :class:`~repro.spec.Spec` without fairness (or ``None``, meaning
  ``TRUE``, which the Composition Theorem uses for the conditional-
  implementation trick ``M_1 = G, E_1 = true``);
* the **guarantee** is a :class:`~repro.spec.Component` (outputs,
  internals, fairness -- the paper's ``QM``) or a bare ``Spec`` for
  formula-shaped guarantees such as the interleaving condition ``G``.

``formula()`` is the temporal formula ``E ⊳ M`` itself, directly
evaluable on behaviors; the Composition Theorem engine consumes the
structured form.
"""

from __future__ import annotations

from typing import Optional, Union

from ..spec import Component, Spec
from ..temporal.formulas import StatePred, TemporalFormula
from .operators import Guarantees


class AGSpec:
    """``E ⊳ M`` with the component structure retained."""

    __slots__ = ("name", "assumption", "guarantee")

    def __init__(
        self,
        name: str,
        assumption: Optional[Spec],
        guarantee: Union[Component, Spec],
    ):
        if assumption is not None and not isinstance(assumption, Spec):
            raise TypeError(
                f"assumption of {name!r} must be a canonical Spec or None "
                f"(TRUE); got {assumption!r}.  The paper requires environment "
                "assumptions to be safety properties in canonical form."
            )
        if assumption is not None and assumption.fairness:
            raise TypeError(
                f"assumption of {name!r} carries fairness conditions; "
                "environment assumptions must be safety properties "
                "(write environment fairness into the guarantee as "
                "E_L => WF/SF, per section 3 of the paper)"
            )
        if not isinstance(guarantee, (Component, Spec)):
            raise TypeError(
                f"guarantee of {name!r} must be a Component or Spec, "
                f"got {guarantee!r}"
            )
        self.name = name
        self.assumption = assumption
        self.guarantee = guarantee

    # -- views -------------------------------------------------------------

    @property
    def guarantee_component(self) -> Optional[Component]:
        return self.guarantee if isinstance(self.guarantee, Component) else None

    @property
    def guarantee_spec(self) -> Spec:
        """The unhidden canonical spec of the guarantee."""
        if isinstance(self.guarantee, Component):
            return self.guarantee.spec
        return self.guarantee

    @property
    def internals(self) -> tuple:
        comp = self.guarantee_component
        return comp.internals if comp is not None else ()

    def assumption_formula(self) -> TemporalFormula:
        if self.assumption is None:
            return StatePred(True)
        return self.assumption.formula()

    def guarantee_formula(self) -> TemporalFormula:
        """The guarantee with internals hidden (``∃x : IQM``)."""
        if isinstance(self.guarantee, Component):
            return self.guarantee.formula()
        return self.guarantee.formula()

    def formula(self) -> TemporalFormula:
        """The assumption/guarantee specification ``E ⊳ M`` as a formula.

        ``TRUE ⊳ G`` equals ``G`` (noted under the Composition Theorem in
        the paper), so a missing assumption returns the bare guarantee.
        """
        if self.assumption is None:
            return self.guarantee_formula()
        return Guarantees(self.assumption_formula(), self.guarantee_formula())

    def __repr__(self) -> str:
        env = self.assumption.name if self.assumption is not None else "TRUE"
        return f"AGSpec({self.name!r}: {env} ⊳ {self.guarantee_spec.name})"
