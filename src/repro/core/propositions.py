"""Propositions 1-4 of the paper, as executable procedures.

Each proposition is used in two distinct ways in this repository:

1. **As a reduction rule inside the Composition Theorem engine** -- the
   functions here check the proposition's *hypotheses* for concrete
   specifications, so the engine may soundly apply the conclusion
   (e.g. compute a closure syntactically, or replace a ``+v`` obligation
   by an orthogonality argument).  Each check returns a report that goes
   into the proof certificate.

2. **As an empirically validated theorem** -- ``validate_*`` functions
   test the proposition's conclusion against the exact lasso semantics on
   supplied behaviors.  The test suite and the PROP1-4 benchmark drive
   these with both hand-built and randomly generated instances.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..kernel.action import successors, holds_on_step
from ..kernel.behavior import Lasso
from ..kernel.expr import Expr
from ..kernel.state import State, Universe
from ..spec import Component, Spec
from ..temporal.formulas import TemporalFormula, to_tf
from ..temporal.semantics import EvalContext, holds
from .disjoint import DisjointSpec
from .operators import Closure, Guarantees, Orthogonal, Plus


class PropositionReport:
    """Outcome of checking a proposition's hypotheses."""

    __slots__ = ("proposition", "ok", "details")

    def __init__(self, proposition: str, ok: bool, details: Sequence[str] = ()):
        self.proposition = proposition
        self.ok = ok
        self.details = list(details)

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        return f"PropositionReport({self.proposition!r}, ok={self.ok})"

    def render(self) -> str:
        head = f"{self.proposition}: {'applicable' if self.ok else 'NOT applicable'}"
        return "\n".join([head] + [f"  - {line}" for line in self.details])


# ---------------------------------------------------------------------------
# Proposition 1: C(Init ∧ □[N]_v ∧ L) = Init ∧ □[N]_v
# ---------------------------------------------------------------------------

def check_subaction(
    action: Expr,
    next_action: Expr,
    universe: Universe,
    states: Iterable[State],
) -> List[str]:
    """Semantically check ``A ⇒ N`` over the given states: every A-successor
    pair must be an N step.  Returns problems (empty = verified)."""
    problems: List[str] = []
    for state in states:
        for succ in successors(action, state, universe):
            if not holds_on_step(next_action, state, succ):
                problems.append(
                    f"A step {state!r} -> {succ!r} is not an N step"
                )
                if len(problems) >= 3:
                    problems.append("... (further violations suppressed)")
                    return problems
    return problems


def proposition1(
    spec: Spec,
    semantic_states: Optional[Iterable[State]] = None,
) -> Tuple[Spec, PropositionReport]:
    """Apply Proposition 1: returns ``C(spec)`` (the spec without fairness)
    plus the hypothesis-check report.

    The hypothesis -- each fairness action implies ``N`` -- is checked
    structurally (the action is a disjunct of N); if that fails and
    *semantic_states* is given, an exhaustive semantic subaction check over
    those states is attempted instead.
    """
    details: List[str] = []
    problems = spec.validate_fairness_subactions()
    if not problems:
        details.append(
            f"each of the {len(spec.fairness)} fairness action(s) is a "
            "disjunct of N (structural check)"
        )
        return spec.without_fairness(), PropositionReport("Proposition 1", True, details)
    if semantic_states is not None:
        for fair in spec.fairness:
            bad = check_subaction(fair.action, spec.next_action, spec.universe,
                                  semantic_states)
            if bad:
                details.extend(bad)
                return spec.without_fairness(), PropositionReport(
                    "Proposition 1", False, details
                )
        details.append("fairness actions imply N (semantic check)")
        return spec.without_fairness(), PropositionReport("Proposition 1", True, details)
    details.extend(problems)
    return spec.without_fairness(), PropositionReport("Proposition 1", False, details)


def validate_proposition1(spec: Spec, lassos: Iterable[Lasso]) -> List[str]:
    """Empirically compare ``C(formula(spec))`` (semantic closure) with
    ``Init ∧ □[N]_v`` on the given behaviors.  Returns mismatches."""
    semantic = Closure(spec.formula())
    syntactic = spec.safety_formula()
    mismatches = []
    for lasso in lassos:
        lhs = holds(semantic, lasso, spec.universe)
        rhs = holds(syntactic, lasso, spec.universe)
        if lhs != rhs:
            mismatches.append(
                f"C-semantic={lhs} but Init∧□[N]_v={rhs} on {lasso!r}"
            )
    return mismatches


# ---------------------------------------------------------------------------
# Proposition 2: pushing closures under ∃
# ---------------------------------------------------------------------------

def proposition2(
    parts: Sequence[Tuple[str, Sequence[str], Iterable[str]]],
    target: Tuple[str, Sequence[str], Iterable[str]],
) -> PropositionReport:
    """Check Proposition 2's hypothesis for the standard use: to prove
    ``⋀ C(∃x_i : M_i) ⇒ C(∃x : M)`` it suffices to prove
    ``⋀ C(M_i) ⇒ ∃x : C(M)``, provided each ``x_i`` occurs neither in the
    target nor in any other component.

    Each part (and the target) is a triple
    ``(name, internal_variables, visible_variables)``.
    """
    details: List[str] = []
    ok = True
    target_name, target_internals, target_visible = target
    target_vars = set(target_visible) | set(target_internals)
    entries = [(name, set(internals), set(internals) | set(visible))
               for name, internals, visible in parts]
    for i, (name, internal, _all_vars) in enumerate(entries):
        if internal & target_vars:
            ok = False
            details.append(
                f"internal variables {sorted(internal & target_vars)} of "
                f"{name!r} occur in the target {target_name!r}"
            )
        for j, (other_name, _oi, other_vars) in enumerate(entries):
            if i == j:
                continue
            clash = internal & other_vars
            if clash:
                ok = False
                details.append(
                    f"internal variables {sorted(clash)} of {name!r} "
                    f"occur in component {other_name!r}"
                )
    if ok:
        details.append(
            "hidden variables of each component are private to it "
            "(do not occur in the target or in other components)"
        )
    return PropositionReport("Proposition 2", ok, details)


def proposition2_of_components(
    components: Sequence[Component],
    target: Component,
) -> PropositionReport:
    """Component-level convenience wrapper around :func:`proposition2`."""
    parts = [(c.name, c.internals, c.spec.formula().vars()) for c in components]
    return proposition2(
        parts, (target.name, target.internals, target.spec.formula().vars())
    )


# ---------------------------------------------------------------------------
# Proposition 3: eliminating +v via orthogonality
# ---------------------------------------------------------------------------

def proposition3(
    sys_formula: TemporalFormula,
    plus_sub: Sequence[str],
) -> PropositionReport:
    """Check Proposition 3's variable hypothesis: the tuple ``v`` of the
    ``+v`` obligation must contain every variable free in ``M``.

    (The other hypotheses -- that ``E``, ``M``, ``R`` are safety properties
    and that ``E ∧ R ⇒ M`` and ``R ⇒ E ⊥ M`` hold -- are discharged as
    separate obligations by the engine.)"""
    missing = sorted(to_tf(sys_formula).vars() - set(plus_sub))
    if missing:
        return PropositionReport(
            "Proposition 3",
            False,
            [f"variables {missing} of M are not in the +v tuple {tuple(plus_sub)}"],
        )
    return PropositionReport(
        "Proposition 3",
        True,
        [f"all free variables of M lie in the +v tuple {tuple(plus_sub)}"],
    )


def validate_proposition3(
    env: TemporalFormula,
    sys_formula: TemporalFormula,
    rely: TemporalFormula,
    plus_sub: Sequence[str],
    lassos: Iterable[Lasso],
    universe: Universe,
) -> List[str]:
    """Empirically validate Proposition 3 over a behavior set.

    Proposition 3 is a *validity-level* rule: from ``⊨ E ∧ R ⇒ M`` and
    ``⊨ R ⇒ E ⊥ M`` conclude ``⊨ E+v ∧ R ⇒ M``.  The hypotheses must hold
    on **every** behavior before the conclusion is owed on any -- a
    per-behavior reading of the rule is simply false (a behavior can
    vacuously satisfy both hypotheses because ``E`` fails on it as a whole,
    while ``E+v`` still holds).  So this validator makes two passes:

    1. check both hypotheses on every supplied lasso; if either fails
       anywhere, report ``["hypotheses not valid over the sample: ..."]``
       -- the proposition is then not applicable, not refuted;
    2. otherwise check the conclusion on every lasso and report genuine
       counterexamples to the proposition (always empty, if the paper and
       this implementation are right).
    """
    env_tf, sys_tf, rely_tf = to_tf(env), to_tf(sys_formula), to_tf(rely)
    lasso_list = list(lassos)
    for behavior in lasso_list:
        ctx = EvalContext(behavior, universe)
        hyp1 = (not (ctx.eval(env_tf, 0) and ctx.eval(rely_tf, 0))) or \
            ctx.eval(sys_tf, 0)
        hyp2 = (not ctx.eval(rely_tf, 0)) or \
            ctx.eval(Orthogonal(env_tf, sys_tf), 0)
        if not (hyp1 and hyp2):
            return [
                "hypotheses not valid over the sample: "
                f"{'E ∧ R ⇒ M' if not hyp1 else 'R ⇒ E ⊥ M'} fails on "
                f"{behavior!r}"
            ]
    problems = []
    for behavior in lasso_list:
        ctx = EvalContext(behavior, universe)
        lhs = ctx.eval(Plus(env_tf, tuple(plus_sub)), 0) and ctx.eval(rely_tf, 0)
        if lhs and not ctx.eval(sys_tf, 0):
            problems.append(f"Proposition 3 conclusion fails on {behavior!r}")
    return problems


# ---------------------------------------------------------------------------
# Proposition 4: orthogonality of interleaving component specifications
# ---------------------------------------------------------------------------

def proposition4(
    env_owned: Sequence[str],
    sys_owned: Sequence[str],
    disjoint: DisjointSpec,
    init_disjunction_states: Optional[Iterable[State]] = None,
    env_init: Optional[Expr] = None,
    sys_init: Optional[Expr] = None,
) -> PropositionReport:
    """Check Proposition 4's hypotheses for concrete component interfaces.

    * ``Disjoint(e, m)`` must be implied by the provided interleaving
      condition: every pair (a ∈ e, b ∈ m) must be separated by some
      declared tuple pair;
    * the initial disjunction ``(∃x : Init_E) ∨ (∃y : Init_M)`` is checked
      on the supplied states (typically the product system's initial
      states, with hidden values supplied by the refinement mapping).
    """
    details: List[str] = []
    ok = True
    if disjoint.separates_tuples(env_owned, sys_owned):
        details.append(
            f"Disjoint(e, m) for e={tuple(env_owned)}, m={tuple(sys_owned)} "
            f"follows from {disjoint!r}"
        )
    else:
        ok = False
        bad = [
            (a, b)
            for a in env_owned
            for b in sys_owned
            if not disjoint.separates(a, b)
        ]
        details.append(
            f"Disjoint(e, m) NOT implied: unseparated pairs {bad[:5]}"
        )
    if init_disjunction_states is not None:
        if env_init is None and sys_init is None:
            raise ValueError("give env_init and/or sys_init to check the "
                             "initial disjunction")
        for state in init_disjunction_states:
            holds_env = bool(env_init.eval_state(state)) if env_init is not None else False
            holds_sys = bool(sys_init.eval_state(state)) if sys_init is not None else False
            if not (holds_env or holds_sys):
                ok = False
                details.append(
                    f"initial disjunction Init_E ∨ Init_M fails at {state!r}"
                )
                break
        else:
            details.append("initial disjunction Init_E ∨ Init_M holds at all "
                           "supplied initial states")
    return PropositionReport("Proposition 4", ok, details)


def validate_proposition4(
    env_closure: TemporalFormula,
    sys_closure: TemporalFormula,
    env_init: TemporalFormula,
    sys_init: TemporalFormula,
    disjoint: DisjointSpec,
    lassos: Iterable[Lasso],
    universe: Universe,
) -> List[str]:
    """Empirically validate Proposition 4's conclusion on behaviors:
    wherever the initial disjunction and the Disjoint condition hold, the
    closures must be orthogonal."""
    problems = []
    disjoint_tf = disjoint.formula()
    for lasso in lassos:
        ctx = EvalContext(lasso, universe)
        init_ok = ctx.eval(to_tf(env_init), 0) or ctx.eval(to_tf(sys_init), 0)
        if not init_ok or not ctx.eval(disjoint_tf, 0):
            continue
        if not ctx.eval(Orthogonal(env_closure, sys_closure), 0):
            problems.append(f"Proposition 4 conclusion fails on {lasso!r}")
    return problems


# ---------------------------------------------------------------------------
# Section 4.2's identity: (E ⊳ M) = (E −▷ M) ∧ (E ⊥ M)
# ---------------------------------------------------------------------------

def validate_guarantee_identity(
    env: TemporalFormula,
    sys_formula: TemporalFormula,
    lassos: Iterable[Lasso],
    universe: Universe,
) -> List[str]:
    """Check ``(E ⊳ M) = (E −▷ M) ∧ (E ⊥ M)`` on behaviors (section 4.2)."""
    from .operators import AsLongAs

    problems = []
    for lasso in lassos:
        ctx = EvalContext(lasso, universe)
        lhs = ctx.eval(Guarantees(env, sys_formula), 0)
        rhs = ctx.eval(AsLongAs(env, sys_formula), 0) and ctx.eval(
            Orthogonal(env, sys_formula), 0
        )
        if lhs != rhs:
            problems.append(
                f"identity fails on {lasso!r}: ⊳={lhs}, (−▷ ∧ ⊥)={rhs}"
            )
    return problems
