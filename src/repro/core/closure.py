"""Syntactic closure computation (Propositions 1 and 2 of the paper).

Proposition 1: if ``L`` is a conjunction of ``WF``/``SF`` formulas whose
actions imply ``N``, then ``C(Init ∧ □[N]_v ∧ L) = Init ∧ □[N]_v``.
Proposition 2 pushes closures under ``∃`` so that hypotheses about hidden
variables reduce to hypotheses about visible ones.

:func:`closure_of_spec` / :func:`closure_of_component` implement the
syntactic computation, *checking* Proposition 1's hypothesis (each
fairness action must imply the next-state action -- structurally, or
semantically via :func:`repro.core.propositions.check_subaction`).

:func:`closure_formula` computes the closure of a temporal formula in the
canonical fragment by dropping fairness conjuncts; it is the formula-level
twin of :func:`closure_of_spec`.  The semantic referee for all of this is
:class:`repro.core.operators.Closure`, and the agreement of the two is
property-tested (PROP1-4 in DESIGN.md).
"""

from __future__ import annotations

from typing import List

from ..spec import Component, Spec
from ..temporal.formulas import (
    ActionBox,
    Always,
    Hide,
    SF,
    StatePred,
    TAnd,
    TemporalFormula,
    WF,
    to_tf,
)
from .operators import Closure


class ClosureHypothesisError(Exception):
    """Proposition 1's hypothesis could not be established."""


def closure_of_spec(spec: Spec, strict: bool = True) -> Spec:
    """``C(spec)`` by Proposition 1: drop the fairness conjuncts.

    With ``strict`` (default), the structural hypothesis -- every fairness
    action is a disjunct of N -- is enforced; pass ``strict=False`` if the
    hypothesis was established some other way (e.g. semantically via
    :func:`repro.core.propositions.check_subaction`).
    """
    if strict:
        problems = spec.validate_fairness_subactions()
        if problems:
            raise ClosureHypothesisError(
                "Proposition 1 hypothesis not established:\n  " + "\n  ".join(problems)
            )
    return spec.without_fairness()


def closure_of_component(component: Component, strict: bool = True) -> TemporalFormula:
    """``C(∃x : spec)`` = ``∃x : C(spec)`` by Propositions 1 and 2."""
    safety = closure_of_spec(component.spec, strict=strict)
    inner = safety.safety_formula()
    if not component.internals:
        return inner
    bindings = {x: component.universe.domain(x) for x in component.internals}
    return Hide(bindings, inner)


def closure_formula(formula: object, strict: bool = True) -> TemporalFormula:
    """Closure of a temporal formula in the canonical fragment.

    * safety nodes (``StatePred``, ``□[A]_v``, ``□P``) are their own
      closure;
    * ``WF``/``SF`` conjuncts are dropped (Proposition 1; with ``strict``
      they may only appear as conjuncts, where dropping is justified);
    * ``∃`` commutes with ``C`` (Proposition 2);
    * anything else is wrapped in the semantic :class:`Closure` node.
    """
    tf = to_tf(formula)
    if isinstance(tf, (StatePred, ActionBox)):
        return tf
    if isinstance(tf, Always) and isinstance(tf.body, StatePred):
        return tf
    if isinstance(tf, TAnd):
        kept: List[TemporalFormula] = []
        for part in tf.parts:
            if isinstance(part, (WF, SF)):
                continue  # Proposition 1
            kept.append(closure_formula(part, strict=strict))
        if not kept:
            return StatePred(True)
        return TAnd(*kept)
    if isinstance(tf, Hide):
        return Hide(tf.bindings, closure_formula(tf.body, strict=strict))
    if isinstance(tf, (WF, SF)):
        # a bare fairness property: its closure is TRUE (any finite behavior
        # extends to a fair one)
        return StatePred(True)
    if isinstance(tf, Closure):
        return tf
    if strict:
        raise ClosureHypothesisError(
            f"no syntactic closure rule for {tf!r}; use the semantic "
            "Closure node or rewrite the formula in canonical form"
        )
    return Closure(tf)


def is_canonical_safety(formula: object) -> bool:
    """Is the formula already a (possibly hidden) canonical safety formula?"""
    tf = to_tf(formula)
    if isinstance(tf, Hide):
        return is_canonical_safety(tf.body)
    if isinstance(tf, (StatePred, ActionBox)):
        return True
    if isinstance(tf, Always):
        return isinstance(tf.body, StatePred)
    if isinstance(tf, TAnd):
        return all(is_canonical_safety(part) for part in tf.parts)
    return False
