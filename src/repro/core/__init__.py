"""Open systems in TLA: the paper's primary contribution.

* :mod:`~repro.core.operators` -- the semantic operators ``C``, ``⊳``,
  ``−▷``, ``+v``, ``⊥``;
* :mod:`~repro.core.closure` -- syntactic closure computation;
* :mod:`~repro.core.disjoint` -- the ``Disjoint`` interleaving condition;
* :mod:`~repro.core.propositions` -- Propositions 1-4 as executable checks;
* :mod:`~repro.core.agspec` -- assumption/guarantee specifications;
* :mod:`~repro.core.composition` -- the Composition Theorem engine;
* :mod:`~repro.core.semantic_check` -- brute-force behavior-universe checks.
"""

from .operators import AsLongAs, Closure, Guarantees, Orthogonal, Plus, guarantees
from .closure import (
    ClosureHypothesisError,
    closure_formula,
    closure_of_component,
    closure_of_spec,
    is_canonical_safety,
)
from .disjoint import DisjointSpec
from .propositions import (
    PropositionReport,
    check_subaction,
    proposition1,
    proposition2,
    proposition2_of_components,
    proposition3,
    proposition4,
    validate_guarantee_identity,
    validate_proposition1,
    validate_proposition3,
    validate_proposition4,
)
from .agspec import AGSpec
from .certificate import Certificate, Obligation
from .composition import CompositionTheorem, compose, refinement_corollary
from .semantic_check import (
    behavior_count,
    brute_force_equivalence,
    brute_force_implication,
)

__all__ = [
    "AsLongAs",
    "Closure",
    "Guarantees",
    "Orthogonal",
    "Plus",
    "guarantees",
    "ClosureHypothesisError",
    "closure_formula",
    "closure_of_component",
    "closure_of_spec",
    "is_canonical_safety",
    "DisjointSpec",
    "PropositionReport",
    "check_subaction",
    "proposition1",
    "proposition2",
    "proposition2_of_components",
    "proposition3",
    "proposition4",
    "validate_guarantee_identity",
    "validate_proposition1",
    "validate_proposition3",
    "validate_proposition4",
    "AGSpec",
    "Certificate",
    "Obligation",
    "CompositionTheorem",
    "compose",
    "refinement_corollary",
    "behavior_count",
    "brute_force_equivalence",
    "brute_force_implication",
]
