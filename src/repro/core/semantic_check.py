"""Brute-force semantic checking of A/G implications over behavior universes.

The Composition Theorem exists because checking
``⋀_j (E_j ⊳ M_j) ⇒ (E ⊳ M)`` *directly* means quantifying over **all**
behaviors of the open universe -- not just the behaviors of any particular
transition system, since an open system's environment can do anything.

This module implements that direct check anyway, by enumerating every
lasso over the full state universe up to a stem/loop bound.  Two uses:

* **validating the theorem**: on tiny instances (the paper's Figure 1
  examples fit), the brute-force verdict must agree with the engine's --
  and for the liveness variant it produces the exact "both processes leave
  c and d unchanged" counterexample the paper describes;
* **the ABL-DIRECT ablation** (DESIGN.md): measuring how quickly the
  direct check explodes compared to the theorem route is the quantitative
  content of the paper's closing claim that the theorem "makes reasoning
  about open systems almost as easy as reasoning about complete ones".

The check is exact for the enumerated behaviors and bounded-complete
overall: a "verified" verdict means *no counterexample with stem ≤
max_stem and loop ≤ max_loop*.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..checker.results import CheckResult, Counterexample
from ..kernel.behavior import all_lassos
from ..kernel.state import Universe
from ..temporal.formulas import TemporalFormula, to_tf
from ..temporal.semantics import EvalContext


def brute_force_implication(
    premises: Sequence[object],
    conclusion: object,
    universe: Universe,
    max_stem: int = 2,
    max_loop: int = 2,
    name: str = "brute-force ⇒",
    max_behaviors: Optional[int] = None,
) -> CheckResult:
    """Check ``⋀ premises ⇒ conclusion`` over every lasso of the universe.

    Returns a failing :class:`CheckResult` carrying the first
    counterexample lasso found, or a passing one with the number of
    behaviors examined in ``stats["behaviors"]``.
    """
    premise_tfs: List[TemporalFormula] = [to_tf(p) for p in premises]
    conclusion_tf = to_tf(conclusion)
    states = list(universe.states())
    examined = 0
    for lasso in all_lassos(states, max_stem, max_loop):
        examined += 1
        if max_behaviors is not None and examined > max_behaviors:
            return CheckResult(
                name,
                ok=True,
                stats={"behaviors": examined - 1, "states": len(states)},
                notes=[f"stopped early at max_behaviors={max_behaviors}"],
            )
        ctx = EvalContext(lasso, universe)
        if not all(ctx.eval(tf, 0) for tf in premise_tfs):
            continue
        if not ctx.eval(conclusion_tf, 0):
            return CheckResult(
                name,
                ok=False,
                counterexample=Counterexample(
                    lasso,
                    "behavior satisfies every premise but not the conclusion",
                ),
                stats={"behaviors": examined, "states": len(states)},
            )
    return CheckResult(
        name,
        ok=True,
        stats={"behaviors": examined, "states": len(states)},
        notes=[f"bounded-complete up to stem={max_stem}, loop={max_loop}"],
    )


def brute_force_equivalence(
    lhs: object,
    rhs: object,
    universe: Universe,
    max_stem: int = 2,
    max_loop: int = 2,
    name: str = "brute-force ⇔",
) -> CheckResult:
    """Check that two formulas agree on every lasso of the universe."""
    lhs_tf, rhs_tf = to_tf(lhs), to_tf(rhs)
    states = list(universe.states())
    examined = 0
    for lasso in all_lassos(states, max_stem, max_loop):
        examined += 1
        ctx = EvalContext(lasso, universe)
        left, right = ctx.eval(lhs_tf, 0), ctx.eval(rhs_tf, 0)
        if left != right:
            return CheckResult(
                name,
                ok=False,
                counterexample=Counterexample(
                    lasso, f"lhs={left} but rhs={right}"
                ),
                stats={"behaviors": examined},
            )
    return CheckResult(name, ok=True, stats={"behaviors": examined})


def behavior_count(universe: Universe, max_stem: int, max_loop: int) -> int:
    """Number of lassos the brute-force check enumerates (closed form)."""
    n = universe.state_count()
    total = 0
    for stem in range(0, max_stem + 1):
        for loop in range(1, max_loop + 1):
            total += n ** (stem + loop)
    return total
