"""Proof obligations and certificates for the Composition Theorem engine.

Discharging the theorem's hypotheses produces a :class:`Certificate`: a
structured record of every obligation (which hypothesis, which proposition
applications justified the reduction, which model-checking run discharged
it, with what statistics).  ``Certificate.render()`` prints a report whose
shape mirrors the paper's Figure 9 proof sketch.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..checker.results import CheckResult
from .propositions import PropositionReport


class Obligation:
    """One hypothesis instance of the Composition Theorem."""

    __slots__ = ("oid", "description", "rules", "result", "skipped_reason")

    def __init__(
        self,
        oid: str,
        description: str,
        rules: Sequence[PropositionReport] = (),
        result: Optional[CheckResult] = None,
        skipped_reason: Optional[str] = None,
    ):
        self.oid = oid
        self.description = description
        self.rules = list(rules)
        self.result = result
        self.skipped_reason = skipped_reason

    @property
    def ok(self) -> bool:
        if self.skipped_reason is not None:
            return True  # discharged trivially (e.g. assumption is TRUE)
        if any(not rule.ok for rule in self.rules):
            return False
        return self.result is not None and self.result.ok

    def render(self) -> str:
        lines = [f"{self.oid}. {self.description}"]
        if self.skipped_reason is not None:
            lines.append(f"   discharged trivially: {self.skipped_reason}")
        for rule in self.rules:
            lines.extend("   " + text for text in rule.render().splitlines())
        if self.result is not None:
            lines.append(f"   {self.result.summary()}")
            if not self.result.ok and self.result.counterexample is not None:
                lines.extend(
                    "   | " + text
                    for text in self.result.counterexample.render().splitlines()
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Obligation({self.oid!r}, ok={self.ok})"


class Certificate:
    """The full record of a Composition Theorem application."""

    __slots__ = ("title", "conclusion", "obligations", "notes")

    def __init__(self, title: str, conclusion: str):
        self.title = title
        self.conclusion = conclusion
        self.obligations: List[Obligation] = []
        self.notes: List[str] = []

    def add(self, obligation: Obligation) -> Obligation:
        self.obligations.append(obligation)
        return obligation

    @property
    def ok(self) -> bool:
        # an empty certificate proves nothing
        return bool(self.obligations) and all(ob.ok for ob in self.obligations)

    def __bool__(self) -> bool:
        return self.ok

    def expect_ok(self) -> "Certificate":
        if not self.ok:
            raise AssertionError(f"composition proof failed:\n{self.render()}")
        return self

    def failed_obligations(self) -> List[Obligation]:
        return [ob for ob in self.obligations if not ob.ok]

    def total_states_explored(self) -> int:
        return sum(
            ob.result.stats.get("states", 0)
            for ob in self.obligations
            if ob.result is not None
        )

    def render(self) -> str:
        status = "PROVED" if self.ok else "NOT PROVED"
        lines = [
            f"=== Composition Theorem: {self.title} [{status}] ===",
            f"conclusion: {self.conclusion}",
        ]
        for note in self.notes:
            lines.append(f"note: {note}")
        for ob in self.obligations:
            lines.append(ob.render())
        if self.ok:
            lines.append(
                "Q.E.D.  (by the Composition Theorem, from the obligations above)"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Certificate({self.title!r}, ok={self.ok}, obligations={len(self.obligations)})"
