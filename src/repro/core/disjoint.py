"""The ``Disjoint`` interleaving condition (paper, section 2.3).

``Disjoint(v_1, ..., v_n)`` asserts that no two of the variable tuples
``v_i`` change in the same step:

    ``Disjoint(v_1, ..., v_n) ≜ ⋀_{i≠j} □[(v_i' = v_i) ∨ (v_j' = v_j)]_{<v_i, v_j>}``

It is the formula ``G`` under which the paper proves conditional
implementation of interleaving compositions (equation (4) and Figure 9).
Besides the formula itself, :class:`DisjointSpec` keeps the tuple structure
so that Proposition 4's hypothesis ``Disjoint(e, m)`` can be discharged
*syntactically*: a step changing ``a ∈ e`` and ``b ∈ m`` simultaneously is
already forbidden whenever some declared pair separates ``a`` from ``b``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..kernel.action import unchanged
from ..kernel.expr import Or
from ..kernel.state import Universe
from ..spec import Spec, spec_of_formula
from ..temporal.formulas import ActionBox, TAnd, TemporalFormula


class DisjointSpec:
    """``Disjoint(v_1, ..., v_n)`` with its tuple structure retained."""

    __slots__ = ("tuples",)

    def __init__(self, tuples: Sequence[Sequence[str]]):
        self.tuples: Tuple[Tuple[str, ...], ...] = tuple(tuple(t) for t in tuples)
        if len(self.tuples) < 2:
            raise ValueError("Disjoint needs at least two variable tuples")
        seen = set()
        for t in self.tuples:
            if not t:
                raise ValueError("Disjoint tuples must be nonempty")
            overlap = seen & set(t)
            if overlap:
                raise ValueError(f"Disjoint tuples overlap on {sorted(overlap)}")
            seen |= set(t)

    def formula(self) -> TemporalFormula:
        parts: List[TemporalFormula] = []
        for i in range(len(self.tuples)):
            for j in range(i + 1, len(self.tuples)):
                vi, vj = self.tuples[i], self.tuples[j]
                parts.append(
                    ActionBox(Or(unchanged(vi), unchanged(vj)), vi + vj)
                )
        return TAnd(*parts)

    def spec(self, universe: Universe, name: str = "Disjoint") -> Spec:
        """The condition as a canonical Spec (Init = TRUE), so it can play
        ``M_1 = G`` in the Composition Theorem."""
        return spec_of_formula(self.formula(), universe, name=name)

    def separates(self, var_a: str, var_b: str) -> bool:
        """Is a simultaneous change of *var_a* and *var_b* forbidden?"""
        idx_a = idx_b = None
        for idx, t in enumerate(self.tuples):
            if var_a in t:
                idx_a = idx
            if var_b in t:
                idx_b = idx
        return idx_a is not None and idx_b is not None and idx_a != idx_b

    def separates_tuples(self, tuple_e: Iterable[str], tuple_m: Iterable[str]) -> bool:
        """Does this condition imply ``Disjoint(e, m)``?  True iff every
        pair (a ∈ e, b ∈ m) is separated."""
        e_vars = list(tuple_e)
        m_vars = list(tuple_m)
        return all(self.separates(a, b) for a in e_vars for b in m_vars)

    def __repr__(self) -> str:
        inner = ", ".join("<" + ",".join(t) + ">" for t in self.tuples)
        return f"Disjoint({inner})"
