"""repro: "Open Systems in TLA" (Abadi & Lamport, PODC 1994) in Python.

A complete, executable reproduction of the paper:

* :mod:`repro.kernel` -- TLA's semantic base: states, behaviors (as
  lassos), state functions, actions, ``[A]_v``, ``ENABLED``;
* :mod:`repro.temporal` -- temporal formulas with exact lasso semantics
  and the finite-behavior (prefix) satisfaction the paper's safety
  machinery rests on;
* :mod:`repro.spec` -- canonical specifications ``∃x : Init ∧ □[N]_v ∧ L``
  and components (section 2.2);
* :mod:`repro.checker` -- an explicit-state model checker (invariants,
  refinement mappings, fairness-aware liveness) that plays the role of the
  paper's hand proofs on finite instances;
* :mod:`repro.core` -- **the paper's contribution**: the operators ``C``,
  ``⊳``, ``−▷``, ``+v``, ``⊥``; Propositions 1-4 as executable checks;
  assumption/guarantee specifications; and the Composition Theorem as a
  certificate-producing proof engine;
* :mod:`repro.systems` -- the paper's example systems (Figure 1 circuit,
  handshake channels, the queue and double queue of the appendix) plus a
  mutual-exclusion arbiter;
* :mod:`repro.parser` -- a mini-TLA text front end;
* :mod:`repro.fmt` -- TLA-style pretty printing.

Quick start (the paper's Figure 1, safety version)::

    from repro.systems import circuit
    from repro.core import compose

    ag_c, ag_d = circuit.safety_agspecs()
    cert = compose([ag_c, ag_d], circuit.safety_goal())
    print(cert.render())        # a Figure-9-style proof certificate
    assert cert.ok
"""

__version__ = "1.0.0"

from .kernel import (  # noqa: F401
    BIT,
    BOOLEAN,
    FiniteBehavior,
    FiniteDomain,
    Lasso,
    State,
    TupleDomain,
    Universe,
    Var,
    interval,
)
from .spec import Component, Fairness, Spec, conjoin, strong_fairness, weak_fairness  # noqa: F401
from .temporal import holds  # noqa: F401
from .core import (  # noqa: F401
    AGSpec,
    Certificate,
    CompositionTheorem,
    DisjointSpec,
    Guarantees,
    brute_force_implication,
    compose,
)
from .checker import (  # noqa: F401
    CheckResult,
    RefinementMapping,
    check_invariant,
    check_safety_refinement,
    check_temporal_implication,
    explore,
)

__all__ = [
    "__version__",
    "BIT",
    "BOOLEAN",
    "FiniteBehavior",
    "FiniteDomain",
    "Lasso",
    "State",
    "TupleDomain",
    "Universe",
    "Var",
    "interval",
    "Component",
    "Fairness",
    "Spec",
    "conjoin",
    "strong_fairness",
    "weak_fairness",
    "holds",
    "AGSpec",
    "Certificate",
    "CompositionTheorem",
    "DisjointSpec",
    "Guarantees",
    "brute_force_implication",
    "compose",
    "CheckResult",
    "RefinementMapping",
    "check_invariant",
    "check_safety_refinement",
    "check_temporal_implication",
    "explore",
]
