"""Mini-TLA modules: parse, elaborate, and connect to the checker.

A module source looks like::

    MODULE Counter
    CONSTANT N = 3
    VARIABLE x \\in 0..2

    Init == x = 0
    Next == x' = (x + 1) % N
    Spec == Init /\\ [][Next]_<<x>> /\\ WF_<<x>>(Next)
    AlwaysSmall == [](x < 3)

:func:`load_module` returns a :class:`TLAModule`; ``module.spec("Spec")``
pattern-matches the definition into a canonical
:class:`~repro.spec.Spec` ready for :func:`repro.checker.explore`, and
``module.formula("AlwaysSmall")`` gives a temporal formula for checking.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..kernel.expr import Const, Expr
from ..kernel.state import Universe
from ..kernel.values import Domain
from ..spec import Spec, spec_of_formula
from ..temporal.formulas import TemporalFormula, to_tf
from .elaborate import Context, ElaborationError, elaborate, elaborate_domain
from .parser import parse_module_text


class TLAModule:
    """An elaborated mini-TLA module."""

    def __init__(
        self,
        name: str,
        constants: Dict[str, object],
        variables: Dict[str, Domain],
        definitions: Dict[str, object],
    ):
        self.name = name
        self.constants = constants
        self.variables = variables
        self.definitions = definitions
        self.universe = Universe(variables)

    def __contains__(self, name: str) -> bool:
        return name in self.definitions

    def get(self, name: str) -> object:
        try:
            return self.definitions[name]
        except KeyError:
            raise KeyError(
                f"module {self.name!r} has no definition {name!r} "
                f"(defined: {', '.join(sorted(self.definitions)) or 'none'})"
            ) from None

    def expr(self, name: str) -> Expr:
        value = self.get(name)
        if not isinstance(value, Expr):
            raise TypeError(f"{name!r} is not an expression: {value!r}")
        return value

    def formula(self, name: str) -> TemporalFormula:
        value = self.get(name)
        if isinstance(value, Domain):
            raise TypeError(f"{name!r} is a domain, not a formula")
        return to_tf(value)

    def spec(self, name: str = "Spec", label: Optional[str] = None) -> Spec:
        """Normalise the named definition into a canonical Spec."""
        return spec_of_formula(
            self.formula(name), self.universe,
            name=label or f"{self.name}!{name}",
        )

    def __repr__(self) -> str:
        return (f"TLAModule({self.name!r}, variables={sorted(self.variables)}, "
                f"definitions={sorted(self.definitions)})")


def load_module(text: str) -> TLAModule:
    """Parse and elaborate a mini-TLA module from source text."""
    _, name, const_nodes, var_nodes, def_nodes = parse_module_text(text)

    ctx = Context()
    constants: Dict[str, object] = {}
    for cname, cnode in const_nodes:
        value = elaborate(cnode, ctx)
        if not isinstance(value, Const):
            raise ElaborationError(
                f"constant {cname!r} must be a literal value, got {value!r}"
            )
        constants[cname] = value.value
        ctx.constants[cname] = value.value

    variables: Dict[str, Domain] = {}
    for vname, dnode in var_nodes:
        variables[vname] = elaborate_domain(dnode, ctx)
        ctx.domains.setdefault(vname + "_domain", variables[vname])

    definitions: Dict[str, object] = {}
    for dname, dnode in def_nodes:
        value = elaborate(dnode, ctx)
        definitions[dname] = value
        ctx.definitions[dname] = value

    return TLAModule(name, constants, variables, definitions)
