"""Recursive-descent parser for the mini-TLA surface syntax.

Produces a *surface AST* of plain tuples ``(kind, ...)``; the elaborator
(:mod:`repro.parser.elaborate`) turns surface trees into kernel
expressions, temporal formulas, and domains.

Grammar sketch (precedence from loosest to tightest)::

    equiv    :=  implies ( "<=>" implies )*
    implies  :=  leadsto ( "=>" implies )?          (right associative)
    leadsto  :=  disj ( "~>" disj )*
    disj     :=  conj ( "\\/" conj )*
    conj     :=  cmp  ( "/\\" cmp  )*
    cmp      :=  range ( ("=" | "#" | "<" | "<=" | ">" | ">=" | "\\in") range )?
    range    :=  sum ( ".." sum )?
    sum      :=  term ( ("+" | "-" | "\\o") term )*
    term     :=  unary ( ("*" | "%") unary )*
    unary    :=  ("~" | "-" | "[]" | "<>") unary | postfix
    postfix  :=  atom "'"*
    atom     :=  NUMBER | STRING | TRUE | FALSE | IDENT | "(" expr ")"
              |  "<<" expr, ... ">>"  |  "{" literal, ... "}"
              |  IDENT "(" expr, ... ")"              (builtin/defined call)
              |  "IF" expr "THEN" expr "ELSE" expr
              |  "[" expr "]_" subscript              (within "[]" only)
              |  "UNCHANGED" subscript
              |  ("WF"|"SF") "_" subscript "(" expr ")"
              |  ("\\E" | "\\A") IDENT "\\in" expr ":" expr
              |  "Seq" "(" expr "," expr ")"          (domain expression)
              |  "BOOLEAN"

    subscript := IDENT | "<<" IDENT, ... ">>"
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .lexer import Token, tokenize


class ParseError(Exception):
    def __init__(self, message: str, token: Token):
        super().__init__(
            f"{message} at line {token.line}, column {token.column} "
            f"(found {token.kind} {token.text!r})"
        )
        self.token = token


Surface = tuple  # (kind, ...) nodes


class Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def accept(self, kind: str) -> Optional[Token]:
        if self.peek().kind == kind:
            return self.advance()
        return None

    def expect(self, kind: str, context: str = "") -> Token:
        token = self.peek()
        if token.kind != kind:
            where = f" in {context}" if context else ""
            raise ParseError(f"expected {kind!r}{where}", token)
        return self.advance()

    def at_end(self) -> bool:
        return self.peek().kind == "EOF"

    # -- expressions ------------------------------------------------------------

    def parse_expression(self) -> Surface:
        return self._equiv()

    def _equiv(self) -> Surface:
        node = self._implies()
        while self.accept("<=>"):
            node = ("equiv", node, self._implies())
        return node

    def _implies(self) -> Surface:
        node = self._leadsto()
        if self.accept("=>"):
            return ("implies", node, self._implies())
        return node

    def _leadsto(self) -> Surface:
        node = self._disj()
        while self.accept("~>"):
            node = ("leadsto", node, self._disj())
        return node

    def _disj(self) -> Surface:
        parts = [self._conj()]
        while self.accept("\\/"):
            parts.append(self._conj())
        return parts[0] if len(parts) == 1 else ("or", parts)

    def _conj(self) -> Surface:
        parts = [self._cmp()]
        while self.accept("/\\"):
            parts.append(self._cmp())
        return parts[0] if len(parts) == 1 else ("and", parts)

    _CMP_OPS = ("=", "#", "<", "<=", ">", ">=", "\\in")

    def _cmp(self) -> Surface:
        node = self._range()
        kind = self.peek().kind
        if kind in self._CMP_OPS:
            self.advance()
            rhs = self._range()
            if kind == "\\in":
                return ("in", node, rhs)
            return ("binop", kind, node, rhs)
        return node

    def _range(self) -> Surface:
        node = self._sum()
        if self.accept(".."):
            return ("range", node, self._sum())
        return node

    def _sum(self) -> Surface:
        node = self._term()
        while True:
            if self.accept("+"):
                node = ("binop", "+", node, self._term())
            elif self.accept("-"):
                node = ("binop", "-", node, self._term())
            elif self.accept("\\o"):
                node = ("binop", "\\o", node, self._term())
            else:
                return node

    def _term(self) -> Surface:
        node = self._unary()
        while True:
            if self.accept("*"):
                node = ("binop", "*", node, self._unary())
            elif self.accept("%"):
                node = ("binop", "%", node, self._unary())
            else:
                return node

    def _unary(self) -> Surface:
        if self.accept("~"):
            return ("not", self._unary())
        if self.accept("-"):
            return ("binop", "-", ("num", 0), self._unary())
        if self.accept("[]"):
            return self._after_always()
        if self.accept("<>"):
            return self._after_eventually()
        return self._postfix()

    def _after_always(self) -> Surface:
        # [][A]_v  or  []F
        if self.peek().kind == "[":
            self.advance()
            action = self.parse_expression()
            self.expect("]_", "[][A]_v")
            sub = self._subscript()
            return ("actionbox", action, sub)
        return ("always", self._unary())

    def _after_eventually(self) -> Surface:
        # <><<A>>_v  or  <>F  (backtrack to tell the two apart)
        if self.peek().kind == "<<":
            saved = self.pos
            self.advance()
            try:
                action = self.parse_expression()
                self.expect(">>", "<><<A>>_v")
                self.expect("_", "<><<A>>_v")
                sub = self._subscript()
                return ("actiondiamond", action, sub)
            except ParseError:
                self.pos = saved
        return ("eventually", self._unary())

    def _postfix(self) -> Surface:
        node = self._atom()
        while self.accept("'"):
            node = ("prime", node)
        return node

    def _subscript(self) -> Tuple[str, ...]:
        if self.peek().kind == "IDENT":
            return (self.advance().text,)
        self.expect("<<", "subscript tuple")
        names: List[str] = [self.expect("IDENT", "subscript tuple").text]
        while self.accept(","):
            names.append(self.expect("IDENT", "subscript tuple").text)
        self.expect(">>", "subscript tuple")
        return tuple(names)

    def _atom(self) -> Surface:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            return ("num", int(token.text))
        if token.kind == "STRING":
            self.advance()
            return ("str", token.text)
        if token.kind == "TRUE":
            self.advance()
            return ("bool", True)
        if token.kind == "FALSE":
            self.advance()
            return ("bool", False)
        if token.kind == "BOOLEAN":
            self.advance()
            return ("boolean_domain",)
        if token.kind == "Seq":
            self.advance()
            self.expect("(", "Seq(D, maxlen)")
            base = self.parse_expression()
            self.expect(",", "Seq(D, maxlen)")
            maxlen = self.parse_expression()
            self.expect(")", "Seq(D, maxlen)")
            return ("seq_domain", base, maxlen)
        if token.kind == "IF":
            self.advance()
            cond = self.parse_expression()
            self.expect("THEN", "IF expression")
            then = self.parse_expression()
            self.expect("ELSE", "IF expression")
            orelse = self.parse_expression()
            return ("ite", cond, then, orelse)
        if token.kind == "UNCHANGED":
            self.advance()
            return ("unchanged", self._subscript())
        if token.kind == "FAIRNESS":
            self.advance()
            sub: Tuple[str, ...]
            if self.peek().kind == "IDENT":
                sub = (self.advance().text,)
            else:
                self.expect("_", "WF_/SF_ subscript")
                sub = self._subscript()
            self.expect("(", "fairness action")
            action = self.parse_expression()
            self.expect(")", "fairness action")
            return ("wf" if token.text == "WF" else "sf", sub, action)
        if token.kind in ("\\E", "\\A"):
            self.advance()
            var = self.expect("IDENT", "bounded quantifier").text
            self.expect("\\in", "bounded quantifier")
            domain = self.parse_expression()
            self.expect(":", "bounded quantifier")
            body = self.parse_expression()
            kind = "exists" if token.kind == "\\E" else "forall"
            return (kind, var, domain, body)
        if token.kind == "IDENT":
            self.advance()
            if self.peek().kind == "(":
                self.advance()
                args: List[Surface] = []
                if self.peek().kind != ")":
                    args.append(self.parse_expression())
                    while self.accept(","):
                        args.append(self.parse_expression())
                self.expect(")", f"arguments of {token.text}")
                return ("call", token.text, args)
            return ("ident", token.text)
        if token.kind == "(":
            self.advance()
            node = self.parse_expression()
            self.expect(")", "parenthesised expression")
            return node
        if token.kind == "<<":
            self.advance()
            elems: List[Surface] = []
            if self.peek().kind != ">>":
                elems.append(self.parse_expression())
                while self.accept(","):
                    elems.append(self.parse_expression())
            self.expect(">>", "tuple")
            return ("tuple", elems)
        if token.kind == "{":
            self.advance()
            elems = []
            if self.peek().kind != "}":
                elems.append(self.parse_expression())
                while self.accept(","):
                    elems.append(self.parse_expression())
            self.expect("}", "set literal")
            return ("set", elems)
        raise ParseError("expected an expression", token)

    # -- module structure ---------------------------------------------------------

    def parse_module(self) -> Surface:
        self.expect("MODULE", "module header")
        name = self.expect("IDENT", "module name").text
        constants: List[Tuple[str, Surface]] = []
        variables: List[Tuple[str, Surface]] = []
        definitions: List[Tuple[str, Surface]] = []
        while not self.at_end():
            token = self.peek()
            if token.kind in ("CONSTANT", "CONSTANTS"):
                self.advance()
                while True:
                    cname = self.expect("IDENT", "constant declaration").text
                    self.expect("=", "constant declaration")
                    constants.append((cname, self.parse_expression()))
                    if not self.accept(","):
                        break
            elif token.kind in ("VARIABLE", "VARIABLES"):
                self.advance()
                while True:
                    vname = self.expect("IDENT", "variable declaration").text
                    if not (self.accept("\\in") or self.accept("IN")):
                        raise ParseError(
                            "variable declarations need a domain: "
                            "VARIABLE x \\in 0..3", self.peek())
                    variables.append((vname, self.parse_expression()))
                    if not self.accept(","):
                        break
            elif token.kind == "IDENT" and self.peek(1).kind == "==":
                dname = self.advance().text
                self.advance()  # ==
                definitions.append((dname, self.parse_expression()))
            else:
                raise ParseError("expected a declaration or definition", token)
        return ("module", name, constants, variables, definitions)


def parse_expression_text(text: str) -> Surface:
    parser = Parser(text)
    node = parser.parse_expression()
    if not parser.at_end():
        raise ParseError("trailing input after expression", parser.peek())
    return node


def parse_module_text(text: str) -> Surface:
    parser = Parser(text)
    return parser.parse_module()
