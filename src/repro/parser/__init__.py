"""Mini-TLA front end: tokenizer, parser, elaborator, modules.

>>> from repro.parser import load_module
>>> mod = load_module('''
... MODULE Counter
... VARIABLE x \\\\in 0..2
... Init == x = 0
... Next == x' = (x + 1) % 3
... Spec == Init /\\\\ [][Next]_<<x>> /\\\\ WF_<<x>>(Next)
... ''')
>>> spec = mod.spec("Spec")
"""

from .lexer import LexError, Token, tokenize
from .parser import ParseError, Parser, parse_expression_text, parse_module_text
from .elaborate import (
    Context,
    ElaborationError,
    elaborate,
    elaborate_domain,
    elaborate_expr,
    elaborate_formula,
)
from .module import TLAModule, load_module


def parse_formula(text: str, ctx: Context = None):
    """Parse and elaborate one formula from source text."""
    return elaborate_formula(parse_expression_text(text), ctx)


def parse_expr(text: str, ctx: Context = None):
    """Parse and elaborate one expression (state function / action)."""
    return elaborate_expr(parse_expression_text(text), ctx)


__all__ = [
    "LexError",
    "Token",
    "tokenize",
    "ParseError",
    "Parser",
    "parse_expression_text",
    "parse_module_text",
    "Context",
    "ElaborationError",
    "elaborate",
    "elaborate_domain",
    "elaborate_expr",
    "elaborate_formula",
    "TLAModule",
    "load_module",
    "parse_formula",
    "parse_expr",
]
