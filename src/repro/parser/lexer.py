"""Tokenizer for the mini-TLA surface syntax.

The grammar (see :mod:`repro.parser.parser`) covers the fragment of TLA+
notation the paper uses: Boolean and arithmetic operators, priming,
``[]``/``<>``/``~>``, ``[][A]_v``, ``WF_v(A)``/``SF_v(A)``, bounded
``\\E``/``\\A``, tuples ``<<...>>``, sequence operators, ``IF/THEN/ELSE``,
and dotted variable names such as ``i.sig``.
"""

from __future__ import annotations

from typing import List, NamedTuple


class Token(NamedTuple):
    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


class LexError(Exception):
    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


KEYWORDS = {
    "MODULE", "CONSTANT", "CONSTANTS", "VARIABLE", "VARIABLES",
    "TRUE", "FALSE", "IF", "THEN", "ELSE", "IN",
    "UNCHANGED", "ENABLED", "BOOLEAN", "Seq",
}

# multi-character symbols, longest first
SYMBOLS = [
    "<=>", "~>", "==", "=>", "/\\", "\\/", "\\E", "\\A", "\\in", "\\o",
    "<<", ">>", "<=", ">=", "..", "[]", "<>", "]_", "#", "'",
    "(", ")", "[", "]", "{", "}", "<", ">", "=", "+", "-", "*", "%",
    ",", ":", "~", "_", ".", "!",
]


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(text)

    def error(msg: str) -> LexError:
        return LexError(msg, line, col)

    while i < n:
        ch = text[i]
        # whitespace
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # comments: \* to end of line, (* ... *) nestable
        if text.startswith("\\*", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if text.startswith("(*", i):
            depth = 1
            j = i + 2
            while j < n and depth:
                if text.startswith("(*", j):
                    depth += 1
                    j += 2
                elif text.startswith("*)", j):
                    depth -= 1
                    j += 2
                else:
                    if text[j] == "\n":
                        line += 1
                        col = 0
                    j += 1
            if depth:
                raise error("unterminated comment")
            col += j - i
            i = j
            continue
        # horizontal rules (---- and ====) used as module delimiters
        if ch in "-=" and text[i:i + 4] in ("----", "===="):
            j = i
            while j < n and text[j] == ch:
                j += 1
            col += j - i
            i = j
            continue
        # numbers
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(Token("NUMBER", text[i:j], line, col))
            col += j - i
            i = j
            continue
        # strings
        if ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\n":
                    raise error("unterminated string")
                j += 1
            if j >= n:
                raise error("unterminated string")
            tokens.append(Token("STRING", text[i + 1:j], line, col))
            col += j - i + 1
            i = j + 1
            continue
        # identifiers (with dotted segments: i.sig)
        if ch.isalpha():
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            # dotted continuation: name '.' name (no spaces)
            while (
                j + 1 < n and text[j] == "." and
                (text[j + 1].isalpha() or text[j + 1] == "_")
            ):
                j += 1
                while j < n and (text[j].isalnum() or text[j] == "_"):
                    j += 1
            word = text[i:j]
            if word.startswith(("WF_", "SF_")):
                # WF_v(A) / SF_<<x, y>>(A): the underscore glues onto the
                # identifier; split the fairness keyword back out
                tokens.append(Token("FAIRNESS", word[:2], line, col))
                rest = word[3:]
                if rest:
                    tokens.append(Token("IDENT", rest, line, col + 3))
                else:
                    tokens.append(Token("_", "_", line, col + 2))
            elif word in KEYWORDS:
                tokens.append(Token(word, word, line, col))
            else:
                tokens.append(Token("IDENT", word, line, col))
            col += j - i
            i = j
            continue
        # symbols
        for sym in SYMBOLS:
            if text.startswith(sym, i):
                tokens.append(Token(sym, sym, line, col))
                col += len(sym)
                i += len(sym)
                break
        else:
            raise error(f"unexpected character {ch!r}")
    tokens.append(Token("EOF", "", line, col))
    return tokens
