"""Elaboration of surface syntax into kernel expressions, temporal
formulas, and domains.

The surface grammar is untyped; elaboration sorts each tree into one of
three *levels*:

* a :class:`~repro.kernel.values.Domain` (range, set literal, ``BOOLEAN``,
  ``Seq``),
* a kernel :class:`~repro.kernel.expr.Expr` (state function or action),
* a :class:`~repro.temporal.formulas.TemporalFormula` (anything under
  ``[]``, ``<>``, ``~>``, ``WF``/``SF``, or ``[][A]_v``).

Boolean connectives are level-polymorphic: a conjunction of expressions is
an ``And`` expression; as soon as one conjunct is temporal, the others are
lifted with :func:`~repro.temporal.formulas.to_tf` and the result is a
``TAnd``.  That mirrors how TLA's own syntax is read.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

from ..kernel.expr import (
    And,
    Arith,
    Cat,
    Cmp,
    Const,
    Eq,
    Exists,
    Expr,
    Fn,
    Forall,
    IfThenElse,
    InSet,
    Not,
    Or,
    TupleExpr,
    Var,
    prime_expr,
)
from ..kernel.action import unchanged
from ..kernel.values import BOOLEAN, Domain, FiniteDomain, TupleDomain, interval
from ..temporal.formulas import (
    ActionBox,
    ActionDiamond,
    Always,
    Eventually,
    LeadsTo,
    SF,
    TAnd,
    TEquiv,
    TImplies,
    TNot,
    TOr,
    TemporalFormula,
    WF,
    to_tf,
)

Level = Union[Domain, Expr, TemporalFormula]


class ElaborationError(Exception):
    pass


class Context:
    """Name resolution for elaboration.

    ``constants`` map names to values; ``definitions`` map names to
    elaborated results (filled in module order, so later definitions can
    use earlier ones); unresolved names become state variables.
    """

    def __init__(
        self,
        constants: Optional[Mapping[str, object]] = None,
        definitions: Optional[Mapping[str, Level]] = None,
        domains: Optional[Mapping[str, Domain]] = None,
    ):
        self.constants: Dict[str, object] = dict(constants or {})
        self.definitions: Dict[str, Level] = dict(definitions or {})
        self.domains: Dict[str, Domain] = dict(domains or {})

    def child_with(self, bound: str) -> "Context":
        ctx = Context(self.constants, self.definitions, self.domains)
        # a quantifier-bound name shadows constants and definitions
        ctx.constants.pop(bound, None)
        ctx.definitions.pop(bound, None)
        return ctx


def elaborate(node, ctx: Optional[Context] = None) -> Level:
    """Elaborate a surface tree to a Domain, Expr, or TemporalFormula."""
    if ctx is None:
        ctx = Context()
    return _elab(node, ctx)


def elaborate_formula(node, ctx: Optional[Context] = None) -> TemporalFormula:
    result = elaborate(node, ctx)
    if isinstance(result, Domain):
        raise ElaborationError(f"expected a formula, got the domain {result!r}")
    return to_tf(result)


def elaborate_expr(node, ctx: Optional[Context] = None) -> Expr:
    result = elaborate(node, ctx)
    if not isinstance(result, Expr):
        raise ElaborationError(f"expected an expression, got {result!r}")
    return result


def elaborate_domain(node, ctx: Optional[Context] = None) -> Domain:
    result = elaborate(node, ctx)
    if isinstance(result, Domain):
        return result
    if isinstance(result, Const):
        raise ElaborationError(
            f"{result!r} is a value, not a domain; write a range a..b, "
            "a set {v, ...}, BOOLEAN, or Seq(D, maxlen)"
        )
    raise ElaborationError(f"expected a domain, got {result!r}")


def _require_expr(value: Level, what: str) -> Expr:
    if isinstance(value, Expr):
        return value
    raise ElaborationError(f"{what} must be an expression, got {value!r}")


def _const_int(value: Level, what: str) -> int:
    if isinstance(value, Const) and isinstance(value.value, int) \
            and not isinstance(value.value, bool):
        return value.value
    raise ElaborationError(f"{what} must be a constant integer, got {value!r}")


_BUILTIN_CALLS = {"Len", "Head", "Tail", "Append", "Nth", "Min", "Max"}

_ARITH = {"+": "+", "-": "-", "*": "*", "%": "%"}
_COMPARE = {"<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _elab(node, ctx: Context) -> Level:
    kind = node[0]

    if kind == "num":
        return Const(node[1])
    if kind == "str":
        return Const(node[1])
    if kind == "bool":
        return Const(node[1])
    if kind == "ident":
        name = node[1]
        if name in ctx.constants:
            return Const(ctx.constants[name])
        if name in ctx.definitions:
            return ctx.definitions[name]
        if name in ctx.domains:
            return ctx.domains[name]
        return Var(name)
    if kind == "prime":
        inner = _require_expr(_elab(node[1], ctx), "a primed operand")
        return prime_expr(inner)

    if kind == "binop":
        op = node[1]
        lhs = _elab(node[2], ctx)
        rhs = _elab(node[3], ctx)
        if op == "=":
            return Eq(_require_expr(lhs, "="), _require_expr(rhs, "="))
        if op == "#":
            return Not(Eq(_require_expr(lhs, "#"), _require_expr(rhs, "#")))
        if op in _COMPARE:
            return Cmp(op, _require_expr(lhs, op), _require_expr(rhs, op))
        if op in _ARITH:
            return Arith(op, _require_expr(lhs, op), _require_expr(rhs, op))
        if op == "\\o":
            return Cat(_require_expr(lhs, "\\o"), _require_expr(rhs, "\\o"))
        raise ElaborationError(f"unknown operator {op!r}")

    if kind == "range":
        low = _const_int(_elab(node[1], ctx), "range bound")
        high = _const_int(_elab(node[2], ctx), "range bound")
        return interval(low, high)
    if kind == "set":
        values = []
        for elem in node[1]:
            value = _elab(elem, ctx)
            if not isinstance(value, Const):
                raise ElaborationError(
                    f"set-literal domains may contain only constants, got {value!r}"
                )
            values.append(value.value)
        return FiniteDomain(values)
    if kind == "boolean_domain":
        return BOOLEAN
    if kind == "seq_domain":
        base = elaborate_domain(node[1], ctx)
        maxlen = _const_int(_elab(node[2], ctx), "Seq maximum length")
        return TupleDomain(base, maxlen)

    if kind == "tuple":
        return TupleExpr(*[_require_expr(_elab(e, ctx), "tuple element")
                           for e in node[1]])
    if kind == "ite":
        cond = _require_expr(_elab(node[1], ctx), "IF condition")
        then = _require_expr(_elab(node[2], ctx), "THEN branch")
        orelse = _require_expr(_elab(node[3], ctx), "ELSE branch")
        return IfThenElse(cond, then, orelse)
    if kind == "call":
        name, args = node[1], node[2]
        if name in _BUILTIN_CALLS:
            return Fn(name, *[_require_expr(_elab(a, ctx), f"{name} argument")
                              for a in args])
        if name in ctx.definitions and not args:
            return ctx.definitions[name]
        raise ElaborationError(
            f"unknown operator {name!r} (builtins: {sorted(_BUILTIN_CALLS)}; "
            "defined names are used without parentheses)"
        )
    if kind == "in":
        elem = _require_expr(_elab(node[1], ctx), "\\in element")
        domain = elaborate_domain(node[2], ctx)
        return InSet(elem, domain)
    if kind == "unchanged":
        return unchanged(node[1])

    if kind in ("exists", "forall"):
        var, domain_node, body_node = node[1], node[2], node[3]
        domain = elaborate_domain(domain_node, ctx)
        body = _require_expr(_elab(body_node, ctx.child_with(var)),
                             "quantifier body")
        cls = Exists if kind == "exists" else Forall
        return cls(var, domain, body)

    # -- Boolean connectives: level-polymorphic ------------------------------
    if kind == "not":
        inner = _elab(node[1], ctx)
        if isinstance(inner, TemporalFormula):
            return TNot(inner)
        return Not(_require_expr(inner, "~"))
    if kind in ("and", "or"):
        parts = [_elab(p, ctx) for p in node[1]]
        if any(isinstance(p, TemporalFormula) for p in parts):
            lifted = [to_tf(p) for p in parts]
            return TAnd(*lifted) if kind == "and" else TOr(*lifted)
        exprs = [_require_expr(p, kind) for p in parts]
        return And(*exprs) if kind == "and" else Or(*exprs)
    if kind in ("implies", "equiv"):
        lhs = _elab(node[1], ctx)
        rhs = _elab(node[2], ctx)
        if isinstance(lhs, TemporalFormula) or isinstance(rhs, TemporalFormula):
            cls = TImplies if kind == "implies" else TEquiv
            return cls(to_tf(lhs), to_tf(rhs))
        from ..kernel.expr import Equiv, Implies

        cls2 = Implies if kind == "implies" else Equiv
        return cls2(_require_expr(lhs, kind), _require_expr(rhs, kind))

    # -- temporal operators ----------------------------------------------------
    if kind == "always":
        return Always(to_tf(_elab(node[1], ctx)))
    if kind == "eventually":
        return Eventually(to_tf(_elab(node[1], ctx)))
    if kind == "leadsto":
        return LeadsTo(to_tf(_elab(node[1], ctx)), to_tf(_elab(node[2], ctx)))
    if kind == "actionbox":
        action = _require_expr(_elab(node[1], ctx), "[][A]_v action")
        return ActionBox(action, node[2])
    if kind == "actiondiamond":
        action = _require_expr(_elab(node[1], ctx), "<><<A>>_v action")
        return ActionDiamond(action, node[2])
    if kind == "wf":
        return WF(node[1], _require_expr(_elab(node[2], ctx), "WF action"))
    if kind == "sf":
        return SF(node[1], _require_expr(_elab(node[2], ctx), "SF action"))

    raise ElaborationError(f"unhandled surface node {node!r}")
