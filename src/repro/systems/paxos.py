"""Single-decree Paxos as open systems, with a lossy/duplicating channel.

The synod protocol of "The Part-Time Parliament", in the per-ballot
formulation the TLA+ ``Paxos`` module checks with TLC: proposer ``b``
runs ballot ``b`` (phase 1a/2a), ``A`` acceptors answer (phase 1b/2b),
and a value is *chosen* once a majority quorum votes for it in one
ballot.

**The message model.**  TLC's Paxos keeps one set-valued ``msgs``
history variable; that single variable's domain is the powerset of all
messages, which no packed codec or Disjoint footprint can work with.
Here the history is exploded into one *sent* bit per possible message --
``s1a_b``, ``s1b_b_a_m_w``, ``s2a_b_v``, ``s2b_b_a_v`` -- owned by the
process that sends it and rising monotonically ``0 -> 1``.  Receiving
reads a bit without consuming it, so **duplication** is inherent; **loss**
is its own component, the channel, which owns a monotone ``lost`` bit
per droppable message and may set it any time after the send, after
which every receive of that message is disabled forever.  The droppable
set is a parameter (``None``, ``"all"``, or explicit message-variable
names), so fault-injection tests can schedule loss however they like.

Per the A/G method every process is an ``E ⊳ M`` component: a proposer
owns its 1a/2a bits and assumes only that its 1b inputs (and their loss
bits) rise one at a time; an acceptor owns its 1b/2b bits and assumes
the same of the 1a/2a bits; the channel guarantees unconditionally
(``E = TRUE``) that a ``lost`` bit rises only after the matching send.
Agreement -- no two quorums choose different values -- is discharged by
the Composition Theorem, ``G ∧ ⋀ (E_i ⊳ M_i) ⇒ (TRUE ⊳ Agreement)``,
never by trusting a single monolithic check.

``broken=True`` removes both ballot-discipline guards (acceptors accept
2a messages from stale ballots, proposers ignore the highest 1b vote
when picking a value), which admits the canonical two-values-chosen
agreement violation used by the golden-trace hunts (needs ``ballots >= 2``
and ``values >= 2``).
"""

from __future__ import annotations

import itertools
from functools import reduce
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..kernel.action import unchanged
from ..kernel.expr import (
    And,
    Arith,
    Cmp,
    Const,
    Eq,
    Expr,
    Fn,
    IfThenElse,
    Not,
    Or,
    Var,
)
from ..kernel.state import Universe
from ..kernel.values import BIT, FiniteDomain, interval
from ..spec import Component, Spec, conjoin, weak_fairness
from ..temporal.formulas import Eventually, StatePred, TemporalFormula
from ..core.agspec import AGSpec
from ..core.disjoint import DisjointSpec

DEFAULT_ACCEPTORS = 3
DEFAULT_BALLOTS = 2
DEFAULT_VALUES = 2

#: the "no vote yet" marker used for ballots and values alike
NONE = -1


def _i(x: int) -> str:
    """Render an index for a variable name (-1 as ``n``)."""
    return "n" if x < 0 else str(x)


def v1a(b: int) -> str:
    """The 1a ("prepare") message of ballot *b*."""
    return f"s1a_{b}"


def v1b(b: int, a: int, m: int, w: int) -> str:
    """Acceptor *a*'s 1b ("promise") for ballot *b*, reporting its
    highest vote as ballot *m*, value *w* (both ``-1`` if none)."""
    return f"s1b_{b}_{a}_{_i(m)}_{_i(w)}"


def v2a(b: int, v: int) -> str:
    """The 2a ("accept!") message of ballot *b* proposing value *v*."""
    return f"s2a_{b}_{v}"


def v2b(b: int, a: int, v: int) -> str:
    """Acceptor *a*'s 2b ("accepted") vote for value *v* in ballot *b*."""
    return f"s2b_{b}_{a}_{v}"


def lost_var(message: str) -> str:
    return f"lost_{message}"


def vote_pairs(ballot: int, values: int) -> List[Tuple[int, int]]:
    """The (maxVBal, maxVal) reports a 1b of *ballot* can carry: no vote
    yet, or a vote in any earlier ballot."""
    return [(NONE, NONE)] + [(m, w) for m in range(ballot)
                             for w in range(values)]


def _bit_sum(names: Sequence[str]) -> Expr:
    return reduce(lambda x, y: Arith("+", x, y), [Var(n) for n in names])


def _rise(name: str, sub: Sequence[str]) -> Expr:
    """One monotone bit flips ``0 -> 1``; everything else in *sub* holds."""
    return And(
        Eq(Var(name), 0),
        Eq(Var(name).prime(), 1),
        unchanged([x for x in sub if x != name]),
    )


def _step(guards: Sequence[Expr], updates: Dict[str, Expr],
          owned: Sequence[str]) -> Expr:
    conjuncts: List[Expr] = list(guards)
    for name, expr in updates.items():
        conjuncts.append(Eq(Var(name).prime(), expr))
    rest = [n for n in owned if n not in updates]
    if rest:
        conjuncts.append(unchanged(rest))
    return And(*conjuncts)


class PaxosProposer:
    """Proposer of ballot *b*: phase 1a, counting 1b promises, phase 2a."""

    def __init__(self, ballot: int, acceptors: int, values: int,
                 droppable: Iterable[str] = (), broken: bool = False):
        self.ballot = ballot
        self.acceptors = acceptors
        self.values = values
        self.broken = broken
        self.name = f"Proposer{ballot}"
        b = ballot
        quorum = acceptors // 2 + 1
        droppable = set(droppable)

        pb = Var(f"pb{b}")  # the highest (ballot, value) vote seen in 1b's
        self.outputs: Tuple[str, ...] = (v1a(b),) + tuple(
            v2a(b, v) for v in range(values))
        self.internals: Tuple[str, ...] = tuple(
            f"pr{b}_{a}" for a in range(acceptors)) + (f"pb{b}",)
        self.inputs: Tuple[str, ...] = tuple(
            v1b(b, a, m, w)
            for a in range(acceptors) for m, w in vote_pairs(b, values))
        self.inputs += tuple(lost_var(x) for x in self.inputs
                             if x in droppable)

        pb_domain = FiniteDomain(vote_pairs(b, values))
        universe = Universe(dict(
            {name: BIT for name in self.outputs},
            **{name: BIT for name in self.inputs},
            **{f"pr{b}_{a}": BIT for a in range(acceptors)},
        ))
        universe = universe.merge(Universe({f"pb{b}": pb_domain}))
        self.universe = universe

        owned = self.outputs + self.internals
        self.init = And(
            *[Eq(Var(name), 0) for name in self.outputs],
            *[Eq(Var(f"pr{b}_{a}"), 0) for a in range(acceptors)],
            Eq(pb, Const((NONE, NONE))),
        )

        self.actions: List[Tuple[str, Expr]] = []
        self.actions.append(("phase1a", _step(
            [Eq(Var(v1a(b)), 0)], {v1a(b): Const(1)}, owned)))

        for a in range(acceptors):
            for m, w in vote_pairs(b, values):
                bit = v1b(b, a, m, w)
                guards = [Eq(Var(f"pr{b}_{a}"), 0), Eq(Var(bit), 1)]
                if bit in droppable:
                    guards.append(Eq(Var(lost_var(bit)), 0))
                updates: Dict[str, Expr] = {f"pr{b}_{a}": Const(1)}
                if m != NONE:
                    # keep the highest-ballot vote seen so far
                    updates[f"pb{b}"] = IfThenElse(
                        Cmp(">", Const(m), Fn("Nth", pb, Const(1))),
                        Const((m, w)), pb)
                self.actions.append((
                    f"recv1b_{a}_{_i(m)}_{_i(w)}",
                    _step(guards, updates, owned)))

        promised = _bit_sum([f"pr{b}_{a}" for a in range(acceptors)])
        for v in range(values):
            guards = [Eq(Var(v2a(b, x)), 0) for x in range(values)]
            guards.append(Cmp(">=", promised, quorum))
            if not broken:
                # Paxos's crux: a quorum reported no votes, or v is the
                # value of the highest-ballot vote reported
                guards.append(Or(
                    Eq(pb, Const((NONE, NONE))),
                    Eq(Fn("Nth", pb, Const(2)), v),
                ))
            self.actions.append((f"phase2a_{v}", _step(
                guards, {v2a(b, v): Const(1)}, owned)))

        self.next_action: Expr = Or(*[action for _, action in self.actions])
        self.component = Component(
            self.name,
            outputs=self.outputs,
            internals=self.internals,
            inputs=self.inputs,
            init=self.init,
            next_action=self.next_action,
            universe=self.universe,
            fairness=[weak_fairness(owned, self.next_action)],
        )

    @property
    def spec(self) -> Spec:
        return self.component.spec

    def __repr__(self) -> str:
        return f"PaxosProposer(ballot={self.ballot})"


class PaxosAcceptor:
    """Acceptor *aid*: promises (1b) and votes (2b) under the
    highest-ballot discipline ``maxBal``/``maxVBal``/``maxVal``."""

    def __init__(self, aid: int, ballots: int, acceptors: int, values: int,
                 droppable: Iterable[str] = (), broken: bool = False):
        self.aid = aid
        self.ballots = ballots
        self.values = values
        self.broken = broken
        self.name = f"Acceptor{aid}"
        a = aid
        droppable = set(droppable)

        mb = Var(f"mb{a}")  # maxBal: highest ballot seen
        vb = Var(f"vb{a}")  # maxVBal: highest ballot voted in
        vv = Var(f"vv{a}")  # maxVal: the value of that vote

        self.outputs: Tuple[str, ...] = tuple(
            v1b(b, a, m, w)
            for b in range(ballots) for m, w in vote_pairs(b, values))
        self.outputs += tuple(
            v2b(b, a, v) for b in range(ballots) for v in range(values))
        self.internals: Tuple[str, ...] = (f"mb{a}", f"vb{a}", f"vv{a}")
        self.inputs: Tuple[str, ...] = tuple(
            v1a(b) for b in range(ballots)) + tuple(
            v2a(b, v) for b in range(ballots) for v in range(values))
        self.inputs += tuple(lost_var(x) for x in self.inputs
                             if x in droppable)

        universe = Universe(dict(
            {name: BIT for name in self.outputs},
            **{name: BIT for name in self.inputs},
        ))
        universe = universe.merge(Universe({
            f"mb{a}": interval(NONE, ballots - 1),
            f"vb{a}": interval(NONE, ballots - 1),
            f"vv{a}": interval(NONE, values - 1),
        }))
        self.universe = universe

        owned = self.outputs + self.internals
        self.init = And(
            *[Eq(Var(name), 0) for name in self.outputs],
            Eq(mb, NONE), Eq(vb, NONE), Eq(vv, NONE),
        )

        self.actions: List[Tuple[str, Expr]] = []
        for b in range(ballots):
            # Phase1b: answer a fresh prepare, reporting the current vote
            # (one action per report the state could carry)
            for m, w in vote_pairs(b, values):
                guards = [Eq(Var(v1a(b)), 1),
                          Cmp(">", Const(b), mb),
                          Eq(vb, m), Eq(vv, w)]
                if v1a(b) in droppable:
                    guards.append(Eq(Var(lost_var(v1a(b))), 0))
                self.actions.append((
                    f"recv1a_{b}_{_i(m)}_{_i(w)}",
                    _step(guards,
                          {f"mb{a}": Const(b),
                           v1b(b, a, m, w): Const(1)},
                          owned)))
            # Phase2b: vote for the ballot's 2a proposal
            for v in range(values):
                guards = [Eq(Var(v2a(b, v)), 1)]
                if not broken:
                    guards.append(Cmp(">=", Const(b), mb))
                if v2a(b, v) in droppable:
                    guards.append(Eq(Var(lost_var(v2a(b, v))), 0))
                updates: Dict[str, Expr] = {
                    f"vb{a}": Const(b), f"vv{a}": Const(v),
                    v2b(b, a, v): Const(1)}
                if not broken:
                    updates[f"mb{a}"] = Const(b)
                self.actions.append((f"recv2a_{b}_{v}",
                                     _step(guards, updates, owned)))

        self.next_action: Expr = Or(*[action for _, action in self.actions])
        self.component = Component(
            self.name,
            outputs=self.outputs,
            internals=self.internals,
            inputs=self.inputs,
            init=self.init,
            next_action=self.next_action,
            universe=self.universe,
            fairness=[weak_fairness(owned, self.next_action)],
        )

    @property
    def spec(self) -> Spec:
        return self.component.spec

    def __repr__(self) -> str:
        return f"PaxosAcceptor(aid={self.aid})"


class PaxosChannel:
    """The lossy message fabric: owns one monotone ``lost`` bit per
    droppable message and may raise it any time after the send.  No
    fairness -- the channel may also never lose anything.  Duplication
    needs no action at all: receives read sent bits without consuming
    them."""

    def __init__(self, droppable: Sequence[str]):
        if not droppable:
            raise ValueError("a channel with nothing to drop has no state; "
                             "omit the component instead")
        self.droppable: Tuple[str, ...] = tuple(droppable)
        self.name = "Channel"

        self.outputs: Tuple[str, ...] = tuple(
            lost_var(m) for m in self.droppable)
        self.inputs: Tuple[str, ...] = self.droppable
        self.universe = Universe(dict(
            {name: BIT for name in self.outputs},
            **{name: BIT for name in self.inputs},
        ))

        owned = self.outputs
        self.init = And(*[Eq(Var(name), 0) for name in self.outputs])
        self.actions: List[Tuple[str, Expr]] = [
            (f"drop_{message}", _step(
                [Eq(Var(message), 1), Eq(Var(lost_var(message)), 0)],
                {lost_var(message): Const(1)},
                owned))
            for message in self.droppable
        ]
        self.next_action: Expr = Or(*[action for _, action in self.actions])
        self.component = Component(
            self.name,
            outputs=self.outputs,
            internals=(),
            inputs=self.inputs,
            init=self.init,
            next_action=self.next_action,
            universe=self.universe,
        )

    @property
    def spec(self) -> Spec:
        return self.component.spec

    def __repr__(self) -> str:
        return f"PaxosChannel(droppable={len(self.droppable)})"


class Paxos:
    """The instance: proposers 0..B-1, acceptors 0..A-1, optional lossy
    channel; assumptions, goal, certificate, closed system."""

    def __init__(self, acceptors: int = DEFAULT_ACCEPTORS,
                 ballots: int = DEFAULT_BALLOTS,
                 values: int = DEFAULT_VALUES,
                 droppable: Union[None, str, Iterable[str]] = None,
                 broken: bool = False):
        if acceptors < 1 or ballots < 1 or values < 1:
            raise ValueError("need at least 1 acceptor, ballot, and value")
        self.acceptors = acceptors
        self.ballots = ballots
        self.values = values
        self.broken = broken
        self.quorum = acceptors // 2 + 1

        if droppable is None:
            dropset: Tuple[str, ...] = ()
        elif droppable == "all":
            dropset = tuple(self.message_vars())
        else:
            dropset = tuple(droppable)
            unknown = set(dropset) - set(self.message_vars())
            if unknown:
                raise ValueError(f"unknown droppable messages: "
                                 f"{sorted(unknown)}")
        self.droppable = dropset

        self.proposers: List[PaxosProposer] = [
            PaxosProposer(b, acceptors, values, droppable=dropset,
                          broken=broken)
            for b in range(ballots)
        ]
        self.acceptor_procs: List[PaxosAcceptor] = [
            PaxosAcceptor(a, ballots, acceptors, values, droppable=dropset,
                          broken=broken)
            for a in range(acceptors)
        ]
        self.channel: Optional[PaxosChannel] = (
            PaxosChannel(dropset) if dropset else None)
        self.components = (
            self.proposers + self.acceptor_procs
            + ([self.channel] if self.channel else []))

        self.disjoint = DisjointSpec(
            [c.outputs for c in self.components])
        universe = self.components[0].universe
        for comp in self.components[1:]:
            universe = universe.merge(comp.universe)
        self.universe = universe
        drop_label = ("" if not dropset
                      else f", droppable={'all' if len(dropset) == len(self.message_vars()) else len(dropset)}")
        self._label = (f"Paxos(A={acceptors}, B={ballots}, V={values}"
                       + drop_label + (", broken" if broken else "") + ")")

    # -- the message vocabulary ---------------------------------------------

    def message_vars(self) -> List[str]:
        """Every sent-bit variable, in a stable order."""
        out: List[str] = []
        for b in range(self.ballots):
            out.append(v1a(b))
        for b in range(self.ballots):
            for a in range(self.acceptors):
                for m, w in vote_pairs(b, self.values):
                    out.append(v1b(b, a, m, w))
        for b in range(self.ballots):
            for v in range(self.values):
                out.append(v2a(b, v))
        for b in range(self.ballots):
            for a in range(self.acceptors):
                for v in range(self.values):
                    out.append(v2b(b, a, v))
        return out

    # -- complete (closed) system -------------------------------------------

    def complete_spec(self) -> Spec:
        """The closed system in interleaved-disjunct form (Figure 8's
        ``ICDQ`` shape): one disjunct per component step, framing every
        other component's variables."""
        disjuncts: List[Expr] = []
        comps = self.components
        for comp in comps:
            others: Tuple[str, ...] = ()
            for other in comps:
                if other is not comp:
                    others += other.component.sub
            disjuncts.append(And(comp.next_action, unchanged(others)))
        fairness = [weak_fairness(comp.component.sub, comp.next_action)
                    for comp in comps if comp.component.fairness]
        return Spec(
            self._label,
            And(*[comp.init for comp in comps]),
            Or(*disjuncts),
            tuple(v for comp in comps for v in comp.component.sub),
            self.universe,
            fairness,
        )

    def conjunction_spec(self) -> Spec:
        """The same closed system as ``G ∧ ⋀ M_i`` -- the conjunction the
        Composition Theorem products use."""
        specs = [comp.spec for comp in self.components]
        g_vars = [v for t in self.disjoint.tuples for v in t]
        specs.append(self.disjoint.spec(self.universe.restrict(g_vars)))
        return conjoin(specs, name=self._label)

    # -- properties ----------------------------------------------------------

    def chosen(self, ballot: int, value: int) -> Expr:
        """A quorum of acceptors voted for *value* in *ballot*."""
        votes = [v2b(ballot, a, value) for a in range(self.acceptors)]
        return Cmp(">=", _bit_sum(votes), self.quorum)

    def agreement(self) -> Expr:
        """No two quorums choose different values (in any ballots)."""
        conflicts: List[Expr] = []
        for b1, v1_ in itertools.product(range(self.ballots),
                                         range(self.values)):
            for b2, v2_ in itertools.product(range(self.ballots),
                                             range(self.values)):
                if (b1, v1_) < (b2, v2_) and v1_ != v2_:
                    conflicts.append(
                        Not(And(self.chosen(b1, v1_), self.chosen(b2, v2_))))
        if not conflicts:
            return Const(True)  # a single value cannot disagree
        return And(*conflicts)

    def decided(self) -> Expr:
        """Some value is chosen in some ballot."""
        return Or(*[self.chosen(b, v)
                    for b in range(self.ballots)
                    for v in range(self.values)])

    def no_decision(self) -> Expr:
        """``¬decided`` -- the deliberately *violated* invariant whose
        counterexample trace is a full run of the protocol."""
        return Not(self.decided())

    def eventually_decides(self) -> TemporalFormula:
        """``◇ decided``: holds under the component WF conditions when
        nothing is droppable; fails (the channel is unfair) as soon as
        the messages of every ballot can be lost."""
        return Eventually(StatePred(self.decided()))

    # -- assumption/guarantee decomposition -----------------------------------

    def _rising_env(self, name: str, bits: Sequence[str],
                    universe: Universe) -> Spec:
        """The canonical monotone environment: the given input bits rise
        ``0 -> 1`` one at a time, and nothing else happens to them."""
        return Spec(
            name,
            And(*[Eq(Var(x), 0) for x in bits]),
            Or(*[_rise(x, bits) for x in bits]),
            tuple(bits),
            universe.restrict(bits),
        )

    def environment_spec(self, comp: Union[PaxosProposer, PaxosAcceptor]) -> Spec:
        return self._rising_env(
            f"RisingEnv({comp.name})", comp.inputs, comp.universe)

    def ag_specs(self) -> List[AGSpec]:
        """``E_i ⊳ M_i`` for every proposer and acceptor, plus the
        channel's unconditional ``TRUE ⊳ Channel``."""
        devices = [
            AGSpec(f"E({comp.name}) ⊳ {comp.name}",
                   assumption=self.environment_spec(comp),
                   guarantee=comp.component)
            for comp in self.proposers + self.acceptor_procs
        ]
        if self.channel is not None:
            devices.append(AGSpec("TRUE ⊳ Channel", assumption=None,
                                  guarantee=self.channel.component))
        return devices

    def agreement_goal_spec(self) -> Spec:
        """Agreement in canonical safety form over the 2b vote bits."""
        now = self.agreement()
        sub = tuple(v2b(b, a, v)
                    for b in range(self.ballots)
                    for a in range(self.acceptors)
                    for v in range(self.values))
        return Spec(
            "Agreement",
            now,
            now.prime(),
            sub,
            Universe({name: BIT for name in sub}),
        )

    def agreement_goal(self) -> AGSpec:
        return AGSpec("agreement", assumption=None,
                      guarantee=self.agreement_goal_spec())

    def composition_theorem(self, max_states: int = 500_000):
        """``G ∧ ⋀ (E_i ⊳ M_i) ⇒ (TRUE ⊳ Agreement)``."""
        from ..core.composition import CompositionTheorem

        return CompositionTheorem(
            self.ag_specs(),
            self.agreement_goal(),
            disjoint=self.disjoint,
            name=self._label,
            max_states=max_states,
        )

    def __repr__(self) -> str:
        return self._label
