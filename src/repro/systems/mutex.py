"""Lamport's distributed mutual-exclusion algorithm as open systems.

The algorithm of "Time, Clocks, and the Ordering of Events in a
Distributed System" (CACM 1978), in the explicit-ack variant that the
TLA+ ``LamportMutex`` module checks with TLC: ``N`` processes exchange
``req``/``ack``/``rel`` messages over point-to-point FIFO channels and
order critical-section entry by ``(timestamp, pid)`` priority.

Channels reuse the paper's Figure-2 two-phase handshake verbatim: the
directed channel ``i -> j`` is a handshake channel whose ``snd`` wires
belong to process ``i`` and whose ``ack`` wire belongs to process ``j``
-- single-slot, hence trivially FIFO.  Per the A/G method, every process
is an ``E ⊳ M`` component:

* process ``i`` **owns** (outputs) its ``cs_i`` flag, the snd wires of
  its outgoing channels, and the ack wires of its incoming channels;
  its clock, request timestamp, request-queue knowledge and send
  obligations are internal;
* its **assumption** ``E_i`` is only that the other processes drive the
  shared wires per the handshake discipline (a safety property in
  canonical form, like the arbiter's grant/request protocols);
* mutual exclusion ``□ at-most-one cs_i`` is discharged by the
  Composition Theorem, ``G ∧ ⋀_i (E_i ⊳ P_i) ⇒ (TRUE ⊳ Mutex)``,
  never by trusting a single monolithic check
  (:meth:`LamportMutex.composition_theorem`).

Clocks are bounded the way TLC's ``ClockConstraint`` bounds them, but as
an action guard: a receive that would push ``max(clk, t) + 1`` past
``maxClock`` is *disabled* rather than capped.  Capping would merge
distinct timestamps and (unlike the guard) can actually violate mutual
exclusion; disabling merely truncates behaviors, so safety verdicts are
exact while liveness beyond the bound is forfeited -- the standard TLC
trade.  ``broken=True`` removes the ``(timestamp, pid)`` priority guard
from the enter action (acks alone decide), which admits the canonical
two-processes-in-CS violation used by the golden-trace hunts.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

from ..kernel.action import unchanged
from ..kernel.expr import (
    And,
    Arith,
    Cmp,
    Const,
    Eq,
    Exists,
    Expr,
    Fn,
    Not,
    Or,
    TupleExpr,
    Var,
)
from ..kernel.state import Universe
from ..kernel.values import BIT, FiniteDomain, interval
from ..spec import Component, Spec, conjoin, weak_fairness
from ..temporal.formulas import Eventually, LeadsTo, StatePred, TemporalFormula
from ..core.agspec import AGSpec
from ..core.disjoint import DisjointSpec
from .handshake import (
    ack,
    channel_universe,
    cinit,
    pending,
    send,
    sig,
    snd_vars,
    val,
)

DEFAULT_N = 2
DEFAULT_MAX_CLOCK = 3

#: message constants -- tuples so one channel domain carries all three kinds
ACK_MSG: Tuple[str, ...] = ("ack",)
REL_MSG: Tuple[str, ...] = ("rel",)


def req_msg(stamp: int) -> Tuple[str, int]:
    return ("req", stamp)


def message_domain(max_clock: int) -> FiniteDomain:
    """Every message a channel can carry: ``ack``, ``rel``, ``req(t)``."""
    return FiniteDomain([ACK_MSG, REL_MSG]
                        + [req_msg(t) for t in range(1, max_clock + 1)])


def chan(src: int, dst: int) -> str:
    """The directed handshake channel from *src* to *dst*."""
    return f"c{src}_{dst}"


def clk(i: int) -> Var:
    return Var(f"clk{i}")


def own_req(i: int) -> Var:
    """Process *i*'s outstanding request timestamp (0 = none)."""
    return Var(f"req{i}")


def cs(i: int) -> Var:
    return Var(f"cs{i}")


def known_req(i: int, j: int) -> Var:
    """The timestamp of *j*'s request as known to *i* (0 = none)."""
    return Var(f"lr{i}_{j}")


def acked(i: int, j: int) -> Var:
    """Has *j* acknowledged *i*'s current request?"""
    return Var(f"ak{i}_{j}")


def send_obl(i: int, j: int) -> Var:
    """*i*'s pending broadcast to *j*: 0 = none, 1 = req, 2 = rel."""
    return Var(f"so{i}_{j}")


def ack_obl(i: int, j: int) -> Var:
    """*i* still owes *j* an ack for *j*'s request."""
    return Var(f"ao{i}_{j}")


def _step(guards: Sequence[Expr], updates: Dict[str, Expr], owned: Sequence[str],
          framed: Sequence[str] = ()) -> Expr:
    """One interleaving action: guards, primed updates, frame of the rest.

    *framed* names owned variables already constrained by a guard
    conjunct (the handshake ``send``/``ack`` macros constrain all three
    channel wires themselves)."""
    conjuncts: List[Expr] = list(guards)
    for name, expr in updates.items():
        conjuncts.append(Eq(Var(name).prime(), expr))
    rest = [n for n in owned if n not in updates and n not in framed]
    if rest:
        conjuncts.append(unchanged(rest))
    return And(*conjuncts)


def _priority_lt(stamp: Expr, i: int, other_stamp: Expr, j: int) -> Expr:
    """``(stamp, i) < (other_stamp, j)`` lexicographically; ``i``/``j``
    are compile-time pids, so the tie-break folds into <= vs <."""
    op = "<=" if i < j else "<"
    return Cmp(op, stamp, other_stamp)


class MutexProcess:
    """Process *pid* of the N-process Lamport mutex, as a component."""

    def __init__(self, n: int, pid: int, max_clock: int, broken: bool = False):
        if n < 2:
            raise ValueError("the mutex needs at least 2 processes")
        if max_clock < 2:
            raise ValueError("maxClock must be >= 2 (one receive must fit)")
        self.n = n
        self.pid = pid
        self.max_clock = max_clock
        self.broken = broken
        self.others: Tuple[int, ...] = tuple(
            j for j in range(1, n + 1) if j != pid)
        self.name = f"P{pid}"

        msg = message_domain(max_clock)
        i = pid

        self.outputs: Tuple[str, ...] = (f"cs{i}",)
        for j in self.others:
            self.outputs += snd_vars(chan(i, j))       # outgoing sends
        for j in self.others:
            self.outputs += (f"{chan(j, i)}.ack",)     # incoming acks
        self.internals: Tuple[str, ...] = (f"clk{i}", f"req{i}")
        for j in self.others:
            self.internals += (f"lr{i}_{j}", f"ak{i}_{j}",
                               f"so{i}_{j}", f"ao{i}_{j}")
        self.inputs: Tuple[str, ...] = ()
        for j in self.others:
            self.inputs += snd_vars(chan(j, i))        # their sends to me
        for j in self.others:
            self.inputs += (f"{chan(i, j)}.ack",)      # their acks of mine

        universe = Universe({
            f"cs{i}": BIT,
            f"clk{i}": interval(1, max_clock),
            f"req{i}": interval(0, max_clock),
        })
        for j in self.others:
            universe = universe.merge(Universe({
                f"lr{i}_{j}": interval(0, max_clock),
                f"ak{i}_{j}": BIT,
                f"so{i}_{j}": FiniteDomain([0, 1, 2]),
                f"ao{i}_{j}": BIT,
            }))
            universe = universe.merge(channel_universe(chan(i, j), msg))
            universe = universe.merge(channel_universe(chan(j, i), msg))
        self.universe = universe

        owned = self.outputs + self.internals

        # -- initial condition: idle, clock 1, own channels quiescent -------
        init_parts: List[Expr] = [
            Eq(cs(i), 0), Eq(clk(i), 1), Eq(own_req(i), 0)]
        for j in self.others:
            init_parts += [
                Eq(known_req(i, j), 0), Eq(acked(i, j), 0),
                Eq(send_obl(i, j), 0), Eq(ack_obl(i, j), 0),
                # channel init is the sender's obligation (paper, A.3)
                cinit(chan(i, j)), Eq(val(chan(i, j)), Const(ACK_MSG)),
            ]
        self.init = And(*init_parts)

        # -- actions --------------------------------------------------------
        self.actions: List[Tuple[str, Expr]] = []

        # Request: stamp a new request with the current clock and oblige a
        # req broadcast; forbidden while a previous rel is still pending so
        # the single-slot FIFO delivers rel before the fresh req.
        self.actions.append(("request", _step(
            [Eq(own_req(i), 0), Eq(cs(i), 0)]
            + [Eq(send_obl(i, j), 0) for j in self.others],
            dict({f"req{i}": clk(i)},
                 **{f"so{i}_{j}": Const(1) for j in self.others}),
            owned,
        )))

        for j in self.others:
            c_out, c_in = chan(i, j), chan(j, i)
            # SendReq / SendRel / SendAck: drain one obligation per step.
            self.actions.append((f"send_req_{j}", _step(
                [Eq(send_obl(i, j), 1),
                 send(TupleExpr(Const("req"), own_req(i)), c_out)],
                {f"so{i}_{j}": Const(0)},
                owned, framed=(f"{c_out}.sig", f"{c_out}.val"),
            )))
            self.actions.append((f"send_rel_{j}", _step(
                [Eq(send_obl(i, j), 2), send(Const(REL_MSG), c_out)],
                {f"so{i}_{j}": Const(0)},
                owned, framed=(f"{c_out}.sig", f"{c_out}.val"),
            )))
            # An ack must never overtake an unsent request on the same
            # channel: Lamport's entry rule is only sound if j's own
            # request reaches i before any ack j sends afterwards (FIFO).
            # A pending rel may be reordered with an ack -- a stale
            # known-request only delays entry, never admits it.
            self.actions.append((f"send_ack_{j}", _step(
                [Eq(ack_obl(i, j), 1), Not(Eq(send_obl(i, j), 1)),
                 send(Const(ACK_MSG), c_out)],
                {f"ao{i}_{j}": Const(0)},
                owned, framed=(f"{c_out}.sig", f"{c_out}.val"),
            )))

            # ReceiveReq(t): Lamport clock update max(clk, t) + 1, bounded
            # by disabling (never capping) at maxClock; record the request
            # and owe an ack.
            for t in range(1, max_clock + 1):
                bumped = Arith("+", Fn("Max", clk(i), Const(t)), Const(1))
                self.actions.append((f"recv_req_{j}_t{t}", _step(
                    [pending(c_in), Eq(val(c_in), Const(req_msg(t))),
                     Cmp("<=", bumped, Const(max_clock)), ack(c_in)],
                    {f"clk{i}": bumped,
                     f"lr{i}_{j}": Const(t),
                     f"ao{i}_{j}": Const(1)},
                    owned, framed=(f"{c_in}.ack",),
                )))
            self.actions.append((f"recv_ack_{j}", _step(
                [pending(c_in), Eq(val(c_in), Const(ACK_MSG)), ack(c_in)],
                {f"ak{i}_{j}": Const(1)},
                owned, framed=(f"{c_in}.ack",),
            )))
            self.actions.append((f"recv_rel_{j}", _step(
                [pending(c_in), Eq(val(c_in), Const(REL_MSG)), ack(c_in)],
                {f"lr{i}_{j}": Const(0)},
                owned, framed=(f"{c_in}.ack",),
            )))

        # Enter: all acks in, and -- unless broken -- (req_i, i) beats every
        # known competing request.
        self.actions.append(("enter", _step(
            [Eq(cs(i), 0), Cmp(">", own_req(i), 0)] + self.enter_guards(),
            {f"cs{i}": Const(1)},
            owned,
        )))

        # Exit: leave, clear the request and oblige the rel broadcast.
        self.actions.append(("exit", _step(
            [Eq(cs(i), 1)],
            dict({f"cs{i}": Const(0), f"req{i}": Const(0)},
                 **{f"so{i}_{j}": Const(2) for j in self.others},
                 **{f"ak{i}_{j}": Const(0) for j in self.others}),
            owned,
        )))

        self.next_action: Expr = Or(*[action for _, action in self.actions])
        self.component = Component(
            self.name,
            outputs=self.outputs,
            internals=self.internals,
            inputs=self.inputs,
            init=self.init,
            next_action=self.next_action,
            universe=self.universe,
            fairness=[weak_fairness(self.outputs + self.internals,
                                    self.next_action)],
        )

    def enter_guards(self) -> List[Expr]:
        """Acks from everyone plus Lamport's priority comparison (the
        guard the ``broken`` variant drops)."""
        i = self.pid
        guards: List[Expr] = [Eq(acked(i, j), 1) for j in self.others]
        if not self.broken:
            for j in self.others:
                guards.append(Or(
                    Eq(known_req(i, j), 0),
                    _priority_lt(own_req(i), i, known_req(i, j), j),
                ))
        return guards

    @property
    def spec(self) -> Spec:
        return self.component.spec

    def __repr__(self) -> str:
        return (f"MutexProcess(pid={self.pid}, n={self.n}, "
                f"maxClock={self.max_clock}"
                + (", broken" if self.broken else "") + ")")


class LamportMutex:
    """The N-process instance: components, assumptions, goal, theorem."""

    def __init__(self, n: int = DEFAULT_N, max_clock: int = DEFAULT_MAX_CLOCK,
                 broken: bool = False):
        self.n = n
        self.max_clock = max_clock
        self.broken = broken
        self.processes: List[MutexProcess] = [
            MutexProcess(n, pid, max_clock, broken=broken)
            for pid in range(1, n + 1)
        ]
        # the interleaving condition G: outputs of distinct processes never
        # change in the same step
        self.disjoint = DisjointSpec([p.outputs for p in self.processes])
        universe = self.processes[0].universe
        for proc in self.processes[1:]:
            universe = universe.merge(proc.universe)
        self.universe = universe
        self._label = (f"LamportMutex(N={n}, maxClock={max_clock}"
                       + (", broken" if broken else "") + ")")

    # -- complete (closed) system ------------------------------------------

    def complete_spec(self) -> Spec:
        """The closed system in interleaved-disjunct form (the shape of
        the paper's Figure 8 ``ICDQ``): each disjunct is one process step
        framing every other process's variables.  Same reachable graph
        story as conjoining the components with ``G``, but it compiles to
        one successor branch per process action instead of a product of
        component squares -- this is the spec every test and benchmark
        harness explores."""
        disjuncts: List[Expr] = []
        for proc in self.processes:
            others: Tuple[str, ...] = ()
            for other in self.processes:
                if other.pid != proc.pid:
                    others += other.component.sub
            disjuncts.append(And(proc.next_action, unchanged(others)))
        return Spec(
            self._label,
            And(*[proc.init for proc in self.processes]),
            Or(*disjuncts),
            tuple(v for proc in self.processes for v in proc.component.sub),
            self.universe,
            [weak_fairness(proc.component.sub, proc.next_action)
             for proc in self.processes],
        )

    def conjunction_spec(self) -> Spec:
        """The same closed system as ``G ∧ ⋀_i IP_i`` -- literally the
        conjunction of the component specs with the interleaving
        condition, the form the Composition Theorem products use."""
        specs = [proc.spec for proc in self.processes]
        g_vars = [v for t in self.disjoint.tuples for v in t]
        specs.append(self.disjoint.spec(self.universe.restrict(g_vars)))
        return conjoin(specs, name=self._label)

    # -- properties ---------------------------------------------------------

    def mutual_exclusion(self) -> Expr:
        """State predicate: at most one process in its critical section."""
        pairs = itertools.combinations(range(1, self.n + 1), 2)
        return And(*[Not(And(Eq(cs(i), 1), Eq(cs(j), 1)))
                     for i, j in pairs])

    def someone_enters(self) -> TemporalFormula:
        """``◇(∃i : cs_i = 1)``: the first round always completes.

        Holds under the per-process WF conditions for maxClock >= 3; at
        maxClock = 2 the bound already disables the receives the first
        contended round needs, leaving a fair message-shuffling lasso in
        which nobody ever enters -- the same truncation artifact as
        :meth:`progress`, one notch earlier."""
        return Eventually(StatePred(
            Or(*[Eq(cs(i), 1) for i in range(1, self.n + 1)])))

    def progress(self, pid: int) -> TemporalFormula:
        """``req_i > 0 ~> cs_i = 1`` -- *fails* at the clock bound, the
        TLC-style truncation artifact documented in the module docstring."""
        return LeadsTo(StatePred(Cmp(">", own_req(pid), 0)),
                       StatePred(Eq(cs(pid), 1)))

    # -- assumption/guarantee decomposition ---------------------------------

    def environment_spec(self, pid: int) -> Spec:
        """``E_pid``: the other processes drive the shared wires per the
        two-phase handshake discipline -- nothing about message content."""
        msg = message_domain(self.max_clock)
        sub: Tuple[str, ...] = ()
        for j in self.processes[pid - 1].others:
            sub += snd_vars(chan(j, pid))
        for j in self.processes[pid - 1].others:
            sub += (f"{chan(pid, j)}.ack",)

        universe = Universe({})
        init_parts: List[Expr] = []
        disjuncts: List[Expr] = []
        for j in self.processes[pid - 1].others:
            c_in, c_out = chan(j, pid), chan(pid, j)
            universe = universe.merge(channel_universe(c_in, msg))
            universe = universe.merge(channel_universe(c_out, msg))
            init_parts += [cinit(c_in), Eq(val(c_in), Const(ACK_MSG))]
            in_wires = snd_vars(c_in)
            out_wire = (f"{c_out}.ack",)
            disjuncts.append(And(
                Exists("v", msg, send(Var("v"), c_in)),
                unchanged([w for w in sub if w not in in_wires]),
            ))
            disjuncts.append(And(
                ack(c_out),
                unchanged([w for w in sub if w not in out_wire]),
            ))
        return Spec(
            f"HandshakeEnv({pid})",
            And(*init_parts),
            Or(*disjuncts),
            sub,
            universe,
        )

    def ag_specs(self) -> List[AGSpec]:
        """``E_i ⊳ P_i`` for every process."""
        return [
            AGSpec(f"E{proc.pid} ⊳ P{proc.pid}",
                   assumption=self.environment_spec(proc.pid),
                   guarantee=proc.component)
            for proc in self.processes
        ]

    def mutex_goal_spec(self) -> Spec:
        """The goal guarantee in canonical safety form: at most one
        process in CS, preserved by every step."""
        now = self.mutual_exclusion()
        return Spec(
            "Mutex",
            now,
            now.prime(),
            tuple(f"cs{i}" for i in range(1, self.n + 1)),
            Universe({f"cs{i}": BIT for i in range(1, self.n + 1)}),
        )

    def mutex_goal(self) -> AGSpec:
        return AGSpec("mutex", assumption=None, guarantee=self.mutex_goal_spec())

    def composition_theorem(self, max_states: int = 500_000):
        """``G ∧ ⋀_i (E_i ⊳ P_i) ⇒ (TRUE ⊳ Mutex)`` -- the certificate
        that discharges mutual exclusion component-wise."""
        from ..core.composition import CompositionTheorem

        return CompositionTheorem(
            self.ag_specs(),
            self.mutex_goal(),
            disjoint=self.disjoint,
            name=self._label,
            max_states=max_states,
        )

    def __repr__(self) -> str:
        return self._label
