"""Example systems from the paper (and one extra open system).

* :mod:`~repro.systems.circuit` -- the two-process circuit of Figure 1 and
  the introduction's two motivating examples (safety circularity works,
  liveness circularity fails);
* :mod:`~repro.systems.handshake` -- the two-phase handshake channel of
  Figure 2;
* :mod:`~repro.systems.queue` -- the N-element queue of the appendix:
  complete system (Figure 6), open components, double queue (Figures 7-8),
  and the ingredients of the Figure 9 composition proof;
* :mod:`~repro.systems.arbiter` -- a mutual-exclusion arbiter with two
  clients, a second end-to-end application of the Composition Theorem
  exercising strong fairness.
"""
