"""Example systems from the paper, plus the distributed-protocol corpus.

* :mod:`~repro.systems.circuit` -- the two-process circuit of Figure 1 and
  the introduction's two motivating examples (safety circularity works,
  liveness circularity fails);
* :mod:`~repro.systems.handshake` -- the two-phase handshake channel of
  Figure 2;
* :mod:`~repro.systems.queue` -- the N-element queue of the appendix:
  complete system (Figure 6), open components, double queue (Figures 7-8),
  and the ingredients of the Figure 9 composition proof;
* :mod:`~repro.systems.arbiter` -- a mutual-exclusion arbiter with two
  clients, a second end-to-end application of the Composition Theorem
  exercising strong fairness;
* :mod:`~repro.systems.mutex` -- Lamport's distributed mutual-exclusion
  algorithm ("Time, Clocks"), N processes over handshake channels,
  decomposed per the A/G method;
* :mod:`~repro.systems.paxos` -- single-decree Paxos with a lossy/
  duplicating message channel as its own component.

The protocol corpus is also reachable from the CLI without writing a
module file: ``repro check @mutex:n=2,clock=3 --invariant MutualExclusion``
resolves through :func:`bundled_module`, which adapts an instance into
the :class:`~repro.parser.module.TLAModule` interface the CLI drives
(``spec`` / ``expr`` / ``formula`` / ``get`` / ``definitions``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..kernel.expr import Expr
from ..kernel.values import Domain
from ..spec import Spec
from ..temporal.formulas import TemporalFormula, to_tf


class BundledModule:
    """A bundled protocol instance wearing the ``TLAModule`` interface.

    Unlike a parsed module, the definitions are already elaborated
    objects -- canonical :class:`~repro.spec.Spec` values for specs,
    :class:`~repro.kernel.expr.Expr` for invariants, temporal formulas
    for properties -- so :meth:`spec` hands them out directly instead of
    pattern-matching a formula.
    """

    def __init__(self, name: str, definitions: Dict[str, object]):
        self.name = name
        self.definitions = definitions

    def __contains__(self, name: str) -> bool:
        return name in self.definitions

    def get(self, name: str) -> object:
        try:
            return self.definitions[name]
        except KeyError:
            raise KeyError(
                f"bundled module {self.name!r} has no definition {name!r} "
                f"(defined: {', '.join(sorted(self.definitions)) or 'none'})"
            ) from None

    def expr(self, name: str) -> Expr:
        value = self.get(name)
        if not isinstance(value, Expr):
            raise TypeError(f"{name!r} is not an expression: {value!r}")
        return value

    def formula(self, name: str) -> TemporalFormula:
        value = self.get(name)
        if isinstance(value, (Domain, Spec)):
            raise TypeError(f"{name!r} is not a temporal formula: {value!r}")
        return to_tf(value)

    def spec(self, name: str = "Spec", label: Optional[str] = None) -> Spec:
        value = self.get(name)
        if not isinstance(value, Spec):
            raise TypeError(f"{name!r} is not a spec: {value!r}")
        if label:
            return Spec(label, value.init, value.next_action, value.sub,
                        value.universe, value.fairness)
        return value

    def __repr__(self) -> str:
        return (f"BundledModule({self.name!r}, "
                f"definitions={sorted(self.definitions)})")


def _parse_params(text: str) -> Dict[str, str]:
    """``"n=3,clock=4,broken"`` -> ``{"n": "3", "clock": "4",
    "broken": ""}`` (a bare key is a flag)."""
    params: Dict[str, str] = {}
    for part in filter(None, text.split(",")):
        key, _, value = part.partition("=")
        params[key.strip()] = value.strip()
    return params


def _int_param(params: Dict[str, str], key: str, default: int) -> int:
    raw = params.pop(key, None)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"parameter {key}={raw!r} is not an integer") \
            from None


def _flag_param(params: Dict[str, str], key: str) -> bool:
    raw = params.pop(key, None)
    if raw is None:
        return False
    if raw in ("", "1", "true", "yes"):
        return True
    if raw in ("0", "false", "no"):
        return False
    raise ValueError(f"parameter {key}={raw!r} is not a flag "
                     f"(use {key} or {key}=true/false)")


def _make_mutex(params: Dict[str, str]) -> BundledModule:
    from .mutex import DEFAULT_MAX_CLOCK, DEFAULT_N, LamportMutex

    n = _int_param(params, "n", DEFAULT_N)
    clock = _int_param(params, "clock", DEFAULT_MAX_CLOCK)
    broken = _flag_param(params, "broken")
    if params:
        raise ValueError(f"unknown mutex parameter(s): "
                         f"{', '.join(sorted(params))} "
                         f"(known: n, clock, broken)")
    system = LamportMutex(n, clock, broken=broken)
    return BundledModule(f"mutex[n={n},clock={clock}"
                         + (",broken" if broken else "") + "]", {
        "Spec": system.complete_spec(),
        "Conjunction": system.conjunction_spec(),
        "MutualExclusion": system.mutual_exclusion(),
        "SomeoneEnters": system.someone_enters(),
        "Progress1": system.progress(1),
    })


def _make_paxos(params: Dict[str, str]) -> BundledModule:
    from .paxos import (
        DEFAULT_ACCEPTORS,
        DEFAULT_BALLOTS,
        DEFAULT_VALUES,
        Paxos,
    )

    acceptors = _int_param(params, "acceptors", DEFAULT_ACCEPTORS)
    ballots = _int_param(params, "ballots", DEFAULT_BALLOTS)
    values = _int_param(params, "values", DEFAULT_VALUES)
    broken = _flag_param(params, "broken")
    drop_all = _flag_param(params, "droppable")
    if params:
        raise ValueError(f"unknown paxos parameter(s): "
                         f"{', '.join(sorted(params))} (known: acceptors, "
                         f"ballots, values, droppable, broken)")
    system = Paxos(acceptors, ballots, values,
                   droppable="all" if drop_all else None, broken=broken)
    return BundledModule(f"paxos[acceptors={acceptors},ballots={ballots},"
                         f"values={values}"
                         + (",droppable" if drop_all else "")
                         + (",broken" if broken else "") + "]", {
        "Spec": system.complete_spec(),
        "Conjunction": system.conjunction_spec(),
        "Agreement": system.agreement(),
        "NoDecision": system.no_decision(),
        "EventuallyDecides": system.eventually_decides(),
    })


#: registry of CLI-addressable protocol instances: ``@name:key=val,...``
BUNDLED: Dict[str, Callable[[Dict[str, str]], BundledModule]] = {
    "mutex": _make_mutex,
    "paxos": _make_paxos,
}


def bundled_module(ref: str) -> BundledModule:
    """Resolve ``"mutex:n=3,clock=4"`` (no leading ``@``) to a module."""
    name, _, param_text = ref.partition(":")
    try:
        factory = BUNDLED[name]
    except KeyError:
        raise KeyError(f"no bundled system {name!r} "
                       f"(bundled: {', '.join(sorted(BUNDLED))})") from None
    return factory(_parse_params(param_text))
