"""The two-phase handshake protocol of the paper's Figure 2.

The state of a channel ``c`` has three components: the value ``c.val``
being sent and two synchronisation bits ``c.sig`` and ``c.ack``.  The
channel is *ready to send* when ``c.sig = c.ack``.  A value ``v`` is sent
by setting ``c.val`` to ``v`` and complementing ``c.sig``; receipt is
acknowledged by complementing ``c.ack``.

This module defines the channel vocabulary used throughout the queue
example: variable-name helpers, the initial condition ``CInit``, the
``Send``/``Ack`` actions, and a trace generator that reproduces Figure 2's
table literally.

**Deviation note** (recorded in DESIGN.md): the paper's ``Send(v, c)``
constrains only ``c.snd' = <v, 1 - c.sig>``, leaving ``c.ack'``
unconstrained, while ``Ack(c)`` explicitly frames ``c.snd' = c.snd``.  We
add the symmetric frame ``c.ack' = c.ack`` to ``Send`` so that the
complete-system specification of Figure 6 equals the conjunction of the
component specifications -- which is what the paper's composition story
requires (and obviously what Figure 2's protocol intends).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..kernel.behavior import FiniteBehavior
from ..kernel.expr import And, Eq, Expr, Not, Var, to_expr
from ..kernel.state import State, Universe
from ..kernel.values import BIT, Domain, FiniteDomain


def sig(chan: str) -> Var:
    return Var(f"{chan}.sig")


def ack_bit(chan: str) -> Var:
    return Var(f"{chan}.ack")


def val(chan: str) -> Var:
    return Var(f"{chan}.val")


def channel_vars(chan: str) -> Tuple[str, str, str]:
    """The triple the paper writes as ``c = <c.sig, c.ack, c.val>``."""
    return (f"{chan}.sig", f"{chan}.ack", f"{chan}.val")


def snd_vars(chan: str) -> Tuple[str, str]:
    """The pair the paper writes as ``c.snd = <c.sig, c.val>``."""
    return (f"{chan}.sig", f"{chan}.val")


def channel_universe(chan: str, msg: Domain) -> Universe:
    return Universe({
        f"{chan}.sig": BIT,
        f"{chan}.ack": BIT,
        f"{chan}.val": msg,
    })


def cinit(chan: str) -> Expr:
    """``CInit(c) ≜ c.sig = c.ack = 0`` -- the channel is ready to send.

    ``c.val`` is unconstrained initially (the '-' entry in Figure 2)."""
    return And(Eq(sig(chan), 0), Eq(ack_bit(chan), 0))


def ready(chan: str) -> Expr:
    """The channel is ready for a new send: ``c.sig = c.ack``."""
    return Eq(sig(chan), ack_bit(chan))


def pending(chan: str) -> Expr:
    """A value is in flight, awaiting acknowledgement: ``c.sig ≠ c.ack``."""
    return Not(Eq(sig(chan), ack_bit(chan)))


def send(value: object, chan: str) -> Expr:
    """``Send(v, c)``: send *value* over the channel (see deviation note)."""
    value = to_expr(value)
    return And(
        Eq(sig(chan), ack_bit(chan)),
        Eq(val(chan).prime(), value),
        Eq(sig(chan).prime(), 1 - sig(chan)),
        Eq(ack_bit(chan).prime(), ack_bit(chan)),
    )


def ack(chan: str) -> Expr:
    """``Ack(c)``: acknowledge receipt of the value in flight."""
    return And(
        Not(Eq(sig(chan), ack_bit(chan))),
        Eq(ack_bit(chan).prime(), 1 - ack_bit(chan)),
        Eq(sig(chan).prime(), sig(chan)),
        Eq(val(chan).prime(), val(chan)),
    )


def in_flight_expr(chan: str) -> Expr:
    """The sequence of values in flight on the channel: ``<c.val>`` when a
    send is unacknowledged, else ``<>``.  This is the ``buffer`` used by the
    double-queue refinement mapping of section A.4."""
    from ..kernel.expr import IfThenElse, TupleExpr

    return IfThenElse(ready(chan), TupleExpr(), TupleExpr(val(chan)))


# ---------------------------------------------------------------------------
# Figure 2: the protocol trace
# ---------------------------------------------------------------------------

def protocol_trace(chan: str, values: Sequence[object],
                   initial_val: object = 0) -> FiniteBehavior:
    """The alternating send/ack behavior of Figure 2 for the given values.

    Starts in the initial state (``sig = ack = 0``); each value contributes
    a "sent" state followed by an "acked" state, except the last value,
    which is left unacknowledged -- matching the Figure's six columns for
    values 37, 4, 19.
    """
    s, a = f"{chan}.sig", f"{chan}.ack"
    v = f"{chan}.val"
    state = State({s: 0, a: 0, v: initial_val})
    states = [state]
    for index, value in enumerate(values):
        state = state.update({v: value, s: 1 - state[s]})
        states.append(state)  # sent
        if index < len(values) - 1:
            state = state.update({a: 1 - state[a]})
            states.append(state)  # acked
    return FiniteBehavior(states)


def render_figure2(chan: str = "c",
                   values: Sequence[object] = (37, 4, 19)) -> str:
    """Regenerate Figure 2's table (ack/sig/val rows over the trace)."""
    trace = protocol_trace(chan, values, initial_val="-")
    labels = ["initial state"]
    for index, value in enumerate(values):
        labels.append(f"{value} sent")
        if index < len(values) - 1:
            labels.append(f"{value} acked")
    rows: List[List[str]] = [[""] + labels]
    for field in ("ack", "sig", "val"):
        name = f"{chan}.{field}"
        rows.append([f"{name}:"] + [str(state[name]) for state in trace])
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    return "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in rows
    )


def check_protocol_trace(trace: FiniteBehavior, chan: str) -> List[str]:
    """Validate that every step of a trace is a Send, an Ack, or a stutter.

    Returns human-readable problems (empty = the trace follows the
    protocol).  Used by tests and the Figure 2 benchmark."""
    from ..kernel.action import holds_on_step
    from ..kernel.expr import Exists, Or
    from ..kernel.values import FiniteDomain

    problems = []
    for idx, (pre, post) in enumerate(trace.steps()):
        values_seen = {pre[f"{chan}.val"], post[f"{chan}.val"]}
        domain = FiniteDomain(sorted(values_seen, key=repr))
        step_action = Or(
            Exists("v", domain, send(Var("v"), chan)),
            ack(chan),
            And(*[Eq(Var(name).prime(), Var(name)) for name in channel_vars(chan)]),
        )
        if not holds_on_step(step_action, pre, post):
            problems.append(f"step {idx}: {pre!r} -> {post!r} is not Send/Ack/stutter")
    return problems
