"""A mutual-exclusion arbiter with two clients, as open systems.

This is not from the paper; it is a second end-to-end application of the
Composition Theorem (DESIGN.md's extra substrate), chosen to exercise what
the queue example does not:

* a **three-way circular** assumption/guarantee argument (each client
  assumes the arbiter behaves; the arbiter assumes both clients behave);
* **strong fairness**: the two grant actions compete, so the arbiter's
  liveness needs ``SF`` -- weak fairness provably does not suffice, and
  the checker exhibits the starvation lasso.

The protocol is a four-phase handshake per client ``j``:

    raise ``req_j``  ->  arbiter raises ``grant_j``  ->
    client lowers ``req_j``  ->  arbiter lowers ``grant_j``

Interface:

* client ``j`` owns ``req_j``; its assumption is that ``grant_j`` moves
  only per protocol;
* the arbiter owns ``grant_1, grant_2``; its assumption is that requests
  move only per protocol;
* composed goal: mutual exclusion ``□¬(grant_1 ∧ grant_2)``
  unconditionally (assumption TRUE), via the Composition Theorem, plus
  complete-system liveness ``req_j = 1 ~> grant_j = 1`` checked with the
  fair model checker.
"""

from __future__ import annotations

from typing import Tuple

from ..kernel.expr import And, Eq, Expr, Not, Or, Var
from ..kernel.state import Universe
from ..kernel.values import BIT
from ..spec import Component, Spec, strong_fairness, weak_fairness
from ..temporal.formulas import LeadsTo, StatePred
from ..core.agspec import AGSpec


def req(j: int) -> Var:
    return Var(f"req{j}")


def grant(j: int) -> Var:
    return Var(f"grant{j}")


def arbiter_universe() -> Universe:
    return Universe({
        "req1": BIT, "req2": BIT, "grant1": BIT, "grant2": BIT,
    })


# ---------------------------------------------------------------------------
# client j
# ---------------------------------------------------------------------------

def client_raise(j: int) -> Expr:
    """Request the resource: only when idle and not granted."""
    return And(
        Eq(req(j), 0), Eq(grant(j), 0),
        Eq(req(j).prime(), 1),
        Eq(grant(j).prime(), grant(j)),
    )


def client_lower(j: int) -> Expr:
    """Release the resource: only while holding the grant."""
    return And(
        Eq(req(j), 1), Eq(grant(j), 1),
        Eq(req(j).prime(), 0),
        Eq(grant(j).prime(), grant(j)),
    )


def client_component(j: int) -> Component:
    """Client ``j``: owns ``req_j``; obliged (WF) to eventually release."""
    action = Or(client_raise(j), client_lower(j))
    return Component(
        f"Client{j}",
        outputs=(f"req{j}",),
        internals=(),
        inputs=(f"grant{j}",),
        init=Eq(req(j), 0),
        next_action=action,
        universe=Universe({f"req{j}": BIT, f"grant{j}": BIT}),
        fairness=[weak_fairness((f"req{j}",), client_lower(j))],
    )


def grant_protocol_spec(j: int) -> Spec:
    """Client ``j``'s environment assumption: ``grant_j`` rises only while
    requested, falls only after the request is withdrawn (safety only)."""
    rise = And(Eq(grant(j), 0), Eq(req(j), 1), Eq(grant(j).prime(), 1))
    fall = And(Eq(grant(j), 1), Eq(req(j), 0), Eq(grant(j).prime(), 0))
    return Spec(
        f"GrantProtocol{j}",
        Eq(grant(j), 0),
        Or(rise, fall),
        (f"grant{j}",),
        Universe({f"req{j}": BIT, f"grant{j}": BIT}),
    )


# ---------------------------------------------------------------------------
# the arbiter
# ---------------------------------------------------------------------------

def arbiter_grant(j: int) -> Expr:
    """Grant client ``j``: only when requested and the resource is free."""
    other = 3 - j
    return And(
        Eq(req(j), 1), Eq(grant(1), 0), Eq(grant(2), 0),
        Eq(grant(j).prime(), 1),
        Eq(grant(other).prime(), grant(other)),
        Eq(req(1).prime(), req(1)), Eq(req(2).prime(), req(2)),
    )


def arbiter_revoke(j: int) -> Expr:
    """Withdraw the grant once the client has released."""
    other = 3 - j
    return And(
        Eq(grant(j), 1), Eq(req(j), 0),
        Eq(grant(j).prime(), 0),
        Eq(grant(other).prime(), grant(other)),
        Eq(req(1).prime(), req(1)), Eq(req(2).prime(), req(2)),
    )


def arbiter_component(strong: bool = True) -> Component:
    """The arbiter: owns both grants.

    With ``strong`` (default), granting each client is strongly fair --
    required for starvation freedom because the two grant actions disable
    each other.  With ``strong=False`` the arbiter is only weakly fair and
    client 1 can starve (see :func:`starvation_property` and the tests).
    """
    action = Or(arbiter_grant(1), arbiter_grant(2),
                arbiter_revoke(1), arbiter_revoke(2))
    fair_cls = strong_fairness if strong else weak_fairness
    fairness = [
        fair_cls(("grant1", "grant2"), arbiter_grant(1)),
        fair_cls(("grant1", "grant2"), arbiter_grant(2)),
        weak_fairness(("grant1", "grant2"), arbiter_revoke(1)),
        weak_fairness(("grant1", "grant2"), arbiter_revoke(2)),
    ]
    return Component(
        "Arbiter" if strong else "Arbiter(weak)",
        outputs=("grant1", "grant2"),
        internals=(),
        inputs=("req1", "req2"),
        init=And(Eq(grant(1), 0), Eq(grant(2), 0)),
        next_action=action,
        universe=arbiter_universe(),
        fairness=fairness,
    )


def request_protocol_spec() -> Spec:
    """The arbiter's environment assumption: both requests move only per
    protocol (the conjunction of the clients' guarantees' safety parts)."""
    action = Or(client_raise(1), client_lower(1),
                client_raise(2), client_lower(2))
    return Spec(
        "RequestProtocol",
        And(Eq(req(1), 0), Eq(req(2), 0)),
        action,
        ("req1", "req2"),
        arbiter_universe(),
    )


# ---------------------------------------------------------------------------
# goal and theorem instance
# ---------------------------------------------------------------------------

def mutex_spec() -> Spec:
    """The goal guarantee: never both grants at once, in canonical safety
    form ``¬(g1 ∧ g2) ∧ □[¬(g1' ∧ g2')]_{g1,g2}``."""
    safe_now = Not(And(Eq(grant(1), 1), Eq(grant(2), 1)))
    safe_next = Not(And(Eq(grant(1).prime(), 1), Eq(grant(2).prime(), 1)))
    return Spec(
        "Mutex",
        safe_now,
        safe_next,
        ("grant1", "grant2"),
        Universe({"grant1": BIT, "grant2": BIT}),
    )


def ag_specs(strong: bool = True) -> Tuple[AGSpec, AGSpec, AGSpec]:
    """The three devices' assumption/guarantee specifications."""
    ag_arbiter = AGSpec(
        "arbiter", assumption=request_protocol_spec(),
        guarantee=arbiter_component(strong=strong),
    )
    ag_client1 = AGSpec(
        "client1", assumption=grant_protocol_spec(1),
        guarantee=client_component(1),
    )
    ag_client2 = AGSpec(
        "client2", assumption=grant_protocol_spec(2),
        guarantee=client_component(2),
    )
    return ag_arbiter, ag_client1, ag_client2


def mutex_goal() -> AGSpec:
    return AGSpec("mutex", assumption=None, guarantee=mutex_spec())


def composed_system(strong: bool = True) -> Spec:
    """The complete system: arbiter ∧ client1 ∧ client2."""
    from ..spec import conjoin

    return conjoin(
        [arbiter_component(strong=strong).spec,
         client_component(1).spec,
         client_component(2).spec],
        name=f"arbiter system ({'SF' if strong else 'WF'})",
    ).with_extra_universe(arbiter_universe())


def starvation_property(j: int) -> LeadsTo:
    """``req_j = 1 ~> grant_j = 1``: client ``j`` is never starved."""
    return LeadsTo(StatePred(Eq(req(j), 1)), StatePred(Eq(grant(j), 1)))
