"""The N-element queue of the paper's appendix (Figures 3-9).

Everything is parameterised by the channel names, the buffer variable and
the capacity, so the paper's substitutions are ordinary construction:

* ``F[1] = F[z/o, q1/q]``  ->  ``Queue(size, msg, inp="i", out="z", qvar="q1")``
* ``F[2] = F[z/i, q2/q]``  ->  ``Queue(size, msg, inp="z", out="o", qvar="q2")``
* ``F[dbl] = F[(2N+1)/N]`` ->  ``Queue(2 * size + 1, msg, inp="i", out="o")``

The module provides:

* :class:`Queue` -- the queue component: ``Init_M``, ``Enq``, ``Deq``,
  ``QM``, ``ICL``, and the component ``IQM`` / ``QM = ∃q : IQM``
  (section A.3, equation (1));
* :class:`QueueEnvironment` -- the environment component ``QE``
  (section A.3, equation (2)): sends arbitrary messages on the input
  channel, acknowledges on the output channel;
* :func:`complete_queue` -- the complete-system specification ``ICQ`` of
  Figure 6 (interleaved-disjunct form), and
  :func:`complete_queue_conjunction` -- the same system as the conjunction
  ``QE ∧ IQM`` (their reachable graphs coincide; tested);
* :class:`DoubleQueue` -- the two-queues-in-series system of Figures 7-8,
  with the interleaving condition ``G``, the refinement mapping
  ``q ↦ q2 ∘ buffer(z) ∘ q1`` of section A.4, and the
  assumption/guarantee specifications of section A.5 ready for the
  Composition Theorem engine (Figure 9).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..kernel.action import unchanged
from ..kernel.expr import (
    And,
    Append,
    Cat,
    Cmp,
    Eq,
    Exists,
    Expr,
    Head,
    Len,
    Or,
    Tail,
    TupleExpr,
    Var,
)
from ..kernel.state import Universe
from ..kernel.values import Domain, FiniteDomain, TupleDomain
from ..spec import Component, Spec, conjoin, weak_fairness
from ..temporal.formulas import Hide, TemporalFormula
from ..core.agspec import AGSpec
from ..core.disjoint import DisjointSpec
from ..checker.refinement import RefinementMapping
from .handshake import (
    ack,
    channel_universe,
    channel_vars,
    cinit,
    in_flight_expr,
    send,
    snd_vars,
    val,
)

DEFAULT_MSG = FiniteDomain([0, 1])


class Queue:
    """The queue process of Figure 4, specified as in Figure 6 / section A.3.

    Output variables ``m = <inp.ack, out.snd>``, internal variable ``q``,
    input variables ``e = <inp.snd, out.ack>``.
    """

    def __init__(
        self,
        size: int,
        msg: Domain = DEFAULT_MSG,
        inp: str = "i",
        out: str = "o",
        qvar: str = "q",
        name: Optional[str] = None,
    ):
        if size < 1:
            raise ValueError("queue size must be >= 1")
        self.size = size
        self.msg = msg
        self.inp = inp
        self.out = out
        self.qvar = qvar
        self.name = name or f"QM({inp}->{out},N={size})"

        q = Var(qvar)
        self.init_m: Expr = And(cinit(out), Eq(q, TupleExpr()))
        self.enq: Expr = And(
            Cmp("<", Len(q), size),
            ack(inp),
            Eq(q.prime(), Append(q, val(inp))),
            unchanged(channel_vars(out)),
        )
        self.deq: Expr = And(
            Cmp(">", Len(q), 0),
            send(Head(q), out),
            Eq(q.prime(), Tail(q)),
            unchanged(channel_vars(inp)),
        )
        self.qm: Expr = Or(self.enq, self.deq)

        self.outputs: Tuple[str, ...] = (f"{inp}.ack",) + snd_vars(out)
        self.inputs: Tuple[str, ...] = snd_vars(inp) + (f"{out}.ack",)
        self.sub: Tuple[str, ...] = self.outputs + (qvar,)

        self.universe = (
            channel_universe(inp, msg)
            .merge(channel_universe(out, msg))
            .merge(Universe({qvar: TupleDomain(msg, size)}))
        )
        self.icl = weak_fairness(self.sub, self.qm)

        self.component = Component(
            self.name,
            outputs=self.outputs,
            internals=(qvar,),
            inputs=self.inputs,
            init=self.init_m,
            next_action=self.qm,
            universe=self.universe,
            fairness=[self.icl],
        )

    @property
    def spec(self) -> Spec:
        """``IQM``: the unhidden canonical spec (equation (1), inner part)."""
        return self.component.spec

    def formula(self) -> TemporalFormula:
        """``QM = ∃q : IQM`` (equation (1))."""
        return self.component.formula()

    def capacity_invariant(self) -> Expr:
        return Cmp("<=", Len(Var(self.qvar)), self.size)

    def __repr__(self) -> str:
        return f"Queue({self.inp}->{self.out}, N={self.size}, q={self.qvar!r})"


class QueueEnvironment:
    """The environment component ``QE`` (section A.3, equation (2)):
    sends arbitrary messages on *inp*, acknowledges values on *out*."""

    def __init__(
        self,
        msg: Domain = DEFAULT_MSG,
        inp: str = "i",
        out: str = "o",
        name: Optional[str] = None,
    ):
        self.msg = msg
        self.inp = inp
        self.out = out
        self.name = name or f"QE({inp},{out})"

        self.init_e: Expr = cinit(inp)
        self.put: Expr = And(
            Exists("v", msg, send(Var("v"), inp)),
            unchanged(channel_vars(out)),
        )
        self.get: Expr = And(ack(out), unchanged(channel_vars(inp)))
        self.qe: Expr = Or(self.get, self.put)

        self.outputs: Tuple[str, ...] = snd_vars(inp) + (f"{out}.ack",)
        self.inputs: Tuple[str, ...] = (f"{inp}.ack",) + snd_vars(out)
        self.universe = channel_universe(inp, msg).merge(channel_universe(out, msg))

        self.component = Component(
            self.name,
            outputs=self.outputs,
            internals=(),
            inputs=self.inputs,
            init=self.init_e,
            next_action=self.qe,
            universe=self.universe,
        )

    @property
    def spec(self) -> Spec:
        return self.component.spec

    def formula(self) -> TemporalFormula:
        return self.component.formula()

    def __repr__(self) -> str:
        return f"QueueEnvironment({self.inp}, {self.out})"


def complete_queue(
    size: int,
    msg: Domain = DEFAULT_MSG,
    inp: str = "i",
    out: str = "o",
    qvar: str = "q",
) -> Spec:
    """``ICQ`` exactly as in Figure 6: initial condition ``Init_E ∧ Init_M``,
    next-state ``(QE ∧ q' = q) ∨ QM``, subscript ``<i, o, q>``, fairness
    ``WF_<i,o,q>(QM)``."""
    queue = Queue(size, msg, inp, out, qvar)
    env = QueueEnvironment(msg, inp, out)
    q = Var(qvar)
    sub = channel_vars(inp) + channel_vars(out) + (qvar,)
    return Spec(
        f"ICQ({inp}->{out},N={size})",
        And(env.init_e, queue.init_m),
        Or(And(env.qe, Eq(q.prime(), q)), queue.qm),
        sub,
        queue.universe,
        [weak_fairness(sub, queue.qm)],
    )


def cq_formula(size: int, msg: Domain = DEFAULT_MSG, inp: str = "i",
               out: str = "o", qvar: str = "q") -> TemporalFormula:
    """``CQ = ∃q : ICQ`` (Figure 6, bottom)."""
    spec = complete_queue(size, msg, inp, out, qvar)
    return Hide({qvar: TupleDomain(msg, size)}, spec.formula())


def complete_queue_conjunction(
    size: int,
    msg: Domain = DEFAULT_MSG,
    inp: str = "i",
    out: str = "o",
    qvar: str = "q",
) -> Spec:
    """The same complete system as ``QE ∧ IQM`` -- composition is
    conjunction (section 2.2); equivalent to :func:`complete_queue`."""
    queue = Queue(size, msg, inp, out, qvar)
    env = QueueEnvironment(msg, inp, out)
    return conjoin([env.spec, queue.spec], name=f"QE ∧ IQM({inp}->{out},N={size})")


class DoubleQueue:
    """Two queues in series (Figure 7) and everything section A.4-A.5 needs.

    ``q1``: queue from channel ``i`` to internal channel ``z``;
    ``q2``: queue from ``z`` to ``o``; the composite implements a
    ``(2N+1)``-element queue from ``i`` to ``o`` (the extra slot is the
    value in flight on ``z``).
    """

    def __init__(self, size: int, msg: Domain = DEFAULT_MSG):
        self.size = size
        self.msg = msg

        self.q1 = Queue(size, msg, inp="i", out="z", qvar="q1")   # F[1]
        self.q2 = Queue(size, msg, inp="z", out="o", qvar="q2")   # F[2]
        self.env = QueueEnvironment(msg, inp="i", out="o")        # QE[dbl] env
        self.env1 = QueueEnvironment(msg, inp="i", out="z",
                                     name="QE[1]")                # QE[1]
        self.env2 = QueueEnvironment(msg, inp="z", out="o",
                                     name="QE[2]")                # QE[2]
        self.big = Queue(2 * size + 1, msg, inp="i", out="o",
                         qvar="q", name=f"QM[dbl](N={2 * size + 1})")

        # G: outputs of distinct components never change simultaneously
        self.disjoint = DisjointSpec([
            snd_vars("i") + ("o.ack",),   # environment outputs
            snd_vars("z") + ("i.ack",),   # first queue's outputs
            snd_vars("o") + ("z.ack",),   # second queue's outputs
        ])

        # the refinement mapping of section A.4: q = q2 ∘ buffer(z) ∘ q1
        self.mapping = RefinementMapping({
            "q": Cat(Cat(Var("q2"), in_flight_expr("z")), Var("q1")),
        })

        self.universe = (
            self.q1.universe.merge(self.q2.universe).merge(self.env.universe)
        )

    # -- complete systems (Figure 8) ----------------------------------------

    def cdq_spec(self) -> Spec:
        """``ICDQ`` exactly as in Figure 8 (interleaved-disjunct form)."""
        sub = (
            channel_vars("i") + channel_vars("z") + channel_vars("o")
            + ("q1", "q2")
        )
        env_step = And(self.env.qe, unchanged(("q1", "q2") + channel_vars("z")))
        q1_step = And(self.q1.qm, unchanged(("q2",) + channel_vars("o")))
        q2_step = And(self.q2.qm, unchanged(("q1",) + channel_vars("i")))
        return Spec(
            f"ICDQ(N={self.size})",
            And(self.env.init_e, self.q1.init_m, self.q2.init_m),
            Or(env_step, q1_step, q2_step),
            sub,
            self.universe,
            [
                weak_fairness(self.q1.sub, self.q1.qm),
                weak_fairness(self.q2.sub, self.q2.qm),
            ],
        )

    def cdq_conjunction(self) -> Spec:
        """The same complete system as ``QE ∧ IQM[1] ∧ IQM[2]``."""
        return conjoin(
            [self.env.spec, self.q1.spec, self.q2.spec],
            name=f"QE ∧ IQM[1] ∧ IQM[2](N={self.size})",
        )

    def icq_dbl(self) -> Spec:
        """``ICQ[dbl]``: the complete (2N+1)-queue (target of section A.4)."""
        return complete_queue(2 * self.size + 1, self.msg)

    # -- assumption/guarantee specifications (section A.5) ----------------------

    def ag_q1(self) -> AGSpec:
        """``QE[1] ⊳ QM[1]``."""
        return AGSpec("QE[1] ⊳ QM[1]", assumption=self.env1.spec,
                      guarantee=self.q1.component)

    def ag_q2(self) -> AGSpec:
        """``QE[2] ⊳ QM[2]``."""
        return AGSpec("QE[2] ⊳ QM[2]", assumption=self.env2.spec,
                      guarantee=self.q2.component)

    def ag_goal(self) -> AGSpec:
        """``QE[dbl] ⊳ QM[dbl]``."""
        return AGSpec("QE[dbl] ⊳ QM[dbl]", assumption=self.env.spec,
                      guarantee=self.big.component)

    def composition_theorem(self, max_states: int = 200_000):
        """The Figure 9 proof, as a :class:`CompositionTheorem` instance:

        ``G ∧ (QE[1] ⊳ QM[1]) ∧ (QE[2] ⊳ QM[2]) ⇒ (QE[dbl] ⊳ QM[dbl])``
        """
        from ..core.composition import CompositionTheorem

        return CompositionTheorem(
            [self.ag_q1(), self.ag_q2()],
            self.ag_goal(),
            disjoint=self.disjoint,
            mapping=self.mapping,
            name=f"double queue (N={self.size})",
            max_states=max_states,
        )

    def __repr__(self) -> str:
        return f"DoubleQueue(N={self.size})"


class QueueChain:
    """k queues in series: the generalisation of Figures 7-9.

    Queue ``j`` (1-based) runs from channel ``chan(j-1)`` to ``chan(j)``,
    where ``chan(0) = "i"``, ``chan(k) = "o"``, and the internal channels
    are ``z1 .. z(k-1)``.  The composite implements a queue of capacity
    ``k*N + (k-1)`` (each buffer plus each in-flight slot), which the
    Composition Theorem proves from the component A/G specifications plus
    the (k+1)-way Disjoint condition -- the paper's construction, iterated
    beyond the double queue it works out by hand.

    ``QueueChain(2, N)`` coincides with :class:`DoubleQueue` (tested).
    """

    def __init__(self, count: int, size: int, msg: Domain = DEFAULT_MSG):
        if count < 2:
            raise ValueError("a chain needs at least 2 queues")
        self.count = count
        self.size = size
        self.msg = msg

        self.channels: List[str] = (
            ["i"] + [f"z{j}" for j in range(1, count)] + ["o"]
        )
        self.queues: List[Queue] = [
            Queue(size, msg, inp=self.channels[j], out=self.channels[j + 1],
                  qvar=f"q{j + 1}")
            for j in range(count)
        ]
        self.env = QueueEnvironment(msg, inp="i", out="o")
        self.envs: List[QueueEnvironment] = [
            QueueEnvironment(msg, inp=self.channels[j],
                             out=self.channels[j + 1],
                             name=f"QE[{j + 1}]")
            for j in range(count)
        ]
        self.capacity = count * size + (count - 1)
        self.big = Queue(self.capacity, msg, inp="i", out="o", qvar="q",
                         name=f"QM[chain{count}](N={self.capacity})")

        # ownership: the environment owns i.snd and o.ack; queue j owns
        # chan(j).snd and chan(j-1).ack
        tuples = [snd_vars("i") + ("o.ack",)]
        for j in range(1, count + 1):
            tuples.append(
                snd_vars(self.channels[j]) + (f"{self.channels[j - 1]}.ack",)
            )
        self.disjoint = DisjointSpec(tuples)

        mapping_expr: Expr = Var("q1")
        for j in range(1, count):
            mapping_expr = Cat(Cat(Var(f"q{j + 1}"),
                                   in_flight_expr(self.channels[j])),
                               mapping_expr)
        self.mapping = RefinementMapping({"q": mapping_expr})

        universe = self.env.universe
        for queue in self.queues:
            universe = universe.merge(queue.universe)
        self.universe = universe

    def ag_specs(self) -> List[AGSpec]:
        return [
            AGSpec(f"QE[{j + 1}] ⊳ QM[{j + 1}]",
                   assumption=self.envs[j].spec,
                   guarantee=self.queues[j].component)
            for j in range(self.count)
        ]

    def ag_goal(self) -> AGSpec:
        return AGSpec("QE ⊳ QM[chain]", assumption=self.env.spec,
                      guarantee=self.big.component)

    def composition_theorem(self, max_states: int = 500_000):
        """``G ∧ ⋀_j (QE[j] ⊳ QM[j]) ⇒ (QE ⊳ QM[chain])``."""
        from ..core.composition import CompositionTheorem

        return CompositionTheorem(
            self.ag_specs(),
            self.ag_goal(),
            disjoint=self.disjoint,
            mapping=self.mapping,
            name=f"queue chain (k={self.count}, N={self.size})",
            max_states=max_states,
        )

    def complete_spec(self) -> Spec:
        """The closed composite system (all components conjoined with G)."""
        specs = [self.env.spec] + [queue.spec for queue in self.queues]
        g_vars = [v for t in self.disjoint.tuples for v in t]
        specs.append(self.disjoint.spec(self.universe.restrict(g_vars)))
        return conjoin(specs, name=f"chain{self.count}(N={self.size})")

    def __repr__(self) -> str:
        return f"QueueChain(k={self.count}, N={self.size})"
