"""The two-process circuit of the paper's Figure 1.

Two processes are wired in a loop: process ``Πc`` drives wire ``c`` and
reads wire ``d``; process ``Πd`` drives ``d`` and reads ``c``.

The introduction's two examples:

* **Example 1 (safety).**  ``M⁰_c`` asserts that ``c`` always equals 0,
  ``M⁰_d`` that ``d`` always equals 0.  Process ``Πc`` (which starts with
  ``c = 0`` and repeatedly sets ``c`` to the current value of ``d``)
  guarantees ``M⁰_c`` assuming ``M⁰_d``, and symmetrically for ``Πd``.
  The circular composition *works*: ``(M⁰_d ⊳ M⁰_c) ∧ (M⁰_c ⊳ M⁰_d)``
  implies ``M⁰_c ∧ M⁰_d`` -- the first process to change its output would
  violate its guarantee before its assumption had been violated.

* **Example 2 (liveness).**  ``M¹_c`` asserts that ``c`` eventually equals
  1 (similarly ``M¹_d``).  The analogous circular composition *fails*:
  the behavior in which both processes leave ``c`` and ``d`` unchanged
  satisfies both assumption/guarantee premises (violating ``M¹`` is a sin
  of omission that never happens "at" any instant) but not the
  conclusion.

This module builds all the ingredients: the guarantee specifications
``M⁰``/``M¹``, the process implementations ``Πc``/``Πd``, and the
assumption/guarantee specifications, ready for the Composition Theorem
engine (example 1) and the brute-force semantic checker (example 2's
counterexample).

A note on example 2's processes: with the liveness assumption literally
``◇(d = 1)``, process ``Πc`` does *not* formally guarantee ``◇(c = 1)``
-- the environment may raise ``d`` for a single instant that the process'
weak fairness never obliges it to catch.  :func:`eventually_stays_one`
provides the strengthened assumption ``◇□(d = 1)`` under which the
process-level guarantee genuinely holds; the paper's point (the circular
*rule* fails for liveness) is independent of this and is exercised with
the literal ``◇`` forms.
"""

from __future__ import annotations

from typing import Tuple

from ..kernel.expr import And, Eq, Var
from ..kernel.state import Universe
from ..kernel.values import BIT
from ..spec import Component, Spec, conjoin, weak_fairness
from ..temporal.formulas import (
    Always,
    Eventually,
    StatePred,
    TemporalFormula,
)
from ..core.agspec import AGSpec


def wire_universe() -> Universe:
    """Both wires carry a bit."""
    return Universe({"c": BIT, "d": BIT})


# ---------------------------------------------------------------------------
# the guarantee specifications
# ---------------------------------------------------------------------------

def always_zero(wire: str) -> Spec:
    """``M⁰_wire``: the wire always equals 0, in canonical safety form
    ``(wire = 0) ∧ □[wire' = 0]_wire``."""
    var = Var(wire)
    return Spec(
        f"M0_{wire}",
        Eq(var, 0),
        Eq(var.prime(), 0),
        (wire,),
        Universe({wire: BIT}),
    )


def always_zero_component(wire: str) -> Component:
    """``M⁰_wire`` as a component (output: the wire; no internals)."""
    var = Var(wire)
    return Component(
        f"M0_{wire}",
        outputs=(wire,),
        internals=(),
        inputs=(),
        init=Eq(var, 0),
        next_action=Eq(var.prime(), 0),
        universe=Universe({wire: BIT}),
    )


def eventually_one(wire: str) -> TemporalFormula:
    """``M¹_wire``: the wire eventually equals 1 (a liveness property)."""
    return Eventually(StatePred(Eq(Var(wire), 1)))


def eventually_stays_one(wire: str) -> TemporalFormula:
    """``◇□(wire = 1)``: the strengthened liveness assumption under which
    the copying process genuinely propagates the 1 (see module docstring)."""
    return Eventually(Always(StatePred(Eq(Var(wire), 1))))


# ---------------------------------------------------------------------------
# the process implementations
# ---------------------------------------------------------------------------

def copy_process(out_wire: str, in_wire: str) -> Component:
    """``Π_out``: starts with ``out = 0`` and repeatedly sets ``out`` to the
    current value of ``in`` (leaving ``in`` unchanged: interleaving)."""
    out_var, in_var = Var(out_wire), Var(in_wire)
    step = And(Eq(out_var.prime(), in_var), Eq(in_var.prime(), in_var))
    return Component(
        f"Pi_{out_wire}",
        outputs=(out_wire,),
        internals=(),
        inputs=(in_wire,),
        init=Eq(out_var, 0),
        next_action=step,
        universe=wire_universe(),
        fairness=[weak_fairness((out_wire,), step)],
    )


def pi_c() -> Component:
    return copy_process("c", "d")


def pi_d() -> Component:
    return copy_process("d", "c")


# ---------------------------------------------------------------------------
# assumption/guarantee specifications and theorem instances
# ---------------------------------------------------------------------------

def safety_agspecs() -> Tuple[AGSpec, AGSpec]:
    """Example 1's A/G specifications: ``M⁰_d ⊳ M⁰_c`` and ``M⁰_c ⊳ M⁰_d``."""
    ag_c = AGSpec("c-device", assumption=always_zero("d"),
                  guarantee=always_zero_component("c"))
    ag_d = AGSpec("d-device", assumption=always_zero("c"),
                  guarantee=always_zero_component("d"))
    return ag_c, ag_d


def safety_goal() -> AGSpec:
    """Example 1's conclusion: ``M⁰_c ∧ M⁰_d`` unconditionally
    (assumption TRUE)."""
    both = conjoin([always_zero("c"), always_zero("d")], name="M0_c ∧ M0_d")
    return AGSpec("both-zero", assumption=None, guarantee=both)


def liveness_premises() -> Tuple[TemporalFormula, TemporalFormula]:
    """Example 2's A/G premises ``M¹_d ⊳ M¹_c`` and ``M¹_c ⊳ M¹_d`` as
    temporal formulas (for the brute-force semantic checker -- liveness
    assumptions are exactly what the theorem's hypotheses exclude)."""
    from ..core.operators import Guarantees

    return (
        Guarantees(eventually_one("d"), eventually_one("c")),
        Guarantees(eventually_one("c"), eventually_one("d")),
    )


def liveness_goal_formula() -> TemporalFormula:
    """Example 2's desired conclusion ``M¹_c ∧ M¹_d``."""
    from ..temporal.formulas import TAnd

    return TAnd(eventually_one("c"), eventually_one("d"))


def composed_processes() -> Spec:
    """The closed system ``Πc ∧ Πd`` (every wire driven by a process)."""
    return conjoin([pi_c().spec, pi_d().spec], name="Pi_c ∧ Pi_d")
