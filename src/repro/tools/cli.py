"""Command-line interface: model-check mini-TLA modules from the shell.

::

    python -m repro check Counter.tla --spec Spec --invariant Small \\
                                      --property Progress
    python -m repro explore Counter.tla --spec Spec
    python -m repro trace Counter.tla --spec Spec --steps 12 --seed 7
    python -m repro pretty Counter.tla Next

``check`` exits nonzero when any check fails, printing rendered
counterexamples -- suitable for CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..checker import (
    ExploreStats,
    check_invariant,
    check_temporal_implication,
    explore_parallel,
)
from ..checker.results import CheckResult
from ..checker.simulate import random_walk
from ..fmt import pretty
from ..kernel.values import format_value
from ..parser import TLAModule, load_module


def _load(path: str) -> TLAModule:
    with open(path) as handle:
        return load_module(handle.read())


def _report(result: CheckResult, out) -> bool:
    print(result.summary(), file=out)
    if not result.ok and result.counterexample is not None:
        print(result.counterexample.render(), file=out)
    return result.ok


def cmd_check(args: argparse.Namespace, out) -> int:
    module = _load(args.module)
    spec = module.spec(args.spec)
    stats = ExploreStats() if args.stats else None
    graph = explore_parallel(spec, max_states=args.max_states,
                             workers=args.workers, stats=stats)
    # edge_count is real N-edges; the stutter self-loops (one per node)
    # are reported separately so the N-edge count is not inflated
    print(f"{module.name}!{args.spec}: {graph.state_count} states, "
          f"{graph.edge_count} edges (+{graph.stutter_count} stutter)",
          file=out)
    ok = True
    for name in args.invariant or ():
        result = check_invariant(graph, module.expr(name), name=name,
                                 run_stats=stats)
        ok = _report(result, out) and ok
    for name in args.property or ():
        from ..checker.liveness import premises_of_spec

        result = check_temporal_implication(
            graph, module.formula(name),
            premises=premises_of_spec(spec), name=name, run_stats=stats)
        ok = _report(result, out) and ok
    if not (args.invariant or args.property):
        print("(no --invariant/--property given: exploration only)", file=out)
    if stats is not None:
        print(stats.format(), file=out)
    return 0 if ok else 1


def cmd_explore(args: argparse.Namespace, out) -> int:
    module = _load(args.module)
    spec = module.spec(args.spec)
    stats = ExploreStats() if args.stats else None
    graph = explore_parallel(spec, max_states=args.max_states,
                             workers=args.workers, stats=stats)
    print(f"{module.name}!{args.spec}:", file=out)
    print(f"  states: {graph.state_count}", file=out)
    print(f"  edges:  {graph.edge_count} (+{graph.stutter_count} stutter)",
          file=out)
    print(f"  initial states: {len(graph.init_nodes)}", file=out)
    shown = min(args.show, graph.state_count)
    if shown:
        print(f"  first {shown} state(s):", file=out)
        for node in range(shown):
            print(f"    {graph.states[node]!r}", file=out)
    if stats is not None:
        print(stats.format(indent="  "), file=out)
    return 0


def cmd_trace(args: argparse.Namespace, out) -> int:
    module = _load(args.module)
    spec = module.spec(args.spec)
    walk = random_walk(spec, steps=args.steps, seed=args.seed)
    names = spec.universe.variables
    header = ["step"] + [str(i) for i in range(len(walk))]
    rows = [header]
    for name in names:
        rows.append([name] + [format_value(state[name]) for state in walk])
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)),
              file=out)
    return 0


def cmd_pretty(args: argparse.Namespace, out) -> int:
    module = _load(args.module)
    names = [args.definition] if args.definition else sorted(module.definitions)
    for name in names:
        value = module.get(name)
        from ..kernel.values import Domain

        if isinstance(value, Domain):
            print(f"{name} == {value!r}", file=out)
        else:
            print(f"{name} == {pretty(value, unicode=args.unicode)}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Open Systems in TLA: model-check mini-TLA modules.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="explore and check a module")
    check.add_argument("module", help="path to a mini-TLA module file")
    check.add_argument("--spec", default="Spec", help="spec definition name")
    check.add_argument("--invariant", action="append",
                       help="state-predicate definition to check (repeatable)")
    check.add_argument("--property", action="append",
                       help="temporal definition to check (repeatable)")
    check.add_argument("--max-states", type=int, default=200_000)
    check.add_argument("--workers", type=int, default=1,
                       help="worker processes for the exploration (default 1 "
                            "= the serial reference explorer; 0 = one per "
                            "core).  Any value yields the identical graph, "
                            "numbering, and traces.")
    check.add_argument("--stats", action="store_true",
                       help="print exploration statistics (states/sec, "
                            "depth, real-vs-stutter edges, per-phase timing, "
                            "per-worker throughput)")
    check.set_defaults(func=cmd_check)

    exp = sub.add_parser("explore", help="explore the state space")
    exp.add_argument("module")
    exp.add_argument("--spec", default="Spec")
    exp.add_argument("--max-states", type=int, default=200_000)
    exp.add_argument("--workers", type=int, default=1,
                     help="worker processes for the exploration (default 1 "
                          "= the serial reference explorer; 0 = one per "
                          "core)")
    exp.add_argument("--show", type=int, default=5,
                     help="how many states to print")
    exp.add_argument("--stats", action="store_true",
                     help="print exploration statistics")
    exp.set_defaults(func=cmd_explore)

    trace = sub.add_parser("trace", help="print a random behavior prefix")
    trace.add_argument("module")
    trace.add_argument("--spec", default="Spec")
    trace.add_argument("--steps", type=int, default=12)
    trace.add_argument("--seed", type=int, default=None)
    trace.set_defaults(func=cmd_trace)

    pp = sub.add_parser("pretty", help="pretty-print definitions")
    pp.add_argument("module")
    pp.add_argument("definition", nargs="?", default=None)
    pp.add_argument("--unicode", action="store_true")
    pp.set_defaults(func=cmd_pretty)

    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.func(args, out)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=out)
        return 2
    except Exception as exc:  # surface parse/elaboration errors readably
        print(f"error: {type(exc).__name__}: {exc}", file=out)
        return 2
