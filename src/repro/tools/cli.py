"""Command-line interface: model-check mini-TLA modules from the shell.

::

    python -m repro check Counter.tla --spec Spec --invariant Small \\
                                      --property Progress
    python -m repro explore Counter.tla --spec Spec
    python -m repro trace Counter.tla --spec Spec --steps 12 --seed 7
    python -m repro pretty Counter.tla Next

``check`` exits nonzero when any check fails, printing rendered
counterexamples -- suitable for CI.  ``--stats-json PATH`` writes the
machine-readable :meth:`~repro.checker.stats.ExploreStats.to_json`
snapshot next to the human ``--stats`` summary.

Service verbs (see :mod:`repro.service`): ``repro serve`` runs the
checking service (async job server + durable journal + sharded result
cache), optionally pre-forked across ``--procs N`` processes sharing
one port and state directory, with per-tenant quotas via
``--tenant-rate``/``--tenant-burst``/``--tenant-max-inflight``/
``--tenant-queue-limit``.  ``repro submit --tenant NAME`` posts a
module to it (retrying 429s with Retry-After-honouring backoff),
``repro watch`` streams a job's NDJSON progress events, ``repro
cancel`` cancels one, and ``repro admin metrics|jobs|tenants --at URL``
inspects a running service.  SIGTERM on the server checkpoints running
jobs; restarting it on the same state directory resumes them to the
identical verdict and trace, and queued jobs are re-admitted from the
journal exactly once even after SIGKILL.

Durable runs: ``check`` and ``explore`` accept ``--checkpoint PATH`` to
snapshot the exploration atomically every ``--checkpoint-every`` BFS
levels, ``--resume`` to continue a snapshot bit-for-bit, and
``--worker-timeout`` to bound (and retry) stuck parallel workers.  When a
checkpoint path is given, a JSON run manifest (spec, budget, workers,
wall time, outcome, counterexample trace, effective reduction/store
configuration) is written next to it.

Scaling levers (see :mod:`repro.checker.reduction`): ``--por`` turns on
Disjoint-derived partial-order reduction (sound for invariants and
deadlock; auto-disabled with a warning when ``--property`` needs the
full graph), ``--store spill --spill-dir DIR`` swaps the in-RAM state
store for the fingerprint-indexed disk spill store so ``--max-states``
can exceed resident memory.  Both default to off, which is the
byte-identical legacy behaviour; on ``--resume`` they default to
whatever the checkpoint recorded, and passing them explicitly asserts a
match (a mismatched resume is refused rather than silently changing the
run's semantics).

``--compact`` switches to the fingerprint-only engine
(:mod:`repro.checker.compact`): states live as packed machine integers,
the BFS keeps only fingerprints plus parent/level metadata, and
counterexample traces are regenerated on demand by re-walking the
parent chain through the compiled action plan.  Verdicts, traces, node
numbering, and graph digests are identical to the full engine.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter
from typing import Optional, Sequence

from ..checker import (
    CheckpointError,
    CompactUnsupported,
    ExploreStats,
    ReductionConfig,
    build_store,
    check_invariant,
    check_invariant_compact,
    check_temporal_implication,
    digest_of_graph,
    explore_compact,
    explore_parallel,
    manifest_path_for,
    resume,
    resume_compact,
    write_manifest,
)
from ..checker.graph import StateGraph, StateSpaceExplosion
from ..checker.results import CheckResult, Counterexample
from ..checker.simulate import random_walk
from ..fmt import pretty
from ..kernel.values import format_value
from ..parser import TLAModule, load_module


def _load(path: str) -> TLAModule:
    """A module by file path, or a bundled protocol by ``@`` reference.

    ``@mutex:n=3,clock=4`` / ``@paxos:acceptors=3,broken`` resolve
    through :func:`repro.systems.bundled_module` -- no module file
    needed, so every corpus instance is scriptable from the shell."""
    if path.startswith("@"):
        from ..systems import bundled_module

        return bundled_module(path[1:])
    with open(path) as handle:
        return load_module(handle.read())


def _report(result: CheckResult, out) -> bool:
    print(result.summary(), file=out)
    if not result.ok and result.counterexample is not None:
        print(result.counterexample.render(), file=out)
    return result.ok


def _spill_dir_problem(path: str) -> Optional[str]:
    """Why *path* cannot host the spill store's files (None = usable).

    Probed with an actual write, not just ``os.access`` -- permission
    bits lie for root and for read-only filesystems."""
    try:
        os.makedirs(path, exist_ok=True)
    except OSError as exc:
        return str(exc)
    if not os.path.isdir(path):
        return "not a directory"
    probe = os.path.join(path, ".repro-write-probe")
    try:
        with open(probe, "w"):
            pass
        os.unlink(probe)
    except OSError as exc:
        return str(exc)
    return None


def _symbolic_flags_error(args: argparse.Namespace, out) -> bool:
    """Reject flag combinations the symbolic engine cannot honour.

    The bounded symbolic engine solves a CNF unrolling: there is no
    state graph, so every knob that shapes or persists the explicit
    exploration is meaningless with it -- refused loudly rather than
    silently ignored."""
    engine = getattr(args, "engine", "explicit")
    if engine != "symbolic":
        if getattr(args, "depth", None) is not None:
            print("error: --depth is the symbolic unrolling bound; it "
                  "requires --engine symbolic", file=out)
            return True
        if getattr(args, "backend", "cdcl") != "cdcl":
            print("error: --backend selects the symbolic engine's SAT "
                  "solver; it requires --engine symbolic", file=out)
            return True
        return False
    for flag, active in (
            ("--por", bool(args.por)),
            ("--compact", bool(args.compact)),
            ("--store spill", args.store == "spill"),
            ("--property", bool(getattr(args, "property", None))),
            ("--checkpoint", bool(args.checkpoint)),
            ("--resume", bool(args.resume)),
            ("--worker-timeout", args.worker_timeout is not None),
            ("--workers", args.workers != 1),
    ):
        if active:
            print(f"error: --engine symbolic is incompatible with {flag}: "
                  f"bounded model checking solves a CNF unrolling and "
                  f"never builds the state graph those flags configure "
                  f"(drop {flag} or use --engine explicit)", file=out)
            return True
    if not getattr(args, "invariant", None):
        print("error: --engine symbolic needs at least one --invariant: "
              "the CNF encodes 'reach a state violating the invariant "
              "within --depth steps', so there is nothing to solve "
              "without one", file=out)
        return True
    return False


def _durability_error(args: argparse.Namespace, out) -> bool:
    if _symbolic_flags_error(args, out):
        return True
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint PATH "
              "(the snapshot to continue from)", file=out)
        return True
    if args.resume and args.checkpoint \
            and not os.path.exists(args.checkpoint):
        print(f"error: cannot resume: checkpoint file "
              f"{args.checkpoint!r} does not exist (run with --checkpoint "
              f"first to create one, or drop --resume)", file=out)
        return True
    if args.store == "spill" and not args.spill_dir:
        print("error: --store spill requires --spill-dir DIR "
              "(where the state data/index files live)", file=out)
        return True
    if args.store == "spill" and args.spill_dir:
        problem = _spill_dir_problem(args.spill_dir)
        if problem is not None:
            print(f"error: --spill-dir {args.spill_dir!r} is not a "
                  f"writable directory ({problem})", file=out)
            return True
    if args.compact and args.por:
        print("error: --compact and --por are mutually exclusive: the "
              "compact engine explores the full graph on packed ints and "
              "has no reduction machinery (drop one of the flags)",
              file=out)
        return True
    if args.compact and args.store == "spill":
        print("error: --compact keeps only packed ints in RAM and does "
              "not use a state store; drop --store spill (compact mode "
              "is already the low-memory engine)", file=out)
        return True
    if args.compact and getattr(args, "property", None):
        print("error: --compact cannot check temporal properties: "
              "lasso search needs the full successor structure, which "
              "the compact engine does not retain (drop --compact or "
              "--property)", file=out)
        return True
    if args.workers == 1 and args.worker_timeout is not None:
        # never silently accept an option the serial engine would ignore
        print("error: --worker-timeout only applies to the multi-process "
              "engine; --workers 1 runs the serial explorer, which would "
              "silently ignore it (use --workers 2+ or --workers 0)",
              file=out)
        return True
    return False


def _positive_int(text: str) -> int:
    """argparse type for flags that must be >= 1; bad values fail at
    parse time (usage error, exit 2) instead of surfacing as confusing
    runtime errors deep in the store/checkpoint layers."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer >= 1, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected an integer >= 1, got {value}")
    return value


def _want_stats(args: argparse.Namespace) -> Optional[ExploreStats]:
    """Stats are collected when either rendering is requested: the human
    ``--stats`` summary or the machine ``--stats-json`` file."""
    return ExploreStats() if (args.stats or args.stats_json) else None


def _write_stats_json(args: argparse.Namespace,
                      stats: Optional[ExploreStats]) -> None:
    if not args.stats_json or stats is None:
        return
    with open(args.stats_json, "w") as handle:
        handle.write(stats.to_json(indent=2) + "\n")


def _store_config(args: argparse.Namespace) -> dict:
    """The StateStore config dict the --store flags describe."""
    if args.store == "spill":
        return {"kind": "spill", "spill_dir": args.spill_dir,
                "hot_capacity": args.spill_cache}
    return {"kind": "mem"}


def _run_exploration(args: argparse.Namespace, spec,
                     stats: Optional[ExploreStats],
                     reduction: Optional[ReductionConfig]) -> StateGraph:
    """Fresh exploration or checkpoint resume, per the durability flags.

    *reduction* is the resolved request (None = off).  On ``--resume``,
    flags the user left at their defaults are *not* forwarded, so the
    run adopts the checkpoint's recorded configuration; explicit flags
    are forwarded and act as assertions (mismatch -> CheckpointError).
    """
    if args.compact:
        # fingerprint-only engine: no reduction, no state store -- the
        # incompatible flag combinations were rejected in
        # _durability_error, so plain dispatch is enough here
        if args.resume:
            return resume_compact(args.checkpoint, spec,
                                  workers=args.workers,
                                  max_states=args.max_states, stats=stats,
                                  checkpoint_every=args.checkpoint_every,
                                  worker_timeout=args.worker_timeout)
        return explore_compact(spec, max_states=args.max_states,
                               workers=args.workers, stats=stats,
                               checkpoint=args.checkpoint,
                               checkpoint_every=args.checkpoint_every,
                               worker_timeout=args.worker_timeout)
    if args.resume:
        kwargs = {}
        if args.por is not None:
            kwargs["reduction"] = reduction
        if args.store is not None:
            kwargs["store"] = _store_config(args)
        return resume(args.checkpoint, spec, workers=args.workers,
                      max_states=args.max_states, stats=stats,
                      checkpoint_every=args.checkpoint_every,
                      worker_timeout=args.worker_timeout, **kwargs)
    store = build_store(_store_config(args)) if args.store else None
    return explore_parallel(spec, max_states=args.max_states,
                            workers=args.workers, stats=stats,
                            checkpoint=args.checkpoint,
                            checkpoint_every=args.checkpoint_every,
                            worker_timeout=args.worker_timeout,
                            reduction=reduction, store=store)


def _close_store(graph) -> None:
    """Release the graph's state-store resources; the compact engine has
    no store (fingerprints + packed ints only), so this is a no-op there."""
    store = getattr(graph, "store", None)
    if store is not None:
        store.close()


def _reduction_manifest(reduction: Optional[ReductionConfig],
                        graph: Optional[StateGraph]) -> Optional[dict]:
    """The manifest's effective-reduction record: the requested config
    plus whether any state was actually ample-expanded."""
    if reduction is None:
        return None
    payload = reduction.as_dict()
    payload["used"] = bool(getattr(graph, "reduction_used", False))
    return payload


def _maybe_manifest(
    args: argparse.Namespace,
    spec_name: str,
    wall_seconds: float,
    outcome: str,
    graph: Optional[StateGraph] = None,
    counterexample: Optional[Counterexample] = None,
    stats: Optional[ExploreStats] = None,
    error: Optional[str] = None,
    reduction: Optional[ReductionConfig] = None,
) -> None:
    """Write the run manifest next to the checkpoint (if one was asked for)."""
    if not args.checkpoint:
        return
    store = getattr(graph, "store", None)  # CompactGraph has no store
    if store is not None:
        store_cfg = store.config()
    elif graph is not None:
        store_cfg = {"kind": "compact"} if getattr(args, "compact", False) \
            else None
    else:
        store_cfg = _store_config(args) if args.store else None
    write_manifest(
        manifest_path_for(args.checkpoint),
        spec_name=spec_name,
        max_states=args.max_states,
        workers=args.workers,
        wall_seconds=wall_seconds,
        outcome=outcome,
        states=graph.state_count if graph is not None else None,
        edges=graph.edge_count if graph is not None else None,
        counterexample=counterexample,
        stats=stats,
        error=error,
        reduction=_reduction_manifest(reduction, graph),
        store=store_cfg,
    )


def _cmd_check_symbolic(args: argparse.Namespace, out) -> int:
    """Bounded symbolic checking: one CNF unrolling per invariant.

    Exit codes: 0 when no violation was found within the bound (this
    includes UNKNOWN -- the run says so explicitly, because a bounded
    pass is not a proof), 1 for a violation, 2 when the spec cannot be
    translated or the requested SAT backend is unavailable.
    """
    from ..engine import (
        DEFAULT_DEPTH,
        VIOLATION,
        BackendUnavailable,
        SolveStats,
        SymbolicEngine,
        SymbolicUnsupported,
    )

    module = _load(args.module)
    spec = module.spec(args.spec)
    label = f"{module.name}!{args.spec}"
    obligations = [(name, module.expr(name)) for name in args.invariant]
    depth = args.depth if args.depth is not None else DEFAULT_DEPTH
    engine = SymbolicEngine(depth=depth, backend=args.backend)
    stats = SolveStats() if (args.stats or args.stats_json) else None
    print(f"{label}: bounded symbolic check to depth {depth} "
          f"({args.backend} backend)", file=out)
    ok = True
    try:
        for name, expr in obligations:
            result = engine.check_invariant(spec, expr, name=name,
                                            stats=stats)
            print(result.summary(), file=out)
            if result.counterexample is not None:
                print(result.counterexample.render(), file=out)
            ok = ok and result.verdict != VIOLATION
    except SymbolicUnsupported as exc:
        print(f"error: the symbolic engine cannot translate this spec "
              f"({exc}); rerun with --engine explicit", file=out)
        return 2
    except BackendUnavailable as exc:
        print(f"error: {exc}", file=out)
        return 2
    if args.stats and stats is not None:
        print(stats.summary(), file=out)
    _write_stats_json(args, stats)
    return 0 if ok else 1


def cmd_check(args: argparse.Namespace, out) -> int:
    if _durability_error(args, out):
        return 2
    if getattr(args, "engine", "explicit") == "symbolic":
        return _cmd_check_symbolic(args, out)
    module = _load(args.module)
    spec = module.spec(args.spec)
    label = f"{module.name}!{args.spec}"
    stats = _want_stats(args)
    # resolve the invariants *before* exploring: their free variables are
    # the observed set the reduction must keep visible (C2)
    inv_exprs = [(name, module.expr(name)) for name in args.invariant or ()]
    if args.por and args.property:
        print("warning: partial-order reduction preserves invariant and "
              "deadlock verdicts only; --property needs the full graph, "
              "so reduction is disabled for this run", file=out)
        args.por = False
    reduction = None
    if args.por:
        observed = sorted({v for _name, expr in inv_exprs
                           for v in expr.free_vars()})
        reduction = ReductionConfig(tuple(observed))
    start = perf_counter()
    try:
        graph = _run_exploration(args, spec, stats, reduction)
    except StateSpaceExplosion as exc:
        _maybe_manifest(args, label, perf_counter() - start, "explosion",
                        stats=stats, error=str(exc), reduction=reduction)
        _write_stats_json(args, stats)
        raise
    except (CheckpointError, CompactUnsupported) as exc:
        print(f"error: {exc}", file=out)
        return 2
    try:
        if getattr(graph, "reduction_used", False) and any(
                not check_invariant(graph, expr, name=name).ok
                for name, expr in inv_exprs):
            # a reduced run may reach the violating state along a different
            # shortest path; re-explore the full graph so the reported trace
            # is the canonical POR-off counterexample (the verdict itself is
            # already guaranteed identical by the ample conditions)
            print("note: violation found under reduction; re-exploring the "
                  "full graph for the canonical counterexample", file=out)
            _close_store(graph)
            graph = explore_parallel(spec, max_states=args.max_states,
                                     workers=args.workers, stats=stats)
        # edge_count is real N-edges; the stutter self-loops (one per node)
        # are reported separately so the N-edge count is not inflated
        print(f"{label}: {graph.state_count} states, "
              f"{graph.edge_count} edges (+{graph.stutter_count} stutter)",
              file=out)
        ok = True
        first_cex: Optional[Counterexample] = None
        run_invariant = check_invariant_compact if args.compact \
            else check_invariant
        for name, expr in inv_exprs:
            result = run_invariant(graph, expr, name=name, run_stats=stats)
            if first_cex is None and result.counterexample is not None:
                first_cex = result.counterexample
            ok = _report(result, out) and ok
        for name in args.property or ():
            from ..checker.liveness import premises_of_spec

            result = check_temporal_implication(
                graph, module.formula(name),
                premises=premises_of_spec(spec), name=name, run_stats=stats)
            if first_cex is None and result.counterexample is not None:
                first_cex = result.counterexample
            ok = _report(result, out) and ok
        if not (args.invariant or args.property):
            print("(no --invariant/--property given: exploration only)",
                  file=out)
        if args.stats and stats is not None:
            print(stats.summary(), file=out)
        _maybe_manifest(args, label, perf_counter() - start,
                        "ok" if ok else "violation", graph=graph,
                        counterexample=first_cex, stats=stats,
                        reduction=reduction)
        _write_stats_json(args, stats)
        return 0 if ok else 1
    finally:
        # release spill-store handles even when a check raises mid-way
        _close_store(graph)


def cmd_explore(args: argparse.Namespace, out) -> int:
    if _durability_error(args, out):
        return 2
    module = _load(args.module)
    spec = module.spec(args.spec)
    label = f"{module.name}!{args.spec}"
    stats = _want_stats(args)
    # no property is being checked, so nothing is observed: every class
    # is invisible and the reduction preserves reachability-of-deadlock
    reduction = ReductionConfig(()) if args.por else None
    start = perf_counter()
    try:
        graph = _run_exploration(args, spec, stats, reduction)
    except StateSpaceExplosion as exc:
        _maybe_manifest(args, label, perf_counter() - start, "explosion",
                        stats=stats, error=str(exc), reduction=reduction)
        _write_stats_json(args, stats)
        raise
    except (CheckpointError, CompactUnsupported) as exc:
        print(f"error: {exc}", file=out)
        return 2
    try:
        _maybe_manifest(args, label, perf_counter() - start, "ok",
                        graph=graph, stats=stats, reduction=reduction)
        print(f"{label}:", file=out)
        print(f"  states: {graph.state_count}", file=out)
        print(f"  edges:  {graph.edge_count} (+{graph.stutter_count} stutter)",
              file=out)
        print(f"  initial states: {len(graph.init_nodes)}", file=out)
        shown = min(args.show, graph.state_count)
        if shown:
            print(f"  first {shown} state(s):", file=out)
            for node in range(shown):
                print(f"    {graph.states[node]!r}", file=out)
        if args.stats and stats is not None:
            print(stats.summary(indent="  "), file=out)
        _write_stats_json(args, stats)
        return 0
    finally:
        _close_store(graph)


def cmd_trace(args: argparse.Namespace, out) -> int:
    module = _load(args.module)
    spec = module.spec(args.spec)
    walk = random_walk(spec, steps=args.steps, seed=args.seed)
    names = spec.universe.variables
    header = ["step"] + [str(i) for i in range(len(walk))]
    rows = [header]
    for name in names:
        rows.append([name] + [format_value(state[name]) for state in walk])
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)),
              file=out)
    return 0


def cmd_pretty(args: argparse.Namespace, out) -> int:
    module = _load(args.module)
    names = [args.definition] if args.definition else sorted(module.definitions)
    for name in names:
        value = module.get(name)
        from ..kernel.values import Domain

        if isinstance(value, Domain):
            print(f"{name} == {value!r}", file=out)
        elif hasattr(value, "next_action"):  # a bundled canonical Spec
            print(f"{name} == {value!r}", file=out)
        else:
            print(f"{name} == {pretty(value, unicode=args.unicode)}", file=out)
    return 0


def _terminal_exit_code(record: dict) -> int:
    """Map a finished service job to ``repro check``-style exit codes."""
    state = record.get("state")
    if state == "done":
        result = record.get("result") or {}
        verdict = result.get("verdict")
        if verdict == "ok":
            return 0
        if verdict == "unknown":
            return 0  # symbolic: no violation within the bound (not a proof)
        if verdict == "violation":
            return 1
        return 2  # explosion / anything unexpected
    if state == "cancelled":
        return 3
    return 2  # failed


def cmd_serve(args: argparse.Namespace, out) -> int:
    from ..service.scheduler import TenantPolicy
    from ..service.server import run_server

    policy = None
    if (args.tenant_rate is not None or args.tenant_max_inflight is not None
            or args.tenant_queue_limit is not None):
        policy = TenantPolicy(rate=args.tenant_rate,
                              burst=args.tenant_burst,
                              max_inflight=args.tenant_max_inflight,
                              max_queued=args.tenant_queue_limit)
    return run_server(state_dir=args.state_dir, host=args.host,
                      port=args.port, pool_size=args.pool_size,
                      queue_limit=args.queue_limit, procs=args.procs,
                      tenant_policy=policy, out=out)


def cmd_submit(args: argparse.Namespace, out) -> int:
    from ..service.client import QueueFullError, ServiceClient

    with open(args.module) as handle:
        source = handle.read()
    client = ServiceClient(args.server, tenant=args.tenant,
                           retries=args.retries)
    try:
        payload = client.submit(
            source, spec=args.spec,
            invariants=args.invariant or (),
            properties=args.property or (),
            max_states=args.max_states, por=bool(args.por),
            compact=bool(args.compact),
            workers=args.workers, level_delay=args.level_delay,
            engine=args.engine, depth=args.depth)
    except QueueFullError as exc:
        print(f"error: {exc} (retry in ~{exc.retry_after:g}s)", file=out)
        return 3
    job = payload["job"]
    if args.as_json:
        print(json.dumps(payload), file=out)
    else:
        print(f"job {job['id']}: {job['state']} "
              f"(disposition={payload['disposition']}, "
              f"cache_hit={job['cache_hit']})", file=out)
    if not args.wait:
        return 0
    record = client.wait(job["id"], timeout=args.timeout)
    result = record.get("result") or {}
    for check in result.get("checks", ()):
        print(check["summary"], file=out)
        cex = check.get("counterexample")
        if cex:
            print(cex["rendered"], file=out)
    verdict = result.get("verdict") or record.get("state")
    print(f"job {job['id']}: {record['state']} "
          f"(verdict={verdict}, cache_hit={record['cache_hit']})", file=out)
    return _terminal_exit_code(record)


def cmd_watch(args: argparse.Namespace, out) -> int:
    """Stream a job's progress events as NDJSON lines until it ends."""
    from ..service.client import ServiceClient

    client = ServiceClient(args.server)
    for event in client.events(args.job, timeout=args.timeout):
        print(json.dumps(event), file=out)
    return _terminal_exit_code(client.job(args.job))


def cmd_cancel(args: argparse.Namespace, out) -> int:
    from ..service.client import ServiceClient

    outcome = ServiceClient(args.server).cancel(args.job)
    print(f"job {args.job}: cancel "
          f"{'accepted' if outcome['accepted'] else 'rejected'} "
          f"(state={outcome['state']})", file=out)
    return 0 if outcome["accepted"] else 1


def cmd_admin(args: argparse.Namespace, out) -> int:
    """Operator's window onto a running service: ``repro admin
    metrics|jobs|tenants --at URL``."""
    from ..service.client import ServiceClient

    client = ServiceClient(args.at)
    if args.what == "metrics":
        print(client.metrics(), file=out, end="")
        return 0
    if args.what == "tenants":
        tenants = client.tenants()
        if args.as_json:
            print(json.dumps(tenants, indent=2, sort_keys=True), file=out)
            return 0
        if not tenants:
            # scheduler state is per process; with --procs N the answer
            # depends on which process took the connection
            print("no tenants yet on the answering process "
                  "(fleet-wide counters: repro admin metrics)", file=out)
            return 0
        print(f"{'tenant':<20} {'queued':>6} {'inflight':>8} "
              f"{'admitted':>8} {'completed':>9} {'throttled':>9}",
              file=out)
        for name, entry in tenants.items():
            print(f"{name:<20} {entry['queued']:>6} {entry['inflight']:>8} "
                  f"{entry['admitted']:>8} {entry['completed']:>9} "
                  f"{entry['throttled']:>9}", file=out)
        return 0
    # args.what == "jobs"
    records = client.list_jobs()
    if args.as_json:
        print(json.dumps(records, indent=2), file=out)
        return 0
    if not records:
        print("no jobs", file=out)
        return 0
    print(f"{'id':<14} {'tenant':<14} {'state':<10} {'verdict':<10} "
          f"{'cache':<5} {'coalesced':>9}", file=out)
    for record in records:
        result = record.get("result") or {}
        print(f"{record.get('id', '?'):<14} "
              f"{record.get('tenant', 'default'):<14} "
              f"{record.get('state', '?'):<10} "
              f"{str(result.get('verdict') or '-'):<10} "
              f"{'yes' if record.get('cache_hit') else 'no':<5} "
              f"{record.get('coalesced', 0):>9}", file=out)
    return 0


def cmd_worker(args: argparse.Namespace, out) -> int:
    from ..service.worker import run_worker

    return run_worker(host=args.host, port=args.port,
                      endpoint_file=args.endpoint_file, out=out)


def cmd_coordinate(args: argparse.Namespace, out) -> int:
    from ..checker.distributed import (
        explore_distributed,
        resume_distributed,
        spawn_local_workers,
    )

    if bool(args.spawn) == bool(args.worker_at):
        print("error: give exactly one of --spawn N (launch localhost "
              "workers) or --worker-at URL (repeatable; already-running "
              "repro worker processes)", file=out)
        return 2
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint PATH "
              "(the snapshot to continue from)", file=out)
        return 2
    if args.resume and not os.path.exists(args.checkpoint):
        print(f"error: cannot resume: checkpoint file "
              f"{args.checkpoint!r} does not exist", file=out)
        return 2
    module = _load(args.module)
    spec = module.spec(args.spec)
    label = f"{module.name}!{args.spec}"
    stats = _want_stats(args)
    start = perf_counter()
    pool = spawn_local_workers(args.spawn) if args.spawn else None
    urls = list(pool.urls) if pool is not None else list(args.worker_at)
    # manifest bookkeeping reuses the check/explore helper, which reads
    # these engine flags off the namespace
    args.workers = len(urls)
    args.store = None
    try:
        try:
            if args.resume:
                graph = resume_distributed(
                    args.checkpoint, urls, spec,
                    max_states=args.max_states, stats=stats,
                    checkpoint_every=args.checkpoint_every,
                    heartbeat=args.heartbeat,
                    worker_timeout=args.worker_timeout)
            else:
                graph = explore_distributed(
                    spec, urls, max_states=args.max_states,
                    engine=args.engine, stats=stats,
                    checkpoint=args.checkpoint,
                    checkpoint_every=args.checkpoint_every,
                    heartbeat=args.heartbeat,
                    worker_timeout=args.worker_timeout)
        except StateSpaceExplosion as exc:
            args.compact = getattr(exc, "graph", None) is not None \
                and not hasattr(exc.graph, "store")
            _maybe_manifest(args, label, perf_counter() - start,
                            "explosion", stats=stats, error=str(exc))
            _write_stats_json(args, stats)
            raise
        except (CheckpointError, CompactUnsupported) as exc:
            print(f"error: {exc}", file=out)
            return 2
    finally:
        if pool is not None:
            pool.terminate()
    try:
        args.compact = not hasattr(graph, "store")
        _maybe_manifest(args, label, perf_counter() - start, "ok",
                        graph=graph, stats=stats)
        digest = graph.digest() if hasattr(graph, "digest") \
            else digest_of_graph(graph)
        print(f"{label}: {graph.state_count} states, "
              f"{graph.edge_count} edges (+{graph.stutter_count} stutter) "
              f"across {len(urls)} worker node(s)", file=out)
        print(f"  digest: {digest}", file=out)
        if args.stats and stats is not None:
            print(stats.summary(indent="  "), file=out)
        _write_stats_json(args, stats)
        return 0
    finally:
        _close_store(graph)


def _add_durability_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--checkpoint", default=None, metavar="PATH",
                     help="snapshot the exploration to PATH (atomically, at "
                          "BFS level boundaries) and write a JSON run "
                          "manifest to PATH.manifest.json")
    sub.add_argument("--checkpoint-every", type=_positive_int, default=1,
                     metavar="N",
                     help="snapshot every N BFS levels (default 1; must be "
                          ">= 1)")
    sub.add_argument("--resume", action="store_true",
                     help="continue from the --checkpoint snapshot instead "
                          "of starting fresh; the resumed run is bit-for-bit "
                          "the uninterrupted one (pass a larger --max-states "
                          "to continue past an exceeded budget)")
    sub.add_argument("--worker-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="bound the seconds a parallel worker may spend on "
                          "one frontier chunk; a worker that dies or "
                          "exceeds this is retried on a fresh process "
                          "(never changes the result)")


def _add_scaling_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--por", dest="por", action="store_true", default=None,
                     help="enable partial-order reduction derived from the "
                          "spec's Disjoint decomposition (sound for "
                          "invariants and deadlock; verdicts and reported "
                          "traces are identical to a full run)")
    sub.add_argument("--no-por", dest="por", action="store_false",
                     help="force reduction off (on --resume this asserts "
                          "the checkpoint was written without reduction)")
    sub.add_argument("--store", choices=("mem", "spill"), default=None,
                     help="state-store backend: 'mem' (default) interns "
                          "states in RAM; 'spill' keeps a bounded LRU of "
                          "hot states backed by data+index files under "
                          "--spill-dir, so --max-states can exceed resident "
                          "memory.  Node numbering and verdicts are "
                          "identical either way.")
    sub.add_argument("--spill-dir", default=None, metavar="DIR",
                     help="directory for the spill store's states.dat / "
                          "states.idx files (required with --store spill)")
    sub.add_argument("--spill-cache", type=_positive_int, default=4096,
                     metavar="N",
                     help="spill store: how many hot decoded states to keep "
                          "resident (default 4096; must be >= 1); purely a "
                          "speed knob, never changes results")


def _add_engine_flags(sub: argparse.ArgumentParser) -> None:
    """The exploration-engine flags ``check`` and ``explore`` share."""
    sub.add_argument("--max-states", type=_positive_int, default=200_000,
                     help="hard budget on interned states (default 200000)")
    sub.add_argument("--workers", type=int, default=1,
                     help="worker processes for the exploration (default 1 "
                          "= the serial reference explorer; 0 = one per "
                          "core).  Any value yields the identical graph, "
                          "numbering, and traces.")
    sub.add_argument("--compact", action="store_true",
                     help="fingerprint-only engine: keep packed integer "
                          "states plus BFS parents instead of full State "
                          "objects, and regenerate counterexample traces "
                          "on demand.  Verdicts, traces, and node "
                          "numbering are identical to the full engine; "
                          "incompatible with --por, --store spill, and "
                          "--property (those need the full graph).")
    sub.add_argument("--stats", action="store_true",
                     help="print exploration statistics (states/sec, "
                          "depth, real-vs-stutter edges, per-phase timing, "
                          "per-worker throughput)")
    sub.add_argument("--stats-json", default=None, metavar="PATH",
                     help="also write the statistics as JSON to PATH (the "
                          "machine-readable twin of --stats; implies "
                          "collecting stats)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Open Systems in TLA: model-check mini-TLA modules.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="explore and check a module")
    check.add_argument("module",
                       help="path to a mini-TLA module file, or "
                            "@name:key=val,... for a bundled protocol "
                            "(e.g. @mutex:n=2,clock=3 or "
                            "@paxos:acceptors=3,broken)")
    check.add_argument("--spec", default="Spec", help="spec definition name")
    check.add_argument("--invariant", action="append",
                       help="state-predicate definition to check (repeatable)")
    check.add_argument("--property", action="append",
                       help="temporal definition to check (repeatable)")
    check.add_argument("--engine", choices=("explicit", "symbolic"),
                       default="explicit",
                       help="checking engine: 'explicit' (default) "
                            "explores the state graph exhaustively and "
                            "proves invariants; 'symbolic' solves a "
                            "CNF unrolling to --depth steps (finds deep "
                            "bugs without enumerating states, but a "
                            "clean run is UNKNOWN, not a proof)")
    check.add_argument("--depth", type=_positive_int, default=None,
                       metavar="K",
                       help="symbolic unrolling bound: search for a "
                            "violation within K steps of an initial "
                            "state (default 10; requires --engine "
                            "symbolic)")
    check.add_argument("--backend", choices=("cdcl", "z3"),
                       default="cdcl",
                       help="SAT backend for --engine symbolic: 'cdcl' "
                            "(default) is the built-in stdlib solver; "
                            "'z3' uses the z3 package when installed")
    _add_engine_flags(check)
    _add_durability_flags(check)
    _add_scaling_flags(check)
    check.set_defaults(func=cmd_check)

    exp = sub.add_parser("explore", help="explore the state space")
    exp.add_argument("module")
    exp.add_argument("--spec", default="Spec")
    exp.add_argument("--show", type=int, default=5,
                     help="how many states to print")
    _add_engine_flags(exp)
    _add_durability_flags(exp)
    _add_scaling_flags(exp)
    exp.set_defaults(func=cmd_explore)

    trace = sub.add_parser("trace", help="print a random behavior prefix")
    trace.add_argument("module")
    trace.add_argument("--spec", default="Spec")
    trace.add_argument("--steps", type=int, default=12)
    trace.add_argument("--seed", type=int, default=None)
    trace.set_defaults(func=cmd_trace)

    pp = sub.add_parser("pretty", help="pretty-print definitions")
    pp.add_argument("module")
    pp.add_argument("definition", nargs="?", default=None)
    pp.add_argument("--unicode", action="store_true")
    pp.set_defaults(func=cmd_pretty)

    serve = sub.add_parser(
        "serve", help="run the checking service (async job server with a "
                      "content-addressed result cache)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8123,
                       help="TCP port (default 8123; 0 = pick an ephemeral "
                            "port, recorded in STATE_DIR/server.json)")
    serve.add_argument("--state-dir", default=".repro-service", metavar="DIR",
                       help="where jobs, checkpoints, and the result cache "
                            "live; restarting on the same directory resumes "
                            "interrupted jobs (default .repro-service)")
    serve.add_argument("--pool-size", type=_positive_int, default=2,
                       metavar="N", help="concurrent explorations (default 2)")
    serve.add_argument("--queue-limit", type=_positive_int, default=16,
                       metavar="N",
                       help="admission limit on queued jobs; submissions "
                            "beyond it get 429 + Retry-After (default 16)")
    serve.add_argument("--procs", type=_positive_int, default=1, metavar="N",
                       help="pre-fork N server processes sharing the port "
                            "(SO_REUSEPORT) and the state directory "
                            "(default 1)")
    serve.add_argument("--tenant-rate", type=float, default=None,
                       metavar="PER_SECOND",
                       help="per-tenant admission rate (token bucket); "
                            "unset = unlimited")
    serve.add_argument("--tenant-burst", type=_positive_int, default=8,
                       metavar="N",
                       help="per-tenant token-bucket burst capacity "
                            "(default 8; only meaningful with "
                            "--tenant-rate)")
    serve.add_argument("--tenant-max-inflight", type=_positive_int,
                       default=None, metavar="N",
                       help="per-tenant cap on concurrently running jobs")
    serve.add_argument("--tenant-queue-limit", type=_positive_int,
                       default=None, metavar="N",
                       help="per-tenant cap on queued jobs (within the "
                            "global --queue-limit)")
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a module to a running checking service")
    submit.add_argument("module", help="path to a mini-TLA module file")
    submit.add_argument("--spec", default="Spec")
    submit.add_argument("--invariant", action="append",
                        help="state-predicate definition to check "
                             "(repeatable)")
    submit.add_argument("--property", action="append",
                        help="temporal definition to check (repeatable)")
    submit.add_argument("--max-states", type=_positive_int, default=200_000)
    submit.add_argument("--workers", type=int, default=1)
    submit.add_argument("--por", action="store_true", default=False,
                        help="request partial-order reduction (same "
                             "semantics as repro check --por)")
    submit.add_argument("--compact", action="store_true", default=False,
                        help="request the fingerprint-only compact engine "
                             "(same semantics as repro check --compact; "
                             "auto-disabled server-side when temporal "
                             "properties need the full graph)")
    submit.add_argument("--engine", choices=("explicit", "symbolic"),
                        default="explicit",
                        help="checking engine (same semantics as repro "
                             "check --engine; symbolic verdicts are "
                             "'violation' or 'unknown', cached under a "
                             "key that includes the engine and depth)")
    submit.add_argument("--depth", type=_positive_int, default=None,
                        metavar="K",
                        help="symbolic unrolling bound (requires "
                             "--engine symbolic)")
    submit.add_argument("--level-delay", type=float, default=0.0,
                        metavar="SECONDS",
                        help="pace the exploration: sleep this long after "
                             "every BFS level (demo/testing knob; never "
                             "changes the result)")
    submit.add_argument("--server", default="http://127.0.0.1:8123",
                        metavar="URL")
    submit.add_argument("--tenant", default=None, metavar="NAME",
                        help="submit as this tenant (rides the "
                             "X-Repro-Tenant header; rate limits, queue "
                             "shares, and fair scheduling are per tenant)")
    submit.add_argument("--retries", type=int, default=4, metavar="N",
                        help="retry a 429 up to N times, honouring the "
                             "server's Retry-After with capped backoff + "
                             "jitter (default 4; 0 = fail fast)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes and exit like "
                             "repro check (0 ok, 1 violation, 2 error, "
                             "3 cancelled)")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait timeout in seconds (default 600)")
    submit.add_argument("--json", dest="as_json", action="store_true",
                        help="print the raw submission response as JSON")
    submit.set_defaults(func=cmd_submit)

    watch = sub.add_parser(
        "watch", help="stream a job's progress events as NDJSON until it "
                      "finishes")
    watch.add_argument("job", help="job id (from repro submit)")
    watch.add_argument("--server", default="http://127.0.0.1:8123",
                       metavar="URL")
    watch.add_argument("--timeout", type=float, default=600.0,
                       help="per-read stream timeout in seconds")
    watch.set_defaults(func=cmd_watch)

    worker = sub.add_parser(
        "worker", help="run a distributed-exploration worker node (owns a "
                       "visited-set partition; driven by repro coordinate)")
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=int, default=0,
                        help="TCP port (default 0 = pick an ephemeral port, "
                             "recorded in --endpoint-file)")
    worker.add_argument("--endpoint-file", default=None, metavar="PATH",
                        help="write {host, port, url, pid} JSON here once "
                             "listening (how spawners discover the port)")
    worker.set_defaults(func=cmd_worker)

    coord = sub.add_parser(
        "coordinate",
        help="explore a module across worker nodes; the resulting graph "
             "(numbering, digest, traces) is bit-for-bit the "
             "single-machine run")
    coord.add_argument("module",
                       help="module file or @name:key=val,... bundled "
                            "protocol reference")
    coord.add_argument("--spec", default="Spec")
    coord.add_argument("--spawn", type=_positive_int, default=None,
                       metavar="N",
                       help="launch N localhost worker processes for this "
                            "run (mutually exclusive with --worker-at)")
    coord.add_argument("--worker-at", action="append", metavar="URL",
                       help="URL of an already-running repro worker "
                            "(repeatable; one per node)")
    coord.add_argument("--engine", choices=("auto", "compact", "full"),
                       default="auto",
                       help="exploration engine: auto picks compact "
                            "(fingerprint-only partitions on the workers) "
                            "when the spec supports packed encoding, else "
                            "full (stateless expander workers)")
    coord.add_argument("--max-states", type=_positive_int, default=200_000,
                       help="hard budget on interned states (default "
                            "200000)")
    coord.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="snapshot the run at BFS level boundaries; the "
                            "snapshot is also a valid single-machine "
                            "checkpoint")
    coord.add_argument("--checkpoint-every", type=_positive_int, default=1,
                       metavar="N")
    coord.add_argument("--resume", action="store_true",
                       help="continue the --checkpoint snapshot on this "
                            "cluster (any size; workers need not be the "
                            "original ones)")
    coord.add_argument("--heartbeat", type=float, default=2.0,
                       metavar="SECONDS",
                       help="health-probe interval for detecting hung "
                            "workers (default 2.0)")
    coord.add_argument("--worker-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="cap each wire operation to a worker; a node "
                            "that exceeds it is treated as lost and its "
                            "ranges move to the survivors")
    coord.add_argument("--stats", action="store_true",
                       help="print exploration statistics, including "
                            "per-node throughput and loss/rebalance "
                            "counters")
    coord.add_argument("--stats-json", default=None, metavar="PATH")
    coord.set_defaults(func=cmd_coordinate)

    cancel = sub.add_parser("cancel", help="cancel a queued or running job")
    cancel.add_argument("job", help="job id (from repro submit)")
    cancel.add_argument("--server", default="http://127.0.0.1:8123",
                        metavar="URL")
    cancel.set_defaults(func=cmd_cancel)

    admin = sub.add_parser(
        "admin", help="inspect a running service: Prometheus metrics, the "
                      "job table, or per-tenant scheduler state")
    admin.add_argument("what", choices=("metrics", "jobs", "tenants"),
                       help="metrics = the /metrics text exposition; jobs "
                            "= every job on the state dir; tenants = "
                            "queue/in-flight/quota state per tenant")
    admin.add_argument("--at", default="http://127.0.0.1:8123",
                       metavar="URL", help="service URL (default "
                                           "http://127.0.0.1:8123)")
    admin.add_argument("--json", dest="as_json", action="store_true",
                       help="print raw JSON instead of the table "
                            "(ignored for metrics, which is always the "
                            "Prometheus text format)")
    admin.set_defaults(func=cmd_admin)

    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.func(args, out)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=out)
        return 2
    except Exception as exc:  # surface parse/elaboration errors readably
        print(f"error: {type(exc).__name__}: {exc}", file=out)
        return 2
