"""Command-line tooling (``python -m repro ...``)."""

from .cli import main

__all__ = ["main"]
