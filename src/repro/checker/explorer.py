"""Breadth-first explicit-state exploration of canonical specifications.

:func:`initial_states` enumerates the states satisfying an initial
predicate, reusing the action compiler (the predicate's variables are
primed so equations become bindings); :func:`explore` builds the
reachable :class:`~repro.checker.graph.StateGraph` of a
:class:`~repro.spec.Spec` under its next-state action ``N`` (stuttering
self-loops are added by the graph itself).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..kernel.action import successors
from ..kernel.expr import Expr, prime_expr, to_expr
from ..kernel.state import State, Universe
from ..spec import Spec
from .graph import StateGraph


class StateSpaceExplosion(Exception):
    """Exploration exceeded the configured state budget."""


def initial_states(init: Expr, universe: Universe) -> Iterator[State]:
    """All states of *universe* satisfying the state predicate *init*.

    Implemented by priming the predicate and asking the action compiler for
    the successors of a dummy state: equations ``x = c`` become bindings
    ``x' = c``, so typical initial predicates enumerate without scanning the
    whole universe.
    """
    init = to_expr(init)
    if init.primed_vars():
        raise ValueError(f"initial predicate contains primed variables: {init!r}")
    primed = prime_expr(init)
    dummy = State({name: next(iter(universe.domain(name).values()))
                   for name in universe.variables})
    yield from successors(primed, dummy, universe)


def explore(
    spec: Spec,
    max_states: int = 200_000,
) -> StateGraph:
    """The reachable state graph of ``Init ∧ □[N]_v`` over the spec's universe.

    Edges are ``N`` steps (stutter self-loops implicit on every node).
    Variables outside ``v`` are treated like any other universe variable:
    whatever ``N`` allows.  For a *complete system* -- the only thing the
    Composition Theorem ever asks us to explore -- ``N`` constrains every
    variable, so the graph is finite and tight.
    """
    graph = StateGraph(spec.universe)
    frontier: List[int] = []
    for state in initial_states(spec.init, spec.universe):
        node, new = graph.add_state(state)
        if new:
            graph.init_nodes.append(node)
            frontier.append(node)
    while frontier:
        if graph.state_count > max_states:
            raise StateSpaceExplosion(
                f"exploring {spec.name!r} exceeded {max_states} states"
            )
        next_frontier: List[int] = []
        for src in frontier:
            state = graph.states[src]
            for succ_state in successors(spec.next_action, state, spec.universe):
                dst, new = graph.add_state(succ_state, parent=src)
                graph.add_edge(src, dst)
                if new:
                    next_frontier.append(dst)
        frontier = next_frontier
    return graph
