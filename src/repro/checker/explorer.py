"""Breadth-first explicit-state exploration of canonical specifications.

:func:`initial_states` enumerates the states satisfying an initial
predicate, reusing the action compiler (the predicate's variables are
primed so equations become bindings); :func:`explore` builds the
reachable :class:`~repro.checker.graph.StateGraph` of a
:class:`~repro.spec.Spec` under its next-state action ``N`` (stuttering
self-loops are added by the graph itself).

The hot path is plan-driven: the next-state action is compiled **once
per run** into a :class:`~repro.kernel.action.SuccessorPlan` specialised
to the spec's universe, instead of re-analysing the expression per
state.  Pass an :class:`~repro.checker.stats.ExploreStats` to collect
throughput, depth, and edge counts.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterator, List, Optional

from ..kernel.action import compile_action
from ..kernel.expr import Expr, prime_expr, to_expr
from ..kernel.state import State, Universe
from ..spec import Spec
from .graph import StateGraph, StateSpaceExplosion
from .stats import ExploreStats

__all__ = ["StateSpaceExplosion", "initial_states", "explore"]


def initial_states(init: Expr, universe: Universe) -> Iterator[State]:
    """All states of *universe* satisfying the state predicate *init*.

    Implemented by priming the predicate and asking the action compiler for
    the successors of a dummy state: equations ``x = c`` become bindings
    ``x' = c``, so typical initial predicates enumerate without scanning the
    whole universe.
    """
    init = to_expr(init)
    if init.primed_vars():
        raise ValueError(f"initial predicate contains primed variables: {init!r}")
    primed = prime_expr(init)
    dummy_values = {}
    for name in universe.variables:
        try:
            dummy_values[name] = next(iter(universe.domain(name).values()))
        except StopIteration:
            raise ValueError(
                f"variable {name!r} has an empty domain; cannot enumerate "
                f"initial states over it"
            ) from None
    dummy = State(dummy_values)
    yield from compile_action(primed).plan(universe).successors(dummy)


def explore(
    spec: Spec,
    max_states: int = 200_000,
    stats: Optional[ExploreStats] = None,
) -> StateGraph:
    """The reachable state graph of ``Init ∧ □[N]_v`` over the spec's universe.

    Edges are ``N`` steps (stutter self-loops implicit on every node).
    Variables outside ``v`` are treated like any other universe variable:
    whatever ``N`` allows.  For a *complete system* -- the only thing the
    Composition Theorem ever asks us to explore -- ``N`` constrains every
    variable, so the graph is finite and tight.

    ``max_states`` is a hard budget on interned states, enforced by the
    graph at insertion time: the first state beyond the budget raises
    :class:`StateSpaceExplosion` (see
    :class:`~repro.checker.graph.StateGraph`).
    """
    start = perf_counter()
    plan = compile_action(spec.next_action).plan(spec.universe)
    graph = StateGraph(spec.universe, max_states=max_states, name=spec.name)
    frontier: List[int] = []
    for state in initial_states(spec.init, spec.universe):
        node, new = graph.add_state(state)
        if new:
            graph.init_nodes.append(node)
            frontier.append(node)
    depth = 0
    plan_successors = plan.successors
    states = graph.states
    merge_batch = graph.merge_batch
    while frontier:
        next_frontier: List[int] = []
        for src in frontier:
            next_frontier.extend(merge_batch(src, plan_successors(states[src])))
        frontier = next_frontier
        if frontier:
            depth += 1
    if stats is not None:
        stats.record_explore(graph, depth, perf_counter() - start)
    return graph
