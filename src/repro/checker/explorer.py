"""Breadth-first explicit-state exploration of canonical specifications.

:func:`initial_states` enumerates the states satisfying an initial
predicate, reusing the action compiler (the predicate's variables are
primed so equations become bindings); :func:`explore` builds the
reachable :class:`~repro.checker.graph.StateGraph` of a
:class:`~repro.spec.Spec` under its next-state action ``N`` (stuttering
self-loops are added by the graph itself).

The hot path is plan-driven: the next-state action is compiled **once
per run** into a :class:`~repro.kernel.action.SuccessorPlan` specialised
to the spec's universe, instead of re-analysing the expression per
state.  Pass an :class:`~repro.checker.stats.ExploreStats` to collect
throughput, depth, and edge counts.

Runs are durable: pass ``checkpoint=path`` (and optionally
``checkpoint_every=N``) to atomically snapshot the run every N BFS
levels via :mod:`repro.checker.checkpoint`;
:func:`repro.checker.checkpoint.resume` continues a snapshot bit-for-bit
identically to an uninterrupted run.

Two scaling levers plug in through :mod:`repro.checker.reduction`:

* ``reduction=ReductionConfig(...)`` enables ample/stubborn-set
  partial-order reduction derived from the paper's ``Disjoint``
  decomposition -- sound for invariants and deadlock, auto-disabled
  (with the reason recorded on the stats) when the action shape is not
  reducible.  The POR-off path is byte-identical to the pre-subsystem
  explorer.
* ``store=...`` swaps the state-interning backend (in-RAM dict vs the
  disk spill store), without changing node numbering or verdicts.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterator, List, Optional, Tuple, TYPE_CHECKING

from ..kernel.action import compile_action
from ..kernel.expr import Expr, prime_expr, to_expr
from ..kernel.state import State, Universe
from ..spec import Spec
from .checkpoint import save_checkpoint
from .graph import StateGraph, StateSpaceExplosion
from .stats import ExploreStats

if TYPE_CHECKING:  # pragma: no cover - types only
    from .reduction.por import AmpleReducer, ReductionConfig
    from .reduction.store import StateStore

__all__ = ["StateSpaceExplosion", "initial_states", "explore"]


def initial_states(init: Expr, universe: Universe) -> Iterator[State]:
    """All states of *universe* satisfying the state predicate *init*.

    Implemented by priming the predicate and asking the action compiler for
    the successors of a dummy state: equations ``x = c`` become bindings
    ``x' = c``, so typical initial predicates enumerate without scanning the
    whole universe.
    """
    init = to_expr(init)
    if init.primed_vars():
        raise ValueError(f"initial predicate contains primed variables: {init!r}")
    primed = prime_expr(init)
    dummy_values = {}
    for name in universe.variables:
        try:
            dummy_values[name] = next(iter(universe.domain(name).values()))
        except StopIteration:
            raise ValueError(
                f"variable {name!r} has an empty domain; cannot enumerate "
                f"initial states over it"
            ) from None
    dummy = State(dummy_values)
    yield from compile_action(primed).plan(universe).successors(dummy)


def _seed_graph(
    spec: Spec, max_states: int, store: Optional["StateStore"] = None
) -> Tuple[StateGraph, List[int]]:
    """A fresh graph holding the spec's initial states, plus the level-0
    frontier -- the common starting point of the serial and parallel
    explorers."""
    graph = StateGraph(spec.universe, max_states=max_states, name=spec.name,
                       store=store)
    frontier: List[int] = []
    for state in initial_states(spec.init, spec.universe):
        node, new = graph.add_state(state)
        if new:
            graph.init_nodes.append(node)
            frontier.append(node)
    return graph, frontier


def _resolve_reducer(
    spec: Spec,
    reduction: Optional["ReductionConfig"],
    stats: Optional[ExploreStats],
) -> Optional["AmpleReducer"]:
    """Build the reducer for a run (or record why reduction is off)."""
    if reduction is None:
        return None
    from .reduction.por import build_reducer

    reducer, reason = build_reducer(spec, reduction)
    if stats is not None:
        if reducer is None:
            stats.record_reduction(enabled=False, reason=reason)
        else:
            stats.record_reduction(enabled=True)
    return reducer


def _finish_reduction(graph: StateGraph,
                      reducer: Optional["AmpleReducer"],
                      stats: Optional[ExploreStats]) -> None:
    """Fold the reducer's merge-time counters into graph/stats state."""
    if reducer is None:
        return
    counters = reducer.counters
    graph.reduction_used = bool(counters["ample_states"])
    if stats is not None:
        stats.record_reduction(enabled=True, counters=counters)


def _drive(
    spec: Spec,
    graph: StateGraph,
    frontier: List[int],
    depth: int,
    levels: int,
    elapsed_before: float,
    stats: Optional[ExploreStats] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: int = 1,
    start: Optional[float] = None,
    reducer: Optional["AmpleReducer"] = None,
) -> StateGraph:
    """The serial BFS engine, resumable at any level boundary.

    Expands *frontier* level by level until empty.  ``depth`` and
    ``levels`` are the counters accumulated so far (zero for a fresh
    run), ``elapsed_before`` the wall-clock seconds a resumed run already
    spent before its checkpoint.  When *checkpoint* is set, the run is
    snapshotted atomically after every ``checkpoint_every``-th completed
    level; because a level expansion is a pure function of
    (graph, frontier) and the snapshot captures both exactly, resuming
    reproduces the uninterrupted run bit-for-bit.

    With a *reducer*, each source is expanded through its ample set and
    merged via :func:`repro.checker.reduction.por.merge_source` (which
    applies the C3 cycle proviso against the live graph); without one,
    the loop below is exactly the pre-reduction hot path.
    """
    if start is None:
        start = perf_counter()
    states = graph.states
    merge_batch = graph.merge_batch
    if reducer is None:
        plan = compile_action(spec.next_action).plan(spec.universe)
        plan_successors = plan.successors
    else:
        from .reduction.por import merge_source
        reduce_expand = reducer.expand
    while frontier:
        next_frontier: List[int] = []
        if reducer is None:
            for src in frontier:
                next_frontier.extend(
                    merge_batch(src, plan_successors(states[src])))
        else:
            for src in frontier:
                tag, succs, pruned = reduce_expand(states[src])
                next_frontier.extend(
                    merge_source(graph, src, tag, succs, pruned, reducer))
        if stats is not None:
            stats.record_level(len(frontier), graph)
        frontier = next_frontier
        levels += 1
        if frontier:
            depth += 1
        # snapshot on the cadence, plus always once the frontier drains:
        # the file ends reflecting the completed run (resuming it is a no-op)
        if checkpoint is not None and (
                not frontier or levels % checkpoint_every == 0):
            save_checkpoint(
                checkpoint, spec, graph, frontier, depth, levels,
                elapsed_seconds=(elapsed_before + perf_counter() - start),
                workers=1, checkpoint_every=checkpoint_every, stats=stats,
                reduction=(reducer.config.as_dict()
                           if reducer is not None else None),
                store=graph.store.config(),
            )
    _finish_reduction(graph, reducer, stats)
    if stats is not None:
        stats.record_explore(graph, depth,
                             elapsed_before + perf_counter() - start)
    return graph


def explore(
    spec: Spec,
    max_states: int = 200_000,
    stats: Optional[ExploreStats] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: int = 1,
    reduction: Optional["ReductionConfig"] = None,
    store: Optional["StateStore"] = None,
) -> StateGraph:
    """The reachable state graph of ``Init ∧ □[N]_v`` over the spec's universe.

    Edges are ``N`` steps (stutter self-loops implicit on every node).
    Variables outside ``v`` are treated like any other universe variable:
    whatever ``N`` allows.  For a *complete system* -- the only thing the
    Composition Theorem ever asks us to explore -- ``N`` constrains every
    variable, so the graph is finite and tight.

    ``max_states`` is a hard budget on interned states, enforced by the
    graph at insertion time: the first state beyond the budget raises
    :class:`StateSpaceExplosion` (see
    :class:`~repro.checker.graph.StateGraph`).

    Pass ``checkpoint=path`` to snapshot the run atomically every
    ``checkpoint_every`` BFS levels;
    :func:`repro.checker.checkpoint.resume` continues the snapshot
    bit-for-bit identically (including after a crash or an exceeded
    budget -- the last snapshot survives both).

    ``reduction`` / ``store`` plug in partial-order reduction and the
    state-store backend (see :mod:`repro.checker.reduction`); both
    default to off, which is the byte-identical legacy behaviour.
    """
    start = perf_counter()
    reducer = _resolve_reducer(spec, reduction, stats)
    # on any error (budget explosion included) close the caller's store:
    # exceptions escape with the graph unreachable to the caller, so this
    # is the only place a spilled run's mmap/file handles get released
    try:
        graph, frontier = _seed_graph(spec, max_states, store=store)
        return _drive(spec, graph, frontier, depth=0, levels=0,
                      elapsed_before=0.0, stats=stats, checkpoint=checkpoint,
                      checkpoint_every=checkpoint_every, start=start,
                      reducer=reducer)
    except BaseException:
        if store is not None:
            store.close()
        raise
