"""Invariant (safety) checking over reachable state graphs."""

from __future__ import annotations

from typing import Optional, Union

from ..kernel.behavior import FiniteBehavior
from ..kernel.expr import Expr, to_expr
from ..spec import Spec
from .explorer import explore
from .graph import StateGraph
from .results import CheckResult, Counterexample
from .stats import ExploreStats, maybe_phase


def check_invariant(
    spec_or_graph: Union[Spec, StateGraph],
    invariant: Expr,
    name: Optional[str] = None,
    max_states: int = 200_000,
    run_stats: Optional[ExploreStats] = None,
) -> CheckResult:
    """Does every reachable state of the spec satisfy the predicate?

    Accepts a pre-explored :class:`StateGraph` to amortise exploration
    across several invariants.  Pass *run_stats* to time the exploration
    and scan phases.
    """
    invariant = to_expr(invariant)
    if isinstance(spec_or_graph, StateGraph):
        graph = spec_or_graph
        label = name or "invariant"
        if run_stats is not None and run_stats.states == 0:
            run_stats.record_graph(graph)
    else:
        graph = explore(spec_or_graph, max_states=max_states, stats=run_stats)
        label = name or f"invariant of {spec_or_graph.name}"
    stats = {"states": graph.state_count, "edges": graph.edge_count,
             "stutter": graph.stutter_count}
    with maybe_phase(run_stats, f"invariant:{label}"):
        for node, state in enumerate(graph.states):
            value = invariant.eval_state(state)
            if not isinstance(value, bool):
                raise TypeError(f"invariant {invariant!r} returned {value!r}")
            if not value:
                trace = FiniteBehavior(
                    [graph.states[i] for i in graph.path_to_root(node)]
                )
                return CheckResult(
                    label,
                    ok=False,
                    counterexample=Counterexample(
                        trace, f"state violates invariant {invariant!r}"
                    ),
                    stats=stats,
                )
    return CheckResult(label, ok=True, stats=stats)


def check_deadlock_free(
    spec_or_graph: Union[Spec, StateGraph],
    spec: Optional[Spec] = None,
    name: Optional[str] = None,
    max_states: int = 200_000,
) -> CheckResult:
    """Does every reachable state have a non-stuttering successor?

    (Stuttering is always allowed by ``□[N]_v``, so "deadlock" here means
    the *system* can make no progress step -- useful as a sanity check on
    example systems, not a notion from the paper.)
    """
    if isinstance(spec_or_graph, StateGraph):
        graph = spec_or_graph
        label = name or "deadlock-freedom"
    else:
        spec = spec_or_graph
        graph = explore(spec, max_states=max_states)
        label = name or f"deadlock-freedom of {spec.name}"
    stats = {"states": graph.state_count, "edges": graph.edge_count,
             "stutter": graph.stutter_count}
    for node in range(graph.state_count):
        # only the stutter self-loop => no progress step
        if len(graph.succ[node]) == 1:
            trace = FiniteBehavior([graph.states[i] for i in graph.path_to_root(node)])
            return CheckResult(
                label,
                ok=False,
                counterexample=Counterexample(trace, "state has no progress step"),
                stats=stats,
            )
    return CheckResult(label, ok=True, stats=stats)
