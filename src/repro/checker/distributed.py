"""Distributed BFS exploration across worker machines, bit-for-bit.

:func:`explore_distributed` runs the level-synchronous BFS of
:func:`~repro.checker.explorer.explore` with the expensive halves --
successor enumeration and (in compact mode) the visited set -- spread
over remote **worker nodes** (:mod:`repro.service.worker`, the ``repro
worker`` process), while the coordinator merges every level strictly in
frontier order.  The result is *the same graph*, bit for bit: node
numbering, BFS parents, edge counts, budget behaviour, and the streaming
:class:`~repro.checker.digest.GraphDigest` all match a single-machine
run -- for any worker count, any request interleaving, and any history
of node failures.  ``tests/test_distributed_differential.py`` asserts
this against the serial, parallel, and compact engines for every
bundled system; ``tests/test_distributed_faults.py`` re-asserts it under
killed workers, hung workers, dropped/duplicated wire messages, and
coordinator crash-resume.

Sharding model
--------------

The 64-bit fingerprint space is split once, at run start, into one
contiguous **pristine range** per worker.  In compact mode each worker
*owns* the visited-set partition for its ranges: the coordinator keeps
only the node-ordered ``packed`` / ``parent`` columns (enough to
regenerate traces and to checkpoint) and never holds a packed->node map.
A BFS level is four phases:

1. **expand** -- frontier sources are shipped to the owner of their
   fingerprint; workers stream back per-source successor batches
   (NDJSON), in compact mode together with each successor's
   fingerprint -- fingerprinting is the dominant per-state cost, and
   shipping it to the workers is what makes it scale with the node
   count (the coordinator only ever *looks up* fingerprints it was
   told).  Expansion is pure, so re-sending sources is always safe.
2. **lookup** -- the level's unique successor values are sent to the
   owners of their fingerprints, which answer with the node ids their
   partition already knows.  Pure.
3. **merge** -- the coordinator walks sources in frontier order and
   interns new states exactly as the serial engine would (same budget
   check, same digest stream, same edge dedup); this phase is local and
   serial, which is the whole determinism argument.
4. **adopt** -- newly interned (packed, node) pairs are pushed to the
   owners of their fingerprints.  Idempotent, so duplicated or retried
   adopts cannot skew the partitions.

In full-state mode workers are stateless expanders over portable state
rows and the coordinator dedups locally through its
:class:`~repro.checker.graph.StateGraph` -- phase 2 and 4 vanish.

Failure model
-------------

Transport errors are the fault signal: every wire operation is retried a
few times (absorbing injected/transient drops -- see
:class:`~repro.service.wire.NetFaultPlan`), and a node whose link keeps
failing is declared **lost**.  A heartbeat monitor thread polls
``/healthz`` and aborts the in-flight link of a node that stops
answering, so a *hung* worker (as opposed to a dead one) also surfaces
as a transport error instead of blocking the run.  On a loss the
coordinator moves the dead node's pristine ranges to the survivors with
the fewest ranges (ties to the lowest index), rebuilds the orphaned
visited partitions from its own packed column (re-**adopt**), and
re-ships only the still-unanswered sources of the current level
(bounded re-expansion).  Because ranges only ever change *owner* --
never shape -- the per-level partition counts recorded in checkpoints
and goldens are identical with and without failures.

Durability: with ``checkpoint=`` the coordinator snapshots every
``checkpoint_every`` levels using the engine's native checkpoint format
plus a ``"distributed"`` section (pristine ranges, per-level partition
counts).  Compact snapshots are therefore *also* plain compact
checkpoints: :func:`~repro.checker.compact.resume_compact` can finish
them on one machine, and :func:`resume_distributed` can finish a
single-machine snapshot on a cluster.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..kernel import packed
from ..kernel.packed import PackedPlan
from ..kernel.state import State
from ..spec import Spec
from ..service.wire import NetFaultPlan, ProtocolError, WorkerLink
from .checkpoint import (
    _SAME_PATH,
    _read_checkpoint_payload,
    load_checkpoint,
    save_checkpoint,
)
from .compact import (
    COMPACT_CHECKPOINT_MODE,
    CompactGraph,
    _finish_compact,
    load_compact_checkpoint,
    save_compact_checkpoint,
)
from .explorer import _seed_graph, initial_states
from .graph import StateGraph
from .parallel import WorkerFailure
from .stats import ExploreStats

__all__ = [
    "explore_distributed",
    "resume_distributed",
    "partition_ranges",
    "range_index",
    "LocalWorkerPool",
    "spawn_local_workers",
    "WorkerFailure",
    "NetFaultPlan",
]

_FP_SPACE = 1 << 64

# transport attempts per wire operation before a node is declared lost;
# absorbs NetFaultPlan drops and real transient hiccups alike
_WIRE_ATTEMPTS = 3

# consecutive failed health probes before the monitor aborts a node's link
_HEARTBEAT_MISSES = 2


def partition_ranges(workers: int) -> List[Tuple[int, int]]:
    """The pristine N-way split of the 64-bit fingerprint space:
    contiguous half-open ranges, remainder folded into the last one.
    Fixed for the lifetime of a run -- rebalancing moves whole ranges
    between owners, never reshapes them -- so everything keyed on range
    index (partition counts, goldens) is fault-independent."""
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    width = _FP_SPACE // workers
    return [(i * width, (i + 1) * width if i < workers - 1 else _FP_SPACE)
            for i in range(workers)]


def range_index(fingerprint: int, ranges: Sequence[Tuple[int, int]]) -> int:
    """Which pristine range owns *fingerprint* (uniform-width math, no
    scan; the last range absorbs the division remainder)."""
    width = ranges[0][1] - ranges[0][0]
    return min(fingerprint // width, len(ranges) - 1)


class _NodeLost(Exception):
    """Internal control flow: a worker node stopped answering."""

    def __init__(self, node: "_Node", cause: BaseException):
        super().__init__(f"worker node {node.index} ({node.url}) lost: "
                         f"{cause}")
        self.node = node
        self.cause = cause


class _Node:
    """Coordinator-side handle for one worker node."""

    __slots__ = ("index", "url", "link", "alive", "suspect", "misses",
                 "collisions")

    def __init__(self, index: int, url: str,
                 timeout: Optional[float], fault: Optional[NetFaultPlan]):
        self.index = index
        self.url = url
        self.link = WorkerLink(url, timeout=timeout, fault=fault)
        self.alive = True
        self.suspect = False  # heartbeat verdict; confirmed on next op
        self.misses = 0
        self.collisions = 0  # partition fp-collision total (from /adopt)


class _HeartbeatMonitor(threading.Thread):
    """Polls ``/healthz`` on every live node; a node that misses
    ``_HEARTBEAT_MISSES`` consecutive probes gets its link aborted, which
    turns any blocked coordinator read into an immediate transport error
    (the signal the fault machinery keys on).  Probes use their own
    short-lived links so they can never interfere with run traffic."""

    def __init__(self, nodes: List[_Node], interval: float):
        super().__init__(daemon=True, name="repro-heartbeat")
        self._nodes = nodes
        self._interval = interval
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        timeout = max(self._interval, 0.25)
        while not self._stop.wait(self._interval):
            for node in self._nodes:
                if not node.alive or node.suspect:
                    continue
                probe = WorkerLink(node.url, timeout=timeout)
                try:
                    probe.get("/healthz")
                    node.misses = 0
                except (OSError, ProtocolError):
                    node.misses += 1
                finally:
                    probe.close()
                if node.misses >= _HEARTBEAT_MISSES:
                    node.suspect = True
                    node.link.abort()


class _Coordinator:
    """One distributed run: nodes, range ownership, and the four-phase
    level loop.  Engine-specific behaviour (payload encoding, the merge
    itself, checkpoint format) is parameterised by ``engine``."""

    def __init__(self, spec: Spec, urls: Sequence[str], engine: str,
                 stats: Optional[ExploreStats],
                 heartbeat: Optional[float],
                 worker_timeout: Optional[float],
                 net_fault: Optional[NetFaultPlan],
                 fault_hook: Optional[Callable],
                 ranges: Optional[List[Tuple[int, int]]] = None):
        if not urls:
            raise ValueError("explore_distributed needs at least one "
                             "worker URL")
        self.spec = spec
        self.engine = engine
        self.stats = stats
        self.nodes = [_Node(i, url, worker_timeout, net_fault)
                      for i, url in enumerate(urls)]
        # pristine ranges: one per *initial* worker; ownership starts 1:1
        # (or round-robin when resuming onto a different cluster size)
        self.ranges = ranges if ranges is not None \
            else partition_ranges(len(self.nodes))
        self.owner = [i % len(self.nodes) for i in range(len(self.ranges))]
        self.level_partitions: List[List[int]] = []
        self._fault_pickle = (
            base64.b64encode(pickle.dumps(
                fault_hook, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")
            if fault_hook is not None else None)
        self._spec_pickle = base64.b64encode(
            pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, len(self.nodes)),
            thread_name_prefix="repro-dist")
        self._monitor: Optional[_HeartbeatMonitor] = None
        self._heartbeat = heartbeat
        self.idle = 0.0
        if stats is not None:
            for node in self.nodes:
                stats.record_node_label(node.index, node.url)
        # engine-specific fingerprint of a wire payload
        if engine == "compact":
            self._plan = PackedPlan(spec)
            self._codec = self._plan.codec

    def start(self) -> None:
        if self._heartbeat is not None:
            self._monitor = _HeartbeatMonitor(self.nodes, self._heartbeat)
            self._monitor.start()

    def close(self) -> None:
        if self._monitor is not None:
            self._monitor.stop()
            self._monitor = None
        for node in self.nodes:
            node.link.close()
        self._pool.shutdown(wait=False)

    # -- node bookkeeping -----------------------------------------------------

    def alive_nodes(self) -> List[_Node]:
        return [node for node in self.nodes if node.alive]

    def owner_node(self, ridx: int) -> _Node:
        return self.nodes[self.owner[ridx]]

    def _owned_ranges(self, node: _Node) -> List[Tuple[int, int]]:
        return [self.ranges[i] for i, w in enumerate(self.owner)
                if w == node.index]

    def _with_retries(self, node: _Node, attempt: Callable[[], object]):
        """Run one wire operation, absorbing up to ``_WIRE_ATTEMPTS``
        transport failures (injected drops, transient resets).  A node
        already flagged by the heartbeat, or one that exhausts the
        attempts, is reported as lost."""
        last: Optional[BaseException] = None
        for _ in range(_WIRE_ATTEMPTS):
            if not node.alive:
                raise _NodeLost(node, last or ConnectionError("node dead"))
            try:
                return attempt()
            except (OSError, ConnectionError) as exc:
                last = exc
                if self.stats is not None:
                    self.stats.record_retry("wire")
                if node.suspect:
                    break
        raise _NodeLost(node, last or ConnectionError("unknown"))

    def _on_loss(self, node: _Node, packed_column: Optional[List[int]],
                 fingerprint_of_node: Callable[[int], int]) -> None:
        """Declare *node* dead and move its pristine ranges to the
        survivors with the fewest ranges (ties to the lowest index).  In
        compact mode the orphaned visited partitions are rebuilt on the
        new owners from the coordinator's packed column -- complete by
        construction, because every interned node is in that column."""
        if not node.alive:
            return
        node.alive = False
        node.link.abort()
        if self.stats is not None:
            self.stats.record_node_loss()
        survivors = self.alive_nodes()
        if not survivors:
            raise WorkerFailure(
                f"all {len(self.nodes)} worker nodes were lost; the last "
                f"to go was node {node.index} ({node.url})")
        orphaned = [i for i, w in enumerate(self.owner)
                    if w == node.index]
        if not orphaned:
            return
        loads = {n.index: sum(1 for w in self.owner if w == n.index)
                 for n in survivors}
        moved: Dict[int, List[int]] = {}
        for ridx in orphaned:
            target = min(survivors,
                         key=lambda n: (loads[n.index], n.index))
            self.owner[ridx] = target.index
            loads[target.index] += 1
            moved.setdefault(target.index, []).append(ridx)
        if self.stats is not None:
            self.stats.record_rebalance(len(orphaned))
        if packed_column is None:  # full mode: nothing to re-adopt
            return
        # rebuild the orphaned partitions on their new owners
        by_node = {n.index: n for n in self.nodes}
        for target_index, ridxs in moved.items():
            target = by_node[target_index]
            taken = set(ridxs)
            entries = []
            for node_id, packed in enumerate(packed_column):
                if range_index(fingerprint_of_node(packed),
                               self.ranges) in taken:
                    entries.append([packed, node_id])
            try:
                self._with_retries(target, lambda t=target, e=entries: (
                    t.link.post("/ranges",
                                {"ranges": self._owned_ranges(t)}),
                    self._record_adopt(
                        t, t.link.post("/adopt", {"entries": e})),
                ))
            except _NodeLost as lost:
                # the rescue target died too: recurse, which re-moves
                # these ranges (and the target's own) to the remaining
                # survivors
                self._on_loss(lost.node, packed_column, fingerprint_of_node)

    def _record_adopt(self, node: _Node, response: Dict) -> Dict:
        node.collisions = int(response.get("collisions", node.collisions))
        return response

    # -- generic fan-out phase ------------------------------------------------

    def _fan_out(self, groups: Callable[[], Dict[int, object]],
                 op: Callable[[_Node, object], None],
                 on_loss: Callable[[_Node], None]) -> None:
        """Run ``op(node, item)`` concurrently for the node->item map
        *groups* produces, handling losses (rebalance + regroup) until
        the map comes back empty.  *groups* must shrink as ops succeed
        (ops record results and consume their inputs), so re-grouping
        after a loss only re-ships unanswered work."""
        while True:
            grouped = groups()
            if not grouped:
                return
            by_node = {n.index: n for n in self.nodes}
            wait_from = perf_counter()
            futures = {
                self._pool.submit(op, by_node[index], item): by_node[index]
                for index, item in grouped.items()
            }
            lost: List[_NodeLost] = []
            for future in as_completed(futures):
                try:
                    future.result()
                except _NodeLost as exc:
                    lost.append(exc)
            self.idle += perf_counter() - wait_from
            for exc in lost:
                on_loss(exc.node)

    # -- wire phases ----------------------------------------------------------

    def load_workers(self, adopt_column: Optional[List[int]] = None,
                     fingerprint: Optional[Callable[[int], int]] = None
                     ) -> None:
        """(Re)initialise every node for this run; on a resume,
        *adopt_column* rebuilds each node's visited partition from the
        checkpointed packed column."""
        pending = {node.index: node for node in self.nodes if node.alive}

        def op(node: _Node, _item: object) -> None:
            payload = {"spec_pickle": self._spec_pickle,
                       "engine": self.engine,
                       "worker": node.index,
                       "ranges": self._owned_ranges(node)}
            if self._fault_pickle is not None:
                payload["fault_pickle"] = self._fault_pickle
            self._with_retries(
                node, lambda: node.link.post("/load", payload))
            if adopt_column is not None:
                owned = {i for i, w in enumerate(self.owner)
                         if w == node.index}
                entries = [[packed, node_id]
                           for node_id, packed in enumerate(adopt_column)
                           if range_index(fingerprint(packed),
                                          self.ranges) in owned]
                if entries:
                    self._with_retries(node, lambda: self._record_adopt(
                        node, node.link.post("/adopt",
                                             {"entries": entries})))
            pending.pop(node.index, None)

        self._fan_out(
            lambda: {i: n for i, n in pending.items() if n.alive},
            op,
            lambda node: self._on_loss(node, adopt_column,
                                       fingerprint or (lambda fp: fp)))

    def expand_level(self, level: int,
                     sources: List[Tuple[int, object]],
                     fingerprints: List[int],
                     results: Dict[int, List[object]],
                     packed_column: Optional[List[int]],
                     fingerprint: Callable[[int], int],
                     fps_out: Optional[Dict[int, List[int]]] = None) -> None:
        """Phase 1: ship each (pos, payload) source to the owner of its
        fingerprint; collect per-source successor batches into
        *results* (and, when *fps_out* is given, the worker-computed
        successor fingerprints).  Streamed per source, so a node that
        dies mid-level only costs its unanswered sources (bounded
        re-expansion)."""
        pending: Dict[int, object] = {pos: payload
                                      for pos, payload in sources}

        def groups() -> Dict[int, List[Tuple[int, object]]]:
            grouped: Dict[int, List[Tuple[int, object]]] = {}
            for pos, payload in pending.items():
                owner = self.owner[range_index(fingerprints[pos],
                                               self.ranges)]
                grouped.setdefault(owner, []).append((pos, payload))
            return grouped

    # one attempt = one /expand of that node's *still unanswered* share;
    # answered positions leave `pending` as their lines stream in
        def op(node: _Node, items: List[Tuple[int, object]]) -> None:
            def attempt() -> None:
                remaining = [[pos, payload] for pos, payload in items
                             if pos in pending]
                if not remaining:
                    return
                answered = 0
                successors = 0
                tail = None
                for line in node.link.post_stream(
                        "/expand", {"level": level, "sources": remaining}):
                    if "pos" in line:
                        pos = int(line["pos"])
                        succ = line["succ"]
                        results[pos] = succ
                        if fps_out is not None:
                            fps_out[pos] = line.get("fps") or []
                        if pending.pop(pos, None) is not None:
                            answered += 1
                            successors += len(succ)
                    elif "done" in line:
                        tail = line
                if tail is None:
                    raise ConnectionError("expand stream truncated")
                if self.stats is not None and answered:
                    self.stats.record_worker_batch(
                        node.index, sources=answered,
                        successors=successors,
                        busy_seconds=float(tail.get("busy", 0.0)))

            try:
                self._with_retries(node, attempt)
            except _NodeLost:
                still = sum(1 for pos, _p in items if pos in pending)
                if self.stats is not None and still:
                    self.stats.record_reshipped(still)
                raise

        self._fan_out(groups, op,
                      lambda node: self._on_loss(node, packed_column,
                                                 fingerprint))

    def lookup_level(self, values_by_range: Dict[int, List[int]],
                     known: Dict[int, int],
                     packed_column: List[int],
                     fingerprint: Callable[[int], int]) -> None:
        """Phase 2 (compact): ask each owner which of the level's unique
        successor values its partition has already seen."""
        pending = dict(values_by_range)

        def groups() -> Dict[int, List[int]]:
            grouped: Dict[int, List[int]] = {}
            for ridx in pending:
                grouped.setdefault(self.owner[ridx], []).append(ridx)
            return grouped

        def op(node: _Node, ridxs: List[int]) -> None:
            def attempt() -> None:
                todo = [r for r in ridxs if r in pending]
                if not todo:
                    return
                values: List[int] = []
                for r in todo:
                    values.extend(pending[r])
                response = node.link.post("/lookup", {"values": values})
                nodes = response.get("nodes") or []
                if len(nodes) != len(values):
                    raise ConnectionError("lookup response misaligned")
                for value, node_id in zip(values, nodes):
                    if node_id >= 0:
                        known[value] = node_id
                for r in todo:
                    pending.pop(r, None)

            self._with_retries(node, attempt)

        self._fan_out(groups, op,
                      lambda node: self._on_loss(node, packed_column,
                                                 fingerprint))

    def adopt_level(self, entries_by_range: Dict[int, List[List[int]]],
                    packed_column: List[int],
                    fingerprint: Callable[[int], int]) -> None:
        """Phase 4 (compact): push the level's newly interned states to
        the owners of their fingerprints.  Idempotent on the worker, so
        retries and duplicates are harmless."""
        pending = dict(entries_by_range)

        def groups() -> Dict[int, List[int]]:
            grouped: Dict[int, List[int]] = {}
            for ridx in pending:
                grouped.setdefault(self.owner[ridx], []).append(ridx)
            return grouped

        def op(node: _Node, ridxs: List[int]) -> None:
            def attempt() -> None:
                todo = [r for r in ridxs if r in pending]
                if not todo:
                    return
                entries: List[List[int]] = []
                for r in todo:
                    entries.extend(pending[r])
                self._record_adopt(
                    node, node.link.post("/adopt", {"entries": entries}))
                for r in todo:
                    pending.pop(r, None)

            self._with_retries(node, attempt)

        self._fan_out(groups, op,
                      lambda node: self._on_loss(node, packed_column,
                                                 fingerprint))

    # -- run summary ----------------------------------------------------------

    def partition_collisions(self) -> int:
        return sum(node.collisions for node in self.nodes if node.alive)

    def distributed_section(self) -> Dict[str, object]:
        """The ``"distributed"`` checkpoint section: everything a resume
        (or a golden) needs that the engine checkpoint does not carry."""
        return {"distributed": {
            "worker_urls": [node.url for node in self.nodes],
            "ranges": [[lo, hi] for lo, hi in self.ranges],
            "level_partitions": [list(row) for row in self.level_partitions],
        }}


# -- compact-mode drive -------------------------------------------------------


def _drive_distributed_compact(
    coord: _Coordinator,
    graph: CompactGraph,
    frontier: List[int],
    depth: int,
    levels: int,
    elapsed_before: float,
    stats: Optional[ExploreStats],
    checkpoint: Optional[str],
    checkpoint_every: int,
    seed_adopt: bool,
    fp_of: Dict[int, int],
) -> CompactGraph:
    """The compact distributed level loop.  Mirrors
    :func:`repro.checker.compact._drive_compact` exactly at every point
    that feeds the graph -- intern order, edge dedup, digest stream,
    budget check, ``record_level`` placement -- so the resulting graph
    is bit-for-bit the single-machine compact graph.

    *fp_of* maps every packed value in the coordinator's column (and,
    as levels proceed, every successor value the workers report) to its
    fingerprint.  The callers seed it for the starting column; from
    then on the workers compute every new fingerprint (the per-state
    hot spot) and the coordinator only looks them up -- which is why
    adding worker nodes actually speeds the run up."""
    start = perf_counter()
    spec = coord.spec
    packed_column = graph.packed
    ranges = coord.ranges
    fingerprint = fp_of.__getitem__

    def partition_counts(new_packed: List[int]) -> List[int]:
        counts = [0] * len(ranges)
        for value in new_packed:
            counts[range_index(fp_of[value], ranges)] += 1
        return counts

    if seed_adopt:
        # ship the seed partition (the initial states interned by the
        # caller) to its owners, and record it as the level-0 row
        seed_entries: Dict[int, List[List[int]]] = {}
        for node_id, packed in enumerate(packed_column):
            ridx = range_index(fp_of[packed], ranges)
            seed_entries.setdefault(ridx, []).append([packed, node_id])
        coord.adopt_level(seed_entries, packed_column, fingerprint)
        coord.level_partitions.append(partition_counts(list(packed_column)))

    while frontier:
        level = levels
        # phase 1: expand, sharded by source fingerprint; the workers
        # also hand back each successor's fingerprint
        src_fps = [fp_of[packed_column[src]] for src in frontier]
        results: Dict[int, List[int]] = {}
        succ_fps: Dict[int, List[int]] = {}
        coord.expand_level(
            level,
            [(pos, packed_column[src]) for pos, src in enumerate(frontier)],
            src_fps, results, packed_column, fingerprint,
            fps_out=succ_fps)
        # phase 2: dedup query for the level's unique successor values
        unique: Dict[int, int] = {}
        for pos in range(len(frontier)):
            fps = succ_fps[pos]
            for i, value in enumerate(results[pos]):
                if value not in unique:
                    fp_of[value] = fps[i]
                    unique[value] = range_index(fps[i], ranges)
        values_by_range: Dict[int, List[int]] = {}
        for value, ridx in unique.items():
            values_by_range.setdefault(ridx, []).append(value)
        known: Dict[int, int] = {}
        coord.lookup_level(values_by_range, known, packed_column,
                           fingerprint)
        # phase 3: serial merge in frontier order -- the one code path
        # shared with the single-machine engine (CompactGraph._intern_new
        # does the budget check and the node-digest stream)
        level_new: Dict[int, int] = {}
        new_packed: List[int] = []
        next_frontier: List[int] = []
        for pos, src in enumerate(frontier):
            dsts: List[int] = []
            seen: set = set()
            for value in results[pos]:
                node = known.get(value)
                if node is None:
                    node = level_new.get(value)
                if node is None:
                    node = graph._intern_new(value, src, fp_of[value])
                    level_new[value] = node
                    new_packed.append(value)
                    next_frontier.append(node)
                if node != src and node not in seen:
                    seen.add(node)
                    dsts.append(node)
            graph._edge_count += len(dsts)
            graph._digest.absorb_edges(src, dsts)
        # phase 4: push the new states to their owners
        entries_by_range: Dict[int, List[List[int]]] = {}
        for value, node in level_new.items():
            ridx = range_index(fp_of[value], ranges)
            entries_by_range.setdefault(ridx, []).append([value, node])
        if entries_by_range:
            coord.adopt_level(entries_by_range, packed_column, fingerprint)
        coord.level_partitions.append(partition_counts(new_packed))
        if stats is not None:
            stats.record_level(len(frontier), graph)
        frontier = next_frontier
        levels += 1
        if frontier:
            depth += 1
        if checkpoint is not None and (
                not frontier or levels % checkpoint_every == 0):
            save_compact_checkpoint(
                checkpoint, spec, graph, frontier, depth, levels,
                elapsed_seconds=elapsed_before + perf_counter() - start,
                workers=len(coord.nodes), checkpoint_every=checkpoint_every,
                stats=stats, extra=coord.distributed_section())
    graph._collisions = coord.partition_collisions()
    _finish_compact(graph, stats, depth,
                    elapsed_before + perf_counter() - start)
    if stats is not None:
        stats.record_parallel(len(coord.nodes), coord.idle)
    graph.partition_ranges = list(coord.ranges)
    graph.level_partitions = [list(row) for row in coord.level_partitions]
    return graph


# -- full-mode drive ----------------------------------------------------------


def _drive_distributed_full(
    coord: _Coordinator,
    graph: StateGraph,
    frontier: List[int],
    depth: int,
    levels: int,
    elapsed_before: float,
    stats: Optional[ExploreStats],
    checkpoint: Optional[str],
    checkpoint_every: int,
    record_seed_row: bool,
) -> StateGraph:
    """The full-state distributed level loop: workers are stateless
    expanders over portable rows, the coordinator merges through
    :meth:`StateGraph.merge_batch` in frontier order -- the exact serial
    semantics, so the graph matches :func:`explore` bit for bit."""
    start = perf_counter()
    spec = coord.spec
    states = graph.states
    merge_batch = graph.merge_batch
    ranges = coord.ranges

    def partition_counts(nodes: List[int]) -> List[int]:
        counts = [0] * len(ranges)
        for node in nodes:
            counts[range_index(states[node].fingerprint(), ranges)] += 1
        return counts

    if record_seed_row:
        coord.level_partitions.append(
            partition_counts(list(range(graph.state_count))))

    while frontier:
        level = levels
        src_fps = [states[src].fingerprint() for src in frontier]
        results: Dict[int, List[object]] = {}
        coord.expand_level(
            level,
            [(pos, states[src].to_portable())
             for pos, src in enumerate(frontier)],
            src_fps, results, None, lambda fp: fp)
        next_frontier: List[int] = []
        new_nodes: List[int] = []
        for pos, src in enumerate(frontier):
            successors = [State.from_portable(row) for row in results[pos]]
            fresh = merge_batch(src, successors)
            next_frontier.extend(fresh)
            new_nodes.extend(fresh)
        coord.level_partitions.append(partition_counts(new_nodes))
        if stats is not None:
            stats.record_level(len(frontier), graph)
        frontier = next_frontier
        levels += 1
        if frontier:
            depth += 1
        if checkpoint is not None and (
                not frontier or levels % checkpoint_every == 0):
            save_checkpoint(
                checkpoint, spec, graph, frontier, depth, levels,
                elapsed_seconds=elapsed_before + perf_counter() - start,
                workers=len(coord.nodes), checkpoint_every=checkpoint_every,
                stats=stats, store=graph.store.config(),
                extra=coord.distributed_section())
    if stats is not None:
        stats.record_explore(graph, depth,
                             elapsed_before + perf_counter() - start)
        stats.record_parallel(len(coord.nodes), coord.idle)
    graph.partition_ranges = list(coord.ranges)
    graph.level_partitions = [list(row) for row in coord.level_partitions]
    return graph


# -- public API ---------------------------------------------------------------


def _resolve_engine(spec: Spec, engine: str) -> str:
    if engine == "auto":
        return "compact" if packed.supports(spec) else "full"
    if engine not in ("compact", "full"):
        raise ValueError(f"engine must be 'auto', 'compact', or 'full', "
                         f"got {engine!r}")
    return engine


def explore_distributed(
    spec: Spec,
    workers: Sequence[str],
    max_states: int = 200_000,
    engine: str = "auto",
    stats: Optional[ExploreStats] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: int = 1,
    heartbeat: Optional[float] = 2.0,
    worker_timeout: Optional[float] = None,
    net_fault: Optional[NetFaultPlan] = None,
    fault_hook: Optional[Callable] = None,
):
    """Explore ``Init ∧ □[N]_v`` across the worker nodes at *workers*
    (URLs of running ``repro worker`` processes).

    Returns the same graph a single-machine run would -- a
    :class:`~repro.checker.compact.CompactGraph` when the spec supports
    packed encoding (or ``engine="compact"`` forces it), else a full
    :class:`~repro.checker.graph.StateGraph` -- with identical node
    numbering, parents, edges, digests, and
    :class:`~repro.checker.graph.StateSpaceExplosion` behaviour for any
    worker count and failure history.  The run survives worker loss as
    long as one node stays up; the coordinator itself is made durable
    with ``checkpoint=`` + :func:`resume_distributed`.

    ``heartbeat`` is the health-probe interval in seconds (``None``
    disables the monitor -- then only ``worker_timeout`` bounds a hung
    node); ``worker_timeout`` caps each wire operation.  ``net_fault``
    (a :class:`~repro.service.wire.NetFaultPlan`) and ``fault_hook`` (a
    picklable callable shipped to every worker, invoked per ``/expand``)
    are the chaos-test seams; leave both ``None`` in production.
    """
    resolved = _resolve_engine(spec, engine)
    coord = _Coordinator(spec, list(workers), resolved, stats,
                         heartbeat, worker_timeout, net_fault, fault_hook)
    try:
        coord.start()
        coord.load_workers()
        if resolved == "compact":
            graph = CompactGraph(spec, coord._plan, max_states=max_states)
            encode = coord._codec.encode
            fp = coord._codec.fingerprint
            seen: Dict[int, int] = {}
            frontier: List[int] = []
            fp_of: Dict[int, int] = {}  # seeded here; workers fill the rest
            for state in initial_states(spec.init, spec.universe):
                value = encode(state)
                if value in seen:
                    continue
                fpv = fp(value)
                node = graph._intern_new(value, -1, fpv)
                seen[value] = node
                fp_of[value] = fpv
                frontier.append(node)
            if stats is not None:
                stats.engine = "compact"
            return _drive_distributed_compact(
                coord, graph, frontier, depth=0, levels=0,
                elapsed_before=0.0, stats=stats, checkpoint=checkpoint,
                checkpoint_every=checkpoint_every, seed_adopt=True,
                fp_of=fp_of)
        graph, frontier = _seed_graph(spec, max_states)
        return _drive_distributed_full(
            coord, graph, frontier, depth=0, levels=0, elapsed_before=0.0,
            stats=stats, checkpoint=checkpoint,
            checkpoint_every=checkpoint_every, record_seed_row=True)
    finally:
        coord.close()


def resume_distributed(
    path: str,
    workers: Sequence[str],
    spec: Optional[Spec] = None,
    *,
    max_states: Optional[int] = None,
    stats: Optional[ExploreStats] = None,
    checkpoint: object = _SAME_PATH,
    checkpoint_every: Optional[int] = None,
    heartbeat: Optional[float] = 2.0,
    worker_timeout: Optional[float] = None,
    net_fault: Optional[NetFaultPlan] = None,
    fault_hook: Optional[Callable] = None,
):
    """Continue a checkpointed run on the cluster at *workers*,
    bit-for-bit -- whether the snapshot came from a distributed
    coordinator (its ``"distributed"`` section restores the pristine
    ranges and the partition-count manifest) or from a single-machine
    run (fresh ranges are cut for the current cluster).  Compact and
    full snapshots are dispatched to the matching engine automatically.

    The worker partitions are rebuilt from the snapshot's own state
    columns, so resuming does not require the original workers -- any
    cluster (any size, fresh processes) continues the run.
    """
    payload = _read_checkpoint_payload(path)
    section = payload.get("distributed") or {}
    stored_ranges = [
        (int(lo), int(hi)) for lo, hi in section.get("ranges", [])
    ] or None
    stored_partitions = [list(map(int, row))
                         for row in section.get("level_partitions", [])]
    target = path if checkpoint is _SAME_PATH else checkpoint

    if payload.get("mode") == COMPACT_CHECKPOINT_MODE:
        loaded = load_compact_checkpoint(path, spec, max_states=max_states,
                                         stats=stats)
        every = loaded.checkpoint_every if checkpoint_every is None \
            else checkpoint_every
        coord = _Coordinator(loaded.spec, list(workers), "compact", stats,
                             heartbeat, worker_timeout, net_fault,
                             fault_hook, ranges=stored_ranges)
        coord.level_partitions = stored_partitions
        # fingerprint the snapshot column once; everything discovered
        # after this point is fingerprinted by the workers
        fp = coord._codec.fingerprint
        fp_of = {packed: fp(packed) for packed in loaded.graph.packed}
        try:
            coord.start()
            coord.load_workers(adopt_column=loaded.graph.packed,
                               fingerprint=fp_of.__getitem__)
            # the coordinator column is authoritative; the local visited
            # map now lives on the workers
            loaded.graph.visited = {}
            return _drive_distributed_compact(
                coord, loaded.graph, loaded.frontier, depth=loaded.depth,
                levels=loaded.levels,
                elapsed_before=loaded.elapsed_seconds, stats=stats,
                checkpoint=target, checkpoint_every=every, seed_adopt=False,
                fp_of=fp_of)
        finally:
            coord.close()

    loaded = load_checkpoint(path)
    run_spec = spec if spec is not None else loaded.load_spec()
    every = loaded.checkpoint_every if checkpoint_every is None \
        else checkpoint_every
    coord = _Coordinator(run_spec, list(workers), "full", stats,
                         heartbeat, worker_timeout, net_fault, fault_hook,
                         ranges=stored_ranges)
    coord.level_partitions = stored_partitions
    try:
        coord.start()
        coord.load_workers()
        graph = loaded.restore_graph(run_spec, max_states=max_states)
        if stats is not None and loaded.stats_snapshot:
            stats.restore(loaded.stats_snapshot)
        return _drive_distributed_full(
            coord, graph, list(loaded.frontier), depth=loaded.depth,
            levels=loaded.levels, elapsed_before=loaded.elapsed_seconds,
            stats=stats, checkpoint=target, checkpoint_every=every,
            record_seed_row=False)
    finally:
        coord.close()


# -- localhost worker fleets --------------------------------------------------


class LocalWorkerPool:
    """A fleet of localhost ``repro worker`` subprocesses, for tests and
    the quickstart demo.  ``urls`` feed straight into
    :func:`explore_distributed`; :meth:`kill` SIGKILLs one worker (the
    chaos tests' node-loss lever); the pool is a context manager that
    terminates everything on exit."""

    def __init__(self, processes: List[subprocess.Popen], urls: List[str],
                 directory: str, owns_directory: bool):
        self.processes = processes
        self.urls = urls
        self.directory = directory
        self._owns_directory = owns_directory

    def kill(self, index: int) -> None:
        """SIGKILL worker *index* (no shutdown handshake -- the
        coordinator must discover the loss through the wire)."""
        self.processes[index].kill()
        self.processes[index].wait()

    def alive(self) -> List[int]:
        return [i for i, proc in enumerate(self.processes)
                if proc.poll() is None]

    def terminate(self) -> None:
        for proc in self.processes:
            if proc.poll() is None:
                proc.kill()
        for proc in self.processes:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass
        if self._owns_directory:
            shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "LocalWorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.terminate()


def spawn_local_workers(count: int, directory: Optional[str] = None,
                        startup_timeout: float = 30.0) -> LocalWorkerPool:
    """Launch *count* ``repro worker`` subprocesses on ephemeral
    localhost ports and wait until all endpoint files appear."""
    if count < 1:
        raise ValueError(f"need at least one worker, got {count}")
    owns = directory is None
    directory = directory or tempfile.mkdtemp(prefix="repro-workers-")
    import repro

    src_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    processes: List[subprocess.Popen] = []
    endpoint_files: List[str] = []
    try:
        for i in range(count):
            endpoint = os.path.join(directory, f"worker-{i}.json")
            try:
                os.unlink(endpoint)
            except FileNotFoundError:
                pass
            endpoint_files.append(endpoint)
            log = open(os.path.join(directory, f"worker-{i}.log"), "w")
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--host", "127.0.0.1", "--port", "0",
                 "--endpoint-file", endpoint],
                stdout=log, stderr=subprocess.STDOUT, env=env)
            log.close()  # the child holds its own handle
            processes.append(proc)
        urls: List[str] = []
        deadline = time.monotonic() + startup_timeout
        for i, endpoint in enumerate(endpoint_files):
            while True:
                if processes[i].poll() is not None:
                    raise RuntimeError(
                        f"worker {i} exited with code "
                        f"{processes[i].returncode} before coming up "
                        f"(see {directory}/worker-{i}.log)")
                if os.path.exists(endpoint):
                    with open(endpoint) as handle:
                        urls.append(json.load(handle)["url"])
                    break
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"worker {i} did not come up within "
                        f"{startup_timeout}s")
                time.sleep(0.02)
    except BaseException:
        for proc in processes:
            if proc.poll() is None:
                proc.kill()
        if owns:
            shutil.rmtree(directory, ignore_errors=True)
        raise
    return LocalWorkerPool(processes, urls, directory, owns_directory=owns)
