"""Explicit-state model checker for canonical TLA specifications.

Plays the role of the paper's hand proofs (see DESIGN.md): each proof
obligation of the Composition Theorem is discharged exhaustively over the
reachable state space of a finite instance.
"""

from .checkpoint import (
    CheckpointError,
    load_checkpoint,
    manifest_path_for,
    resume,
    save_checkpoint,
    write_manifest,
)
from .compact import (
    CompactGraph,
    CompactUnsupported,
    check_invariant_compact,
    explore_compact,
    resume_compact,
)
from .digest import GraphDigest, digest_of_graph
from .explorer import StateSpaceExplosion, explore, initial_states
from .graph import StateGraph
from .invariants import check_deadlock_free, check_invariant
from .parallel import WorkerFailure, default_workers, explore_parallel
from .stats import ExploreStats
from .liveness import (
    ConclusionChecker,
    PremiseConstraint,
    check_temporal_implication,
    fair_units,
    premises_of_spec,
)
from .reduction import (
    MemoryStateStore,
    ReductionConfig,
    SpillStateStore,
    StateStore,
    build_store,
    check_invariant_reduced,
    decompose,
)
from .refinement import IDENTITY, RefinementMapping, check_safety_refinement
from .results import CheckResult, Counterexample

# imported last: distributed pulls in repro.service (the wire layer),
# whose job runner imports back into this package -- by this point every
# name it needs is already bound, so the cycle resolves cleanly
from .distributed import (  # noqa: E402
    LocalWorkerPool,
    NetFaultPlan,
    explore_distributed,
    partition_ranges,
    resume_distributed,
    spawn_local_workers,
)

__all__ = [
    "StateSpaceExplosion",
    "explore",
    "explore_parallel",
    "default_workers",
    "WorkerFailure",
    "initial_states",
    "CheckpointError",
    "load_checkpoint",
    "save_checkpoint",
    "resume",
    "manifest_path_for",
    "write_manifest",
    "StateGraph",
    "CompactGraph",
    "CompactUnsupported",
    "explore_compact",
    "resume_compact",
    "explore_distributed",
    "resume_distributed",
    "partition_ranges",
    "spawn_local_workers",
    "LocalWorkerPool",
    "NetFaultPlan",
    "check_invariant_compact",
    "GraphDigest",
    "digest_of_graph",
    "ExploreStats",
    "check_deadlock_free",
    "check_invariant",
    "ConclusionChecker",
    "PremiseConstraint",
    "check_temporal_implication",
    "fair_units",
    "premises_of_spec",
    "IDENTITY",
    "RefinementMapping",
    "check_safety_refinement",
    "CheckResult",
    "Counterexample",
    "ReductionConfig",
    "decompose",
    "check_invariant_reduced",
    "StateStore",
    "MemoryStateStore",
    "SpillStateStore",
    "build_store",
]
