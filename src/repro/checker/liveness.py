"""Fairness-aware liveness checking: fair-cycle search over state graphs.

To check ``premises ⇒ conclusion`` where the premises include fairness
conditions (``WF``/``SF``) of implementation components and the conclusion
is a liveness property, we search for a **counterexample lasso**: a
reachable cycle that

* satisfies every premise fairness condition (a *fair* cycle), and
* violates the conclusion.

Fair-cycle existence under WF/SF constraints is a Streett-emptiness
problem; :func:`fair_units` implements the classical recursive SCC
filtering:

* a ``WF_v(A)`` premise is satisfiable within an SCC iff the SCC contains
  an ``<A>_v`` edge or a state where ``<A>_v`` is not enabled -- and if
  not, no sub-SCC can help, so the SCC is discarded;
* an ``SF_v(A)`` premise needs an ``<A>_v`` edge or *no* enabled state; if
  it fails, every fair subset must avoid the enabled states, so they are
  removed and the search recurses.

The conclusion is decomposed into conjuncts, each negated into a subgraph
restriction (see :class:`Violation`); any fair unit found inside the
restricted subgraph yields a concrete lasso, which is **re-validated
against the exact lasso semantics** (premises true, conclusion conjunct
false) before being reported -- the graph search proposes, the semantics
disposes.

Supported conclusion conjuncts: ``WF``, ``SF``, ``◇P``, ``□◇P``,
``P ~> Q`` (state predicates), ``◇<A>_v``, plus the safety conjuncts
(``StatePred``, ``□[A]_v``, ``□P``) which are checked directly on the
graph.  Conclusions may be evaluated through a refinement mapping, so the
target's hidden variables are handled exactly as in the paper: the mapping
is the witness for ``∃``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..kernel.action import angle, compile_action, holds_on_step, square
from ..kernel.behavior import Lasso
from ..kernel.expr import Expr
from ..kernel.state import State, Universe
from ..spec import Fairness, Spec
from ..temporal.formulas import (
    ActionBox,
    ActionDiamond,
    Always,
    Eventually,
    LeadsTo,
    SF,
    StatePred,
    TAnd,
    TemporalFormula,
    WF,
    to_tf,
)
from ..temporal.semantics import EvalContext
from .explorer import explore
from .graph import StateGraph
from .refinement import IDENTITY, RefinementMapping
from .results import CheckResult, Counterexample
from .stats import ExploreStats, maybe_phase


class PremiseConstraint:
    """One premise fairness condition, evaluated on implementation states.

    ``<A>_v`` is compiled once into a successor plan per universe (see
    :meth:`~repro.kernel.action.CompiledAction.plan`); ENABLED queries are
    memoised per node on top of that.
    """

    __slots__ = ("kind", "sub", "action", "_angle", "_compiled",
                 "_enabled_cache")

    def __init__(self, kind: str, sub: Sequence[str], action: Expr):
        self.kind = kind  # "WF" | "SF"
        self.sub = tuple(sub)
        self.action = action
        self._angle = angle(action, sub)
        self._compiled = compile_action(self._angle)
        self._enabled_cache: Dict[int, bool] = {}

    @classmethod
    def of(cls, fairness: Fairness) -> "PremiseConstraint":
        return cls(fairness.kind, fairness.sub, fairness.action)

    def formula(self) -> TemporalFormula:
        cls = WF if self.kind == "WF" else SF
        return cls(self.sub, self.action)

    def is_step(self, graph: StateGraph, src: int, dst: int) -> bool:
        return holds_on_step(self._angle, graph.states[src], graph.states[dst])

    def is_enabled(self, graph: StateGraph, node: int) -> bool:
        cached = self._enabled_cache.get(node)
        if cached is None:
            plan = self._compiled.plan(graph.universe)
            cached = plan.enabled(graph.states[node])
            self._enabled_cache[node] = cached
        return cached


def premises_of_spec(spec: Spec) -> List[PremiseConstraint]:
    return [PremiseConstraint.of(fair) for fair in spec.fairness]


EdgeOk = Callable[[int, int], bool]


def fair_units(
    graph: StateGraph,
    nodes: Iterable[int],
    edge_ok: EdgeOk,
    premises: Sequence[PremiseConstraint],
) -> List[List[int]]:
    """All maximal fair-feasible node sets within the filtered subgraph.

    A returned unit U is strongly connected (under ``edge_ok``) and every
    premise is satisfiable by a cycle visiting all of U.  The decomposition
    is complete: a fair cycle exists in the subgraph iff some unit is
    returned.
    """
    result: List[List[int]] = []
    node_set = set(nodes)

    def edges_within(component: Sequence[int]) -> List[Tuple[int, int]]:
        comp = set(component)
        return [
            (src, dst)
            for src in component
            for dst in graph.succ[src]
            if dst in comp and edge_ok(src, dst)
        ]

    def process(candidates: Set[int]) -> None:
        for component in graph.sccs(candidates, edge_ok=edge_ok):
            comp_edges = edges_within(component)
            if not comp_edges:
                continue  # no cycle at all (stutter filtered out)
            to_remove: Set[int] = set()
            discard = False
            for premise in premises:
                has_edge = any(
                    premise.is_step(graph, src, dst) for src, dst in comp_edges
                )
                if has_edge:
                    continue
                enabled_nodes = [
                    n for n in component if premise.is_enabled(graph, n)
                ]
                if premise.kind == "WF":
                    if len(enabled_nodes) == len(component):
                        discard = True  # every sub-SCC is all-enabled, edgeless
                        break
                else:  # SF: fair subsets must avoid the enabled states
                    to_remove.update(enabled_nodes)
            if discard:
                continue
            if to_remove:
                remaining = set(component) - to_remove
                if remaining:
                    process(remaining)
            else:
                result.append(sorted(component))

    process(node_set)
    return result


class Violation:
    """The negation of one conclusion conjunct, as subgraph restrictions.

    A counterexample to the conjunct is a lasso whose loop lies in the
    subgraph (``loop_node_ok``/``loop_edge_ok``), is premise-fair, contains
    a ``require`` node if given, and is reached by a stem as described by
    ``entry``/``restricted_stem``.
    """

    __slots__ = (
        "description",
        "loop_node_ok",
        "loop_edge_ok",
        "require",
        "entry",
        "restricted_stem",
    )

    def __init__(
        self,
        description: str,
        loop_node_ok: Callable[[int], bool],
        loop_edge_ok: EdgeOk,
        require: Optional[Callable[[int], bool]] = None,
        entry: Optional[Callable[[int], bool]] = None,
        restricted_stem: bool = False,
    ):
        self.description = description
        self.loop_node_ok = loop_node_ok
        self.loop_edge_ok = loop_edge_ok
        self.require = require
        self.entry = entry
        self.restricted_stem = restricted_stem


class ConclusionChecker:
    """Checks one conclusion formula against a premise-fair state graph."""

    def __init__(
        self,
        graph: StateGraph,
        premises: Sequence[PremiseConstraint],
        mapping: Optional[RefinementMapping] = None,
        target_universe: Optional[Universe] = None,
        name: str = "liveness",
    ):
        self.graph = graph
        self.premises = list(premises)
        self.mapping = mapping or IDENTITY
        self.target_universe = target_universe or graph.universe
        self.name = name
        self._mapped: Dict[int, State] = {}
        self._enabled_cache: Dict[Tuple[int, int], bool] = {}
        self._retained: List[Expr] = []
        self.stats: Dict[str, int] = {
            "states": graph.state_count,
            "edges": graph.edge_count,
            "stutter": graph.stutter_count,
            "fair_units_examined": 0,
            "candidates_validated": 0,
        }

    # -- mapped-state helpers ------------------------------------------------

    def mapped_state(self, node: int) -> State:
        cached = self._mapped.get(node)
        if cached is None:
            cached = self.mapping.target_state(
                self.graph.states[node], self.target_universe
            )
            self._mapped[node] = cached
        return cached

    def _pred_holds(self, pred: Expr, node: int) -> bool:
        value = pred.eval_state(self.mapped_state(node))
        if not isinstance(value, bool):
            raise TypeError(f"predicate {pred!r} returned {value!r}")
        return value

    def _target_step(self, action: Expr, src: int, dst: int) -> bool:
        return holds_on_step(action, self.mapped_state(src), self.mapped_state(dst))

    def _target_enabled(self, action: Expr, node: int) -> bool:
        key = (id(action), node)
        cached = self._enabled_cache.get(key)
        if cached is None:
            plan = compile_action(action).plan(self.target_universe)
            cached = plan.enabled(self.mapped_state(node))
            self._enabled_cache[key] = cached
            self._retained.append(action)  # pin: id()-keyed cache
        return cached

    # -- top level ------------------------------------------------------------

    def check(self, conclusion: TemporalFormula) -> CheckResult:
        conjuncts = _flatten_conjunction(to_tf(conclusion))
        notes: List[str] = []
        for conjunct in conjuncts:
            failure = self._check_conjunct(conjunct)
            if failure is not None:
                return CheckResult(
                    self.name, ok=False, counterexample=failure, stats=self.stats
                )
        return CheckResult(self.name, ok=True, stats=self.stats, notes=notes)

    # -- safety conjuncts (checked directly) -----------------------------------

    def _check_conjunct(self, tf: TemporalFormula) -> Optional[Counterexample]:
        if isinstance(tf, StatePred):
            for node in self.graph.init_nodes:
                if not self._pred_holds(tf.pred, node):
                    return self._finite_cex([node], f"initial state violates {tf!r}")
            return None
        if isinstance(tf, Always) and isinstance(tf.body, StatePred):
            for node in range(self.graph.state_count):
                if not self._pred_holds(tf.body.pred, node):
                    return self._finite_cex(
                        self.graph.path_to_root(node),
                        f"reachable state violates {tf!r}",
                    )
            return None
        if isinstance(tf, ActionBox):
            boxed = square(tf.action, tf.sub)
            for src in range(self.graph.state_count):
                for dst in self.graph.succ[src]:
                    if dst != src and not self._target_step(boxed, src, dst):
                        return self._finite_cex(
                            self.graph.path_to_root(src) + [dst],
                            f"mapped step violates {tf!r}",
                        )
            return None
        violation = self._violation_of(tf)
        return self._search(violation, tf)

    def _finite_cex(self, path: List[int], reason: str) -> Counterexample:
        from ..kernel.behavior import FiniteBehavior

        return Counterexample(
            FiniteBehavior([self.graph.states[i] for i in path]), reason
        )

    # -- negating liveness conjuncts ---------------------------------------------

    def _violation_of(self, tf: TemporalFormula) -> Violation:
        accept_all_nodes = lambda _n: True  # noqa: E731
        accept_all_edges = lambda _s, _d: True  # noqa: E731

        if isinstance(tf, Eventually) and isinstance(tf.body, StatePred):
            pred = tf.body.pred
            return Violation(
                f"never reaches {pred!r}",
                loop_node_ok=lambda n: not self._pred_holds(pred, n),
                loop_edge_ok=accept_all_edges,
                entry=None,
                restricted_stem=True,
            )
        if (
            isinstance(tf, Always)
            and isinstance(tf.body, Eventually)
            and isinstance(tf.body.body, StatePred)
        ):
            pred = tf.body.body.pred
            return Violation(
                f"eventually never {pred!r}",
                loop_node_ok=lambda n: not self._pred_holds(pred, n),
                loop_edge_ok=accept_all_edges,
            )
        if isinstance(tf, LeadsTo) and isinstance(tf.lhs, StatePred) and isinstance(
            tf.rhs, StatePred
        ):
            p, q = tf.lhs.pred, tf.rhs.pred
            return Violation(
                f"reaches {p!r} then never {q!r}",
                loop_node_ok=lambda n: not self._pred_holds(q, n),
                loop_edge_ok=accept_all_edges,
                entry=lambda n: self._pred_holds(p, n) and not self._pred_holds(q, n),
            )
        if isinstance(tf, ActionDiamond):
            act = tf._angle
            return Violation(
                f"never takes <{tf.action!r}>_{tf.sub}",
                loop_node_ok=accept_all_nodes,
                loop_edge_ok=lambda s, d: not self._target_step(act, s, d),
                restricted_stem=True,
            )
        if isinstance(tf, SF):
            act = tf._angle
            return Violation(
                f"violates SF: infinitely enabled, finitely taken",
                loop_node_ok=accept_all_nodes,
                loop_edge_ok=lambda s, d: not self._target_step(act, s, d),
                require=lambda n: self._target_enabled(act, n),
            )
        if isinstance(tf, WF):
            act = tf._angle
            return Violation(
                f"violates WF: eventually always enabled, finitely taken",
                loop_node_ok=lambda n: self._target_enabled(act, n),
                loop_edge_ok=lambda s, d: not self._target_step(act, s, d),
            )
        raise TypeError(
            f"unsupported liveness conclusion conjunct: {tf!r} "
            "(supported: WF, SF, <>P, []<>P, P ~> Q, <> <A>_v, and safety conjuncts)"
        )

    # -- the search -----------------------------------------------------------------

    def _search(self, violation: Violation, conjunct: TemporalFormula) -> Optional[Counterexample]:
        graph = self.graph
        nodes = [n for n in range(graph.state_count) if violation.loop_node_ok(n)]
        units = fair_units(graph, nodes, violation.loop_edge_ok, self.premises)
        for unit in units:
            self.stats["fair_units_examined"] += 1
            if violation.require is not None and not any(
                violation.require(n) for n in unit
            ):
                continue
            lasso = self._build_lasso(violation, unit)
            if lasso is None:
                continue
            self.stats["candidates_validated"] += 1
            if self._validate(lasso, conjunct):
                return Counterexample(
                    lasso,
                    f"premise-fair behavior where the conclusion fails: "
                    f"{violation.description}",
                )
        return None

    def _build_lasso(self, violation: Violation, unit: List[int]) -> Optional[Lasso]:
        graph = self.graph
        unit_set = set(unit)

        if violation.entry is not None:
            # two-phase stem: free path to an entry node, then a restricted
            # path into the unit
            entry_nodes = [
                n for n in range(graph.state_count)
                if violation.entry(n)
            ]
            best: Optional[List[int]] = None
            for entry in entry_nodes:
                free = graph.bfs_path(graph.init_nodes, lambda n: n == entry)
                if free is None:
                    continue
                tail = graph.bfs_path(
                    [entry],
                    lambda n: n in unit_set,
                    node_ok=violation.loop_node_ok,
                    edge_ok=violation.loop_edge_ok,
                )
                if tail is None:
                    continue
                stem = free + tail[1:]
                if best is None or len(stem) < len(best):
                    best = stem
            if best is None:
                return None
            stem = best
        elif violation.restricted_stem:
            stem = graph.bfs_path(
                graph.init_nodes,
                lambda n: n in unit_set,
                node_ok=violation.loop_node_ok,
                edge_ok=violation.loop_edge_ok,
            )
            if stem is None:
                return None
        else:
            stem = graph.bfs_path(graph.init_nodes, lambda n: n in unit_set)
            if stem is None:
                return None

        anchor = stem[-1]
        ordered = [anchor] + [n for n in unit if n != anchor]
        required = [
            (src, dst)
            for src in unit
            for dst in graph.succ[src]
            if dst in unit_set and dst != src and violation.loop_edge_ok(src, dst)
        ]
        cycle = graph.covering_cycle(ordered, violation.loop_edge_ok, required)
        states = [graph.states[i] for i in stem[:-1]] + [graph.states[i] for i in cycle]
        return Lasso(states, loop_start=len(stem) - 1)

    def _validate(self, lasso: Lasso, conjunct: TemporalFormula) -> bool:
        """Exact-semantics confirmation: premises hold, conjunct fails."""
        impl_ctx = EvalContext(lasso, self.graph.universe)
        for premise in self.premises:
            if not impl_ctx.eval(premise.formula(), 0):
                return False
        mapped = self.mapping.map_lasso(lasso, self.target_universe)
        target_ctx = EvalContext(mapped, self.target_universe)
        return not target_ctx.eval(conjunct, 0)


def _flatten_conjunction(tf: TemporalFormula) -> List[TemporalFormula]:
    if isinstance(tf, TAnd):
        flat: List[TemporalFormula] = []
        for part in tf.parts:
            flat.extend(_flatten_conjunction(part))
        return flat
    return [tf]


def check_temporal_implication(
    impl: Union[Spec, StateGraph],
    conclusion: object,
    mapping: Optional[RefinementMapping] = None,
    target_universe: Optional[Universe] = None,
    premises: Optional[Sequence[PremiseConstraint]] = None,
    name: Optional[str] = None,
    max_states: int = 200_000,
    run_stats: Optional[ExploreStats] = None,
) -> CheckResult:
    """Check ``impl ⇒ conclusion`` where *impl* is a canonical spec (its
    fairness becomes the premises) and *conclusion* is a conjunction of
    safety and liveness conjuncts, optionally through a refinement mapping.

    This is the workhorse behind hypothesis (2b) of the Composition
    Theorem and the refinement Corollary.  Pass *run_stats* to time the
    exploration and fair-cycle-search phases.
    """
    if isinstance(impl, StateGraph):
        graph = impl
        if premises is None:
            premises = []
        label = name or "temporal implication"
        if run_stats is not None and run_stats.states == 0:
            run_stats.record_graph(graph)
    else:
        graph = explore(impl, max_states=max_states, stats=run_stats)
        if premises is None:
            premises = premises_of_spec(impl)
        label = name or f"{impl.name} => conclusion"
    checker = ConclusionChecker(
        graph,
        premises,
        mapping=mapping,
        target_universe=target_universe,
        name=label,
    )
    with maybe_phase(run_stats, f"liveness:{label}"):
        return checker.check(to_tf(conclusion))
