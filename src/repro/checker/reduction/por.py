"""Ample/stubborn-set partial-order reduction over transition classes.

Given the :class:`~repro.checker.reduction.independence.Decomposition`
of a next-state action, :class:`AmpleReducer` prunes the successor set
expanded at each BFS state: instead of following every enabled
transition class, it follows a *stubborn* subset computed per state,
subject to the classic ample-set conditions:

* **C0 (nonemptiness)** -- the ample set contains an enabled class.
* **C1 (stubborn closure)** -- starting from a seed, every enabled
  member pulls in all classes statically *dependent* on it (footprint
  overlap), and every disabled member pulls in a *necessary enabling
  set*: the writers of a false guard's variables (nothing can enable
  the class before one of them fires), falling back to the writers of
  the class's whole read/write footprint when no extracted guard is
  false (enabledness -- including "has a non-self successor" -- is a
  function of the state restricted to that footprint).
* **C2 (invisibility)** -- no ample class writes an observed variable,
  so pruned interleavings are stutter-equivalent w.r.t. the property.
* **C3 (cycle proviso)** -- the closed-set BFS variant (Bošnački/
  Holzmann lineage), applied by the *coordinator* at merge time: if
  every non-stutter ample successor is already **closed** (expanded --
  equivalently, interned with a node id below the source, since BFS
  expands in id order), the state is re-expanded fully.  Successors
  still in the open queue are safe: a postponed class is carried to a
  strictly later-closing state, so the postponement chain terminates in
  a full expansion or an ample set containing the class.  This breaks
  the ignoring problem without needing a DFS stack, and because it is
  evaluated against the live graph in serial merge order it is
  bit-for-bit deterministic under any worker count.

A class is **enabled** here iff it has a *non-self* successor.  That is
deliberate and load-bearing for deadlock preservation: a class whose
only successor is the state itself must not certify an ample set as
"making progress", otherwise a reduced graph could show an outgoing
step where the full graph has a genuine deadlock.

C0+C1 make the ample set a stubborn set, so every pruned full run has a
Mazurkiewicz-equivalent run through the ample transition; with C2+C3 the
reduced graph is stutter-trace-equivalent to the full one, preserving
invariant verdicts, and C0/C1 alone preserve deadlocks.  Liveness and
refinement need the full graph and must not run on a reduced one -- the
callers in ``tools/cli.py`` auto-disable reduction for those checks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ...kernel.action import SuccessorPlan, compile_action
from ...kernel.state import State
from ...spec import Spec
from .independence import Decomposition, decompose

__all__ = [
    "EXPAND_FULL",
    "EXPAND_AMPLE",
    "ReductionConfig",
    "AmpleReducer",
    "build_reducer",
    "merge_source",
]

# expansion tags shipped from workers to the coordinator
EXPAND_FULL = 0
EXPAND_AMPLE = 1


class ReductionConfig:
    """The user-facing reduction request: POR on, observing these vars.

    ``observed_vars`` are the variables the property being checked can
    see (free variables of the invariants; empty for deadlock-only
    runs): classes writing them are *visible* and never ample (C2).
    Instances are pickled into parallel-worker init payloads, so both
    sides derive identical reducers."""

    __slots__ = ("observed_vars",)

    def __init__(self, observed_vars: Tuple[str, ...] = ()):
        self.observed_vars = tuple(sorted(set(observed_vars)))

    def as_dict(self) -> Dict[str, object]:
        return {"por": True, "observed_vars": list(self.observed_vars)}

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ReductionConfig)
                and self.observed_vars == other.observed_vars)

    def __repr__(self) -> str:
        return f"ReductionConfig(observed_vars={self.observed_vars!r})"


class AmpleReducer:
    """Per-state ample-set computation over a usable decomposition.

    ``expand(state)`` is pure (same state -> same tag and successor
    list, in a deterministic order), which is what lets parallel workers
    run it independently while the coordinator applies the C3 proviso
    at merge time."""

    __slots__ = ("spec", "decomposition", "config", "full_plan",
                 "class_plans", "visible", "counters")

    def __init__(self, spec: Spec, decomposition: Decomposition,
                 config: ReductionConfig):
        self.spec = spec
        self.decomposition = decomposition
        self.config = config
        universe = spec.universe
        self.full_plan: SuccessorPlan = (
            compile_action(spec.next_action).plan(universe))
        self.class_plans: List[SuccessorPlan] = [
            compile_action(cls.action).plan(universe)
            for cls in decomposition.classes
        ]
        observed = frozenset(config.observed_vars)
        self.visible: List[bool] = []
        for cls in decomposition.classes:
            cls.visible = not cls.writes.isdisjoint(observed)
            self.visible.append(cls.visible)
        # coordinator-side merge accounting (see merge_source)
        self.counters: Dict[str, int] = {
            "ample_states": 0, "full_states": 0, "proviso_states": 0,
            "ample_successors": 0, "pruned_successors": 0,
        }

    # -- per-state ample computation -----------------------------------------

    def _necessary_enabling(self, index: int, state: State) -> FrozenSet[int]:
        """Classes that must fire before class *index* can gain a
        non-self successor (C1's disabled branch)."""
        dec = self.decomposition
        for guard, writers in dec.guard_writers[index]:
            try:
                holds = bool(guard.eval_state(state))
            except Exception:
                continue
            if not holds:
                # the guard is false now; only its writers can flip it
                return writers
        return dec.fallback_nes[index]

    def _closure(self, seed: int, enabled: List[bool],
                 state: State) -> Set[int]:
        """The stubborn closure of {seed} at *state* (C1).  The result
        is the least fixpoint, so the iteration order is irrelevant."""
        dec = self.decomposition
        members: Set[int] = {seed}
        stack = [seed]
        while stack:
            index = stack.pop()
            grow = (dec.dep[index] if enabled[index]
                    else self._necessary_enabling(index, state))
            for other in grow:
                if other not in members:
                    members.add(other)
                    stack.append(other)
        return members

    def expand(self, state: State) -> Tuple[int, List[State], int]:
        """(tag, successors, pruned-estimate) for one frontier state.

        ``EXPAND_AMPLE`` successors come from the smallest valid ample
        set (ties broken by lowest seed index) and the third element
        estimates how many non-self successors were pruned away;
        ``EXPAND_FULL`` means no proper ample set exists and the
        successors are the full plan's, in exactly the order a POR-off
        run would enumerate them."""
        succs: List[List[State]] = []
        enabled: List[bool] = []
        enabled_count = 0
        total_nonself = 0
        for plan in self.class_plans:
            class_succs = [t for t in plan.successors(state) if t != state]
            succs.append(class_succs)
            total_nonself += len(class_succs)
            is_enabled = bool(class_succs)
            enabled.append(is_enabled)
            if is_enabled:
                enabled_count += 1
        if enabled_count <= 1:
            return EXPAND_FULL, list(self.full_plan.successors(state)), 0

        best: Optional[List[int]] = None
        best_cost = -1
        for seed in range(len(enabled)):
            if not enabled[seed]:
                continue
            members = self._closure(seed, enabled, state)
            ample = [i for i in sorted(members) if enabled[i]]
            if len(ample) >= enabled_count:
                continue  # not a proper subset: no reduction from this seed
            if any(self.visible[i] for i in ample):
                continue  # C2: visible classes are never ample
            cost = sum(len(succs[i]) for i in ample)
            if best is None or cost < best_cost:
                best, best_cost = ample, cost
        if best is None:
            return EXPAND_FULL, list(self.full_plan.successors(state)), 0
        out: List[State] = []
        for i in best:
            out.extend(succs[i])
        # class successor lists can overlap across classes, so this is an
        # estimate of the pruning, not an exact count -- stats label it so
        return EXPAND_AMPLE, out, total_nonself - best_cost


def build_reducer(
    spec: Spec, config: Optional[ReductionConfig]
) -> Tuple[Optional[AmpleReducer], Optional[str]]:
    """(reducer, None) when reduction is possible, else (None, reason).

    Both the coordinator and every worker call this with identical
    (spec, config) payloads, so they agree on usability and on every
    per-state decision."""
    if config is None:
        return None, None
    decomposition = decompose(spec)
    if not decomposition.usable:
        return None, (decomposition.reason
                      or "decomposition yields a single class")
    return AmpleReducer(spec, decomposition, config), None


def merge_source(graph, src: int, tag: int, successors: List[State],
                 pruned: int, reducer: AmpleReducer) -> List[int]:
    """Coordinator-side merge of one expanded source: apply the C3
    proviso against the live graph, then intern through
    ``graph.merge_batch``.  Returns the newly interned node ids.

    Called in serial BFS order by both the serial engine and the
    parallel coordinator, so the proviso decision -- and hence the
    reduced graph -- is identical under any worker count."""
    counters = reducer.counters
    if tag == EXPAND_AMPLE:
        lookup = graph.lookup
        # C3 (closed-set proviso): BFS expands nodes in node-id order, so
        # a successor is *closed* (already expanded) iff it was interned
        # with an id below src; new successors and open-queue successors
        # (id > src; self-successors are excluded from ample lists) close
        # strictly after src.  If every ample successor is closed, a
        # postponed class could be ignored around a cycle, so fall back
        # to the full set; otherwise the postponed-action chain always
        # moves to a later-closing state and must terminate in a full
        # expansion or an ample set containing the class.
        def _open(t: State) -> bool:
            node = lookup(t)
            return node is None or node > src

        if not any(_open(t) for t in successors):
            successors = list(
                reducer.full_plan.successors(graph.states[src]))
            counters["proviso_states"] += 1
        else:
            counters["ample_states"] += 1
            counters["ample_successors"] += len(successors)
            counters["pruned_successors"] += pruned
    else:
        counters["full_states"] += 1
    return graph.merge_batch(src, successors)
