"""Pluggable state interning: in-RAM dict vs fingerprint-indexed spill.

A :class:`StateStore` owns the ``state -> node id`` interning map of a
:class:`~repro.checker.graph.StateGraph`.  The graph only ever calls two
hot-path operations -- :meth:`StateStore.lookup` (is this state already
interned?) and :meth:`StateStore.append` (intern it as the next node) --
plus random access by node id, so the storage policy is swappable:

* :class:`MemoryStateStore` is the classic explicit-state layout: a
  Python list of :class:`~repro.kernel.state.State` objects plus a dict
  index.  ``lookup`` is bound directly to ``dict.get`` at construction
  time, so the default configuration adds **zero** per-state overhead
  over the pre-subsystem graph.

* :class:`SpillStateStore` bounds resident ``State`` objects: a hot LRU
  tier of decoded states backed by an append-only data file (one
  JSON-encoded row per state, the portable encoding of
  :func:`repro.kernel.state.value_to_portable`) and a fixed-width binary
  index file that is ``mmap``-ed for random access.  Lookups key on the
  process-stable FNV-1a :meth:`~repro.kernel.state.State.fingerprint`;
  fingerprint collisions are resolved by decoding the stored candidates
  and comparing structurally, so verdicts never depend on fingerprints
  being collision-free.  The RAM cost per interned state drops from a
  full ``State`` to one ``fingerprint -> node`` dict entry, which is
  what lets ``max_states`` budgets exceed resident memory.

Both stores intern states in call order, so node numbering -- and hence
traces, counterexamples, and budget behaviour -- is **bit-for-bit
identical** whichever store backs the graph (the differential suite in
``tests/test_reduction_differential.py`` asserts this).

Index-file record layout (little-endian, 20 bytes per node)::

    u64 fingerprint | u64 data-file offset | u32 row length in bytes

The data file is plain JSON-lines, so a spilled run can be inspected
with ``head``/``jq``; the index is regenerable from the data file in
principle, but checkpoint/resume simply re-interns states through
:meth:`append`, which rebuilds both files from scratch.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Sequence, Union

from ...kernel.state import State, value_from_portable, value_to_portable

__all__ = [
    "StateStore",
    "MemoryStateStore",
    "SpillStateStore",
    "build_store",
]

_IDX_RECORD = struct.Struct("<QQI")  # fingerprint, offset, length


class StateStore:
    """The interning protocol a :class:`StateGraph` drives.

    Subclasses must provide ``lookup``/``append`` (as *instance
    attributes or methods* -- the graph binds them once), random access
    via :meth:`get`, ``len()``, and a sequence view over the interned
    states in node order.
    """

    kind = "abstract"

    #: True once :meth:`close` ran; a closed store must not be used.
    closed = False

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def prepare(self, variables: Sequence[str]) -> None:
        """Bind the store to a universe's variable order (idempotent)."""

    def lookup(self, state: State) -> Optional[int]:
        """The node id of *state*, or ``None`` if not interned."""
        raise NotImplementedError

    def append(self, state: State) -> int:
        """Intern *state* as the next node id; returns that id."""
        raise NotImplementedError

    def get(self, node: int) -> State:
        """The state interned as *node*."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def states_view(self) -> Sequence[State]:
        """A sequence view of all interned states in node order."""
        raise NotImplementedError

    def counters(self) -> Dict[str, int]:
        """Store-health counters for :class:`ExploreStats` (may be empty)."""
        return {}

    def config(self) -> Dict[str, object]:
        """The effective configuration, for manifests and resume checks."""
        return {"kind": self.kind}

    def flush(self) -> None:
        """Flush any buffered writes (checkpoint boundary hook)."""

    def close(self) -> None:
        """Release file handles; the store must not be used afterwards.

        Idempotent.  The explorers call this on *every* error path (not
        just on success), so an exploded or crashed spill run never
        leaks its mmap'd index or file handles -- required for
        Windows-style strict unlink semantics and for
        ``-W error::ResourceWarning`` runs.
        """
        self.closed = True


class MemoryStateStore(StateStore):
    """The default store: every state resident in a list + dict index."""

    kind = "mem"

    def __init__(self) -> None:
        self._states: List[State] = []
        self._index: Dict[State, int] = {}
        # bind the hot path straight to the dict: the graph's lookup is
        # then exactly the pre-subsystem ``self.index.get``
        self.lookup = self._index.get

    def append(self, state: State) -> int:
        node = len(self._states)
        self._index[state] = node
        self._states.append(state)
        return node

    def get(self, node: int) -> State:
        return self._states[node]

    def counters(self) -> Dict[str, int]:
        """Report 64-bit fingerprint collisions among the interned states.

        The in-RAM store interns on full ``State`` keys, so a collision
        can never merge two states here -- but staying silent about one
        would hide exactly the event that *would* corrupt a
        fingerprint-keyed consumer (the spill index, the service cache,
        the compact engine's digest).  Computed lazily at stats-collection
        time; fingerprints are cached on the states themselves."""
        distinct = len({state.fingerprint() for state in self._states})
        return {"fp_collisions": len(self._states) - distinct}

    def __len__(self) -> int:
        return len(self._states)

    def states_view(self) -> List[State]:
        # the actual list: zero-cost iteration/indexing for the explorer
        return self._states

    @property
    def index(self) -> Dict[State, int]:
        """The live state -> node dict (kept for back-compat access)."""
        return self._index


class _SpillView(Sequence[State]):
    """``graph.states`` facade over a spill store: indexable, iterable."""

    __slots__ = ("_store",)

    def __init__(self, store: "SpillStateStore"):
        self._store = store

    def __getitem__(self, node: Union[int, slice]) -> State:
        if isinstance(node, slice):
            return [self._store.get(i)
                    for i in range(*node.indices(len(self._store)))]
        if node < 0:
            node += len(self._store)
        return self._store.get(node)

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[State]:
        for node in range(len(self._store)):
            yield self._store.get(node)


class SpillStateStore(StateStore):
    """Bounded-memory store: LRU of hot states over an on-disk cold tier.

    ``hot_capacity`` bounds the resident decoded :class:`State` objects;
    everything else lives in ``{directory}/states.dat`` (JSON-lines) and
    ``{directory}/states.idx`` (20-byte records, mmap-ed lazily).  The
    per-state RAM floor is the ``fingerprint -> node`` map entry used to
    answer :meth:`lookup`.
    """

    kind = "spill"

    def __init__(self, directory: str, hot_capacity: int = 4096,
                 name: str = "states"):
        if hot_capacity < 1:
            raise ValueError(f"hot_capacity must be >= 1, got {hot_capacity}")
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.hot_capacity = hot_capacity
        self._data_path = os.path.join(directory, name + ".dat")
        self._idx_path = os.path.join(directory, name + ".idx")
        # a fresh store always truncates: interning replays from node 0
        # (checkpoint resume re-interns the restored states through append)
        self._data = open(self._data_path, "w+b")
        self._idx = open(self._idx_path, "w+b")
        self._idx_mm: Optional[mmap.mmap] = None
        self._idx_mapped = 0  # bytes covered by the current mmap
        self._offset = 0
        self._count = 0
        self._variables: Optional[List[str]] = None
        # fingerprint -> node id, or list of node ids on collision
        self._by_fp: Dict[int, object] = {}
        self._hot: "OrderedDict[int, State]" = OrderedDict()
        self._stats = {"appends": 0, "hot_hits": 0, "cold_loads": 0,
                       "evictions": 0, "lookup_hits": 0, "lookup_misses": 0,
                       "fp_collisions": 0}

    # -- helpers -------------------------------------------------------------

    def prepare(self, variables: Sequence[str]) -> None:
        names = list(variables)
        if self._variables is None:
            self._variables = names
        elif self._variables != names:
            raise ValueError(
                f"spill store at {self.directory!r} is bound to variables "
                f"{self._variables}, cannot rebind to {names}"
            )

    def _encode(self, state: State) -> bytes:
        assert self._variables is not None, "store used before prepare()"
        row = [value_to_portable(state[name]) for name in self._variables]
        return (json.dumps(row, separators=(",", ":")) + "\n").encode("utf-8")

    def _decode(self, payload: bytes) -> State:
        assert self._variables is not None
        row = json.loads(payload)
        return State._trusted({name: value_from_portable(obj)
                               for name, obj in zip(self._variables, row)})

    def _cache(self, node: int, state: State) -> None:
        hot = self._hot
        hot[node] = state
        hot.move_to_end(node)
        if len(hot) > self.hot_capacity:
            hot.popitem(last=False)
            self._stats["evictions"] += 1

    def _idx_record(self, node: int) -> tuple:
        end = (node + 1) * _IDX_RECORD.size
        if self._idx_mm is None or end > self._idx_mapped:
            # the index grew past the mapped window: flush and re-map
            self._idx.flush()
            if self._idx_mm is not None:
                self._idx_mm.close()
            self._idx_mm = mmap.mmap(self._idx.fileno(), 0,
                                     access=mmap.ACCESS_READ)
            self._idx_mapped = len(self._idx_mm)
        return _IDX_RECORD.unpack_from(self._idx_mm, node * _IDX_RECORD.size)

    def _load(self, node: int) -> State:
        _fp, offset, length = self._idx_record(node)
        self._data.flush()
        self._data.seek(offset)
        state = self._decode(self._data.read(length))
        self._data.seek(0, os.SEEK_END)
        self._stats["cold_loads"] += 1
        self._cache(node, state)
        return state

    # -- StateStore protocol -------------------------------------------------

    def lookup(self, state: State) -> Optional[int]:
        entry = self._by_fp.get(state.fingerprint())
        if entry is None:
            self._stats["lookup_misses"] += 1
            return None
        candidates = entry if isinstance(entry, list) else (entry,)
        for node in candidates:
            if self.get(node) == state:
                self._stats["lookup_hits"] += 1
                return node
        self._stats["lookup_misses"] += 1
        return None

    def append(self, state: State) -> int:
        node = self._count
        payload = self._encode(state)
        self._data.write(payload)
        self._idx.write(_IDX_RECORD.pack(
            state.fingerprint() & 0xFFFFFFFFFFFFFFFF,
            self._offset, len(payload)))
        self._offset += len(payload)
        self._count = node + 1
        fp = state.fingerprint()
        entry = self._by_fp.get(fp)
        if entry is None:
            self._by_fp[fp] = node
        elif isinstance(entry, list):
            entry.append(node)
            self._stats["fp_collisions"] += 1
        else:
            self._by_fp[fp] = [entry, node]
            self._stats["fp_collisions"] += 1
        self._stats["appends"] += 1
        self._cache(node, state)
        return node

    def get(self, node: int) -> State:
        if not 0 <= node < self._count:
            raise IndexError(f"node {node} out of range (0..{self._count - 1})")
        state = self._hot.get(node)
        if state is not None:
            self._hot.move_to_end(node)
            self._stats["hot_hits"] += 1
            return state
        return self._load(node)

    def __len__(self) -> int:
        return self._count

    def states_view(self) -> _SpillView:
        return _SpillView(self)

    def counters(self) -> Dict[str, int]:
        return dict(self._stats)

    def config(self) -> Dict[str, object]:
        return {"kind": self.kind, "spill_dir": self.directory,
                "hot_capacity": self.hot_capacity}

    def flush(self) -> None:
        self._data.flush()
        self._idx.flush()

    def close(self) -> None:
        if self._idx_mm is not None:
            self._idx_mm.close()
            self._idx_mm = None
        for handle in (self._data, self._idx):
            try:
                handle.close()
            except OSError:  # pragma: no cover - double close
                pass
        self.closed = True


def build_store(config: Optional[Dict[str, object]]) -> StateStore:
    """A store instance from a manifest/checkpoint-style config dict.

    ``None`` or ``{"kind": "mem"}`` yields the in-RAM store; a spill
    config must carry ``spill_dir`` (and optionally ``hot_capacity``).
    """
    if not config or config.get("kind") in (None, "mem"):
        return MemoryStateStore()
    if config.get("kind") != "spill":
        raise ValueError(f"unknown state-store kind {config.get('kind')!r}")
    directory = config.get("spill_dir")
    if not directory:
        raise ValueError("spill store config requires 'spill_dir'")
    return SpillStateStore(str(directory),
                           hot_capacity=int(config.get("hot_capacity", 4096)))
