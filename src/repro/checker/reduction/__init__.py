"""State-space reduction: partial-order reduction + pluggable stores.

The subsystem has two cooperating layers, both wired through the
explorer, the parallel coordinator, checkpoints, stats, and the CLI:

* :mod:`~repro.checker.reduction.independence` +
  :mod:`~repro.checker.reduction.por` -- derive ⊥-independence between
  transition classes from the paper's ``Disjoint`` shape and prune
  successor expansion with ample/stubborn sets (invariant and deadlock
  verdicts preserved; liveness/refinement auto-disable reduction).
* :mod:`~repro.checker.reduction.store` -- the ``StateStore`` protocol
  behind :class:`~repro.checker.graph.StateGraph` interning, with the
  default in-RAM store and a fingerprint-indexed disk spill store.

:func:`check_invariant_reduced` is the convenience entry combining
both: explore under POR, and on a violation re-explore the *full* graph
to recover the canonical (POR-off) counterexample trace -- reduction
may legally reach a violating state along a different shortest path, so
the reduced trace is not byte-comparable; the full re-exploration makes
verdict *and* trace identical to an unreduced run.
"""

from __future__ import annotations

from typing import Optional, Tuple, TYPE_CHECKING

from ...spec import Spec
from ..stats import ExploreStats
from .independence import Decomposition, TransitionClass, decompose

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..results import CheckResult
from .por import (
    EXPAND_AMPLE,
    EXPAND_FULL,
    AmpleReducer,
    ReductionConfig,
    build_reducer,
    merge_source,
)
from .store import MemoryStateStore, SpillStateStore, StateStore, build_store

__all__ = [
    "Decomposition",
    "TransitionClass",
    "decompose",
    "ReductionConfig",
    "AmpleReducer",
    "build_reducer",
    "merge_source",
    "EXPAND_FULL",
    "EXPAND_AMPLE",
    "StateStore",
    "MemoryStateStore",
    "SpillStateStore",
    "build_store",
    "check_invariant_reduced",
]


def check_invariant_reduced(
    spec: Spec,
    invariant,
    name: Optional[str] = None,
    max_states: int = 200_000,
    workers: int = 1,
    stats: Optional[ExploreStats] = None,
    store: Optional[StateStore] = None,
) -> Tuple["CheckResult", bool]:
    """Check one invariant under POR; returns (result, reduction_used).

    The reduction observes exactly the invariant's free variables (C2).
    On a violation the *full* graph is re-explored and re-checked so the
    returned counterexample is the canonical POR-off trace; the verdict
    itself is already guaranteed equal by the ample conditions, the
    re-run only normalises the trace.  ``reduction_used`` is False when
    the spec's action shape is not reducible (the run was full anyway).
    """
    from ...kernel.expr import to_expr
    from ..explorer import explore
    from ..invariants import check_invariant
    from ..parallel import explore_parallel

    invariant = to_expr(invariant)
    config = ReductionConfig(tuple(invariant.free_vars()))

    def run(reduction, run_store):
        if workers > 1:
            return explore_parallel(spec, max_states=max_states,
                                    workers=workers, stats=stats,
                                    reduction=reduction, store=run_store)
        return explore(spec, max_states=max_states, stats=stats,
                       reduction=reduction, store=run_store)

    graph = run(config, store)
    reduced = bool(getattr(graph, "reduction_used", False))
    result = check_invariant(graph, invariant, name=name, run_stats=stats)
    if result.ok or not reduced:
        return result, reduced
    full_graph = run(None, None)
    return (check_invariant(full_graph, invariant, name=name,
                            run_stats=stats), reduced)
