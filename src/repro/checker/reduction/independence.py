"""Deriving an independence relation from the paper's disjointness shape.

The Composition Theorem machinery composes components with
:meth:`repro.spec.conjoin` -- the next-state action becomes a conjunction
of *squares* ``[N_i]_{v_i}`` -- and a :class:`repro.core.disjoint.DisjointSpec`
component whose formula says steps of different components touch
``⊥``-disjoint variable tuples.  After squaring, the Disjoint conjunct is
a **pure frame** -- a positive boolean combination of ``unchanged``
identity constraints -- and that is precisely the shape this module
recognises to split the monolithic next-state action into *transition
classes* whose read/write footprints certify independence:

* Each square conjunct ``Or(move_1, ..., move_k, unchanged(v_i))``
  contributes its moves and declares ownership of ``v_i``; the owned
  sets must partition the universe (the paper's tuple-disjointness
  hypothesis).
* Each pure-frame conjunct (the squared ``Disjoint`` formula) is a
  *separation certificate*: it forbids steps in which two components'
  must-change variables move simultaneously.  Component pairs the
  frames do not provably separate are merged into one class cluster
  (conservative: clustering only loses reduction, never soundness).
* Or-shaped next-state actions (complete systems built as a disjunction
  of moves, e.g. ``complete_queue``) decompose directly into one class
  per distributed disjunct -- the union of the classes *is* the action.

Two classes are **independent** when their footprints are disjoint the
same way ``⊥`` demands: ``W_a ∩ W_b = W_a ∩ R_b = W_b ∩ R_a = ∅``.
Footprints deliberately exclude identity conjuncts ``x' = x`` (framing a
variable neither reads nor writes it for commutation purposes), and
conservatively include enumerated-unconstrained variables as writes.

Everything here is *syntactic and conservative*: when the action does
not have a recognisable shape, :func:`decompose` returns an unusable
:class:`Decomposition` carrying a human-readable ``reason``, and the
explorer falls back to full expansion -- reduction can be lost, never
verdicts.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ...kernel.expr import (
    And,
    Const,
    Eq,
    Exists,
    Expr,
    Forall,
    Or,
    Var,
)
from ...kernel.state import State, Universe
from ...spec import Spec

__all__ = ["TransitionClass", "Decomposition", "decompose"]

# distribution / class-count ceiling: beyond this the per-state ample
# computation would cost more than the reduction saves
_MAX_CLASSES = 128


# -- structural helpers -------------------------------------------------------


def _identity_varset(expr: Expr) -> Optional[FrozenSet[str]]:
    """The framed variables if *expr* is a pure identity conjunction
    (``x' = x`` atoms, possibly under And / Const(True)); else None."""
    if isinstance(expr, Eq):
        lhs, rhs = expr.args
        for a, b in ((lhs, rhs), (rhs, lhs)):
            if (isinstance(a, Var) and a.primed and isinstance(b, Var)
                    and not b.primed and a.name == b.name):
                return frozenset({a.name})
        return None
    if isinstance(expr, Const):
        return frozenset() if expr.value is True else None
    if isinstance(expr, And):
        out: FrozenSet[str] = frozenset()
        for child in expr.args:
            sub = _identity_varset(child)
            if sub is None:
                return None
            out |= sub
        return out
    return None


def _is_pure_frame(expr: Expr) -> bool:
    """True when *expr* is a positive And/Or combination of identity
    constraints -- the squared ``Disjoint`` formula's shape."""
    if _identity_varset(expr) is not None:
        return True
    if isinstance(expr, (And, Or)):
        return all(_is_pure_frame(child) for child in expr.args)
    return False


def _frame_trivial(expr: Expr, writes: FrozenSet[str]) -> bool:
    """Monotone three-valued check: is the pure frame *expr* guaranteed
    to hold on every step that changes only variables in *writes*?
    Identity atoms over untouched variables are True, over touched ones
    pessimistically False."""
    varset = _identity_varset(expr)
    if varset is not None:
        return varset.isdisjoint(writes)
    if isinstance(expr, And):
        return all(_frame_trivial(child, writes) for child in expr.args)
    if isinstance(expr, Or):
        return any(_frame_trivial(child, writes) for child in expr.args)
    return False  # pragma: no cover - guarded by _is_pure_frame


def _frame_forbids(expr: Expr, change_a: FrozenSet[str],
                   change_b: FrozenSet[str]) -> bool:
    """Does the pure frame *expr* rule out any step that changes all of
    *change_a* and all of *change_b* simultaneously?

    An identity atom set S contradicts such a step as soon as it
    intersects either side; And forbids if any conjunct does; Or only if
    every disjunct does."""
    varset = _identity_varset(expr)
    if varset is not None:
        return (not varset.isdisjoint(change_a)
                or not varset.isdisjoint(change_b))
    if isinstance(expr, And):
        return any(_frame_forbids(child, change_a, change_b)
                   for child in expr.args)
    if isinstance(expr, Or):
        return all(_frame_forbids(child, change_a, change_b)
                   for child in expr.args)
    return False  # pragma: no cover - guarded by _is_pure_frame


def _core_sets(expr: Expr,
               bound: FrozenSet[str] = frozenset()
               ) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """(reads, writes) of *expr* with identity conjuncts stripped.

    Framing ``x' = x`` neither reads nor writes ``x`` for commutation
    purposes, so identity parts are excluded wherever they appear as
    conjuncts (including inside quantifier bodies)."""
    if _identity_varset(expr) is not None:
        return frozenset(), frozenset()
    if isinstance(expr, And):
        reads: FrozenSet[str] = frozenset()
        writes: FrozenSet[str] = frozenset()
        for child in expr.args:
            r, w = _core_sets(child, bound)
            reads |= r
            writes |= w
        return reads, writes
    if isinstance(expr, (Exists, Forall)):
        return _core_sets(expr.body, bound | frozenset({expr.var}))
    return expr.free_vars() - bound, expr.primed_vars()


def _guard_conjuncts(expr: Expr,
                     bound: FrozenSet[str] = frozenset()) -> List[Expr]:
    """Prime-free conjuncts of *expr* (enabling conditions), collected
    through And and through quantifier bodies when binder-independent."""
    if isinstance(expr, And):
        out: List[Expr] = []
        for child in expr.args:
            out.extend(_guard_conjuncts(child, bound))
        return out
    if isinstance(expr, (Exists, Forall)):
        inner = _guard_conjuncts(expr.body, bound | frozenset({expr.var}))
        return [g for g in inner if g.free_vars().isdisjoint({expr.var})]
    if not expr.primed_vars() and expr.free_vars().isdisjoint(bound):
        if isinstance(expr, Const):
            return []
        return [expr]
    return []


def _must_change(expr: Expr, universe: Universe) -> FrozenSet[str]:
    """Variables guaranteed to change in *every* step satisfying *expr*.

    A binding ``x' = e`` with ``free(e) ⊆ {x}`` guarantees change when
    ``e`` differs from ``x`` on the whole domain (e.g. a bit flip
    ``sig' = 1 - sig``) -- checked by brute evaluation over ``dom(x)``.
    Or-branches guarantee only their intersection; everything else
    contributes nothing (conservative)."""
    if isinstance(expr, And):
        out: FrozenSet[str] = frozenset()
        for child in expr.args:
            out |= _must_change(child, universe)
        return out
    if isinstance(expr, Or):
        if not expr.args:
            return frozenset()
        result = _must_change(expr.args[0], universe)
        for child in expr.args[1:]:
            result &= _must_change(child, universe)
        return result
    if isinstance(expr, (Exists, Forall)):
        inner = _must_change(expr.body, universe)
        return inner - frozenset({expr.var})
    if isinstance(expr, Eq):
        lhs, rhs = expr.args
        for target, value in ((lhs, rhs), (rhs, lhs)):
            if not (isinstance(target, Var) and target.primed):
                continue
            name = target.name
            if value.primed_vars() or not value.free_vars() <= {name}:
                continue
            if name not in universe.variables:
                continue
            try:
                flips = all(
                    value.eval_state(State._trusted({name: v})) != v
                    for v in universe.domain(name).values()
                )
            except Exception:
                flips = False
            if flips:
                return frozenset({name})
        return frozenset()
    return frozenset()


def _distribute_moves(expr: Expr, limit: int) -> Optional[List[Expr]]:
    """Flatten *expr* into a bounded disjunction of conjunctive moves
    (And-over-Or distribution); None when the product exceeds *limit*."""
    if isinstance(expr, Or):
        out: List[Expr] = []
        for child in expr.args:
            sub = _distribute_moves(child, limit)
            if sub is None:
                return None
            out.extend(sub)
            if len(out) > limit:
                return None
        return out
    if isinstance(expr, And):
        parts: List[List[Expr]] = []
        total = 1
        for child in expr.args:
            sub = _distribute_moves(child, limit)
            if sub is None:
                return None
            total *= len(sub)
            if total > limit:
                return None
            parts.append(sub)
        combos: List[List[Expr]] = [[]]
        for options in parts:
            combos = [combo + [option] for combo in combos
                      for option in options]
        return [And(*combo) if len(combo) != 1 else combo[0]
                for combo in combos]
    return [expr]


def _unchanged(names: Sequence[str]) -> Expr:
    """``unchanged`` over a deterministic (sorted) variable order."""
    ordered = sorted(names)
    if not ordered:
        return Const(True)
    return And(*[Eq(Var(name, primed=True), Var(name)) for name in ordered])


# -- the decomposition --------------------------------------------------------


class TransitionClass:
    """One independently schedulable slice of the next-state action.

    ``action`` is a self-contained action expression whose steps are
    exactly the full action's steps that move only this class's
    variables (plus stutter); ``reads``/``writes`` are the ⊥-footprints
    the dependence relation is computed from; ``guards`` lists this
    class's prime-free enabling conjuncts for necessary-enabling-set
    computation."""

    __slots__ = ("index", "label", "action", "reads", "writes", "guards",
                 "visible")

    def __init__(self, index: int, label: str, action: Expr,
                 reads: FrozenSet[str], writes: FrozenSet[str],
                 guards: Tuple[Expr, ...]):
        self.index = index
        self.label = label
        self.action = action
        self.reads = reads
        self.writes = writes
        self.guards = guards
        self.visible = False  # set by the reducer against observed vars

    def __repr__(self) -> str:
        return (f"TransitionClass({self.label}, reads={sorted(self.reads)}, "
                f"writes={sorted(self.writes)})")


class Decomposition:
    """The derived transition classes plus their dependence structure.

    ``usable`` is False (with a ``reason``) when the action shape is not
    recognised; the reducer then disables itself and exploration falls
    back to full expansion."""

    __slots__ = ("classes", "reason", "dep", "writers_by_var",
                 "guard_writers", "fallback_nes")

    def __init__(self, classes: List[TransitionClass],
                 reason: Optional[str] = None):
        self.classes = classes
        self.reason = reason
        self.dep: List[FrozenSet[int]] = []
        self.writers_by_var: Dict[str, FrozenSet[int]] = {}
        # per class: ((guard, writer-class indices), ...) for NES lookup
        self.guard_writers: List[Tuple[Tuple[Expr, FrozenSet[int]], ...]] = []
        self.fallback_nes: List[FrozenSet[int]] = []
        if reason is None:
            self._analyse()

    @property
    def usable(self) -> bool:
        return self.reason is None and len(self.classes) > 1

    def _analyse(self) -> None:
        classes = self.classes
        writers: Dict[str, List[int]] = {}
        for cls in classes:
            for name in cls.writes:
                writers.setdefault(name, []).append(cls.index)
        self.writers_by_var = {name: frozenset(ids)
                               for name, ids in writers.items()}

        def writer_set(names: FrozenSet[str]) -> FrozenSet[int]:
            out: FrozenSet[int] = frozenset()
            for name in names:
                out |= self.writers_by_var.get(name, frozenset())
            return out

        for a in classes:
            deps = set()
            for b in classes:
                if a.index == b.index:
                    continue
                if (not a.writes.isdisjoint(b.writes)
                        or not a.writes.isdisjoint(b.reads)
                        or not b.writes.isdisjoint(a.reads)):
                    deps.add(b.index)
            self.dep.append(frozenset(deps))
            self.guard_writers.append(tuple(
                (guard, writer_set(guard.free_vars())) for guard in a.guards
            ))
            self.fallback_nes.append(writer_set(a.reads | a.writes))

    def independent(self, a: int, b: int) -> bool:
        """⊥-independence of two classes (symmetric, irreflexive)."""
        return a != b and b not in self.dep[a]


def _unusable(reason: str) -> Decomposition:
    return Decomposition([], reason=reason)


def decompose(spec: Spec, max_classes: int = _MAX_CLASSES) -> Decomposition:
    """Derive transition classes from *spec*'s next-state action.

    Recognises the two shapes the repo's composition pipeline produces:
    a top-level disjunction of moves (complete systems), and a
    conjunction of component squares plus pure-frame ``Disjoint``
    conjuncts (outputs of :func:`repro.spec.conjoin`).  Anything else
    yields an unusable decomposition with a diagnostic reason."""
    universe_vars = frozenset(spec.universe.variables)
    action = spec.next_action
    conjuncts: Sequence[Expr] = (action.args if isinstance(action, And)
                                 else (action,))

    if len(conjuncts) == 1:
        return _decompose_or_form(conjuncts[0], spec, universe_vars,
                                  max_classes)
    return _decompose_squares(conjuncts, spec, universe_vars, max_classes)


def _decompose_or_form(action: Expr, spec: Spec,
                       universe_vars: FrozenSet[str],
                       max_classes: int) -> Decomposition:
    """A complete system written as a disjunction of moves: every
    distributed disjunct is a class of its own (their union is the
    action, so coverage is definitional)."""
    moves = _distribute_moves(action, max_classes)
    if moves is None:
        return _unusable(
            f"next-state action distributes into more than {max_classes} "
            f"disjuncts"
        )
    # drop stutter moves -- identities over *every* universe variable,
    # e.g. the UNCHANGED disjunct of a parsed ``[][Next]_v``: their only
    # successor is the state itself, which classes never count as
    # enabling, so keeping them would just pad the class list and
    # misreport irreducible specs as reducible.  (A partial identity is
    # kept: its unconstrained variables still admit non-self steps.)
    def _is_stutter(move: Expr) -> bool:
        varset = _identity_varset(move)
        return varset is not None and universe_vars <= varset

    moves = [move for move in moves if not _is_stutter(move)]
    if len(moves) <= 1:
        return _unusable("next-state action has a single transition class; "
                         "nothing to reduce")
    classes: List[TransitionClass] = []
    for mi, move in enumerate(moves):
        reads, core_writes = _core_sets(move)
        unconstrained = universe_vars - move.primed_vars()
        writes = (core_writes & universe_vars) | unconstrained
        classes.append(TransitionClass(
            index=mi, label=f"m{mi}", action=move,
            reads=reads & universe_vars, writes=writes,
            guards=tuple(_guard_conjuncts(move)),
        ))
    return Decomposition(classes)


def _decompose_squares(conjuncts: Sequence[Expr], spec: Spec,
                       universe_vars: FrozenSet[str],
                       max_classes: int) -> Decomposition:
    """Conjoined component squares + pure-frame Disjoint conjuncts."""
    frames: List[Expr] = []
    # per component: (conjunct, owned vars, distributed moves)
    components: List[Tuple[Expr, FrozenSet[str], List[Expr]]] = []
    for ci, conjunct in enumerate(conjuncts):
        if _is_pure_frame(conjunct):
            frames.append(conjunct)
            continue
        if not isinstance(conjunct, Or):
            return _unusable(
                f"conjunct {ci} is neither a component square nor a pure "
                f"frame: {type(conjunct).__name__}"
            )
        owned: FrozenSet[str] = frozenset()
        raw_moves: List[Expr] = []
        for disjunct in conjunct.args:
            varset = _identity_varset(disjunct)
            if varset is not None:
                owned |= varset
            else:
                raw_moves.append(disjunct)
        if not owned:
            return _unusable(
                f"conjunct {ci} has no identity (frame) disjunct; not a "
                f"square"
            )
        moves: List[Expr] = []
        for raw in raw_moves:
            sub = _distribute_moves(raw, max_classes)
            if sub is None or len(moves) + len(sub) > max_classes:
                return _unusable(
                    f"conjunct {ci} distributes into more than "
                    f"{max_classes} moves"
                )
            moves.extend(sub)
        for move in moves:
            _reads, core_writes = _core_sets(move)
            if not (core_writes & universe_vars) <= owned:
                return _unusable(
                    f"conjunct {ci} move writes "
                    f"{sorted((core_writes & universe_vars) - owned)} "
                    f"outside its owned set {sorted(owned)}"
                )
        components.append((conjunct, owned, moves))

    if not components:
        return _unusable("no component squares found")
    all_owned = [owned for _c, owned, _m in components]
    union_owned: FrozenSet[str] = frozenset()
    for owned in all_owned:
        if not union_owned.isdisjoint(owned):
            return _unusable(
                f"component owned sets overlap on "
                f"{sorted(union_owned & owned)}"
            )
        union_owned |= owned
    if union_owned != universe_vars:
        return _unusable(
            f"owned sets do not cover the universe; uncovered: "
            f"{sorted(universe_vars - union_owned)}"
        )

    # pairwise separation via the frame certificates, on must-change sets
    must = [[_must_change(move, spec.universe) for move in moves]
            for _c, _o, moves in components]
    n = len(components)
    uf = list(range(n))

    def find(x: int) -> int:
        while uf[x] != x:
            uf[x] = uf[uf[x]]
            x = uf[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            uf[max(ra, rb)] = min(ra, rb)

    for a in range(n):
        for b in range(a + 1, n):
            separated = all(
                any(_frame_forbids(frame, ma, mb) for frame in frames)
                for ma in must[a] for mb in must[b]
            ) if must[a] and must[b] else False
            if not separated:
                union(a, b)

    clusters: Dict[int, List[int]] = {}
    for i in range(n):
        clusters.setdefault(find(i), []).append(i)

    classes: List[TransitionClass] = []
    for root in sorted(clusters):
        members = clusters[root]
        cluster_owned: FrozenSet[str] = frozenset()
        for i in members:
            cluster_owned |= components[i][1]
        rest = universe_vars - cluster_owned
        if len(members) == 1:
            ci = members[0]
            _conjunct, owned, moves = components[ci]
            for mi, move in enumerate(moves):
                _reads, core_writes = _core_sets(move)
                writes = ((core_writes & universe_vars)
                          | (owned - move.primed_vars()))
                live_frames = [f for f in frames
                               if not _frame_trivial(f, writes)]
                parts = [move] + live_frames + [_unchanged(sorted(rest))]
                classes.append(TransitionClass(
                    index=len(classes), label=f"c{ci}m{mi}",
                    action=And(*parts),
                    reads=_reads & universe_vars,
                    writes=writes,
                    guards=tuple(_guard_conjuncts(move)),
                ))
        else:
            # unseparated components move together: one conservative class
            # conjoining their full squares (sound: its steps are exactly
            # the full action's steps confined to the cluster's variables)
            reads: FrozenSet[str] = frozenset(cluster_owned)
            for i in members:
                for move in components[i][2]:
                    r, _w = _core_sets(move)
                    reads |= r & universe_vars
            live_frames = [f for f in frames
                           if not _frame_trivial(f, cluster_owned)]
            parts = ([components[i][0] for i in members] + live_frames
                     + [_unchanged(sorted(rest))])
            label = "cluster(" + ",".join(str(i) for i in members) + ")"
            classes.append(TransitionClass(
                index=len(classes), label=label, action=And(*parts),
                reads=reads, writes=frozenset(cluster_owned),
                guards=(),
            ))
    if len(classes) <= 1:
        return _unusable("all components collapse into a single dependence "
                         "cluster; nothing to reduce")
    return Decomposition(classes)


def _identity_varset_union(move: Expr) -> FrozenSet[str]:
    """Primed variables of *move* that appear only in identity conjuncts."""
    if isinstance(move, And):
        out: FrozenSet[str] = frozenset()
        for child in move.args:
            varset = _identity_varset(child)
            if varset is not None:
                out |= varset
        return out
    varset = _identity_varset(move)
    return varset if varset is not None else frozenset()
