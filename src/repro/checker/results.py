"""Check results and counterexample traces.

Every checking routine returns a :class:`CheckResult`: a verdict, runtime
statistics (states, edges, SCCs inspected -- the benchmark harness reports
these), and on failure a :class:`Counterexample` carrying either a finite
trace (safety violations) or a lasso (liveness violations), already
validated against the exact lasso semantics where applicable.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from ..kernel.behavior import FiniteBehavior, Lasso
from ..kernel.state import State
from ..kernel.values import format_value


class Counterexample:
    """A violating trace plus a human-readable explanation."""

    __slots__ = ("trace", "reason")

    def __init__(self, trace: Union[FiniteBehavior, Lasso], reason: str):
        self.trace = trace
        self.reason = reason

    @property
    def is_lasso(self) -> bool:
        return isinstance(self.trace, Lasso)

    def states(self) -> Sequence[State]:
        return self.trace.states

    def render(self, variables: Optional[Sequence[str]] = None) -> str:
        """A column-per-state table in the style of the paper's Figure 2.

        An empty *variables* selection falls back to all variables, like
        ``None`` -- a caller narrowing the table to a subsystem's
        variables that happens to pass an empty tuple gets the full trace
        rather than a header-only (useless) table.
        """
        states = list(self.trace.states)
        names = list(variables) if variables else sorted(
            {name for state in states for name in state})
        header = ["state"] + [str(i) for i in range(len(states))]
        if isinstance(self.trace, Lasso):
            header[1 + self.trace.loop_start] += "*"  # loop entry
        rows = [header]
        for name in names:
            rows.append([name] + [
                format_value(state[name]) if name in state else "?" for state in states
            ])
        widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
        lines = ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
                 for row in rows]
        kind = "lasso (loop entry marked *)" if self.is_lasso else "finite trace"
        return "\n".join([self.reason, f"counterexample ({kind}):"] + lines)

    def __repr__(self) -> str:
        return f"Counterexample({self.reason!r}, trace={self.trace!r})"


class CheckResult:
    """Verdict of a model-checking run."""

    __slots__ = ("name", "ok", "counterexample", "stats", "notes")

    def __init__(
        self,
        name: str,
        ok: bool,
        counterexample: Optional[Counterexample] = None,
        stats: Optional[Dict[str, int]] = None,
        notes: Sequence[str] = (),
    ):
        if ok and counterexample is not None:
            raise ValueError("a passing result cannot carry a counterexample")
        self.name = name
        self.ok = ok
        self.counterexample = counterexample
        self.stats = dict(stats or {})
        self.notes = list(notes)

    def __bool__(self) -> bool:
        return self.ok

    def expect_ok(self) -> "CheckResult":
        """Raise with a rendered counterexample if the check failed."""
        if not self.ok:
            detail = self.counterexample.render() if self.counterexample else "(no trace)"
            raise AssertionError(f"check {self.name!r} failed:\n{detail}")
        return self

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        stat_text = ", ".join(f"{key}={value}" for key, value in sorted(self.stats.items()))
        return f"[{verdict}] {self.name}" + (f" ({stat_text})" if stat_text else "")

    def __repr__(self) -> str:
        return f"CheckResult({self.name!r}, ok={self.ok}, stats={self.stats})"
