"""Parallel sharded BFS exploration of canonical specifications.

:func:`explore_parallel` distributes the successor enumeration of each
BFS level across ``multiprocessing`` worker processes while keeping the
*merge* of results strictly serial, which makes the parallel explorer
**bit-for-bit deterministic**: the resulting
:class:`~repro.checker.graph.StateGraph` has the same states, the same
node numbering, the same edges, the same BFS parent tree (hence the same
counterexample traces), and the same
:class:`~repro.checker.graph.StateSpaceExplosion` behaviour as a serial
:func:`~repro.checker.explorer.explore` run -- regardless of worker
count, chunking, or scheduling.  ``workers=1`` *is* the serial explorer
(the call delegates), so the serial path remains the reference
semantics; ``tests/test_parallel_differential.py`` checks the
equivalence for every bundled system.

How the work is sharded
-----------------------

Per BFS level the coordinator:

1. snapshots the frontier (node ids in serial-BFS order), pairs each
   frontier state with its :meth:`~repro.kernel.state.State.fingerprint`
   (an opaque batch key echoed back by workers; fingerprint collisions
   within a level are disambiguated with the node id, so keys are always
   unique),
2. splits the keyed frontier into contiguous chunks -- the chunk size is
   a pure function of frontier length and worker count, so the sharding
   itself is deterministic,
3. ships the chunks to the pool with ``imap`` (which yields results in
   **submission order**, not completion order), and
4. merges each returned ``(src_fingerprint, successor_states)`` batch
   through :meth:`~repro.checker.graph.StateGraph.merge_batch` in that
   order -- exactly the order the serial explorer would have used.

Workers are started once per run: each unpickles the spec in its
initializer and builds its own
:class:`~repro.kernel.action.SuccessorPlan` (compiled once, driven for
every chunk), so the per-chunk payload is only the frontier states and
the per-chunk result only the successor batches.  Worker-side busy time
and coordinator idle time are recorded on the optional
:class:`~repro.checker.stats.ExploreStats`.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from ..kernel.action import SuccessorPlan, compile_action
from ..kernel.state import State
from ..spec import Spec
from .explorer import explore, initial_states
from .graph import StateGraph
from .stats import ExploreStats

__all__ = ["explore_parallel", "default_workers"]

# one payload per chunk: [(batch_key, frontier_state), ...]
_Chunk = List[Tuple[object, State]]
# one result per chunk: (worker_pid, busy_seconds, [(batch_key, successors)])
_ChunkResult = Tuple[int, float, List[Tuple[object, List[State]]]]

# targeted chunks per worker per level: >1 so a worker that drew cheap
# sources can pick up another chunk instead of idling at the level barrier
_CHUNKS_PER_WORKER = 4

# never cut chunks smaller than this many sources: per-task pool overhead
# (dispatch, pickling envelopes, result queueing) swamps the successor
# work for tiny chunks
_MIN_CHUNK = 16

# frontiers smaller than workers * _MIN_CHUNK are expanded inline by the
# coordinator (shipping them would cost more than computing them); the
# narrow first/last BFS levels of most systems take this path
def _inline_threshold(workers: int) -> int:
    return workers * _MIN_CHUNK

# worker-process globals, set once by _init_worker
_worker_plan: Optional[SuccessorPlan] = None


def default_workers() -> int:
    """The worker count ``--workers 0`` resolves to: one per available
    core (respecting CPU affinity where the platform exposes it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _init_worker(spec_payload: bytes) -> None:
    """Pool initializer: unpickle the spec and compile its successor plan
    once; every chunk this worker processes reuses the same plan."""
    global _worker_plan
    spec = pickle.loads(spec_payload)
    _worker_plan = compile_action(spec.next_action).plan(spec.universe)


def _expand_chunk(chunk: _Chunk) -> _ChunkResult:
    """Worker body: enumerate successors for one frontier chunk."""
    plan = _worker_plan
    assert plan is not None, "worker used before initialization"
    start = perf_counter()
    batches = [(key, list(plan.successors(state))) for key, state in chunk]
    return os.getpid(), perf_counter() - start, batches


def _shard_frontier(
    graph: StateGraph, frontier: List[int], workers: int
) -> Tuple[List[_Chunk], Dict[object, int]]:
    """Key the frontier by state fingerprint and cut it into contiguous
    chunks; returns the chunks and the key -> node id resolution map."""
    states = graph.states
    entries: _Chunk = []
    key_to_node: Dict[object, int] = {}
    for node in frontier:
        key: object = states[node].fingerprint()
        if key in key_to_node:
            # distinct frontier states with colliding fingerprints: make
            # the batch key unique (workers only echo it back)
            key = (key, node)
        key_to_node[key] = node
        entries.append((key, states[node]))
    # ceil-divide into at most workers * _CHUNKS_PER_WORKER chunks of at
    # least _MIN_CHUNK sources -- a pure function of (len(frontier),
    # workers), hence deterministic
    target = workers * _CHUNKS_PER_WORKER
    chunk_size = max(_MIN_CHUNK, -(-len(entries) // target))
    chunks = [entries[i:i + chunk_size]
              for i in range(0, len(entries), chunk_size)]
    return chunks, key_to_node


def explore_parallel(
    spec: Spec,
    max_states: int = 200_000,
    workers: int = 1,
    stats: Optional[ExploreStats] = None,
) -> StateGraph:
    """The reachable state graph of ``Init ∧ □[N]_v``, explored with
    *workers* processes.

    Produces a graph identical to ``explore(spec, max_states)`` -- same
    states in the same node order, same edges, same ``init_nodes``, same
    BFS parent tree, and :class:`StateSpaceExplosion` raised at the same
    insertion -- for every worker count.  ``workers <= 1`` delegates to
    the serial explorer; ``workers=0`` is resolved by
    :func:`default_workers` to one worker per available core.
    """
    if workers == 0:
        workers = default_workers()
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers <= 1:
        return explore(spec, max_states=max_states, stats=stats)

    start = perf_counter()
    # fork is the cheap path where available (Linux); spawn/forkserver
    # workers rebuild everything from the pickled spec payload anyway
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods
                                     else methods[0])
    payload = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)

    graph = StateGraph(spec.universe, max_states=max_states, name=spec.name)
    frontier: List[int] = []
    for state in initial_states(spec.init, spec.universe):
        node, new = graph.add_state(state)
        if new:
            graph.init_nodes.append(node)
            frontier.append(node)

    depth = 0
    idle = 0.0
    worker_ids: Dict[int, int] = {}  # pid -> dense worker id
    merge_batch = graph.merge_batch
    states = graph.states
    # the coordinator's own plan, for frontiers too narrow to ship; the
    # compile/plan caches make this free when it is never needed
    local_plan = compile_action(spec.next_action).plan(spec.universe)
    inline_below = _inline_threshold(workers)
    with ctx.Pool(workers, initializer=_init_worker,
                  initargs=(payload,)) as pool:
        while frontier:
            next_frontier: List[int] = []
            if len(frontier) < inline_below:
                # narrow level: expanding locally beats IPC round trips;
                # merge order (frontier order) is the serial order either way
                for src in frontier:
                    next_frontier.extend(
                        merge_batch(src, local_plan.successors(states[src])))
            else:
                chunks, key_to_node = _shard_frontier(graph, frontier,
                                                      workers)
                wait_from = perf_counter()
                # imap yields chunk results in submission order; merging
                # in that order reproduces the serial interning order
                for pid, busy, batches in pool.imap(_expand_chunk, chunks):
                    idle += perf_counter() - wait_from
                    if stats is not None:
                        stats.record_worker_batch(
                            worker_ids.setdefault(pid, len(worker_ids)),
                            sources=len(batches),
                            successors=sum(len(succ)
                                           for _key, succ in batches),
                            busy_seconds=busy,
                        )
                    for key, successor_states in batches:
                        next_frontier.extend(
                            merge_batch(key_to_node[key], successor_states))
                    wait_from = perf_counter()
            frontier = next_frontier
            if frontier:
                depth += 1

    if stats is not None:
        stats.record_explore(graph, depth, perf_counter() - start)
        stats.record_parallel(workers, idle)
    return graph
