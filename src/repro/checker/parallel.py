"""Parallel sharded BFS exploration of canonical specifications.

:func:`explore_parallel` distributes the successor enumeration of each
BFS level across worker processes while keeping the *merge* of results
strictly serial, which makes the parallel explorer **bit-for-bit
deterministic**: the resulting :class:`~repro.checker.graph.StateGraph`
has the same states, the same node numbering, the same edges, the same
BFS parent tree (hence the same counterexample traces), and the same
:class:`~repro.checker.graph.StateSpaceExplosion` behaviour as a serial
:func:`~repro.checker.explorer.explore` run -- regardless of worker
count, chunking, scheduling, **or worker failures**.  ``workers=1`` *is*
the serial explorer (the call delegates), so the serial path remains the
reference semantics; ``tests/test_parallel_differential.py`` checks the
equivalence for every bundled system and
``tests/test_fault_injection.py`` re-checks it under injected crashes.

How the work is sharded
-----------------------

Per BFS level the coordinator:

1. snapshots the frontier (node ids in serial-BFS order), pairs each
   frontier state with its :meth:`~repro.kernel.state.State.fingerprint`
   (an opaque batch key echoed back by workers; fingerprint collisions
   within a level are disambiguated with the node id, so keys are always
   unique),
2. splits the keyed frontier into contiguous chunks -- the chunk size is
   a pure function of frontier length and worker count, so the sharding
   itself is deterministic,
3. submits the chunks to a ``concurrent.futures`` process pool and
   retrieves results strictly in **submission order**, and
4. merges each returned ``(src_fingerprint, tag, successors, pruned)``
   batch in that order -- exactly the order the serial explorer would
   have used (plain runs go straight through
   :meth:`~repro.checker.graph.StateGraph.merge_batch`; reduced runs go
   through :func:`repro.checker.reduction.por.merge_source`, which also
   applies the C3 cycle proviso on the coordinator, in merge order, so
   the reduced graph too is identical for every worker count).

Worker-crash recovery
---------------------

A worker that dies mid-chunk (OOM kill, segfault, ``SIGKILL``) surfaces
as a broken pool; a worker that exceeds the per-chunk ``worker_timeout``
surfaces as a timeout.  Either way the coordinator tears the pool down,
spins up fresh processes, and resubmits every chunk whose result it has
not merged yet.  This cannot change the explored graph: chunk expansion
is **pure** (workers only read frontier states and drive a deterministic
:class:`~repro.kernel.action.SuccessorPlan`; nothing is merged until a
chunk's full result arrives), and the merge order is the chunk
submission order whatever the retry history -- so a retried run is
bit-for-bit the run without failures.  Retries are counted on
:class:`~repro.checker.stats.ExploreStats` (``worker_retries``); a chunk
that keeps failing raises :class:`WorkerFailure` after
``_MAX_CHUNK_RETRIES`` attempts.

Workers are started lazily and initialised once: each unpickles the spec
in its initializer and builds its own
:class:`~repro.kernel.action.SuccessorPlan` (compiled once, driven for
every chunk), so the per-chunk payload is only the frontier states and
the per-chunk result only the successor batches.  Worker-side busy time
and coordinator idle time are recorded on the optional
:class:`~repro.checker.stats.ExploreStats`.

Durable runs: ``checkpoint=path`` snapshots the run at BFS level
boundaries exactly like the serial explorer (see
:mod:`repro.checker.checkpoint`); resuming with any worker count yields
the identical graph.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from typing import TYPE_CHECKING

from ..kernel.action import compile_action
from ..kernel.state import State
from ..spec import Spec
from .checkpoint import save_checkpoint
from .explorer import _finish_reduction, _resolve_reducer, _seed_graph, explore
from .graph import StateGraph
from .stats import ExploreStats

if TYPE_CHECKING:  # pragma: no cover - types only
    from .reduction.por import AmpleReducer, ReductionConfig
    from .reduction.store import StateStore

__all__ = ["explore_parallel", "default_workers", "WorkerFailure"]

# one payload per chunk: [(batch_key, frontier_state), ...]
_Chunk = List[Tuple[object, State]]
# one result per chunk:
# (worker_pid, busy_seconds, [(batch_key, tag, successors, pruned)]) --
# tag/pruned are EXPAND_FULL/0 for unreduced runs (see reduction.por)
_ChunkResult = Tuple[int, float, List[Tuple[object, int, List[State], int]]]
# optional fault-injection hook, called in the worker once per chunk
_FaultHook = Optional[Callable[[_Chunk], None]]

# targeted chunks per worker per level: >1 so a worker that drew cheap
# sources can pick up another chunk instead of idling at the level barrier
_CHUNKS_PER_WORKER = 4

# never cut chunks smaller than this many sources: per-task pool overhead
# (dispatch, pickling envelopes, result queueing) swamps the successor
# work for tiny chunks
_MIN_CHUNK = 16

# a chunk that failed this many times in a row aborts the run: by then the
# failure is systematic (the chunk itself crashes the worker), not flaky
# infrastructure, and retrying forever would loop
_MAX_CHUNK_RETRIES = 3


class WorkerFailure(Exception):
    """A frontier chunk kept crashing or timing out after all retries."""


# frontiers smaller than workers * _MIN_CHUNK are expanded inline by the
# coordinator (shipping them would cost more than computing them); the
# narrow first/last BFS levels of most systems take this path
def _inline_threshold(workers: int) -> int:
    return workers * _MIN_CHUNK


# worker-process globals, set once by _init_worker: a pure
# state -> (tag, successors, pruned) expansion function
_worker_expand: Optional[Callable[[State], Tuple[int, List[State], int]]] = None
_worker_fault: _FaultHook = None


def default_workers() -> int:
    """The worker count ``--workers 0`` resolves to: one per available
    core (respecting CPU affinity where the platform exposes it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _full_expander(
    spec: Spec,
) -> Callable[[State], Tuple[int, List[State], int]]:
    """The unreduced expansion function (tag is always EXPAND_FULL=0)."""
    plan = compile_action(spec.next_action).plan(spec.universe)
    successors = plan.successors

    def expand(state: State) -> Tuple[int, List[State], int]:
        return 0, list(successors(state)), 0

    return expand


def _init_worker(spec_payload: bytes, fault_hook: _FaultHook = None) -> None:
    """Pool initializer: unpickle (spec, reduction config) and build the
    expansion function once; every chunk this worker processes reuses it.

    With reduction on, the worker derives the *same* reducer the
    coordinator did (decomposition is a pure function of the spec), so
    per-state ample decisions are identical on both sides."""
    global _worker_expand, _worker_fault
    spec, reduction = pickle.loads(spec_payload)
    if reduction is not None:
        from .reduction.por import build_reducer

        reducer, _reason = build_reducer(spec, reduction)
        if reducer is not None:
            _worker_expand = reducer.expand
        else:  # pragma: no cover - coordinator never ships an unusable config
            _worker_expand = _full_expander(spec)
    else:
        _worker_expand = _full_expander(spec)
    _worker_fault = fault_hook


def _expand_chunk(chunk: _Chunk) -> _ChunkResult:
    """Worker body: enumerate successors for one frontier chunk."""
    expand = _worker_expand
    assert expand is not None, "worker used before initialization"
    if _worker_fault is not None:
        _worker_fault(chunk)
    start = perf_counter()
    batches = []
    for key, state in chunk:
        tag, succs, pruned = expand(state)
        batches.append((key, tag, succs, pruned))
    return os.getpid(), perf_counter() - start, batches


def _shard_frontier(
    graph: StateGraph, frontier: List[int], workers: int
) -> Tuple[List[_Chunk], Dict[object, int]]:
    """Key the frontier by state fingerprint and cut it into contiguous
    chunks; returns the chunks and the key -> node id resolution map."""
    states = graph.states
    entries: _Chunk = []
    key_to_node: Dict[object, int] = {}
    for node in frontier:
        key: object = states[node].fingerprint()
        if key in key_to_node:
            # distinct frontier states with colliding fingerprints: make
            # the batch key unique (workers only echo it back)
            key = (key, node)
        key_to_node[key] = node
        entries.append((key, states[node]))
    # ceil-divide into at most workers * _CHUNKS_PER_WORKER chunks of at
    # least _MIN_CHUNK sources -- a pure function of (len(frontier),
    # workers), hence deterministic
    target = workers * _CHUNKS_PER_WORKER
    chunk_size = max(_MIN_CHUNK, -(-len(entries) // target))
    chunks = [entries[i:i + chunk_size]
              for i in range(0, len(entries), chunk_size)]
    return chunks, key_to_node


class _ChunkRunner:
    """Owns the worker pool and yields chunk results in submission order,
    retrying on worker death or per-chunk timeout.

    The pool is created lazily (a run whose frontiers all stay below the
    inline threshold never forks a process) and torn down + respawned on
    any failure; chunks whose results were already merged are never
    resubmitted, so the merge stream the coordinator sees is exactly the
    no-failure stream.
    """

    def __init__(self, workers: int, payload: bytes, ctx,
                 worker_timeout: Optional[float], fault_hook: _FaultHook,
                 stats: Optional[ExploreStats],
                 initializer: Callable = _init_worker,
                 task: Callable = _expand_chunk):
        self._workers = workers
        self._payload = payload
        self._ctx = ctx
        self._timeout = worker_timeout
        self._fault_hook = fault_hook
        self._stats = stats
        # the engine seam: the compact explorer reuses the pool/retry
        # machinery with its own worker initializer and chunk task
        self._initializer = initializer
        self._task = task
        self._executor: Optional[ProcessPoolExecutor] = None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=self._ctx,
                initializer=self._initializer,
                initargs=(self._payload, self._fault_hook),
            )
        return self._executor

    def _teardown(self) -> None:
        """Drop the pool hard: kill worker processes (they may be hung or
        already dead) and abandon the executor."""
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.kill()
            except (OSError, AttributeError):  # pragma: no cover - racy exit
                pass
        executor.shutdown(wait=False)

    def close(self) -> None:
        self._teardown()

    def _wait_budget(self, outstanding: int) -> Optional[float]:
        """How long to wait for the next result: the per-chunk timeout
        scaled by the number of chunks each worker still has to get
        through, so queued-but-healthy chunks are not misdiagnosed."""
        if self._timeout is None:
            return None
        rounds = -(-outstanding // self._workers)  # ceil division
        return self._timeout * max(1, rounds)

    def run_level(self, chunks: List[_Chunk]) -> Iterator[_ChunkResult]:
        """Yield one result per chunk, in chunk order, retrying failures."""
        attempts = [0] * len(chunks)
        futures: Optional[List] = None
        index = 0
        while index < len(chunks):
            if futures is None:
                executor = self._ensure()
                submitted = [executor.submit(self._task, chunk)
                             for chunk in chunks[index:]]
                futures = [None] * index + submitted
            try:
                result = futures[index].result(
                    timeout=self._wait_budget(len(chunks) - index))
            except _FutureTimeout:
                futures = self._retry(index, attempts, "timeout")
                continue
            except (BrokenProcessPool, EOFError, OSError):
                futures = self._retry(index, attempts, "crash")
                continue
            yield result
            index += 1

    def _retry(self, index: int, attempts: List[int], reason: str) -> None:
        """Account one failure of chunk *index* and reset the pool; the
        caller resubmits every unmerged chunk on the fresh pool."""
        attempts[index] += 1
        if self._stats is not None:
            self._stats.record_retry(reason)
        self._teardown()
        if attempts[index] > _MAX_CHUNK_RETRIES:
            raise WorkerFailure(
                f"frontier chunk {index} failed {attempts[index]} times "
                f"(last failure: {reason}); giving up -- the chunk itself "
                f"appears to crash or hang the worker"
            )
        return None


def _drive_parallel(
    spec: Spec,
    graph: StateGraph,
    frontier: List[int],
    depth: int,
    levels: int,
    elapsed_before: float,
    stats: Optional[ExploreStats] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: int = 1,
    workers: int = 2,
    worker_timeout: Optional[float] = None,
    fault_hook: _FaultHook = None,
    start: Optional[float] = None,
    reducer: Optional["AmpleReducer"] = None,
) -> StateGraph:
    """The parallel BFS engine, resumable at any level boundary (the
    multi-process twin of :func:`repro.checker.explorer._drive`).

    With a *reducer*, workers compute per-state ample sets (pure, so any
    chunking/retry history yields the same batches) and the coordinator
    applies the C3 cycle proviso at merge time, in submission order,
    against the live graph -- which makes the reduced graph bit-for-bit
    identical to the serial reduced run for any worker count."""
    if start is None:
        start = perf_counter()
    # fork is the cheap path where available (Linux); spawn/forkserver
    # workers rebuild everything from the pickled spec payload anyway
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods
                                     else methods[0])
    reduction_config = reducer.config if reducer is not None else None
    payload = pickle.dumps((spec, reduction_config),
                           protocol=pickle.HIGHEST_PROTOCOL)

    idle = 0.0
    worker_ids: Dict[int, int] = {}  # pid -> dense worker id
    merge_batch = graph.merge_batch
    states = graph.states
    # the coordinator's own expander, for frontiers too narrow to ship --
    # the reducer's expand when reduction is on, else the full plan (the
    # compile/plan caches make the latter free when it is never needed)
    if reducer is not None:
        from .reduction.por import merge_source

        local_expand = reducer.expand

        def merge(src: int, tag: int, succs: List[State],
                  pruned: int) -> List[int]:
            return merge_source(graph, src, tag, succs, pruned, reducer)
    else:
        local_expand = _full_expander(spec)

        def merge(src: int, tag: int, succs: List[State],
                  pruned: int) -> List[int]:
            return merge_batch(src, succs)
    inline_below = _inline_threshold(workers)
    runner = _ChunkRunner(workers, payload, ctx, worker_timeout, fault_hook,
                          stats)
    try:
        while frontier:
            next_frontier: List[int] = []
            if len(frontier) < inline_below:
                # narrow level: expanding locally beats IPC round trips;
                # merge order (frontier order) is the serial order either way
                for src in frontier:
                    tag, succs, pruned = local_expand(states[src])
                    next_frontier.extend(merge(src, tag, succs, pruned))
            else:
                chunks, key_to_node = _shard_frontier(graph, frontier,
                                                      workers)
                wait_from = perf_counter()
                # results arrive in submission order; merging in that order
                # reproduces the serial interning order
                for pid, busy, batches in runner.run_level(chunks):
                    idle += perf_counter() - wait_from
                    if stats is not None:
                        stats.record_worker_batch(
                            worker_ids.setdefault(pid, len(worker_ids)),
                            sources=len(batches),
                            successors=sum(len(succ)
                                           for _k, _t, succ, _p in batches),
                            busy_seconds=busy,
                        )
                    for key, tag, successor_states, pruned in batches:
                        next_frontier.extend(
                            merge(key_to_node[key], tag, successor_states,
                                  pruned))
                    wait_from = perf_counter()
            if stats is not None:
                stats.record_level(len(frontier), graph)
            frontier = next_frontier
            levels += 1
            if frontier:
                depth += 1
            # cadence snapshots, plus a final one when the frontier drains
            # (mirrors the serial engine)
            if checkpoint is not None and (
                    not frontier or levels % checkpoint_every == 0):
                save_checkpoint(
                    checkpoint, spec, graph, frontier, depth, levels,
                    elapsed_seconds=(elapsed_before
                                     + perf_counter() - start),
                    workers=workers, checkpoint_every=checkpoint_every,
                    stats=stats,
                    reduction=(reduction_config.as_dict()
                               if reduction_config is not None else None),
                    store=graph.store.config(),
                )
    finally:
        runner.close()

    _finish_reduction(graph, reducer, stats)
    if stats is not None:
        stats.record_explore(graph, depth,
                             elapsed_before + perf_counter() - start)
        stats.record_parallel(workers, idle)
    return graph


def explore_parallel(
    spec: Spec,
    max_states: int = 200_000,
    workers: int = 1,
    stats: Optional[ExploreStats] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: int = 1,
    worker_timeout: Optional[float] = None,
    fault_hook: _FaultHook = None,
    reduction: Optional["ReductionConfig"] = None,
    store: Optional["StateStore"] = None,
) -> StateGraph:
    """The reachable state graph of ``Init ∧ □[N]_v``, explored with
    *workers* processes.

    Produces a graph identical to ``explore(spec, max_states)`` -- same
    states in the same node order, same edges, same ``init_nodes``, same
    BFS parent tree, and :class:`StateSpaceExplosion` raised at the same
    insertion -- for every worker count, even when workers crash or hang
    mid-chunk.  ``workers <= 1`` delegates to the serial explorer;
    ``workers=0`` is resolved by :func:`default_workers` to one worker
    per available core.

    ``worker_timeout`` bounds the seconds a worker may spend on one
    chunk; a chunk whose worker dies or exceeds the timeout is re-run on
    a fresh process (retries land in ``stats.worker_retries``), and a
    chunk failing ``_MAX_CHUNK_RETRIES`` times raises
    :class:`WorkerFailure`.  ``checkpoint`` / ``checkpoint_every``
    snapshot the run at BFS level boundaries exactly like the serial
    explorer.  ``fault_hook`` is a picklable callable invoked in the
    worker once per chunk -- the fault-injection seam the crash-recovery
    tests use; leave it ``None`` in production.

    ``reduction`` / ``store`` plug in partial-order reduction and the
    state-store backend exactly as in :func:`explore`; the reduced graph
    is still bit-for-bit identical across worker counts (workers compute
    ample sets, the coordinator applies the cycle proviso in serial
    merge order).  Requesting ``workers=1`` explicitly together with
    options that only the multi-process engine honours
    (``worker_timeout`` / ``fault_hook``) is an error rather than a
    silent degrade; ``workers=0`` auto-sizing is exempt because it never
    resolves below the core count.
    """
    if workers == 1 and (worker_timeout is not None
                         or fault_hook is not None):
        raise ValueError(
            "workers=1 runs the serial engine, which would silently "
            "ignore worker_timeout/fault_hook; drop those options or "
            "use workers >= 2 (workers=0 auto-sizes)")
    if workers == 0:
        workers = default_workers()
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers <= 1:
        return explore(spec, max_states=max_states, stats=stats,
                       checkpoint=checkpoint,
                       checkpoint_every=checkpoint_every,
                       reduction=reduction, store=store)
    start = perf_counter()
    reducer = _resolve_reducer(spec, reduction, stats)
    # mirror explore(): a store handed in by the caller is closed on any
    # error path (explosion, WorkerFailure, interrupt) -- the graph never
    # reaches the caller then, so nobody else can release the handles
    try:
        graph, frontier = _seed_graph(spec, max_states, store=store)
        return _drive_parallel(spec, graph, frontier, depth=0, levels=0,
                               elapsed_before=0.0, stats=stats,
                               checkpoint=checkpoint,
                               checkpoint_every=checkpoint_every,
                               workers=workers, worker_timeout=worker_timeout,
                               fault_hook=fault_hook, start=start,
                               reducer=reducer)
    except BaseException:
        if store is not None:
            store.close()
        raise
