"""Random simulation of canonical specifications.

Model checking proves; simulation *shows*.  :func:`random_walk` produces a
random finite behavior of a spec (useful for demos, the CLI's ``trace``
command, and quick sanity checks of new specifications), and
:func:`simulate_check` runs a predicate along many walks -- a cheap
smoke-test before paying for exhaustive exploration.
"""

from __future__ import annotations

import random
from typing import Optional

from ..kernel.action import compile_action
from ..kernel.behavior import FiniteBehavior
from ..kernel.expr import to_expr
from ..spec import Spec
from .explorer import initial_states
from .results import CheckResult, Counterexample


def random_walk(
    spec: Spec,
    steps: int = 20,
    seed: Optional[int] = None,
    allow_stutter: bool = False,
) -> FiniteBehavior:
    """A random behavior prefix of ``Init ∧ □[N]_v``.

    Picks a random initial state and then random ``N``-successors.  When a
    state has no successor (the system can only stutter), the walk ends
    early unless ``allow_stutter`` lets it idle in place.

    The next-state action is compiled into a successor plan **once per
    walk** and driven per step (the hot-loop discipline of the explorer);
    seeded walks are deterministic, and the plan reuse does not change
    which walk a given seed produces (the plan enumerates successors in
    the same order the per-step convenience wrapper did).
    """
    rng = random.Random(seed)
    inits = list(initial_states(spec.init, spec.universe))
    if not inits:
        raise ValueError(f"spec {spec.name!r} has no initial states")
    plan = compile_action(spec.next_action).plan(spec.universe)
    state = rng.choice(inits)
    states = [state]
    for _ in range(steps):
        nexts = list(plan.successors(state))
        if not nexts:
            if allow_stutter:
                states.append(state)
                continue
            break
        state = rng.choice(nexts)
        states.append(state)
    return FiniteBehavior(states)


def simulate_check(
    spec: Spec,
    invariant: object,
    walks: int = 50,
    steps: int = 30,
    seed: Optional[int] = None,
) -> CheckResult:
    """Check a state predicate along random walks.

    A failing result carries the violating prefix.  A passing result means
    only "not refuted by simulation" -- use
    :func:`repro.checker.check_invariant` for a proof.
    """
    rng = random.Random(seed)
    invariant = to_expr(invariant)
    visited = 0
    for index in range(walks):
        walk = random_walk(spec, steps=steps, seed=rng.randrange(2 ** 30))
        for length, state in enumerate(walk, start=1):
            visited += 1
            value = invariant.eval_state(state)
            if not isinstance(value, bool):
                raise TypeError(f"invariant {invariant!r} returned {value!r}")
            if not value:
                return CheckResult(
                    f"simulate {spec.name}",
                    ok=False,
                    counterexample=Counterexample(
                        walk.prefix(length),
                        f"random walk {index} violates {invariant!r}",
                    ),
                    stats={"walks": index + 1, "states_visited": visited},
                )
    return CheckResult(
        f"simulate {spec.name}",
        ok=True,
        stats={"walks": walks, "states_visited": visited},
        notes=["simulation only: not a proof"],
    )
