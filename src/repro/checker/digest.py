"""Streaming, engine-independent digests of explored state graphs.

The service layer summarises a checked graph with a digest so that two
runs can be compared without retaining either graph.  The compact engine
forces a streaming formulation: it discards successor lists as it goes,
so the digest must absorb structure *during* exploration, and the
accumulator must survive checkpoint/resume (plain ints, JSON/pickle
friendly -- unlike a live ``hashlib`` object).

The digest folds two FNV-1a streams:

* the **node stream** absorbs ``(fingerprint, parent)`` in node-id
  order (parent ``-1`` for initial states), which pins state identity,
  discovery order, the BFS tree, and the initial-state set;
* the **edge stream** absorbs, per source in expansion order, the
  deduplicated non-stutter successor ids (the full engine's
  ``succ[src][1:]``), which pins the transition relation.

Both engines expand every node exactly once, sources in id order, so
absorbing at expansion time is equivalent to a post-hoc walk --
:func:`digest_of_graph` does exactly that walk over a full
:class:`~repro.checker.graph.StateGraph` and agrees bit-for-bit with a
compact exploration of the same spec.
"""

from __future__ import annotations

import struct
from hashlib import sha256
from typing import Iterable, List, Sequence

from ..kernel.state import _FNV_OFFSET, _FNV_PRIME, _MASK64

__all__ = ["GraphDigest", "digest_of_graph"]


class GraphDigest:
    """Order-sensitive streaming digest of a state graph."""

    __slots__ = ("node_hash", "edge_hash", "nodes", "edges")

    def __init__(self, node_hash: int = _FNV_OFFSET,
                 edge_hash: int = _FNV_OFFSET,
                 nodes: int = 0, edges: int = 0):
        self.node_hash = node_hash
        self.edge_hash = edge_hash
        self.nodes = nodes
        self.edges = edges

    def absorb_node(self, fingerprint: int, parent: int) -> None:
        """Absorb a newly interned node (``parent == -1`` for initial)."""
        h = self.node_hash
        h = ((h ^ (fingerprint & _MASK64)) * _FNV_PRIME) & _MASK64
        h = ((h ^ (parent & _MASK64)) * _FNV_PRIME) & _MASK64
        self.node_hash = h
        self.nodes += 1

    def absorb_edges(self, src: int, dsts: Sequence[int]) -> None:
        """Absorb a source's deduplicated non-stutter successor ids."""
        h = self.edge_hash
        h = ((h ^ src) * _FNV_PRIME) & _MASK64
        h = ((h ^ len(dsts)) * _FNV_PRIME) & _MASK64
        for dst in dsts:
            h = ((h ^ dst) * _FNV_PRIME) & _MASK64
        self.edge_hash = h
        self.edges += len(dsts)

    def state(self) -> List[int]:
        """Serializable accumulator state (for checkpoints)."""
        return [self.node_hash, self.edge_hash, self.nodes, self.edges]

    @classmethod
    def restore(cls, state: Iterable[int]) -> "GraphDigest":
        node_hash, edge_hash, nodes, edges = (int(x) for x in state)
        return cls(node_hash, edge_hash, nodes, edges)

    def hexdigest(self) -> str:
        packed = struct.pack("<QQQQ", self.node_hash, self.edge_hash,
                             self.nodes & _MASK64, self.edges & _MASK64)
        return sha256(b"repro-graph-digest-v1" + packed).hexdigest()


def digest_of_graph(graph) -> str:
    """Digest a fully-explored :class:`StateGraph` post hoc.

    Produces the same value a compact exploration of the same spec
    streams out: nodes in id order with their BFS parents, then each
    source's non-stutter successors (``succ[src][1:]`` -- the leading
    entry is the implicit stutter self-loop).
    """
    digest = GraphDigest()
    parent = graph.parent
    for node, state in enumerate(graph.states):
        p = parent[node]
        digest.absorb_node(state.fingerprint(), -1 if p is None else p)
    for node in range(graph.state_count):
        digest.absorb_edges(node, graph.succ[node][1:])
    return digest.hexdigest()
