"""Exploration and checking statistics (the checker's observability layer).

An :class:`ExploreStats` instance rides along through ``explore()`` /
``check_invariant()`` / ``check_temporal_implication()`` /
``check_safety_refinement()`` and accumulates what TLC-style tooling
reports per run: state and edge counts (real ``N``-edges vs materialised
stutter self-loops), BFS frontier depth, wall-clock time per phase, and
the derived states-per-second throughput.  The CLI's ``--stats`` flag
prints :meth:`ExploreStats.format`.

The layer is deliberately write-only for the checker: populating it costs
two ``perf_counter`` calls per phase, so it is safe to leave on in
production runs, and every later scaling PR (sharding, parallel BFS) can
quantify itself against the same numbers.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from time import perf_counter
from typing import Callable, Dict, Iterator, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .graph import StateGraph


class ExploreStats:
    """Per-run exploration/checking statistics.

    * ``states`` / ``edges`` / ``stutter_edges`` -- graph size; ``edges``
      counts real ``N``-edges only, the stutter self-loops (one per node)
      are reported separately;
    * ``init_states`` -- number of initial states;
    * ``depth`` -- BFS frontier depth: the number of expansion levels, i.e.
      the distance of the deepest state from an initial state;
    * ``explore_seconds`` -- wall-clock time of the exploration phase;
    * ``phases`` -- ordered wall-clock timings per named phase (exploration
      plus one entry per invariant/property check);
    * ``workers`` -- worker-process count of a parallel exploration
      (0 = serial run);
    * ``worker_stats`` -- per-worker accumulators: sources expanded,
      successors produced, batches returned, busy seconds (worker-side
      wall-clock inside ``SuccessorPlan.successors``);
    * ``coordinator_idle_seconds`` -- time the parallel coordinator spent
      blocked waiting on worker results (the shard-balance signal: high
      idle with low worker busy time means the frontier shards are too
      coarse or the instance is too small to parallelise);
    * ``worker_retries`` -- per-reason counts of frontier chunks that had
      to be re-run on a fresh worker process (``"crash"``: the worker
      died mid-chunk; ``"timeout"``: it exceeded the per-chunk timeout).
      Retries never change the explored graph -- chunk expansion is pure
      and the merge order is fixed -- so this is purely an
      infrastructure-health signal.
    """

    __slots__ = ("states", "edges", "stutter_edges", "init_states", "depth",
                 "explore_seconds", "phases", "workers", "worker_stats",
                 "coordinator_idle_seconds", "worker_retries", "levels",
                 "levels_seen", "por_enabled", "por_reason", "por_counters",
                 "store_kind", "store_counters", "peak_rss_kb", "engine",
                 "fingerprint_collisions", "node_losses", "rebalances",
                 "reshipped_sources", "node_labels", "_level_listeners")

    # per-level rows beyond this are dropped (pathologically deep graphs
    # would otherwise bloat checkpoints); the totals stay exact
    _MAX_LEVEL_ROWS = 2048

    def __init__(self) -> None:
        self.states = 0
        self.edges = 0
        self.stutter_edges = 0
        self.init_states = 0
        self.depth = 0
        self.explore_seconds = 0.0
        self.phases: Dict[str, float] = {}
        self.workers = 0
        self.worker_stats: Dict[int, Dict[str, float]] = {}
        self.coordinator_idle_seconds = 0.0
        self.worker_retries: Dict[str, int] = {}
        # per-BFS-level cumulative snapshots: frontier size expanded plus
        # the graph's state / real-edge / stutter-edge counts afterwards
        self.levels: List[Dict[str, int]] = []
        # total levels recorded, including rows beyond _MAX_LEVEL_ROWS
        self.levels_seen = 0
        # the progress-callback seam: both exploration engines call
        # record_level at every BFS level boundary, so a listener here
        # observes live per-level progress (the checking service streams
        # these; raising from a listener aborts the exploration, which is
        # how cooperative cancellation works)
        self._level_listeners: List[Callable[[int, Dict[str, int]], None]] = []
        # partial-order reduction: None = never requested; False = requested
        # but disabled (reason says why); True = active
        self.por_enabled: Optional[bool] = None
        self.por_reason: Optional[str] = None
        self.por_counters: Dict[str, int] = {}
        self.store_kind: Optional[str] = None
        self.store_counters: Dict[str, int] = {}
        self.peak_rss_kb = 0
        # which exploration engine produced these numbers ("full" or
        # "compact"), and how many 64-bit fingerprint collisions were
        # *observed* among distinct states (never silent: the memory and
        # spill stores count them, and the compact engine -- which interns
        # on exact packed ints -- detects them at intern time)
        self.engine = "full"
        self.fingerprint_collisions = 0
        # distributed-run health: worker *nodes* declared lost, range
        # rebalances performed, frontier sources re-shipped after a loss
        # (none of which can change the explored graph -- see
        # repro.checker.distributed), plus worker id -> URL labels for
        # the summary table
        self.node_losses = 0
        self.rebalances = 0
        self.reshipped_sources = 0
        self.node_labels: Dict[int, str] = {}

    # -- population ----------------------------------------------------------

    def record_graph(self, graph: "StateGraph") -> None:
        """Copy the size metrics of an explored graph."""
        self.states = graph.state_count
        self.edges = graph.edge_count
        self.stutter_edges = graph.stutter_count
        self.init_states = len(graph.init_nodes)

    def record_explore(self, graph: "StateGraph", depth: int,
                       seconds: float) -> None:
        """Record one exploration run (size, frontier depth, timing),
        plus the store-health counters and the process's peak RSS."""
        self.record_graph(graph)
        self.depth = depth
        self.explore_seconds = seconds
        self.phases["explore"] = self.phases.get("explore", 0.0) + seconds
        store = getattr(graph, "store", None)
        if store is not None:
            self.store_kind = store.kind
            self.store_counters = store.counters()
            self.fingerprint_collisions = int(
                self.store_counters.get("fp_collisions", 0) or 0)
        self.peak_rss_kb = _peak_rss_kb()

    def add_level_listener(
            self, listener: Callable[[int, Dict[str, int]], None]) -> None:
        """Subscribe to per-level progress: *listener* is called with
        ``(level_index, row)`` after every completed BFS level, where
        ``row`` is the same dict :meth:`record_level` stores.  Listeners
        run on the exploring thread, between the level merge and the
        level's checkpoint; an exception raised by a listener aborts the
        exploration at that boundary (the previous checkpoint survives),
        which is the cancellation/shutdown seam the checking service
        uses."""
        self._level_listeners.append(listener)

    def record_level(self, frontier: int, graph: "StateGraph") -> None:
        """Record one completed BFS level: the frontier size that was just
        expanded and the cumulative graph counters after the merge."""
        row = {
            "frontier": frontier,
            "states": graph.state_count,
            "edges": graph.edge_count,
            "stutter": graph.stutter_count,
        }
        level = self.levels_seen
        self.levels_seen += 1
        if len(self.levels) < self._MAX_LEVEL_ROWS:
            self.levels.append(row)
        for listener in self._level_listeners:
            listener(level, row)

    def record_reduction(self, enabled: bool,
                         reason: Optional[str] = None,
                         counters: Optional[Dict[str, int]] = None) -> None:
        """Record the partial-order-reduction outcome of a run.

        Called once up front with the on/off decision (and the disable
        reason, if any) and once at the end with the merge-time counters;
        counters *accumulate* so resumed runs add to their checkpointed
        totals."""
        self.por_enabled = enabled
        self.por_reason = reason
        if counters:
            for key, value in counters.items():
                self.por_counters[key] = self.por_counters.get(key, 0) + value

    def record_worker_batch(self, worker_id: int, sources: int,
                            successors: int, busy_seconds: float) -> None:
        """Accumulate one returned worker batch into that worker's totals."""
        entry = self.worker_stats.get(worker_id)
        if entry is None:
            entry = {"sources": 0, "successors": 0, "batches": 0,
                     "busy_seconds": 0.0}
            self.worker_stats[worker_id] = entry
        entry["sources"] += sources
        entry["successors"] += successors
        entry["batches"] += 1
        entry["busy_seconds"] += busy_seconds

    def record_parallel(self, workers: int, idle_seconds: float) -> None:
        """Record the coordinator-side shape of a parallel exploration."""
        self.workers = workers
        self.coordinator_idle_seconds += idle_seconds

    def record_retry(self, reason: str) -> None:
        """Count one chunk retry (``"crash"``, ``"timeout"``, or a
        distributed run's ``"wire"`` transport retry)."""
        self.worker_retries[reason] = self.worker_retries.get(reason, 0) + 1

    def record_node_label(self, worker_id: int, url: str) -> None:
        """Label a distributed worker node for the summary table."""
        self.node_labels[worker_id] = url

    def record_node_loss(self) -> None:
        """Count one worker node declared lost (dead or hung)."""
        self.node_losses += 1

    def record_rebalance(self, ranges_moved: int = 0) -> None:
        """Count one ownership rebalance after a node loss.  The number
        of ranges moved is implicit in the loss pattern; the event count
        alone is the health signal."""
        self.rebalances += 1

    def record_reshipped(self, sources: int) -> None:
        """Count frontier sources re-shipped to survivors after a loss."""
        self.reshipped_sources += sources

    @property
    def total_retries(self) -> int:
        return sum(self.worker_retries.values())

    def restore(self, snapshot: Dict[str, object]) -> None:
        """Reload the accumulators a resumed run carries over from its
        checkpoint's :meth:`as_dict` snapshot.

        Only the *cumulative* counters are restored -- worker totals,
        retries, coordinator idle time, worker count.  Graph-size fields
        and the ``explore`` phase are deliberately skipped: the resumed
        run re-records them itself (``record_explore`` is handed the
        checkpointed elapsed seconds plus the new ones, so restoring the
        phase here would double-count it).
        """
        self.workers = int(snapshot.get("workers", 0) or 0)
        self.coordinator_idle_seconds = float(
            snapshot.get("coordinator_idle_seconds", 0.0) or 0.0)
        for worker_id, entry in dict(
                snapshot.get("worker_stats") or {}).items():
            self.worker_stats[int(worker_id)] = {
                key: value for key, value in dict(entry).items()
            }
        for reason, count in dict(
                snapshot.get("worker_retries") or {}).items():
            self.worker_retries[str(reason)] = int(count)
        self.levels = [dict(row) for row in (snapshot.get("levels") or [])]
        self.levels_seen = int(snapshot.get("levels_seen", len(self.levels))
                               or len(self.levels))
        por = snapshot.get("por_enabled")
        if por is not None:
            self.por_enabled = bool(por)
            self.por_reason = snapshot.get("por_reason")  # type: ignore
        for key, value in dict(snapshot.get("por_counters") or {}).items():
            self.por_counters[str(key)] = int(value)
        engine = snapshot.get("engine")
        if engine:
            self.engine = str(engine)
        self.fingerprint_collisions = int(
            snapshot.get("fingerprint_collisions", 0) or 0)
        self.node_losses = int(snapshot.get("node_losses", 0) or 0)
        self.rebalances = int(snapshot.get("rebalances", 0) or 0)
        self.reshipped_sources = int(
            snapshot.get("reshipped_sources", 0) or 0)
        for worker_id, url in dict(snapshot.get("node_labels") or {}).items():
            self.node_labels[int(worker_id)] = str(url)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named phase; repeated names accumulate."""
        start = perf_counter()
        try:
            yield
        finally:
            self.phases[name] = (
                self.phases.get(name, 0.0) + perf_counter() - start
            )

    # -- derived -------------------------------------------------------------

    @property
    def states_per_sec(self) -> float:
        """Exploration throughput (0.0 before any exploration ran)."""
        if self.explore_seconds <= 0.0:
            return 0.0
        return self.states / self.explore_seconds

    @property
    def total_seconds(self) -> float:
        return sum(self.phases.values())

    @property
    def collision_probability_bound(self) -> float:
        """Birthday bound on the probability that *any* two of the
        explored states share a 64-bit fingerprint: ``n(n-1)/2 / 2^64``
        (capped at 1.0).  This is what a fingerprint-set explorer like
        TLC risks silently merging; our engines intern on exact keys, so
        here it bounds how often the *observed* collision counter should
        fire under a sound hash."""
        n = self.states
        return min(1.0, (n * (n - 1) / 2) / float(1 << 64))

    # -- rendering -----------------------------------------------------------

    def format(self, indent: str = "") -> str:
        """A human-readable multi-line summary (what ``--stats`` prints)."""
        lines: List[str] = [
            f"{indent}stats: {self.states} states "
            f"({self.init_states} initial), "
            f"{self.edges} real edges + {self.stutter_edges} stutter, "
            f"depth {self.depth}",
            f"{indent}       {self.states_per_sec:,.0f} states/sec "
            f"(explore {self.explore_seconds:.4f}s)",
        ]
        if self.workers:
            retry_text = ""
            if self.worker_retries:
                rendered_retries = ", ".join(
                    f"{count} {reason}"
                    for reason, count in sorted(self.worker_retries.items())
                )
                retry_text = f", retries: {rendered_retries}"
            lines.append(
                f"{indent}parallel: {self.workers} workers, coordinator idle "
                f"{self.coordinator_idle_seconds:.4f}s{retry_text}"
            )
            for worker_id in sorted(self.worker_stats):
                entry = self.worker_stats[worker_id]
                busy = entry["busy_seconds"]
                rate = entry["sources"] / busy if busy > 0 else 0.0
                label = self.node_labels.get(worker_id)
                label_text = f" ({label})" if label else ""
                lines.append(
                    f"{indent}  worker {worker_id}{label_text}: "
                    f"{entry['sources']:.0f} sources -> "
                    f"{entry['successors']:.0f} successors in "
                    f"{entry['batches']:.0f} batches, busy {busy:.4f}s "
                    f"({rate:,.0f} states/sec)"
                )
            if self.node_losses or self.reshipped_sources:
                lines.append(
                    f"{indent}distributed: {self.node_losses} node "
                    f"loss(es), {self.rebalances} rebalance(s), "
                    f"{self.reshipped_sources} sources re-shipped"
                )
        if self.por_enabled is not None:
            lines.append(self._format_reduction(indent))
        if self.store_kind not in (None, "mem"):
            rendered_store = ", ".join(
                f"{key}={value}"
                for key, value in sorted(self.store_counters.items()))
            lines.append(f"{indent}store: {self.store_kind} ({rendered_store})")
        if self.phases:
            rendered = ", ".join(
                f"{name} {seconds:.4f}s" for name, seconds in self.phases.items()
            )
            lines.append(f"{indent}phases: {rendered}")
        return "\n".join(lines)

    def _format_reduction(self, indent: str) -> str:
        if not self.por_enabled:
            return (f"{indent}reduction: disabled "
                    f"({self.por_reason or 'not applicable'})")
        c = self.por_counters
        ample = c.get("ample_states", 0)
        expanded = (ample + c.get("full_states", 0)
                    + c.get("proviso_states", 0))
        rate = (100.0 * ample / expanded) if expanded else 0.0
        return (f"{indent}reduction: por on, ample at {ample}/{expanded} "
                f"states ({rate:.0f}%), proviso fallbacks "
                f"{c.get('proviso_states', 0)}, "
                f"~{c.get('pruned_successors', 0)} successors pruned")

    def summary(self, indent: str = "") -> str:
        """:meth:`format` plus the per-level table and peak RSS -- the one
        coherent table the CLI's ``--stats`` flag prints."""
        lines = [self.format(indent)]
        if self.engine != "full":
            lines.append(f"{indent}engine: {self.engine}")
        detected = (f"; {self.fingerprint_collisions} collision(s) detected"
                    if self.fingerprint_collisions else "")
        lines.append(
            f"{indent}fingerprints: 64-bit FNV-1a, collision probability "
            f"bound {self.collision_probability_bound:.3g} over "
            f"{self.states} states{detected}")
        if self.levels:
            header = (f"{indent}per-level: "
                      f"{'level':>5} {'frontier':>9} {'states':>8} "
                      f"{'real-edges':>11} {'stutter':>8}")
            lines.append(header)
            rows = list(enumerate(self.levels))
            if len(rows) > 24:  # keep deep runs readable
                rows = rows[:12] + [None] + rows[-12:]
            for row in rows:
                if row is None:
                    lines.append(f"{indent}           ...")
                    continue
                level, entry = row
                lines.append(
                    f"{indent}           "
                    f"{level:>5} {entry['frontier']:>9} {entry['states']:>8} "
                    f"{entry['edges']:>11} {entry['stutter']:>8}"
                )
        if self.peak_rss_kb:
            lines.append(f"{indent}peak RSS: {self.peak_rss_kb / 1024.0:,.1f} MiB")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """A plain-dict snapshot (stable keys; for CheckResult.stats and
        machine consumption)."""
        return {
            "states": self.states,
            "edges": self.edges,
            "stutter_edges": self.stutter_edges,
            "init_states": self.init_states,
            "depth": self.depth,
            "states_per_sec": self.states_per_sec,
            "explore_seconds": self.explore_seconds,
            "phases": dict(self.phases),
            "workers": self.workers,
            "worker_stats": {wid: dict(entry)
                             for wid, entry in self.worker_stats.items()},
            "coordinator_idle_seconds": self.coordinator_idle_seconds,
            "worker_retries": dict(self.worker_retries),
            "levels": [dict(row) for row in self.levels],
            "levels_seen": self.levels_seen,
            "por_enabled": self.por_enabled,
            "por_reason": self.por_reason,
            "por_counters": dict(self.por_counters),
            "store_kind": self.store_kind,
            "store_counters": dict(self.store_counters),
            "peak_rss_kb": self.peak_rss_kb,
            "engine": self.engine,
            "fingerprint_collisions": self.fingerprint_collisions,
            "collision_probability_bound": self.collision_probability_bound,
            "node_losses": self.node_losses,
            "rebalances": self.rebalances,
            "reshipped_sources": self.reshipped_sources,
            "node_labels": {wid: url
                            for wid, url in self.node_labels.items()},
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The machine-readable twin of :meth:`format`: the
        :meth:`as_dict` snapshot as canonical (sorted-key) JSON.  This is
        what ``--stats-json PATH`` writes and what the checking service
        stores in its result cache."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent)

    def __repr__(self) -> str:
        return (f"ExploreStats(states={self.states}, edges={self.edges}, "
                f"stutter={self.stutter_edges}, depth={self.depth}, "
                f"states_per_sec={self.states_per_sec:.0f})")


def _peak_rss_kb() -> int:
    """The process's peak resident set size in KiB (0 where unavailable).

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalise to KiB."""
    try:
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":  # pragma: no cover - macOS units
            peak //= 1024
        return int(peak)
    except Exception:  # pragma: no cover - non-POSIX platforms
        return 0


def maybe_phase(stats: Optional[ExploreStats], name: str):
    """``stats.phase(name)`` or a no-op context manager when stats is None."""
    if stats is not None:
        return stats.phase(name)
    return _NULL_CONTEXT


class _NullContext:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()
