"""Reachable state graphs and SCC machinery for the model checker.

A :class:`StateGraph` is the explicit reachable-state graph of a canonical
specification: nodes are states, edges are ``[N]_v`` steps.  Stuttering
self-loops are materialised on every node, because ``□[N]_v`` always allows
a behavior to stay put -- liveness analysis must consider behaviors that
end by stuttering forever (that is precisely what dooms the liveness
version of the paper's Figure 1 example).

The graph offers Tarjan SCC decomposition restricted to arbitrary
node/edge predicates, and BFS path finding -- the two primitives the
liveness checker's Streett-style fair-cycle search needs.
"""

from __future__ import annotations

from typing import (Callable, Dict, Iterable, List, Optional, Sequence, Set,
                    Tuple, TYPE_CHECKING)

from ..kernel.state import State, Universe

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .reduction.store import StateStore

NodeFilter = Callable[[int], bool]
EdgeFilter = Callable[[int, int], bool]


class StateSpaceExplosion(Exception):
    """Exploration exceeded the configured state budget.

    When the budget is hit by a live exploration (rather than a restore
    precondition), the partially built graph is attached as ``.graph``:
    every engine raises at the identical insertion point, so two
    budget-capped runs can still be compared state-for-state and
    digest-for-digest at the explosion boundary.
    """

    graph: Optional[object] = None


def _accept_all_nodes(_node: int) -> bool:
    return True


def _accept_all_edges(_src: int, _dst: int) -> bool:
    return True


class StateGraph:
    """Explicit state graph with indexed nodes.

    ``succ[i]`` lists successor indices of node ``i`` (including ``i``
    itself: the stutter edge).  A parallel per-node successor *set* makes
    :meth:`add_edge` O(1) regardless of out-degree.  ``parent`` records
    the BFS tree from the initial states for counterexample
    reconstruction.

    ``max_states`` is a hard budget on *interned* states, enforced at
    insertion time: the graph holds at most ``max_states`` states, and the
    insertion that would exceed the budget raises
    :class:`StateSpaceExplosion` immediately (no overshoot within a BFS
    level).
    """

    def __init__(self, universe: Universe, max_states: Optional[int] = None,
                 name: Optional[str] = None,
                 store: Optional["StateStore"] = None):
        if store is None:
            from .reduction.store import MemoryStateStore
            store = MemoryStateStore()
        store.prepare(universe.variables)
        self.universe = universe
        self.max_states = max_states
        self.name = name
        self.store = store
        # for the default MemoryStateStore these are the real list and a
        # bound dict.get -- interning costs exactly what it did before the
        # store layer existed
        self.states: Sequence[State] = store.states_view()
        self._lookup = store.lookup
        self._append = store.append
        self.succ: List[List[int]] = []
        self._succ_sets: List[Set[int]] = []
        self.init_nodes: List[int] = []
        self.parent: List[Optional[int]] = []
        self._edge_count = 0  # real N-edges; stutter loops counted apart
        self.reduction_used = False  # set by the explorer when POR pruned

    @property
    def index(self) -> Dict[State, int]:
        """The live state -> node dict of the in-RAM store (back-compat;
        spill stores answer membership via :meth:`lookup` instead)."""
        return self.store.index  # type: ignore[attr-defined]

    def lookup(self, state: State) -> Optional[int]:
        """The node id of an interned state, or None (store-agnostic)."""
        return self._lookup(state)

    # -- construction ------------------------------------------------------

    @classmethod
    def restore(
        cls,
        universe: Universe,
        states: Sequence[State],
        succ_rest: Sequence[Sequence[int]],
        parent: Sequence[Optional[int]],
        init_nodes: Sequence[int],
        max_states: Optional[int] = None,
        name: Optional[str] = None,
        store: Optional["StateStore"] = None,
    ) -> "StateGraph":
        """Rebuild a graph from its serialized pieces (the checkpoint layer).

        ``succ_rest[i]`` lists node ``i``'s non-stutter successors in their
        original insertion order; the stutter self-loop is re-materialised
        first, exactly as :meth:`add_state` would have.  The result is
        bit-for-bit the graph that was serialized: same node numbering,
        same adjacency-list order, same parents -- so a resumed BFS
        continues exactly like the uninterrupted run.  States are
        re-interned through the (optionally spill-backed) *store* in node
        order, so a resumed spill store's files are rebuilt equal.
        """
        if max_states is not None and len(states) > max_states:
            raise StateSpaceExplosion(
                f"cannot restore {len(states)} states under a budget of "
                f"{max_states} states"
            )
        graph = cls(universe, max_states=max_states, name=name, store=store)
        for node, state in enumerate(states):
            rest = list(succ_rest[node])
            graph._append(state)
            graph.succ.append([node] + rest)
            graph._succ_sets.append({node, *rest})
            graph.parent.append(parent[node])
            graph._edge_count += len(rest)
        graph.init_nodes = list(init_nodes)
        return graph

    def add_state(self, state: State, parent: Optional[int] = None) -> Tuple[int, bool]:
        """Intern a state; returns (index, was_new).

        Raises :class:`StateSpaceExplosion` if interning a *new* state
        would exceed ``max_states``.
        """
        node = self._lookup(state)
        if node is not None:
            return node, False
        node = len(self.states)
        if self.max_states is not None and node >= self.max_states:
            label = f"exploring {self.name!r} " if self.name else "exploration "
            exc = StateSpaceExplosion(
                f"{label}exceeded the state budget of {self.max_states} states"
            )
            exc.graph = self
            raise exc
        self._append(state)
        self.succ.append([node])  # stutter self-loop
        self._succ_sets.append({node})
        self.parent.append(parent)
        return node, True

    def merge_batch(self, src: int, successors: Iterable[State]) -> List[int]:
        """Intern one source node's successor batch; returns the newly
        interned node ids in insertion order.

        This is the coordinator half of the parallel explorer: workers
        enumerate successor states, the coordinator merges each batch
        through this method *in serial-BFS order*, so node numbering, the
        BFS parent tree (counterexample traces), and the insertion-time
        ``max_states`` budget behave exactly as in a serial
        :func:`~repro.checker.explorer.explore` run --
        :class:`StateSpaceExplosion` fires on the same insertion.
        """
        new_nodes: List[int] = []
        add_state = self.add_state
        add_edge = self.add_edge
        for state in successors:
            dst, new = add_state(state, parent=src)
            add_edge(src, dst)
            if new:
                new_nodes.append(dst)
        return new_nodes

    def add_edge(self, src: int, dst: int) -> None:
        if dst == src:
            return  # the stutter loop is materialised at add_state time
        outs = self._succ_sets[src]
        if dst not in outs:
            outs.add(dst)
            self.succ[src].append(dst)
            self._edge_count += 1

    def has_edge(self, src: int, dst: int) -> bool:
        """O(1) membership test, stutter self-loops included."""
        return dst in self._succ_sets[src]

    # -- metrics -------------------------------------------------------------

    @property
    def state_count(self) -> int:
        return len(self.states)

    @property
    def edge_count(self) -> int:
        """Real ``N``-edges only (the materialised stutter self-loops are
        reported separately by :attr:`stutter_count`)."""
        return self._edge_count

    @property
    def stutter_count(self) -> int:
        """The materialised stutter self-loops: one per node."""
        return len(self.states)

    @property
    def total_edge_count(self) -> int:
        """All materialised edges, stutter self-loops included."""
        return self._edge_count + len(self.states)

    # -- traversal --------------------------------------------------------------

    def _check_node(self, node: int) -> None:
        """Reject node ids that were never interned.

        A caller holding an id beyond the graph (typically a state that
        was dropped when the ``max_states`` budget fired) must get a
        defined error here -- negative ids would otherwise silently
        index from the end and produce a *wrong* path."""
        if not 0 <= node < len(self.parent):
            raise ValueError(
                f"node {node!r} is not in this graph (valid ids: "
                f"0..{len(self.parent) - 1}); states beyond the "
                f"max_states budget are never interned")

    def path_to_root(self, node: int) -> List[int]:
        """The BFS-tree path from an initial node to *node* (inclusive)."""
        self._check_node(node)
        path = [node]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path

    def bfs_path(
        self,
        sources: Iterable[int],
        is_target: Callable[[int], bool],
        node_ok: NodeFilter = _accept_all_nodes,
        edge_ok: EdgeFilter = _accept_all_edges,
    ) -> Optional[List[int]]:
        """Shortest path from any source to any target within the filtered
        subgraph; sources must satisfy ``node_ok`` themselves."""
        sources = list(sources)
        for source in sources:
            self._check_node(source)
        frontier = [s for s in sources if node_ok(s)]
        prev: Dict[int, Optional[int]] = {s: None for s in frontier}
        for start in frontier:
            if is_target(start):
                return [start]
        while frontier:
            next_frontier: List[int] = []
            for src in frontier:
                for dst in self.succ[src]:
                    if dst in prev or not node_ok(dst) or not edge_ok(src, dst):
                        continue
                    prev[dst] = src
                    if is_target(dst):
                        path = [dst]
                        while prev[path[-1]] is not None:
                            path.append(prev[path[-1]])  # type: ignore[arg-type]
                        path.reverse()
                        return path
                    next_frontier.append(dst)
            frontier = next_frontier
        return None

    # -- SCC decomposition ----------------------------------------------------------

    def sccs(
        self,
        nodes: Optional[Iterable[int]] = None,
        node_ok: NodeFilter = _accept_all_nodes,
        edge_ok: EdgeFilter = _accept_all_edges,
        include_trivial: bool = False,
    ) -> List[List[int]]:
        """Tarjan SCCs of the filtered subgraph (iterative, no recursion).

        By default only *nontrivial* SCCs are returned: components with an
        internal edge.  Because every node carries a stutter self-loop,
        every singleton is nontrivial unless ``edge_ok`` rejects its
        self-loop.
        """
        if nodes is None:
            candidates = [n for n in range(len(self.states)) if node_ok(n)]
        else:
            candidates = [n for n in nodes if node_ok(n)]
        allowed: Set[int] = set(candidates)

        index_of: Dict[int, int] = {}
        lowlink: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        result: List[List[int]] = []
        counter = [0]

        def neighbors(v: int) -> List[int]:
            return [w for w in self.succ[v]
                    if w in allowed and edge_ok(v, w)]

        for root in candidates:
            if root in index_of:
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                v, child_idx = work.pop()
                if child_idx == 0:
                    index_of[v] = counter[0]
                    lowlink[v] = counter[0]
                    counter[0] += 1
                    stack.append(v)
                    on_stack.add(v)
                recursed = False
                nbrs = neighbors(v)
                for i in range(child_idx, len(nbrs)):
                    w = nbrs[i]
                    if w not in index_of:
                        work.append((v, i + 1))
                        work.append((w, 0))
                        recursed = True
                        break
                    if w in on_stack:
                        lowlink[v] = min(lowlink[v], index_of[w])
                if recursed:
                    continue
                if lowlink[v] == index_of[v]:
                    component: List[int] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        component.append(w)
                        if w == v:
                            break
                    has_edge = any(
                        dst in component and edge_ok(src, dst)
                        for src in component
                        for dst in self.succ[src]
                    ) if len(component) == 1 else True
                    if include_trivial or len(component) > 1 or has_edge:
                        result.append(component)
                if work:
                    pv = work[-1][0]
                    lowlink[pv] = min(lowlink[pv], lowlink[v])
        return result

    def covering_cycle(
        self,
        component: Sequence[int],
        edge_ok: EdgeFilter = _accept_all_edges,
        required_edges: Iterable[Tuple[int, int]] = (),
    ) -> List[int]:
        """A closed walk inside *component* visiting every node of the
        component and every required edge.

        The component must be strongly connected under ``edge_ok``.  The
        walk is returned as a node list whose last node has an edge back to
        the first (possibly the stutter self-loop).

        Every required edge must be an actual graph edge within the
        component that ``edge_ok`` allows; a bogus requirement raises
        ``ValueError`` instead of silently producing a non-walk.
        """
        comp_set = set(component)
        required_edges = tuple(required_edges)
        for src, dst in required_edges:
            if src not in comp_set or dst not in comp_set:
                raise ValueError(
                    f"required edge ({src}, {dst}) leaves the component"
                )
            if dst not in self._succ_sets[src] or not edge_ok(src, dst):
                raise ValueError(
                    f"required edge ({src}, {dst}) is not an edge of the "
                    f"graph allowed by the edge filter"
                )

        def inside(n: int) -> bool:
            return n in comp_set

        start = component[0]
        walk = [start]

        def extend_to(target: int) -> None:
            if walk[-1] == target:
                return
            path = self.bfs_path([walk[-1]], lambda n: n == target,
                                 node_ok=inside, edge_ok=edge_ok)
            if path is None:
                raise ValueError(
                    "component is not strongly connected under the edge filter"
                )
            walk.extend(path[1:])

        for node in component[1:]:
            extend_to(node)
        for src, dst in required_edges:
            extend_to(src)
            walk.append(dst)
        extend_to(start)
        # the walk is start .. start; drop the final repetition: the cycle
        # closes via the edge from walk[-1] (== some node with edge to start)
        if len(walk) > 1 and walk[-1] == start:
            walk.pop()
        return walk
