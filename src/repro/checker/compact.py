"""The compact engine: fingerprint-only BFS over packed states.

This is the repo's rendition of TLC's scale trick (Yu, Manolios,
Lamport, *Model Checking TLA+ Specifications*): instead of retaining a
dict-backed :class:`~repro.kernel.state.State` per visited state, the
explorer interns **one packed int per state** (see
:mod:`repro.kernel.packed`) plus a parent id, and regenerates everything
else -- full states, counterexample traces, invariant verdicts -- on
demand by decoding packed ints and re-walking BFS parents with the
compiled action plan.

Design contract (checked exhaustively by
``tests/test_compact_differential.py``): a compact run of a spec is
**bit-for-bit equivalent** to a full run -- same node numbering, same
BFS parent tree, same edge counts, same
:class:`~repro.checker.graph.StateSpaceExplosion` insertion point, same
verdicts and regenerated traces, and the same streaming
:class:`~repro.checker.digest.GraphDigest` -- for any worker count and
across checkpoint/resume.  The engine differs from the full one only in
what it *retains*.

Two scale consequences:

* memory per visited state drops from a boxed dict to roughly one small
  int (10^7 states fit in laptop RAM), and
* the packed successor plan memoizes per-conjunct footprints, which on
  branchy specs is a >5x states/sec win (CI gates this on the
  queue-chain benchmark).

Interning is keyed on *packed ints*, which are bijective with states --
so unlike classic fingerprint-set exploration, state interning here can
never merge two distinct states.  64-bit fingerprints are still
computed (they feed the graph digest and the service cache), and the
engine counts any fingerprint collisions it observes on
``ExploreStats.fingerprint_collisions`` instead of staying silent; the
birthday-bound collision probability is reported in
``ExploreStats.summary()`` / ``to_json()``.

Temporal (lasso) properties need the full successor structure, which
the compact engine deliberately does not retain; callers gate those to
the full engine (the CLI refuses ``--compact --property``, the service
auto-disables compact with a note).
"""

from __future__ import annotations

import base64
import multiprocessing
import os
import pickle
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..kernel.behavior import FiniteBehavior
from ..kernel.expr import Expr, to_expr
from ..kernel.packed import CompactUnsupported, PackedPlan
from ..spec import Spec
from .checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointError,
    _SAME_PATH,
    _atomic_write_json,
    _read_checkpoint_payload,
)
from .digest import GraphDigest
from .explorer import initial_states
from .graph import StateSpaceExplosion
from .parallel import (
    _CHUNKS_PER_WORKER,
    _MIN_CHUNK,
    _ChunkRunner,
    _inline_threshold,
    default_workers,
)
from .results import CheckResult, Counterexample
from .stats import ExploreStats, maybe_phase

__all__ = [
    "CompactGraph",
    "CompactUnsupported",
    "explore_compact",
    "resume_compact",
    "save_compact_checkpoint",
    "check_invariant_compact",
]

#: The ``mode`` tag compact checkpoints carry, so the two engines can
#: refuse each other's snapshots with a usable error.
COMPACT_CHECKPOINT_MODE = "compact"


class _PackedStatesView:
    """Read-only sequence of decoded states, materialised per access.

    Gives a :class:`CompactGraph` the ``graph.states[node]`` surface the
    CLI's ``--show`` and ad-hoc callers expect, without retaining any
    :class:`~repro.kernel.state.State` objects.
    """

    __slots__ = ("_graph",)

    def __init__(self, graph: "CompactGraph"):
        self._graph = graph

    def __len__(self) -> int:
        return len(self._graph.packed)

    def __getitem__(self, node: int):
        return self._graph.state_at(node)

    def __iter__(self):
        decode = self._graph.codec.decode
        for packed in self._graph.packed:
            yield decode(packed)


class CompactGraph:
    """A reachable state graph retaining only packed ints + BFS parents.

    Mirrors the :class:`~repro.checker.graph.StateGraph` surface the
    checking layers read (``state_count`` / ``edge_count`` /
    ``stutter_count`` / ``init_nodes`` / ``path_to_root`` / ``states``)
    but drops successor lists and full states.  The transition structure
    is folded into a streaming :class:`GraphDigest` at expansion time
    instead, so two explorations can still be compared bit-for-bit.
    """

    def __init__(self, spec: Spec, plan: Optional[PackedPlan] = None,
                 max_states: Optional[int] = None):
        self.spec = spec
        self.plan = plan if plan is not None else PackedPlan(spec)
        self.codec = self.plan.codec
        self.name = spec.name
        self.max_states = max_states
        self.visited: Dict[int, int] = {}   # packed -> node id
        self.packed: List[int] = []         # node id -> packed
        self.parent: List[int] = []         # node id -> parent (-1: initial)
        self.init_nodes: List[int] = []
        self._edge_count = 0
        self._fingerprints: set = set()
        self._collisions = 0
        self._digest = GraphDigest()

    # -- interning -----------------------------------------------------------

    def _intern_new(self, packed: int, parent: int,
                    fingerprint: Optional[int] = None) -> int:
        """Append a known-to-be-new packed state: budget check, node-id
        assignment, and digest accounting -- the part of :meth:`intern`
        that does *not* touch the ``visited`` map.  The distributed
        coordinator calls this directly (its visited set lives on the
        worker nodes), so budget behaviour and the node digest stream
        stay one code path across engines."""
        node = len(self.packed)
        if self.max_states is not None and node >= self.max_states:
            label = f"exploring {self.name!r} " if self.name else "exploration "
            exc = StateSpaceExplosion(
                f"{label}exceeded the state budget of "
                f"{self.max_states} states")
            exc.graph = self
            raise exc
        self.packed.append(packed)
        self.parent.append(parent)
        if parent < 0:
            self.init_nodes.append(node)
        if fingerprint is None:
            fingerprint = self.codec.fingerprint(packed)
        self._digest.absorb_node(fingerprint, parent)
        return node

    def intern(self, packed: int, parent: int) -> Tuple[int, bool]:
        """Intern a packed state; returns ``(node_id, is_new)``.

        Enforces the ``max_states`` budget at insertion time exactly
        like :meth:`StateGraph.add_state`, and counts 64-bit fingerprint
        collisions (packed keys are exact, so a collision here is
        *observed and survived*, never a silent merge).
        """
        node = self.visited.get(packed)
        if node is not None:
            return node, False
        fingerprint = self.codec.fingerprint(packed)
        node = self._intern_new(packed, parent, fingerprint)
        self.visited[packed] = node
        if fingerprint in self._fingerprints:
            self._collisions += 1
        else:
            self._fingerprints.add(fingerprint)
        return node, True

    def merge_successors(self, src: int,
                         successors: Iterable[int]) -> List[int]:
        """Merge one source's successor emission; returns new node ids.

        Edge accounting matches the full engine: stutter self-loops and
        repeated targets are not counted, and the deduplicated target
        list (the full engine's ``succ[src][1:]``) feeds the digest's
        edge stream.
        """
        new_nodes: List[int] = []
        dsts: List[int] = []
        seen: set = set()
        for packed in successors:
            node, is_new = self.intern(packed, src)
            if is_new:
                new_nodes.append(node)
            if node != src and node not in seen:
                seen.add(node)
                dsts.append(node)
        self._edge_count += len(dsts)
        self._digest.absorb_edges(src, dsts)
        return new_nodes

    # -- StateGraph-compatible surface ---------------------------------------

    @property
    def state_count(self) -> int:
        return len(self.packed)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    @property
    def stutter_count(self) -> int:
        return len(self.packed)

    @property
    def total_edge_count(self) -> int:
        return self._edge_count + len(self.packed)

    @property
    def states(self) -> _PackedStatesView:
        return _PackedStatesView(self)

    @property
    def fingerprint_collisions(self) -> int:
        """Distinct states observed sharing a 64-bit fingerprint."""
        return self._collisions

    def _check_node(self, node: int) -> None:
        if not 0 <= node < len(self.packed):
            raise ValueError(
                f"node {node!r} is not in this graph (valid ids: "
                f"0..{len(self.packed) - 1}); states beyond the "
                f"max_states budget are never interned")

    def state_at(self, node: int):
        """Decode node *node* back into a full ``State``."""
        self._check_node(node)
        return self.codec.decode(self.packed[node])

    def path_to_root(self, node: int) -> List[int]:
        """The BFS-tree path from an initial node to *node* (inclusive)."""
        self._check_node(node)
        path = [node]
        while self.parent[path[-1]] >= 0:
            path.append(self.parent[path[-1]])
        path.reverse()
        return path

    def trace_to(self, node: int) -> FiniteBehavior:
        """Regenerate the counterexample trace reaching *node*.

        Decodes the BFS-parent chain and re-verifies every step against
        the compiled packed plan -- each regenerated state really is a
        successor of its predecessor, so a corrupt parent table (or an
        encoder drift) surfaces here instead of producing a bogus trace.
        """
        path = self.path_to_root(node)
        for prev, nxt in zip(path, path[1:]):
            if self.packed[nxt] not in self.plan.successors(self.packed[prev]):
                raise RuntimeError(
                    f"regenerated trace is not a behavior: node {nxt} is "
                    f"not a successor of its BFS parent {prev}; the "
                    f"parent table is corrupt or the encoder drifted")
        return FiniteBehavior([self.state_at(n) for n in path])

    # -- digests -------------------------------------------------------------

    def digest(self) -> str:
        """The streaming graph digest (see :mod:`repro.checker.digest`)."""
        return self._digest.hexdigest()

    def digest_state(self) -> List[int]:
        return self._digest.state()


# -- exploration -------------------------------------------------------------


def _seed_compact(spec: Spec,
                  max_states: Optional[int]) -> Tuple[CompactGraph, List[int]]:
    graph = CompactGraph(spec, max_states=max_states)
    encode = graph.codec.encode
    frontier: List[int] = []
    for state in initial_states(spec.init, spec.universe):
        node, is_new = graph.intern(encode(state), -1)
        if is_new:
            frontier.append(node)
    return graph, frontier


def _finish_compact(graph: CompactGraph, stats: Optional[ExploreStats],
                    depth: int, elapsed: float) -> None:
    if stats is not None:
        stats.engine = "compact"
        stats.record_explore(graph, depth, elapsed)
        stats.fingerprint_collisions = graph.fingerprint_collisions


def _drive_compact(
    spec: Spec,
    graph: CompactGraph,
    frontier: List[int],
    depth: int,
    levels: int,
    elapsed_before: float,
    stats: Optional[ExploreStats] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: int = 1,
    workers: int = 1,
    worker_timeout: Optional[float] = None,
    fault_hook: Optional[Callable] = None,
    start: Optional[float] = None,
) -> CompactGraph:
    """The compact BFS loop, resumable at any level boundary (the
    packed-int twin of :func:`repro.checker.explorer._drive`)."""
    if start is None:
        start = perf_counter()
    if workers > 1:
        return _drive_compact_parallel(
            spec, graph, frontier, depth, levels, elapsed_before,
            stats=stats, checkpoint=checkpoint,
            checkpoint_every=checkpoint_every, workers=workers,
            worker_timeout=worker_timeout, fault_hook=fault_hook,
            start=start)
    successors = graph.plan.successors
    packed = graph.packed
    merge = graph.merge_successors
    while frontier:
        next_frontier: List[int] = []
        for src in frontier:
            next_frontier.extend(merge(src, successors(packed[src])))
        if stats is not None:
            stats.record_level(len(frontier), graph)
        frontier = next_frontier
        levels += 1
        if frontier:
            depth += 1
        if checkpoint is not None and (
                not frontier or levels % checkpoint_every == 0):
            save_compact_checkpoint(
                checkpoint, spec, graph, frontier, depth, levels,
                elapsed_seconds=elapsed_before + perf_counter() - start,
                workers=workers, checkpoint_every=checkpoint_every,
                stats=stats)
    _finish_compact(graph, stats, depth,
                    elapsed_before + perf_counter() - start)
    return graph


# worker-process globals, set once by _init_compact_worker
_compact_expand: Optional[Callable[[int], List[int]]] = None
_compact_fault: Optional[Callable] = None


def _init_compact_worker(spec_payload: bytes, fault_hook=None) -> None:
    """Pool initializer: build the packed plan once per worker process."""
    global _compact_expand, _compact_fault
    spec = pickle.loads(spec_payload)
    _compact_expand = PackedPlan(spec).successors
    _compact_fault = fault_hook


def _expand_packed_chunk(chunk: List[int]):
    """Worker body: successor emission for one packed frontier chunk.

    Chunk entries are packed ints -- exact state identities -- so no
    batch keys are needed: the coordinator pairs results back to sources
    positionally (results arrive per chunk in submission order, batches
    within a chunk in chunk order)."""
    expand = _compact_expand
    assert expand is not None, "worker used before initialization"
    if _compact_fault is not None:
        _compact_fault(chunk)
    start = perf_counter()
    batches = [expand(packed) for packed in chunk]
    return os.getpid(), perf_counter() - start, batches


def _packed_chunks(entries: List[int], workers: int) -> List[List[int]]:
    """Contiguous chunks, same size rule as the full engine's sharding."""
    target = workers * _CHUNKS_PER_WORKER
    chunk_size = max(_MIN_CHUNK, -(-len(entries) // target))
    return [entries[i:i + chunk_size]
            for i in range(0, len(entries), chunk_size)]


def _drive_compact_parallel(
    spec: Spec,
    graph: CompactGraph,
    frontier: List[int],
    depth: int,
    levels: int,
    elapsed_before: float,
    stats: Optional[ExploreStats] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: int = 1,
    workers: int = 2,
    worker_timeout: Optional[float] = None,
    fault_hook: Optional[Callable] = None,
    start: Optional[float] = None,
) -> CompactGraph:
    """Multi-process compact BFS: workers expand packed chunks, the
    coordinator merges strictly in submission order, so the graph (and
    its digest) is bit-for-bit the serial compact graph -- the same
    determinism argument as :func:`repro.checker.parallel._drive_parallel`,
    with retry/crash recovery inherited from :class:`_ChunkRunner`."""
    if start is None:
        start = perf_counter()
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods
                                     else methods[0])
    payload = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
    idle = 0.0
    worker_ids: Dict[int, int] = {}
    successors = graph.plan.successors
    packed = graph.packed
    merge = graph.merge_successors
    inline_below = _inline_threshold(workers)
    runner = _ChunkRunner(workers, payload, ctx, worker_timeout, fault_hook,
                          stats, initializer=_init_compact_worker,
                          task=_expand_packed_chunk)
    try:
        while frontier:
            next_frontier: List[int] = []
            if len(frontier) < inline_below:
                for src in frontier:
                    next_frontier.extend(merge(src, successors(packed[src])))
            else:
                sources = list(frontier)
                chunks = _packed_chunks([packed[src] for src in sources],
                                        workers)
                merged = 0
                wait_from = perf_counter()
                for pid, busy, batches in runner.run_level(chunks):
                    idle += perf_counter() - wait_from
                    if stats is not None:
                        stats.record_worker_batch(
                            worker_ids.setdefault(pid, len(worker_ids)),
                            sources=len(batches),
                            successors=sum(len(b) for b in batches),
                            busy_seconds=busy,
                        )
                    for offset, succ_packed in enumerate(batches):
                        next_frontier.extend(
                            merge(sources[merged + offset], succ_packed))
                    merged += len(batches)
                    wait_from = perf_counter()
            if stats is not None:
                stats.record_level(len(frontier), graph)
            frontier = next_frontier
            levels += 1
            if frontier:
                depth += 1
            if checkpoint is not None and (
                    not frontier or levels % checkpoint_every == 0):
                save_compact_checkpoint(
                    checkpoint, spec, graph, frontier, depth, levels,
                    elapsed_seconds=elapsed_before + perf_counter() - start,
                    workers=workers, checkpoint_every=checkpoint_every,
                    stats=stats)
    finally:
        runner.close()
    _finish_compact(graph, stats, depth,
                    elapsed_before + perf_counter() - start)
    if stats is not None:
        stats.record_parallel(workers, idle)
    return graph


def explore_compact(
    spec: Spec,
    max_states: int = 200_000,
    workers: int = 1,
    stats: Optional[ExploreStats] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: int = 1,
    worker_timeout: Optional[float] = None,
    fault_hook: Optional[Callable] = None,
) -> CompactGraph:
    """Explore ``Init ∧ □[N]_v`` on the compact engine.

    The resulting :class:`CompactGraph` has the same node numbering,
    BFS parents, edge counts, budget behaviour, and streaming digest as
    a full :func:`~repro.checker.explorer.explore` /
    :func:`~repro.checker.parallel.explore_parallel` run of the same
    spec -- it just retains packed ints instead of states.  ``workers``
    follows the parallel explorer's conventions (``0`` auto-sizes,
    ``<= 1`` runs serially); specs the packed codec cannot represent
    raise :class:`CompactUnsupported` before any exploration happens.
    """
    if workers == 1 and (worker_timeout is not None
                         or fault_hook is not None):
        raise ValueError(
            "workers=1 runs the serial engine, which would silently "
            "ignore worker_timeout/fault_hook; drop those options or "
            "use workers >= 2 (workers=0 auto-sizes)")
    if workers == 0:
        workers = default_workers()
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    start = perf_counter()
    graph, frontier = _seed_compact(spec, max_states)
    return _drive_compact(spec, graph, frontier, depth=0, levels=0,
                          elapsed_before=0.0, stats=stats,
                          checkpoint=checkpoint,
                          checkpoint_every=checkpoint_every,
                          workers=workers, worker_timeout=worker_timeout,
                          fault_hook=fault_hook, start=start)


# -- checkpoint / resume -----------------------------------------------------


def save_compact_checkpoint(
    path: str,
    spec: Spec,
    graph: CompactGraph,
    frontier: Sequence[int],
    depth: int,
    levels: int,
    elapsed_seconds: float,
    workers: int = 1,
    checkpoint_every: int = 1,
    stats: Optional[ExploreStats] = None,
    extra: Optional[Dict[str, object]] = None,
) -> None:
    """Atomically snapshot a compact run at a BFS level boundary.

    The snapshot stores packed ints (plus the codec signature, so resume
    can verify the packing layout still matches the spec) and the live
    digest accumulator -- edge structure is not retained, so the digest
    stream *must* survive the round trip rather than be recomputed.
    ``extra`` merges additional top-level sections into the payload (the
    distributed coordinator records its level manifest there); resume
    ignores sections it does not know, so such snapshots stay resumable
    single-machine.
    """
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "mode": COMPACT_CHECKPOINT_MODE,
        "spec_name": spec.name,
        "spec_pickle": base64.b64encode(
            pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii"),
        "max_states": graph.max_states,
        "workers": workers,
        "checkpoint_every": checkpoint_every,
        "depth": depth,
        "levels": levels,
        "elapsed_seconds": elapsed_seconds,
        "compact": {
            "codec_signature": graph.codec.signature(),
            "packed": list(graph.packed),
            "parent": list(graph.parent),
            "init_nodes": list(graph.init_nodes),
            "edge_count": graph.edge_count,
            "digest": graph.digest_state(),
        },
        "frontier": list(frontier),
        "stats": stats.as_dict() if stats is not None else None,
    }
    if extra:
        payload.update(extra)
    _atomic_write_json(path, payload)


class CompactResume:
    """A compact checkpoint reloaded into live run state: the rebuilt
    graph plus the loop counters :func:`_drive_compact` needs.  Shared by
    :func:`resume_compact` and the distributed coordinator's crash-resume
    (which re-drives the same state through its own merge loop)."""

    __slots__ = ("spec", "graph", "frontier", "depth", "levels",
                 "elapsed_seconds", "workers", "checkpoint_every", "payload")

    def __init__(self, spec: Spec, graph: CompactGraph, frontier: List[int],
                 depth: int, levels: int, elapsed_seconds: float,
                 workers: int, checkpoint_every: int,
                 payload: Dict[str, object]):
        self.spec = spec
        self.graph = graph
        self.frontier = frontier
        self.depth = depth
        self.levels = levels
        self.elapsed_seconds = elapsed_seconds
        self.workers = workers
        self.checkpoint_every = checkpoint_every
        self.payload = payload


def load_compact_checkpoint(
    path: str,
    spec: Optional[Spec] = None,
    max_states: Optional[int] = None,
    stats: Optional[ExploreStats] = None,
) -> CompactResume:
    """Reload a compact snapshot into a live :class:`CompactGraph` plus
    the BFS loop counters, verifying format/version/mode/codec layout.
    This is the load half of :func:`resume_compact`; the raw payload is
    kept on the result so callers can read extra sections (the
    distributed level manifest)."""
    payload = _read_checkpoint_payload(path)
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path}: not a {CHECKPOINT_FORMAT} file "
            f"(format={payload.get('format')!r})")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint version {version!r} "
            f"(this build reads version {CHECKPOINT_VERSION})")
    mode = payload.get("mode")
    if mode != COMPACT_CHECKPOINT_MODE:
        raise CheckpointError(
            f"{path}: checkpoint was written by the full-state engine; "
            f"resume it without --compact (the two engines' snapshots "
            f"are not interchangeable)")
    try:
        data = payload["compact"]
        spec_pickle = payload["spec_pickle"]
        stored_max = payload["max_states"]
        stored_workers = payload["workers"]
        stored_every = payload["checkpoint_every"]
        depth = payload["depth"]
        levels = payload["levels"]
        elapsed = payload["elapsed_seconds"]
        frontier = [int(node) for node in payload["frontier"]]
        packed_rows = [int(p) for p in data["packed"]]
        parent = [int(p) for p in data["parent"]]
        init_nodes = [int(n) for n in data["init_nodes"]]
        edge_count = int(data["edge_count"])
        digest_state = data["digest"]
        codec_signature = data["codec_signature"]
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"{path}: missing or malformed field ({exc!r})") from None
    if spec is None:
        try:
            spec = pickle.loads(base64.b64decode(spec_pickle))
        except Exception as exc:
            raise CheckpointError(
                f"{path}: embedded spec cannot be unpickled ({exc}); "
                f"pass the spec to resume_compact() explicitly") from exc

    plan = PackedPlan(spec)
    if plan.codec.signature() != codec_signature:
        raise CheckpointError(
            f"{path}: packed-state layout does not match spec "
            f"{spec.name!r}; the checkpoint is corrupt or was written "
            f"against a different spec or domain enumeration")
    budget = stored_max if max_states is None else max_states
    if budget is not None and len(packed_rows) > budget:
        raise StateSpaceExplosion(
            f"exploring {spec.name!r} exceeded the state budget of "
            f"{budget} states")
    if len(parent) != len(packed_rows) or any(
            node >= len(packed_rows) for node in frontier):
        raise CheckpointError(
            f"{path}: inconsistent node tables; the checkpoint is corrupt")

    graph = CompactGraph(spec, plan, max_states=budget)
    graph.packed = packed_rows
    graph.parent = parent
    graph.visited = {p: node for node, p in enumerate(packed_rows)}
    if len(graph.visited) != len(packed_rows):
        raise CheckpointError(
            f"{path}: duplicate packed states; the checkpoint is corrupt")
    graph.init_nodes = init_nodes
    graph._edge_count = edge_count
    graph._digest = GraphDigest.restore(digest_state)
    fingerprint = plan.codec.fingerprint
    fingerprints: set = set()
    collisions = 0
    for p in packed_rows:
        fp = fingerprint(p)
        if fp in fingerprints:
            collisions += 1
        else:
            fingerprints.add(fp)
    graph._fingerprints = fingerprints
    graph._collisions = collisions

    if stats is not None and payload.get("stats"):
        stats.restore(payload["stats"])
    return CompactResume(spec, graph, frontier, depth=depth, levels=levels,
                         elapsed_seconds=elapsed, workers=stored_workers,
                         checkpoint_every=stored_every, payload=payload)


def resume_compact(
    path: str,
    spec: Optional[Spec] = None,
    *,
    workers: Optional[int] = None,
    max_states: Optional[int] = None,
    stats: Optional[ExploreStats] = None,
    checkpoint: object = _SAME_PATH,
    checkpoint_every: Optional[int] = None,
    worker_timeout: Optional[float] = None,
    fault_hook: Optional[Callable] = None,
) -> CompactGraph:
    """Continue a compact exploration from a checkpoint, bit-for-bit.

    Mirrors :func:`repro.checker.checkpoint.resume` (same defaults, same
    keep-checkpointing-to-the-same-path behaviour) for compact
    snapshots.  A full-engine snapshot is rejected with a clear
    :class:`CheckpointError` rather than misread, as is a snapshot whose
    packed layout no longer matches the spec's domain enumeration.
    """
    loaded = load_compact_checkpoint(path, spec, max_states=max_states,
                                     stats=stats)
    target = path if checkpoint is _SAME_PATH else checkpoint
    every = loaded.checkpoint_every if checkpoint_every is None \
        else checkpoint_every
    worker_count = loaded.workers if workers is None else workers
    if worker_count == 0:
        worker_count = default_workers()
    return _drive_compact(loaded.spec, loaded.graph, loaded.frontier,
                          depth=loaded.depth, levels=loaded.levels,
                          elapsed_before=loaded.elapsed_seconds, stats=stats,
                          checkpoint=target, checkpoint_every=every,
                          workers=worker_count,
                          worker_timeout=worker_timeout,
                          fault_hook=fault_hook)


# -- invariant checking ------------------------------------------------------


def check_invariant_compact(
    graph: CompactGraph,
    invariant: Expr,
    name: Optional[str] = None,
    run_stats: Optional[ExploreStats] = None,
) -> CheckResult:
    """Does every reachable state satisfy the predicate?

    The compact twin of :func:`repro.checker.invariants.check_invariant`
    over a pre-explored graph: same scan order (node-id order, so the
    first violation -- and hence the counterexample trace -- is
    identical to the full engine's), same ``TypeError`` on a non-bool
    predicate, same ``CheckResult`` shape.  Evaluation is memoized on
    the packed footprint of the invariant's free variables, so states
    are only decoded once per distinct footprint.
    """
    invariant = to_expr(invariant)
    label = name or "invariant"
    if run_stats is not None and run_stats.states == 0:
        run_stats.record_graph(graph)
    stats = {"states": graph.state_count, "edges": graph.edge_count,
             "stutter": graph.stutter_count}
    mask = graph.codec.mask_of(invariant.free_vars())
    decode = graph.codec.decode
    memo: Dict[int, bool] = {}
    with maybe_phase(run_stats, f"invariant:{label}"):
        for node, packed in enumerate(graph.packed):
            key = packed & mask
            value = memo.get(key)
            if value is None:
                value = invariant.eval_state(decode(packed))
                if not isinstance(value, bool):
                    raise TypeError(
                        f"invariant {invariant!r} returned {value!r}")
                memo[key] = value
            if not value:
                return CheckResult(
                    label,
                    ok=False,
                    counterexample=Counterexample(
                        graph.trace_to(node),
                        f"state violates invariant {invariant!r}"
                    ),
                    stats=stats,
                )
    return CheckResult(label, ok=True, stats=stats)
