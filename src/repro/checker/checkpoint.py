"""Durable exploration runs: checkpoint, resume, and run manifests.

TLC treats checkpointing as table stakes for industrial model checking --
a multi-hour run must survive an OOM kill, a pre-empted machine, or an
operator ctrl-C.  This module gives our explorer the same durability:

* :func:`save_checkpoint` writes a **versioned, portable** snapshot of a
  run in flight -- the :class:`~repro.checker.graph.StateGraph` built so
  far (states in node order with their process-stable fingerprints,
  adjacency lists in insertion order, the BFS parent tree, the
  real-vs-stutter edge split), the frontier still to expand, the BFS
  depth, and the cumulative :class:`~repro.checker.stats.ExploreStats`
  counters.  Writes are atomic (write-temp-then-``os.replace``), so a
  crash *during* checkpointing leaves the previous snapshot intact.
* :func:`load_checkpoint` / :func:`resume` reload a snapshot and continue
  the run **bit-for-bit identically** to an uninterrupted one: same node
  numbering, same adjacency order, same parents, hence the same
  counterexample traces and the same
  :class:`~repro.checker.graph.StateSpaceExplosion` insertion point.
  The determinism argument is short: checkpoints are taken only at BFS
  level boundaries, the restored graph is bit-identical to the live one
  at that boundary, and a BFS level expansion is a pure function of
  (graph, frontier) -- see DESIGN.md 4d.
* :func:`write_manifest` emits a small JSON run manifest (spec name,
  budget, worker count, wall time, outcome, rendered counterexample if
  any) next to the checkpoint -- the machine-readable artifact CI
  uploads per run.

States are serialized with the tagged JSON encoding of
:func:`repro.kernel.state.value_to_portable` (no pickle), so checkpoint
files are stable across interpreter processes and ``PYTHONHASHSEED``
values.  The spec itself *is* embedded as a pickle (base64) purely as a
convenience so ``resume(path)`` works standalone; passing ``spec=``
explicitly to :func:`resume` skips it entirely.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import tempfile
from typing import Dict, List, Optional, Sequence

from ..kernel.state import State, value_to_portable
from ..spec import Spec
from .graph import StateGraph
from .results import Counterexample
from .stats import ExploreStats

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "resume",
    "manifest_path_for",
    "write_manifest",
]

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1

# resume()'s "keep writing to the file we loaded from" default
_SAME_PATH = object()

# resume()'s "adopt whatever the checkpoint recorded" default for the
# reduction / store configurations (None is a meaningful explicit value:
# "I want this run unreduced / in-RAM", which must *match* the snapshot)
_ADOPT = object()


class CheckpointError(Exception):
    """A checkpoint file is missing, malformed, or fails integrity checks."""


def _atomic_write_json(path: str, payload: Dict[str, object]) -> None:
    """Serialize *payload* to *path* via write-temp-then-rename.

    ``os.replace`` is atomic on POSIX and Windows, so readers (and a
    crash mid-write) only ever observe the old complete file or the new
    complete file, never a truncated one.
    """
    path = os.path.abspath(path)
    directory = os.path.dirname(path)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def save_checkpoint(
    path: str,
    spec: Spec,
    graph: StateGraph,
    frontier: Sequence[int],
    depth: int,
    levels: int,
    elapsed_seconds: float,
    workers: int = 1,
    checkpoint_every: int = 1,
    stats: Optional[ExploreStats] = None,
    reduction: Optional[Dict[str, object]] = None,
    store: Optional[Dict[str, object]] = None,
    extra: Optional[Dict[str, object]] = None,
) -> None:
    """Atomically snapshot a run at a BFS level boundary.

    ``depth`` is the stats-visible frontier depth so far, ``levels`` the
    number of completed expansion rounds (the checkpoint cadence
    counter), ``frontier`` the node ids still to expand -- exactly the
    loop state of :func:`~repro.checker.explorer.explore` between two
    levels.  ``reduction`` / ``store`` are the effective
    partial-order-reduction and state-store configurations of the run
    (``ReductionConfig.as_dict()`` / ``StateStore.config()``), recorded
    so :func:`resume` continues under the *same* semantics -- resuming a
    reduced run unreduced (or vice versa) would not reproduce the run.
    Spill-store states are re-interned from this snapshot on resume, so
    the snapshot is self-contained even if the spill files are lost.
    """
    variables = list(graph.universe.variables)
    rows: List[List[object]] = []
    fingerprints: List[str] = []
    for state in graph.states:
        rows.append([value_to_portable(state[name]) for name in variables])
        fingerprints.append(format(state.fingerprint(), "016x"))
    payload: Dict[str, object] = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "spec_name": spec.name,
        "spec_pickle": base64.b64encode(
            pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii"),
        "max_states": graph.max_states,
        "workers": workers,
        "checkpoint_every": checkpoint_every,
        "depth": depth,
        "levels": levels,
        "elapsed_seconds": elapsed_seconds,
        "graph": {
            "variables": variables,
            "states": rows,
            "fingerprints": fingerprints,
            # stutter self-loops are implied (one per node, always first
            # in the adjacency list); only the real N-edges are stored
            "succ": [adj[1:] for adj in graph.succ],
            "parent": graph.parent,
            "init_nodes": graph.init_nodes,
        },
        "frontier": list(frontier),
        "stats": stats.as_dict() if stats is not None else None,
        "reduction": reduction,
        "store": store,
    }
    if extra:
        # additional top-level sections (the distributed coordinator's
        # level manifest); load_checkpoint keeps them readable on
        # Checkpoint.payload and otherwise ignores them
        payload.update(extra)
    _atomic_write_json(path, payload)


class Checkpoint:
    """A loaded checkpoint: validated metadata plus graph reconstruction."""

    __slots__ = ("path", "payload", "spec_name", "max_states", "workers",
                 "checkpoint_every", "depth", "levels", "elapsed_seconds",
                 "frontier", "stats_snapshot", "reduction_config",
                 "store_config", "_graph_data", "_spec_pickle")

    def __init__(self, path: str, payload: Dict[str, object]):
        self.path = path
        self.payload = payload
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"{path}: not a {CHECKPOINT_FORMAT} file "
                f"(format={payload.get('format')!r})"
            )
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{path}: unsupported checkpoint version {version!r} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        if payload.get("mode") == "compact":
            raise CheckpointError(
                f"{path}: checkpoint was written by the compact engine; "
                f"resume it with --compact "
                f"(repro.checker.compact.resume_compact)"
            )
        try:
            self.spec_name: str = payload["spec_name"]
            self.max_states: Optional[int] = payload["max_states"]
            self.workers: int = payload["workers"]
            self.checkpoint_every: int = payload["checkpoint_every"]
            self.depth: int = payload["depth"]
            self.levels: int = payload["levels"]
            self.elapsed_seconds: float = payload["elapsed_seconds"]
            self.frontier: List[int] = list(payload["frontier"])
            self._graph_data: Dict[str, object] = payload["graph"]
            self._spec_pickle: str = payload["spec_pickle"]
        except KeyError as exc:
            raise CheckpointError(f"{path}: missing field {exc}") from None
        self.stats_snapshot: Optional[Dict[str, object]] = payload.get("stats")
        # pre-reduction checkpoints carry neither key: both read as None,
        # meaning "full exploration, in-RAM store" -- the legacy semantics
        self.reduction_config: Optional[Dict[str, object]] = \
            payload.get("reduction")
        self.store_config: Optional[Dict[str, object]] = payload.get("store")

    def load_spec(self) -> Spec:
        """Unpickle the embedded spec (for standalone ``resume(path)``)."""
        try:
            return pickle.loads(base64.b64decode(self._spec_pickle))
        except Exception as exc:
            raise CheckpointError(
                f"{self.path}: embedded spec cannot be unpickled ({exc}); "
                f"pass the spec to resume() explicitly"
            ) from exc

    def restore_graph(self, spec: Spec,
                      max_states: Optional[int] = None,
                      store: object = None) -> StateGraph:
        """Rebuild the graph against *spec*'s universe, verifying that the
        stored variables match and that every decoded state reproduces its
        stored fingerprint (corruption / encoding-drift detection).

        *store* is the :class:`~repro.checker.reduction.store.StateStore`
        to re-intern the states through (default: fresh in-RAM store);
        spill stores rebuild their data/index files from the snapshot, so
        resuming never depends on the old spill files surviving."""
        data = self._graph_data
        variables = list(data["variables"])
        if variables != list(spec.universe.variables):
            raise CheckpointError(
                f"{self.path}: checkpoint variables {variables} do not match "
                f"spec {spec.name!r} variables {list(spec.universe.variables)}"
            )
        states: List[State] = []
        for node, row in enumerate(data["states"]):
            state = State.from_portable(dict(zip(variables, row)))
            expected = data["fingerprints"][node]
            actual = format(state.fingerprint(), "016x")
            if actual != expected:
                raise CheckpointError(
                    f"{self.path}: state {node} fingerprint mismatch "
                    f"({actual} != stored {expected}); the checkpoint is "
                    f"corrupt or was written by an incompatible encoder"
                )
            states.append(state)
        return StateGraph.restore(
            spec.universe,
            states,
            data["succ"],
            data["parent"],
            data["init_nodes"],
            max_states=self.max_states if max_states is None else max_states,
            name=spec.name,
            store=store,
        )


def _read_checkpoint_payload(path: str) -> Dict[str, object]:
    """Read and JSON-parse a checkpoint file (shared by both engines)."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"{path}: unreadable checkpoint ({exc})") from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"{path}: checkpoint is not a JSON object")
    return payload


def load_checkpoint(path: str) -> Checkpoint:
    """Parse and validate a full-engine checkpoint file."""
    return Checkpoint(path, _read_checkpoint_payload(path))


def _reduction_dict(reduction: object) -> Optional[Dict[str, object]]:
    """Normalize a ReductionConfig-or-dict-or-None to the as_dict form."""
    if reduction is None or isinstance(reduction, dict):
        return reduction
    return reduction.as_dict()  # a ReductionConfig


def _store_kind(config: Optional[Dict[str, object]]) -> str:
    return "mem" if config is None else str(config.get("kind", "mem"))


def resume(
    path: str,
    spec: Optional[Spec] = None,
    *,
    workers: Optional[int] = None,
    max_states: Optional[int] = None,
    stats: Optional[ExploreStats] = None,
    checkpoint: object = _SAME_PATH,
    checkpoint_every: Optional[int] = None,
    worker_timeout: Optional[float] = None,
    fault_hook: object = None,
    reduction: object = _ADOPT,
    store: object = _ADOPT,
) -> StateGraph:
    """Continue an exploration from a checkpoint, bit-for-bit.

    The restored run picks up at the stored BFS level boundary and
    produces exactly the graph an uninterrupted run would have: same
    numbering, adjacency, parents, traces, and budget behaviour.

    *spec* defaults to the pickle embedded in the checkpoint; *workers*,
    *max_states*, and *checkpoint_every* default to the stored values
    (pass ``max_states`` explicitly to continue an exploded run under a
    larger budget).  By default the resumed run keeps checkpointing to
    the same *path*; pass ``checkpoint=None`` to disable further
    snapshots, or another path to redirect them.

    The run's partial-order-reduction and state-store semantics are
    adopted from the snapshot by default.  Passing ``reduction`` (a
    :class:`~repro.checker.reduction.por.ReductionConfig`, its dict
    form, or ``None`` for "unreduced") or ``store`` (a
    ``StateStore.config()`` dict, or ``None`` for in-RAM) asserts what
    the caller *expects* the run to be: a mismatch with the snapshot
    raises :class:`CheckpointError` instead of silently continuing the
    run under different semantics, which would not reproduce it.  For a
    spill store the directory/capacity may differ (the files are rebuilt
    from the snapshot); only the store *kind* must match.
    """
    loaded = load_checkpoint(path)
    if spec is None:
        spec = loaded.load_spec()

    if reduction is _ADOPT:
        reduction_cfg = loaded.reduction_config
    else:
        reduction_cfg = _reduction_dict(reduction)
        if reduction_cfg != loaded.reduction_config:
            raise CheckpointError(
                f"{path}: checkpoint was written with reduction config "
                f"{loaded.reduction_config!r} but the resume requested "
                f"{reduction_cfg!r}; resuming under different reduction "
                f"semantics would not reproduce the run"
            )
    store_cfg: Optional[Dict[str, object]]
    if store is _ADOPT:
        store_cfg = loaded.store_config
    else:
        store_cfg = store  # type: ignore[assignment]
        if _store_kind(store_cfg) != _store_kind(loaded.store_config):
            raise CheckpointError(
                f"{path}: checkpoint was written with a "
                f"{_store_kind(loaded.store_config)!r} state store but the "
                f"resume requested {_store_kind(store_cfg)!r}; pick one or "
                f"drop the flag to adopt the checkpoint's store"
            )
    from .reduction.por import ReductionConfig
    from .reduction.store import build_store
    reducer_config = (
        ReductionConfig(tuple(reduction_cfg.get("observed_vars", ())))
        if reduction_cfg is not None else None)

    run_store = build_store(store_cfg)
    # close the store we just built on any error path: a resume that
    # explodes (or crashes) never hands the graph back, so this is the
    # only chance to release a spill store's mmap/file handles
    try:
        graph = loaded.restore_graph(spec, max_states=max_states,
                                     store=run_store)
        if stats is not None and loaded.stats_snapshot:
            stats.restore(loaded.stats_snapshot)
        target = path if checkpoint is _SAME_PATH else checkpoint
        every = loaded.checkpoint_every if checkpoint_every is None \
            else checkpoint_every
        worker_count = loaded.workers if workers is None else workers
        if worker_count == 0:
            from .parallel import default_workers
            worker_count = default_workers()
        from .explorer import _resolve_reducer
        reducer = _resolve_reducer(spec, reducer_config, stats)
        if worker_count <= 1:
            from .explorer import _drive
            return _drive(spec, graph, list(loaded.frontier),
                          depth=loaded.depth, levels=loaded.levels,
                          elapsed_before=loaded.elapsed_seconds, stats=stats,
                          checkpoint=target, checkpoint_every=every,
                          reducer=reducer)
        from .parallel import _drive_parallel
        return _drive_parallel(spec, graph, list(loaded.frontier),
                               depth=loaded.depth, levels=loaded.levels,
                               elapsed_before=loaded.elapsed_seconds,
                               stats=stats,
                               checkpoint=target, checkpoint_every=every,
                               workers=worker_count,
                               worker_timeout=worker_timeout,
                               fault_hook=fault_hook, reducer=reducer)
    except BaseException:
        run_store.close()
        raise


# -- run manifests -----------------------------------------------------------


def manifest_path_for(checkpoint_path: str) -> str:
    """The manifest's conventional location: next to the checkpoint."""
    return checkpoint_path + ".manifest.json"


def counterexample_to_portable(cex: Counterexample) -> Dict[str, object]:
    """A JSON-serializable rendition of a counterexample trace."""
    payload: Dict[str, object] = {
        "reason": cex.reason,
        "kind": "lasso" if cex.is_lasso else "finite",
        "states": [state.to_portable() for state in cex.states()],
        "rendered": cex.render(),
    }
    if cex.is_lasso:
        payload["loop_start"] = cex.trace.loop_start
    return payload


def write_manifest(
    path: str,
    *,
    spec_name: str,
    max_states: Optional[int],
    workers: int,
    wall_seconds: float,
    outcome: str,
    states: Optional[int] = None,
    edges: Optional[int] = None,
    counterexample: Optional[Counterexample] = None,
    stats: Optional[ExploreStats] = None,
    error: Optional[str] = None,
    reduction: Optional[Dict[str, object]] = None,
    store: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Atomically write a JSON run manifest; returns the payload.

    *outcome* is one of ``"ok"`` (all checks passed / exploration
    completed), ``"violation"`` (a counterexample was found),
    ``"explosion"`` (the state budget was exceeded), or ``"error"``.
    ``reduction`` / ``store`` record the *effective* reduction and
    state-store configuration of the run (after any auto-disable), so
    the artifact says what semantics actually produced the verdict.
    """
    payload: Dict[str, object] = {
        "format": "repro-run-manifest",
        "version": CHECKPOINT_VERSION,
        "spec": spec_name,
        "max_states": max_states,
        "workers": workers,
        "wall_seconds": wall_seconds,
        "outcome": outcome,
        "states": states,
        "edges": edges,
        "counterexample": (counterexample_to_portable(counterexample)
                           if counterexample is not None else None),
        "stats": stats.as_dict() if stats is not None else None,
        "error": error,
        "reduction": reduction,
        "store": store,
    }
    _atomic_write_json(path, payload)
    return payload
