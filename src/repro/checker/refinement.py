"""Safety refinement checking with refinement mappings.

``M_impl ⇒ M_target`` for the safety parts of canonical specifications:
every reachable behavior of the implementation, viewed through a
*refinement mapping* (which supplies values for the target's internal
variables as state functions of the implementation, exactly as in the
paper's section A.4), satisfies ``Init_target ∧ □[N_target]_v``.

The check is the standard simulation argument:

* every initial implementation state maps to a target state satisfying
  ``Init_target``;
* every implementation step maps to a ``[N_target]_v`` step.

Both conditions are verified exhaustively over the reachable graph, so a
pass is a proof (for the finite instance) and a failure yields a concrete
finite trace.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

from ..kernel.behavior import FiniteBehavior, Lasso
from ..kernel.expr import Env, EvalError, Expr, Var, to_expr
from ..kernel.action import square
from ..kernel.state import State, Universe
from ..spec import Spec
from .explorer import explore
from .graph import StateGraph
from .results import CheckResult, Counterexample
from .stats import ExploreStats, maybe_phase


class RefinementMapping:
    """Derives target-specification states from implementation states.

    ``exprs`` maps target variable names to state functions over the
    implementation's variables; target variables not mentioned are mapped
    identically (they must then exist in the implementation).  The paper's
    double-queue proof uses the mapping
    ``q ↦ q2 ∘ buffer(z) ∘ q1`` (section A.4).
    """

    __slots__ = ("exprs",)

    def __init__(self, exprs: Optional[Mapping[str, object]] = None):
        self.exprs: Dict[str, Expr] = {
            name: to_expr(expr) for name, expr in (exprs or {}).items()
        }
        for name, expr in self.exprs.items():
            if expr.primed_vars():
                raise ValueError(
                    f"refinement mapping for {name!r} must be a state function, "
                    f"got primes in {expr!r}"
                )

    def expr_for(self, target_var: str) -> Expr:
        return self.exprs.get(target_var, Var(target_var))

    def target_state(self, impl_state: State, target_universe: Universe) -> State:
        values = {}
        for name in target_universe.variables:
            try:
                value = self.expr_for(name).eval_state(impl_state)
            except EvalError as exc:
                raise EvalError(
                    f"refinement mapping cannot produce target variable {name!r} "
                    f"from {impl_state!r}: {exc}"
                ) from exc
            values[name] = value
        return State(values)

    def map_lasso(self, lasso: Lasso, target_universe: Universe) -> Lasso:
        return lasso.map_states(lambda s: self.target_state(s, target_universe))

    def __repr__(self) -> str:
        return f"RefinementMapping({sorted(self.exprs)})"


IDENTITY = RefinementMapping()


def check_safety_refinement(
    impl: Union[Spec, StateGraph],
    target: Spec,
    mapping: Optional[RefinementMapping] = None,
    name: Optional[str] = None,
    max_states: int = 200_000,
    domain_check: bool = True,
    run_stats: Optional[ExploreStats] = None,
) -> CheckResult:
    """Exhaustively check ``C(impl) ⇒ C(target)`` on the reachable graph.

    *impl* may be a pre-explored graph (to share exploration across
    obligations).  With ``domain_check`` (default), mapped values must lie
    in the target universe's domains -- catching refinement mappings that
    leave the intended value space, which would make the verdict
    meaningless.  Pass *run_stats* to time the exploration and simulation
    phases.
    """
    mapping = mapping or IDENTITY
    if isinstance(impl, StateGraph):
        graph = impl
        label = name or f"safety refinement -> {target.name}"
        if run_stats is not None and run_stats.states == 0:
            run_stats.record_graph(graph)
    else:
        graph = explore(impl, max_states=max_states, stats=run_stats)
        label = name or f"{impl.name} => C({target.name})"
    stats = {"states": graph.state_count, "edges": graph.edge_count,
             "stutter": graph.stutter_count}

    mapped: Dict[int, State] = {}

    def target_of(node: int) -> State:
        cached = mapped.get(node)
        if cached is None:
            cached = mapping.target_state(graph.states[node], target.universe)
            if domain_check:
                for var in target.universe.variables:
                    if cached[var] not in target.universe.domain(var):
                        raise ValueError(
                            f"refinement mapping sends {var!r} to "
                            f"{cached[var]!r}, outside its target domain "
                            f"(impl state {graph.states[node]!r})"
                        )
            mapped[node] = cached
        return cached

    def impl_trace(path) -> FiniteBehavior:
        return FiniteBehavior([graph.states[i] for i in path])

    with maybe_phase(run_stats, f"refinement:{label}"):
        # initial condition
        for node in graph.init_nodes:
            value = target.init.eval_state(target_of(node))
            if not isinstance(value, bool):
                raise TypeError(f"target Init returned non-Boolean {value!r}")
            if not value:
                return CheckResult(
                    label,
                    ok=False,
                    counterexample=Counterexample(
                        impl_trace([node]),
                        f"mapped initial state violates Init of {target.name}: "
                        f"{target_of(node)!r}",
                    ),
                    stats=stats,
                )

        # step condition -- the boxed action is built (and coerced) once,
        # then evaluated per mapped edge
        boxed = to_expr(square(target.next_action, target.sub))
        for src in range(graph.state_count):
            mapped_src = None
            for dst in graph.succ[src]:
                if dst == src:
                    continue  # stutter maps to stutter: [N]_v trivially
                if mapped_src is None:
                    mapped_src = target_of(src)
                if not boxed.holds(Env(mapped_src, target_of(dst))):
                    path = graph.path_to_root(src) + [dst]
                    return CheckResult(
                        label,
                        ok=False,
                        counterexample=Counterexample(
                            impl_trace(path),
                            f"mapped step violates [N]_v of {target.name}: "
                            f"{target_of(src)!r} -> {target_of(dst)!r}",
                        ),
                        stats=stats,
                    )
    return CheckResult(label, ok=True, stats=stats)
